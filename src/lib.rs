//! Workspace-level facade used by the repository's examples and integration
//! tests.
//!
//! The actual library lives in the workspace crates; this shim re-exports
//! them under one roof and hosts a few shared workload helpers so that the
//! examples and the integration tests do not repeat themselves.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ampc_coloring::{coloring, graph, model, partition, runtime};
pub use ampc_coloring::{
    Algorithm, ColorRequest, ColoringOutcome, Error, RuntimeConfig, SparseColoring,
};

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sparse_graph::{generators, CsrGraph};

/// The synthetic workloads used across examples, integration tests and the
/// benchmark harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Union of `k` random spanning forests on `n` nodes (arboricity ≤ `k`).
    ForestUnion {
        /// Number of nodes.
        n: usize,
        /// Number of forests (arboricity bound).
        k: usize,
    },
    /// Preferential-attachment graph (heavy-tailed degrees, arboricity ≤
    /// `edges_per_node`).
    PowerLaw {
        /// Number of nodes.
        n: usize,
        /// Edges added per new node.
        edges_per_node: usize,
    },
    /// Triangulated grid (planar, arboricity ≤ 3).
    PlanarGrid {
        /// Grid side length (the graph has `side²` nodes).
        side: usize,
    },
    /// Complete `(β+1)`-ary tree of the given depth — the deep-dependency
    /// instance behind Figure 2 of the paper.
    DeepTree {
        /// Tree arity.
        arity: usize,
        /// Tree depth.
        depth: usize,
    },
    /// Hub-and-spoke communities: `communities` disjoint stars of
    /// `n / communities` nodes whose hubs form a cycle — arboricity 2 with
    /// maximum degree `n / communities + 1`, the extreme `∆ ≫ α` shape the
    /// skew-aware scheduler targets.
    HubAndSpoke {
        /// Number of nodes (split evenly over the communities).
        n: usize,
        /// Number of communities (each a star around one hub).
        communities: usize,
    },
}

impl Workload {
    /// Instantiates the workload deterministically from a seed.
    pub fn build(self, seed: u64) -> CsrGraph {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        match self {
            Workload::ForestUnion { n, k } => generators::forest_union(n, k, &mut rng),
            Workload::PowerLaw { n, edges_per_node } => {
                generators::preferential_attachment(n, edges_per_node, &mut rng)
            }
            Workload::PlanarGrid { side } => generators::triangulated_grid(side, side),
            Workload::DeepTree { arity, depth } => generators::complete_kary_tree(arity, depth),
            Workload::HubAndSpoke { n, communities } => {
                let communities = communities.clamp(1, n.max(1));
                generators::hub_and_spoke(communities, (n / communities).max(1))
            }
        }
    }

    /// A human-readable label for tables.
    pub fn label(self) -> String {
        match self {
            Workload::ForestUnion { n, k } => format!("forest-union(n={n}, k={k})"),
            Workload::PowerLaw { n, edges_per_node } => {
                format!("power-law(n={n}, m0={edges_per_node})")
            }
            Workload::PlanarGrid { side } => format!("planar-grid({side}x{side})"),
            Workload::DeepTree { arity, depth } => {
                format!("deep-tree(arity={arity}, depth={depth})")
            }
            Workload::HubAndSpoke { n, communities } => {
                format!("hub-and-spoke(n={n}, c={communities})")
            }
        }
    }

    /// The a-priori arboricity bound of the workload (used as the `α` input
    /// to the algorithms).
    pub fn alpha_bound(self) -> usize {
        match self {
            Workload::ForestUnion { k, .. } => k.max(1),
            Workload::PowerLaw { edges_per_node, .. } => edges_per_node.max(1),
            Workload::PlanarGrid { .. } => 3,
            Workload::DeepTree { .. } => 1,
            Workload::HubAndSpoke { .. } => 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_build_deterministically() {
        let w = Workload::ForestUnion { n: 200, k: 2 };
        assert_eq!(w.build(9), w.build(9));
        assert!(w.label().contains("forest-union"));
        assert_eq!(w.alpha_bound(), 2);

        let grid = Workload::PlanarGrid { side: 8 }.build(0);
        assert_eq!(grid.num_nodes(), 64);
        assert_eq!(Workload::PlanarGrid { side: 8 }.alpha_bound(), 3);

        let tree = Workload::DeepTree { arity: 3, depth: 2 }.build(0);
        assert!(tree.is_forest());
        assert_eq!(
            Workload::PowerLaw {
                n: 10,
                edges_per_node: 2
            }
            .alpha_bound(),
            2
        );
    }
}
