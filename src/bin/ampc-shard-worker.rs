//! The shard-merge worker child process behind
//! [`ampc_runtime::ProcessBackend`].
//!
//! Spawned by the supervisor with stdin/stdout as the wire (length-prefixed
//! binary frames); stateless across rounds, so a respawned worker re-fed
//! the same round input produces byte-for-byte the same response. Exits 0
//! on a `Shutdown` request or a clean EOF (the supervisor closing — or
//! dying with — the pipe), non-zero on transport errors or malformed
//! frames.

fn main() {
    std::process::exit(ampc_runtime::shard_worker_main());
}
