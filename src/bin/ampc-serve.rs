//! Launcher for the AMPC coloring service.
//!
//! ```text
//! cargo run --release --bin ampc-serve -- --addr=127.0.0.1:8077 --workers=4 --queue=128
//! ```
//!
//! Flags (all optional):
//!
//! * `--addr=HOST:PORT` — bind address (default `127.0.0.1:8077`; port `0`
//!   picks an ephemeral port, printed on stdout).
//! * `--workers=N` — persistent job-worker threads (default 2).
//! * `--queue=N` — bounded submission-queue capacity (default 64).
//! * `--acceptors=N` — HTTP acceptor threads (default 4).
//! * `--max-body-mb=N` — request-body limit in MiB (default 64).
//! * `--keepalive-requests=N` — HTTP/1.1 requests served per connection
//!   before it is closed (default 100; 1 disables keep-alive).
//! * `--job-ttl-s=N` — age in seconds at which terminal job records are
//!   garbage-collected (default 600).
//! * `--cache-ttl-s=N` — age in seconds at which ready result-cache
//!   entries expire (default 3600; the sweep runs alongside the cache's
//!   entry-count and memory-budget caps).
//! * `--trace-events=N` — span-buffer capacity per computed job (default
//!   16384; `0` disables per-job tracing and `GET /v1/jobs/{id}/trace`).
//! * `--job-retries=N` — how many times a *transiently* failed job
//!   (exhausted round retries, a caught panic) is recomputed before it is
//!   reported failed (default 1; deterministic errors never retry).
//! * `--round-deadline-ms=N` — per-AMPC-round deadline; an overrunning
//!   round is rolled back and replayed (default 0 = disabled; the
//!   `AMPC_ROUND_DEADLINE_MS` env var stays in force when unset).
//! * `--drain-timeout-s=N` — graceful-shutdown budget (default 30). On
//!   SIGTERM/SIGINT the server stops accepting submissions (new `POST
//!   /v1/color` gets `503` + `Retry-After`), finishes the queued and
//!   running jobs within the budget, reaps every job worker and
//!   `ampc-shard-worker` child, and exits 0 (1 if the drain timed out).

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use ampc_coloring_bench::args::parse_flag;
use ampc_service::{Server, ServiceConfig};

/// Set from the signal handler; polled by the main loop.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_shutdown_signal(_signum: i32) {
    // Async-signal-safe: a single atomic store.
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Installs `on_shutdown_signal` for SIGTERM and SIGINT via the libc
/// `signal(2)` wrapper (std links libc; no extra dependency).
fn install_signal_handlers() {
    unsafe extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let handler = on_shutdown_signal as *const () as usize;
    unsafe {
        signal(SIGTERM, handler);
        signal(SIGINT, handler);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let addr: String = parse_flag(&args, "addr").unwrap_or_else(|| "127.0.0.1:8077".to_string());
    let mut config = ServiceConfig::default();
    if let Some(workers) = parse_flag(&args, "workers") {
        config.workers = workers;
    }
    if let Some(queue) = parse_flag(&args, "queue") {
        config.queue_capacity = queue;
    }
    if let Some(acceptors) = parse_flag(&args, "acceptors") {
        config.acceptors = acceptors;
    }
    if let Some(megabytes) = parse_flag::<usize>(&args, "max-body-mb") {
        config.max_body_bytes = megabytes << 20;
    }
    if let Some(requests) = parse_flag(&args, "keepalive-requests") {
        config.max_requests_per_connection = requests;
    }
    if let Some(seconds) = parse_flag::<u64>(&args, "job-ttl-s") {
        // At least one second: a sub-second TTL would expire results
        // before a synchronous waiter can read them.
        config.job_ttl = Duration::from_secs(seconds.max(1));
    }
    if let Some(seconds) = parse_flag::<u64>(&args, "cache-ttl-s") {
        // Same floor: a zero TTL would expire entries as they publish.
        config.cache_ttl = Duration::from_secs(seconds.max(1));
    }
    if let Some(events) = parse_flag::<usize>(&args, "trace-events") {
        config.trace_events = events;
    }
    if let Some(retries) = parse_flag::<u32>(&args, "job-retries") {
        config.job_retries = retries;
    }
    if let Some(ms) = parse_flag::<u64>(&args, "round-deadline-ms") {
        config.round_deadline_ms = ms;
    }
    let drain_timeout =
        Duration::from_secs(parse_flag::<u64>(&args, "drain-timeout-s").unwrap_or(30));

    let server = match Server::bind(&addr, config) {
        Ok(server) => server,
        Err(error) => {
            eprintln!("ampc-serve: cannot bind {addr}: {error}");
            std::process::exit(1);
        }
    };
    let bound = server.local_addr().expect("bound listener has an address");
    install_signal_handlers();
    let handle = server.start().expect("starting acceptors");
    println!("ampc-serve listening on http://{bound}");
    println!(
        "  POST /v1/color    e.g. curl -sS --data-binary @graph.txt \
         'http://{bound}/v1/color?algorithm=two-alpha-plus-one&alpha=2&wait=1'"
    );
    println!(
        "  GET  /v1/jobs/{{id}}  GET /v1/jobs/{{id}}/trace  GET /healthz  GET /metrics[?format=prometheus]"
    );

    // Serve until SIGTERM/SIGINT, then drain gracefully. `park_timeout`
    // (not `park`) so the handler's store is observed promptly even
    // though a signal delivers no unpark.
    while !SHUTDOWN.load(Ordering::SeqCst) {
        std::thread::park_timeout(Duration::from_millis(100));
    }
    println!("ampc-serve: shutdown signal received; draining (timeout {drain_timeout:?})");
    let drained = handle.shutdown_graceful(drain_timeout);
    if drained {
        println!("ampc-serve: drained cleanly; bye");
        std::process::exit(0);
    }
    eprintln!("ampc-serve: drain timed out after {drain_timeout:?}; exiting anyway");
    std::process::exit(1);
}
