//! Launcher for the AMPC coloring service.
//!
//! ```text
//! cargo run --release --bin ampc-serve -- --addr=127.0.0.1:8077 --workers=4 --queue=128
//! ```
//!
//! Flags (all optional):
//!
//! * `--addr=HOST:PORT` — bind address (default `127.0.0.1:8077`; port `0`
//!   picks an ephemeral port, printed on stdout).
//! * `--workers=N` — persistent job-worker threads (default 2).
//! * `--queue=N` — bounded submission-queue capacity (default 64).
//! * `--acceptors=N` — HTTP acceptor threads (default 4).
//! * `--max-body-mb=N` — request-body limit in MiB (default 64).
//! * `--keepalive-requests=N` — HTTP/1.1 requests served per connection
//!   before it is closed (default 100; 1 disables keep-alive).
//! * `--job-ttl-s=N` — age in seconds at which terminal job records are
//!   garbage-collected (default 600).
//! * `--cache-ttl-s=N` — age in seconds at which ready result-cache
//!   entries expire (default 3600; the sweep runs alongside the cache's
//!   entry-count and memory-budget caps).
//! * `--trace-events=N` — span-buffer capacity per computed job (default
//!   16384; `0` disables per-job tracing and `GET /v1/jobs/{id}/trace`).
//! * `--job-retries=N` — how many times a *transiently* failed job
//!   (exhausted round retries, a caught panic) is recomputed before it is
//!   reported failed (default 1; deterministic errors never retry).
//! * `--round-deadline-ms=N` — per-AMPC-round deadline; an overrunning
//!   round is rolled back and replayed (default 0 = disabled; the
//!   `AMPC_ROUND_DEADLINE_MS` env var stays in force when unset).

use std::time::Duration;

use ampc_coloring_bench::args::parse_flag;
use ampc_service::{Server, ServiceConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let addr: String = parse_flag(&args, "addr").unwrap_or_else(|| "127.0.0.1:8077".to_string());
    let mut config = ServiceConfig::default();
    if let Some(workers) = parse_flag(&args, "workers") {
        config.workers = workers;
    }
    if let Some(queue) = parse_flag(&args, "queue") {
        config.queue_capacity = queue;
    }
    if let Some(acceptors) = parse_flag(&args, "acceptors") {
        config.acceptors = acceptors;
    }
    if let Some(megabytes) = parse_flag::<usize>(&args, "max-body-mb") {
        config.max_body_bytes = megabytes << 20;
    }
    if let Some(requests) = parse_flag(&args, "keepalive-requests") {
        config.max_requests_per_connection = requests;
    }
    if let Some(seconds) = parse_flag::<u64>(&args, "job-ttl-s") {
        // At least one second: a sub-second TTL would expire results
        // before a synchronous waiter can read them.
        config.job_ttl = Duration::from_secs(seconds.max(1));
    }
    if let Some(seconds) = parse_flag::<u64>(&args, "cache-ttl-s") {
        // Same floor: a zero TTL would expire entries as they publish.
        config.cache_ttl = Duration::from_secs(seconds.max(1));
    }
    if let Some(events) = parse_flag::<usize>(&args, "trace-events") {
        config.trace_events = events;
    }
    if let Some(retries) = parse_flag::<u32>(&args, "job-retries") {
        config.job_retries = retries;
    }
    if let Some(ms) = parse_flag::<u64>(&args, "round-deadline-ms") {
        config.round_deadline_ms = ms;
    }

    let server = match Server::bind(&addr, config) {
        Ok(server) => server,
        Err(error) => {
            eprintln!("ampc-serve: cannot bind {addr}: {error}");
            std::process::exit(1);
        }
    };
    let bound = server.local_addr().expect("bound listener has an address");
    let _handle = server.start().expect("starting acceptors");
    println!("ampc-serve listening on http://{bound}");
    println!(
        "  POST /v1/color    e.g. curl -sS --data-binary @graph.txt \
         'http://{bound}/v1/color?algorithm=two-alpha-plus-one&alpha=2&wait=1'"
    );
    println!(
        "  GET  /v1/jobs/{{id}}  GET /v1/jobs/{{id}}/trace  GET /healthz  GET /metrics[?format=prometheus]"
    );

    // Serve until killed.
    loop {
        std::thread::park();
    }
}
