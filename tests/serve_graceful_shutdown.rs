//! End-to-end graceful shutdown of the real `ampc-serve` binary: spawn
//! it, load it with multi-process jobs, deliver SIGTERM mid-queue, and
//! assert the contract — new submissions are shed with `503` +
//! `Retry-After`, the queue drains, the process exits `0`, and **no
//! `ampc-shard-worker` child is orphaned**. A second quick leg checks
//! SIGINT on an idle server.

use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use ampc_coloring_bench::http_client::{request, request_with_headers, retry_after_seconds};
use ampc_coloring_repro::Workload;
use sparse_graph::write_edge_list;

/// Boots `ampc-serve` on an ephemeral port and returns the child plus
/// the bound address parsed from its stdout banner.
fn boot_serve(extra: &[&str]) -> (Child, SocketAddr) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_ampc-serve"))
        .arg("--addr=127.0.0.1:0")
        .args(extra)
        .env("AMPC_SHARD_WORKER", env!("CARGO_BIN_EXE_ampc-shard-worker"))
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn ampc-serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("ampc-serve exited before its banner")
            .expect("read ampc-serve stdout");
        if let Some(rest) = line.split("listening on http://").nth(1) {
            break rest.trim().parse().expect("bound address parses");
        }
    };
    // Keep draining the banner so the child never blocks on a full pipe.
    std::thread::spawn(move || for _ in lines.map_while(Result::ok) {});
    (child, addr)
}

fn send_signal(pid: u32, signal: &str) {
    let status = Command::new("kill")
        .args([signal, &pid.to_string()])
        .status()
        .expect("run kill(1)");
    assert!(status.success(), "kill {signal} {pid} failed");
}

/// Live `ampc-shard-worker` pids whose parent is `ppid` (`/proc` scan;
/// `comm` is kernel-truncated to 15 characters).
fn shard_worker_children(ppid: u32) -> Vec<u32> {
    let ppid = ppid.to_string();
    let mut pids = Vec::new();
    let Ok(entries) = std::fs::read_dir("/proc") else {
        return pids;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(pid) = name.to_str().and_then(|s| s.parse::<u32>().ok()) else {
            continue;
        };
        let comm = std::fs::read_to_string(format!("/proc/{pid}/comm")).unwrap_or_default();
        if !comm.trim().starts_with("ampc-shard-work") {
            continue;
        }
        let status = std::fs::read_to_string(format!("/proc/{pid}/status")).unwrap_or_default();
        if status.lines().any(|line| {
            line.strip_prefix("PPid:")
                .is_some_and(|parent| parent.trim() == ppid)
        }) {
            pids.push(pid);
        }
    }
    pids
}

/// Waits up to `timeout` for `child` to exit and returns its code.
fn wait_with_timeout(child: &mut Child, timeout: Duration) -> Option<i32> {
    let deadline = Instant::now() + timeout;
    loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            return status.code();
        }
        if Instant::now() >= deadline {
            return None;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn sigterm_drains_sheds_and_reaps_shard_workers() {
    let (mut child, addr) = boot_serve(&["--workers=2", "--queue=64", "--drain-timeout-s=120"]);
    let serve_pid = child.id();

    // Queue up eight multi-process jobs (distinct seeds: no cache hits).
    // Two job workers chew through them, each spawning shard-worker
    // children, while SIGTERM lands mid-queue.
    for seed in 0..8u64 {
        let workload = Workload::PowerLaw {
            n: 4000,
            edges_per_node: 3,
        };
        let graph = workload.build(seed);
        let target = format!(
            "/v1/color?algorithm=two-alpha-plus-one&alpha={}&runtime=process&workers=2&min_nodes={}",
            workload.alpha_bound(),
            graph.num_nodes()
        );
        let (status, body) = request(
            addr,
            "POST",
            &target,
            &write_edge_list(&graph),
            Some(Duration::from_secs(60)),
        )
        .expect("submit");
        assert_eq!(status, 202, "{body}");
    }

    // Shard workers must actually exist before the signal: the kill has
    // to land while multi-process jobs are in flight.
    let saw_workers = Instant::now();
    let mut workers_seen = shard_worker_children(serve_pid);
    while workers_seen.is_empty() && saw_workers.elapsed() < Duration::from_secs(30) {
        std::thread::sleep(Duration::from_millis(10));
        workers_seen = shard_worker_children(serve_pid);
    }
    assert!(
        !workers_seen.is_empty(),
        "no ampc-shard-worker children appeared under ampc-serve"
    );

    send_signal(serve_pid, "-TERM");

    // Within the 100 ms signal-poll interval the server flips to drain
    // mode; from then on submissions are shed with 503 + Retry-After.
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut shed = None;
    while shed.is_none() && Instant::now() < deadline {
        let tiny = Workload::ForestUnion { n: 40, k: 2 }.build(0);
        match request_with_headers(
            addr,
            "POST",
            "/v1/color?algorithm=two-alpha-plus-one&alpha=2&runtime=process&workers=2",
            &write_edge_list(&tiny),
            Some(Duration::from_secs(10)),
        ) {
            Ok((503, headers, body)) => shed = Some((headers, body)),
            Ok((202, _, _)) => std::thread::sleep(Duration::from_millis(10)),
            Ok((status, _, body)) => panic!("unexpected {status} during drain: {body}"),
            // The server may finish draining and exit mid-probe.
            Err(_) => break,
        }
    }
    let (headers, body) = shed.expect("a submission was shed with 503 while draining");
    assert_eq!(
        retry_after_seconds(&headers),
        Some(1),
        "503 must carry Retry-After delay-seconds: {headers}"
    );
    assert!(body.contains("draining"), "{body}");

    // Best-effort (the drain may complete first): health reports drain
    // mode while job status stays readable.
    if let Ok((200, health)) = request(addr, "GET", "/healthz", "", Some(Duration::from_secs(5))) {
        assert!(health.contains("\"draining\":true"), "{health}");
    }

    let code = wait_with_timeout(&mut child, Duration::from_secs(180))
        .expect("ampc-serve exits after draining");
    assert_eq!(code, 0, "a clean drain exits 0");

    // No orphans: every shard worker observed under ampc-serve is gone
    // (a leaked one would have been reparented and kept running).
    for pid in workers_seen {
        let comm = std::fs::read_to_string(format!("/proc/{pid}/comm")).unwrap_or_default();
        assert!(
            !comm.trim().starts_with("ampc-shard-work"),
            "orphaned ampc-shard-worker pid {pid} survived shutdown"
        );
    }
    assert!(
        shard_worker_children(1).is_empty() || shard_worker_children(serve_pid).is_empty(),
        "shard workers still parented to the dead server"
    );
}

#[test]
fn sigint_on_an_idle_server_exits_promptly_and_cleanly() {
    let (mut child, addr) = boot_serve(&["--drain-timeout-s=10"]);
    // Prove it serves, then interrupt it with nothing queued.
    let (status, _) = request(addr, "GET", "/healthz", "", Some(Duration::from_secs(10)))
        .expect("healthz before SIGINT");
    assert_eq!(status, 200);
    send_signal(child.id(), "-INT");
    let code = wait_with_timeout(&mut child, Duration::from_secs(30))
        .expect("ampc-serve exits after SIGINT");
    assert_eq!(code, 0, "an idle drain exits 0");
}
