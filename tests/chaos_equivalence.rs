//! The chaos equivalence matrix: with a deterministic fault plan injecting
//! panics, stalls, merge failures, allocation pressure, worker aborts and
//! shard-worker **process kills** (genuine SIGKILLs of `ampc-shard-worker`
//! children) into the AMPC backends — and bounded retry replaying failed
//! rounds — every workload, on every backend, thread count and
//! worker-process count, still produces byte-identical colorings,
//! partition trajectories, round counts and model-level metrics to the
//! fault-free sequential reference.
//!
//! The fault plane is process-global (one plan, one set of counters), so
//! the whole matrix lives in a single `#[test]`: references are computed
//! before the plan is installed, everything after runs under fire. This
//! file is its own test binary, which keeps the global plan from leaking
//! into any other suite.

use ampc_coloring_repro::{Algorithm, RuntimeConfig, SparseColoring, Workload};
use ampc_runtime::faults::{self, FaultPlan};
use ampc_runtime::WorkerPool;
use beta_partition::{ampc_beta_partition, PartitionParams};

const WORKLOADS: [Workload; 5] = [
    Workload::ForestUnion { n: 400, k: 2 },
    Workload::PowerLaw {
        n: 400,
        edges_per_node: 3,
    },
    Workload::PlanarGrid { side: 14 },
    Workload::DeepTree { arity: 4, depth: 4 },
    Workload::HubAndSpoke {
        n: 400,
        communities: 8,
    },
];

fn runtime_matrix() -> Vec<RuntimeConfig> {
    vec![
        RuntimeConfig::Sequential,
        RuntimeConfig::parallel().with_threads(2).with_shards(1),
        RuntimeConfig::parallel().with_threads(4).with_shards(8),
        RuntimeConfig::parallel().with_threads(7).with_shards(3),
        // The multi-process backend: the `kill` fault kind SIGKILLs its
        // shard-worker children, exercising respawn + round replay.
        RuntimeConfig::process().with_workers(2),
        RuntimeConfig::process().with_workers(4),
    ]
}

#[test]
fn chaos_matrix_is_bit_identical_to_the_fault_free_reference() {
    // -- Phase 1: fault-free sequential references, computed before any
    // plan is installed.
    let references: Vec<_> = WORKLOADS
        .iter()
        .map(|workload| {
            let graph = workload.build(97);
            let alpha = workload.alpha_bound();
            let beta = 2 * alpha + 2;
            let partition = ampc_beta_partition(&graph, &PartitionParams::new(beta).with_x(4))
                .expect("fault-free partition succeeds");
            let outcome = SparseColoring::new()
                .algorithm(Algorithm::TwoAlphaPlusOne)
                .alpha(alpha)
                .runtime(RuntimeConfig::Sequential)
                .color(&graph)
                .expect("fault-free coloring succeeds");
            (graph, alpha, beta, partition, outcome)
        })
        .collect();

    // -- Phase 2: install an aggressive plan. Rates are tuned to fire a
    // handful of faults per 400-machine round (so most rounds are retried
    // at least once) without drowning the test in stall sleep time. The
    // retry budget is generous because faults only fire on attempt 0 —
    // every retried attempt is clean by construction.
    // merge=1/5 because merge cells are keyed per *round* (machine slot
    // u64::MAX), and each backend instance restarts its round numbering at
    // 0 after only a handful of rounds — for this seed the first firing
    // merge cell is round 1, well within every program.
    let plan = FaultPlan::parse(
        "seed=11,panic=1/211,stall=1/191,stall_ms=1,merge=1/5,alloc=1/97,abort=1/307,kill=1/5",
    )
    .expect("plan parses");
    let restarts_before = WorkerPool::global().stats().worker_restarts;
    let counters_before = faults::counters();
    faults::install(Some(plan));
    faults::set_max_round_retries(6);

    // -- Phase 3: the matrix. Partition trajectories (per-round remaining
    // counts), colorings, color counts, round counts and model-level
    // metrics must all be byte-identical to the reference.
    for (workload, (graph, alpha, beta, partition_ref, outcome_ref)) in
        WORKLOADS.iter().zip(&references)
    {
        for runtime in runtime_matrix() {
            let label = format!("workload {workload:?}, runtime {}", runtime.label());

            let partition = ampc_beta_partition(
                graph,
                &PartitionParams::new(*beta).with_x(4).with_runtime(runtime),
            )
            .unwrap_or_else(|error| panic!("partition under faults failed ({label}): {error}"));
            assert_eq!(
                partition_ref.partition, partition.partition,
                "partition diverged under faults ({label})"
            );
            assert_eq!(partition_ref.rounds, partition.rounds, "{label}");
            assert_eq!(
                partition_ref.remaining_per_round, partition.remaining_per_round,
                "per-round trajectory diverged under faults ({label})"
            );
            assert_eq!(partition_ref.metrics, partition.metrics, "{label}");

            let outcome = SparseColoring::new()
                .algorithm(Algorithm::TwoAlphaPlusOne)
                .alpha(*alpha)
                .runtime(runtime)
                .color(graph)
                .unwrap_or_else(|error| panic!("coloring under faults failed ({label}): {error}"));
            assert_eq!(
                outcome_ref.coloring, outcome.coloring,
                "coloring diverged under faults ({label})"
            );
            assert_eq!(outcome_ref.colors_used, outcome.colors_used, "{label}");
            assert_eq!(outcome_ref.total_rounds, outcome.total_rounds, "{label}");
            assert_eq!(
                outcome_ref.metrics, outcome.metrics,
                "model-level metrics diverged under faults ({label})"
            );
            assert!(outcome.coloring.is_proper(graph), "{label}");
        }
    }

    // -- Phase 4: the round deadline. A plan of pure stalls (40 ms each,
    // roughly one cell per round) trips a 20 ms deadline on attempt 0;
    // the clean retry finishes far under it. The committed-then-detected
    // rollback path of the sequential backend is exercised here too.
    faults::install(Some(
        FaultPlan::parse("seed=5,stall=1/40,stall_ms=40").expect("stall plan parses"),
    ));
    faults::set_round_deadline_ms(20);
    {
        let workload = Workload::ForestUnion { n: 40, k: 2 };
        let graph = workload.build(97);
        let alpha = workload.alpha_bound();
        let reference_outcome = {
            // Reference for this smaller instance: suspend the plan (and
            // deadline) rather than re-entering phase 1 machinery.
            faults::set_round_deadline_ms(0);
            faults::install(None);
            let outcome = SparseColoring::new()
                .algorithm(Algorithm::TwoAlphaPlusOne)
                .alpha(alpha)
                .runtime(RuntimeConfig::Sequential)
                .color(&graph)
                .expect("deadline-leg reference succeeds");
            faults::install(Some(
                FaultPlan::parse("seed=5,stall=1/40,stall_ms=40").expect("stall plan parses"),
            ));
            faults::set_round_deadline_ms(20);
            outcome
        };
        for runtime in [
            RuntimeConfig::Sequential,
            RuntimeConfig::parallel().with_threads(4).with_shards(8),
            RuntimeConfig::process().with_workers(2),
        ] {
            let outcome = SparseColoring::new()
                .algorithm(Algorithm::TwoAlphaPlusOne)
                .alpha(alpha)
                .runtime(runtime)
                .color(&graph)
                .expect("coloring under deadline succeeds");
            assert_eq!(
                reference_outcome.coloring,
                outcome.coloring,
                "deadline retries changed the coloring ({})",
                runtime.label()
            );
            assert_eq!(reference_outcome.total_rounds, outcome.total_rounds);
            assert_eq!(reference_outcome.metrics, outcome.metrics);
        }
    }
    faults::set_round_deadline_ms(0);
    faults::install(None);
    faults::set_max_round_retries(0);

    // -- Phase 5: the chaos was real. At least one panic was injected, at
    // least one round was replayed, at least one pool worker was poisoned
    // and respawned, and the deadline actually tripped.
    let counters = faults::counters();
    let injected_panics = counters.injected_panics - counters_before.injected_panics;
    let rounds_retried = counters.rounds_retried - counters_before.rounds_retried;
    let deadline_trips = counters.deadline_trips - counters_before.deadline_trips;
    let merge_failures = counters.injected_merge_failures - counters_before.injected_merge_failures;
    let worker_restarts = WorkerPool::global().stats().worker_restarts - restarts_before;
    let worker_kills = counters.worker_kills - counters_before.worker_kills;
    let worker_process_restarts =
        counters.worker_process_restarts - counters_before.worker_process_restarts;
    let rounds_replayed = counters.rounds_replayed - counters_before.rounds_replayed;
    assert!(injected_panics > 0, "no panics injected: {counters:?}");
    assert!(rounds_retried > 0, "no rounds retried: {counters:?}");
    assert!(
        merge_failures > 0,
        "no merge failures injected: {counters:?}"
    );
    assert!(
        deadline_trips > 0,
        "the deadline never tripped: {counters:?}"
    );
    assert!(
        worker_restarts > 0,
        "no pool worker was poisoned and respawned: {counters:?}"
    );
    assert!(
        worker_kills > 0,
        "no shard-worker child was SIGKILLed: {counters:?}"
    );
    assert!(
        worker_process_restarts > 0,
        "no shard-worker child was respawned: {counters:?}"
    );
    assert!(
        rounds_replayed > 0,
        "no round was replayed onto a respawned worker: {counters:?}"
    );

    // One greppable line for the CI chaos leg's job summary.
    println!(
        "CHAOS_COUNTERS injected_panics={injected_panics} injected_stalls={} \
         injected_merge_failures={merge_failures} injected_allocs={} worker_poisons={} \
         rounds_retried={rounds_retried} deadline_trips={deadline_trips} \
         worker_restarts={worker_restarts} worker_kills={worker_kills} \
         worker_process_restarts={worker_process_restarts} rounds_replayed={rounds_replayed}",
        counters.injected_stalls - counters_before.injected_stalls,
        counters.injected_allocs - counters_before.injected_allocs,
        counters.worker_poisons - counters_before.worker_poisons,
    );
}
