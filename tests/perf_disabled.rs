//! Forced perf-disable (`AMPC_PERF=0`) end to end.
//!
//! Its own integration-test binary on purpose: availability is probed
//! once per process through a `OnceLock`, so the env var must be set
//! before anything touches `ampc_runtime::perf` — sharing a process
//! with other tests would race that initialization. The single test
//! below sets the variable first, then checks the whole degradation
//! chain: the probe reports unavailable, snapshots and sampled stats
//! stay zeroed, colorings are unaffected, and the service surfaces
//! `perf.available=false` in both `/metrics` renderings.

use std::time::Duration;

use ampc_coloring_repro::{Algorithm, RuntimeConfig, SparseColoring, Workload};
use ampc_service::{Server, ServiceConfig};

#[test]
fn forced_off_perf_is_zeroed_everywhere_and_reported_in_metrics() {
    std::env::set_var("AMPC_PERF", "0");

    assert!(
        !ampc_runtime::perf::available(),
        "AMPC_PERF=0 must force-disable sampling even on perf-capable hosts"
    );
    assert!(
        ampc_runtime::perf::snapshot().is_zero(),
        "snapshots are zeroed when sampling is off"
    );

    // A computation under the parallel backend still works, and its
    // per-round runtime stats carry zeroed hardware counters.
    let workload = Workload::ForestUnion { n: 500, k: 2 };
    let graph = workload.build(31);
    let result = SparseColoring::new()
        .algorithm(Algorithm::TwoAlphaPlusOne)
        .alpha(workload.alpha_bound())
        .runtime(RuntimeConfig::parallel().with_threads(4))
        .color(&graph)
        .expect("coloring succeeds with sampling forced off");
    assert!(!result.metrics.runtime_stats().is_empty());
    for stats in result.metrics.runtime_stats() {
        assert_eq!(stats.cycles, 0, "forced-off counters must read zero");
        assert_eq!(stats.instructions, 0);
        assert_eq!(stats.ipc(), None, "no IPC without samples");
    }

    // The service reports the forced-off state honestly on both /metrics
    // renderings and /v1/version.
    let handle = Server::bind(
        "127.0.0.1:0",
        ServiceConfig {
            workers: 1,
            acceptors: 1,
            ..ServiceConfig::default()
        },
    )
    .expect("bind")
    .start()
    .expect("start");
    let get = |target: &str| -> String {
        let (status, body) = ampc_coloring_bench::http_client::request(
            handle.addr(),
            "GET",
            target,
            "",
            Some(Duration::from_secs(30)),
        )
        .expect("request");
        assert_eq!(status, 200, "{body}");
        body
    };
    let body = get("/metrics");
    assert!(body.contains("\"perf\":{\"available\":false"), "{body}");
    let body = get("/metrics?format=prometheus");
    assert!(body.contains("\nampc_perf_available 0\n"), "{body}");
    assert!(body.contains("\nampc_perf_cycles_total 0\n"), "{body}");
    let body = get("/v1/version");
    assert!(body.contains("\"perf_available\":false"), "{body}");
    handle.shutdown();
}
