//! The determinism contract of the `ampc-runtime` subsystem: for a fixed
//! seed and `ConflictPolicy`, the sharded parallel backend **and** the
//! multi-process backend (shard merges in `ampc-shard-worker` child OS
//! processes) produce bit-identical stores, partitions and colorings to
//! the sequential reference simulator — across every `Workload`, every
//! policy, a matrix of thread/shard counts and worker-process counts
//! {1, 2, 4} — and budget violations surface as the same errors. That
//! includes runs where a worker child is SIGKILLed mid-computation and
//! healed by respawn + round replay.

use ampc_coloring_repro::{Algorithm, RuntimeConfig, SparseColoring, Workload};
use ampc_model::{AmpcConfig, ConflictPolicy, DataStore, Key, ModelError, Value};
use ampc_runtime::{AmpcBackend, RoundPrimitives};
use arbo_coloring::{
    arb_linial_coloring_with_runtime, derandomized_coloring_relabeled,
    derandomized_coloring_with_runtime, kw_color_reduction_with_runtime,
    recolor_layers_with_runtime, DerandParams, RecolorOrder,
};
use beta_partition::{ampc_beta_partition, natural_partition, PartitionParams};
use sparse_graph::{relabel, Coloring, CsrGraph, Orientation, RelabelPolicy};

const ALL_WORKLOADS: [Workload; 5] = [
    Workload::ForestUnion { n: 400, k: 2 },
    Workload::PowerLaw {
        n: 400,
        edges_per_node: 3,
    },
    Workload::PlanarGrid { side: 14 },
    Workload::DeepTree { arity: 4, depth: 4 },
    // The high-skew shape the work-stealing scheduler targets: a few hubs
    // carry almost every edge.
    Workload::HubAndSpoke {
        n: 400,
        communities: 8,
    },
];

const ALL_POLICIES: [ConflictPolicy; 4] = [
    ConflictPolicy::KeepMin,
    ConflictPolicy::KeepMax,
    ConflictPolicy::KeepFirst,
    ConflictPolicy::Error,
];

fn parallel_matrix() -> Vec<RuntimeConfig> {
    vec![
        RuntimeConfig::parallel().with_threads(2).with_shards(1),
        RuntimeConfig::parallel().with_threads(4).with_shards(8),
        RuntimeConfig::parallel().with_threads(7).with_shards(3),
        // shards = 0 selects imbalance-driven auto-tuning; the shard count
        // may grow between rounds without touching any result.
        RuntimeConfig::parallel().with_threads(4).with_shards(0),
    ]
}

/// The multi-process runtime: shard merges run in `ampc-shard-worker`
/// child OS processes (the stage-1 distributed backend).
fn process_matrix() -> Vec<RuntimeConfig> {
    vec![
        RuntimeConfig::process().with_workers(1),
        RuntimeConfig::process().with_workers(2),
        RuntimeConfig::process().with_workers(4),
    ]
}

/// Every non-sequential runtime under test: the in-process thread/shard
/// matrix plus the multi-process worker matrix.
fn runtime_matrix() -> Vec<RuntimeConfig> {
    let mut matrix = parallel_matrix();
    matrix.extend(process_matrix());
    matrix
}

/// The DDS image of a graph: one degree entry per node.
fn store_of(graph: &CsrGraph) -> DataStore {
    graph
        .nodes()
        .map(|v| {
            (
                Key::pair(0, v as u64),
                Value::single(graph.degree(v) as u64),
            )
        })
        .collect()
}

/// A three-round adaptive program exercising reads of the previous store,
/// carry-forward semantics and colliding writes.
///
/// Under `ConflictPolicy::Error` the colliding writes carry identical
/// values (machines colliding modulo 7 write their shared residue), so the
/// program succeeds under every policy while still merging duplicates.
fn run_program(
    backend: &mut dyn AmpcBackend,
    machines: usize,
    policy: ConflictPolicy,
) -> DataStore {
    backend
        .round_carrying_forward(machines, policy, |machine, ctx| {
            let degree = ctx
                .read(Key::pair(0, machine as u64))?
                .map_or(0, |v| v.words()[0]);
            // Adaptive second read: the target depends on the first answer.
            let other = ctx
                .read(Key::pair(0, degree % machines as u64))?
                .map_or(0, |v| v.words()[0]);
            ctx.write(
                Key::pair(1, machine as u64),
                Value::single(degree.wrapping_add(other)),
            )?;
            let residue = (machine % 7) as u64;
            ctx.write(Key::pair(2, residue), Value::single(residue))
        })
        .expect("round 1 fits its budgets");
    backend
        .round(machines, policy, |machine, ctx| {
            if let Some(v) = ctx.read(Key::pair(1, machine as u64))? {
                ctx.write(
                    Key::pair(3, machine as u64),
                    Value::single(v.words()[0] * 2 + 1),
                )?;
            }
            Ok(())
        })
        .expect("round 2 fits its budgets");
    backend
        .round_carrying_forward(machines, policy, |machine, ctx| {
            let own = ctx.read(Key::pair(3, machine as u64))?;
            if let Some(v) = own {
                // Colliding keys again: merge by policy (identical values
                // under Error because the written value is key-derived).
                let bucket = (machine % 13) as u64;
                let value = if policy == ConflictPolicy::Error {
                    bucket
                } else {
                    v.words()[0]
                };
                ctx.write(Key::pair(4, bucket), Value::single(value))?;
            }
            Ok(())
        })
        .expect("round 3 fits its budgets");
    backend.snapshot_store()
}

#[test]
fn stores_are_bit_identical_across_workloads_and_policies() {
    for workload in ALL_WORKLOADS {
        let graph = workload.build(97);
        let machines = graph.num_nodes();
        let config = AmpcConfig::for_input_size(graph.num_nodes() + graph.num_edges(), 0.5);
        for policy in ALL_POLICIES {
            let mut sequential = RuntimeConfig::Sequential.backend(config, store_of(&graph));
            let expected = run_program(sequential.as_mut(), machines, policy);
            for runtime in runtime_matrix() {
                let mut parallel = runtime.backend(config, store_of(&graph));
                let actual = run_program(parallel.as_mut(), machines, policy);
                assert_eq!(
                    expected,
                    actual,
                    "workload {:?}, policy {policy:?}, runtime {}",
                    workload,
                    runtime.label()
                );
                // Model-level metrics (rounds, reads, writes, store sizes)
                // agree too; wall clock and shard stats are excluded from
                // metric equality by design.
                assert_eq!(
                    sequential.metrics(),
                    parallel.metrics(),
                    "workload {:?}, policy {policy:?}",
                    workload
                );
            }
        }
    }
}

#[test]
fn partitions_and_colorings_agree_on_every_workload() {
    for workload in ALL_WORKLOADS {
        let graph = workload.build(98);
        let alpha = workload.alpha_bound();
        let beta = 2 * alpha + 2;

        let sequential_partition =
            ampc_beta_partition(&graph, &PartitionParams::new(beta).with_x(4))
                .expect("partition succeeds");
        let parallel_partition = ampc_beta_partition(
            &graph,
            &PartitionParams::new(beta)
                .with_x(4)
                .with_runtime(RuntimeConfig::parallel().with_threads(4).with_shards(8)),
        )
        .expect("partition succeeds");
        assert_eq!(
            sequential_partition.partition, parallel_partition.partition,
            "workload {workload:?}"
        );
        assert_eq!(sequential_partition.rounds, parallel_partition.rounds);
        assert_eq!(sequential_partition.metrics, parallel_partition.metrics);
        assert_eq!(
            sequential_partition.remaining_per_round,
            parallel_partition.remaining_per_round
        );
        // The parallel run recorded runtime measurements for its rounds.
        assert_eq!(
            parallel_partition.metrics.runtime_stats().len(),
            parallel_partition.rounds,
            "workload {workload:?}"
        );
        // The multi-process backend reproduces the same partition too.
        let process_partition = ampc_beta_partition(
            &graph,
            &PartitionParams::new(beta)
                .with_x(4)
                .with_runtime(RuntimeConfig::process().with_workers(2)),
        )
        .expect("partition succeeds");
        assert_eq!(
            sequential_partition.partition, process_partition.partition,
            "workload {workload:?}"
        );
        assert_eq!(sequential_partition.rounds, process_partition.rounds);
        assert_eq!(sequential_partition.metrics, process_partition.metrics);
        assert_eq!(
            sequential_partition.remaining_per_round,
            process_partition.remaining_per_round
        );

        let color = |runtime: RuntimeConfig| {
            SparseColoring::new()
                .algorithm(Algorithm::TwoAlphaPlusOne)
                .alpha(alpha)
                .runtime(runtime)
                .color(&graph)
                .expect("coloring succeeds")
        };
        let sequential = color(RuntimeConfig::Sequential);
        let parallel = color(RuntimeConfig::parallel().with_threads(4));
        assert_eq!(
            sequential.coloring, parallel.coloring,
            "workload {workload:?}"
        );
        assert_eq!(sequential.colors_used, parallel.colors_used);
        assert_eq!(sequential.total_rounds, parallel.total_rounds);
        assert!(sequential.coloring.is_proper(&graph));

        for workers in [1usize, 2, 4] {
            let process = color(RuntimeConfig::process().with_workers(workers));
            assert_eq!(
                sequential.coloring, process.coloring,
                "workload {workload:?}, workers {workers}"
            );
            assert_eq!(sequential.colors_used, process.colors_used);
            assert_eq!(sequential.total_rounds, process.total_rounds);
            assert_eq!(sequential.metrics, process.metrics, "model-level only");
        }
    }
}

/// Crash tolerance is output-invisible: a shard-worker child SIGKILLed
/// **mid-computation** (from inside a round body, after the previous
/// round's merge committed and before this round's merge is dispatched) is
/// respawned and the round replayed from retained input — and the final
/// store is byte-identical to the undisturbed sequential reference.
#[test]
fn process_backend_heals_a_worker_killed_mid_computation() {
    use ampc_runtime::ProcessBackend;
    use std::sync::atomic::{AtomicBool, Ordering};

    let workload = Workload::PowerLaw {
        n: 400,
        edges_per_node: 3,
    };
    let graph = workload.build(97);
    let machines = graph.num_nodes();
    let config = AmpcConfig::for_input_size(graph.num_nodes() + graph.num_edges(), 0.5);

    for policy in [ConflictPolicy::KeepMin, ConflictPolicy::KeepFirst] {
        let program = |backend: &mut dyn AmpcBackend, hook: &(dyn Fn(usize) + Sync)| {
            backend
                .round_carrying_forward(machines, policy, |machine, ctx| {
                    let degree = ctx
                        .read(Key::pair(0, machine as u64))?
                        .map_or(0, |v| v.words()[0]);
                    ctx.write(Key::pair(1, machine as u64), Value::single(degree * 3 + 1))
                })
                .expect("round 1 succeeds");
            backend
                .round(machines, policy, |machine, ctx| {
                    hook(machine);
                    if let Some(v) = ctx.read(Key::pair(1, machine as u64))? {
                        ctx.write(
                            Key::pair(2, (machine % 31) as u64),
                            Value::single(v.words()[0]),
                        )?;
                    }
                    Ok(())
                })
                .expect("the killed worker is healed, not surfaced");
            backend.snapshot_store()
        };

        let mut sequential = RuntimeConfig::Sequential.backend(config, store_of(&graph));
        let expected = program(sequential.as_mut(), &|_| {});

        let mut backend = ProcessBackend::new(config, store_of(&graph), 2);
        let pids_before = backend.worker_pids();
        let victim = pids_before[1].to_string();
        let killed = AtomicBool::new(false);
        let hook = move |machine: usize| {
            // SIGKILL worker 1 once, halfway through round 2's bodies: its
            // round input has not been streamed yet, so the supervisor
            // observes the corpse at dispatch and heals it by respawn +
            // replay.
            if machine == machines / 2 && !killed.swap(true, Ordering::SeqCst) {
                let status = std::process::Command::new("kill")
                    .args(["-9", &victim])
                    .status()
                    .expect("kill(1) is available");
                assert!(status.success(), "kill -9 failed");
            }
        };
        let backend_dyn: &mut dyn AmpcBackend = &mut backend;
        let actual = program(backend_dyn, &hook);

        assert_eq!(expected, actual, "policy {policy:?}");
        assert_eq!(sequential.metrics(), backend.metrics(), "policy {policy:?}");
        let pids_after = backend.worker_pids();
        assert_ne!(pids_before[1], pids_after[1], "worker 1 was respawned");
        assert_eq!(pids_before[0], pids_after[0], "worker 0 was untouched");
    }
}

/// The intra-layer determinism matrix: the LOCAL simulators themselves
/// (Arb-Linial rounds, Kuhn–Wattenhofer sweeps) produce bit-identical
/// colorings, palette trajectories and round counts on the round
/// primitives — now with cost-weighted chunking and the work-stealing
/// deques engaged — for every workload and thread count, including the
/// skewed hub-and-spoke workload whose by-id orientation piles most of the
/// per-node cost onto a few hubs.
#[test]
fn intra_layer_simulators_are_bit_identical_across_thread_counts() {
    for workload in ALL_WORKLOADS {
        let graph = workload.build(101);
        let orientation = Orientation::from_total_order(&graph, |v| v);
        let initial = Coloring::new((0..graph.num_nodes()).collect());
        let delta = graph.max_degree();

        let linial_reference = arb_linial_coloring_with_runtime(
            &graph,
            &orientation,
            None,
            &RoundPrimitives::sequential(),
        )
        .expect("sequential Arb-Linial succeeds");
        let kw_reference = kw_color_reduction_with_runtime(
            &graph,
            &initial,
            delta,
            &RoundPrimitives::sequential(),
        )
        .expect("sequential KW succeeds");

        for threads in [1usize, 2, 4, 7] {
            let primitives = RoundPrimitives::new(threads);
            let linial = arb_linial_coloring_with_runtime(&graph, &orientation, None, &primitives)
                .expect("parallel Arb-Linial succeeds");
            assert_eq!(
                linial_reference.coloring, linial.coloring,
                "workload {workload:?}, threads {threads}"
            );
            assert_eq!(
                linial_reference.palette_trajectory,
                linial.palette_trajectory
            );
            assert_eq!(linial_reference.rounds, linial.rounds);

            let kw = kw_color_reduction_with_runtime(&graph, &initial, delta, &primitives)
                .expect("parallel KW succeeds");
            assert_eq!(
                kw_reference.coloring, kw.coloring,
                "workload {workload:?}, threads {threads}"
            );
            assert_eq!(kw_reference.palette_trajectory, kw.palette_trajectory);
            assert_eq!(kw_reference.rounds, kw.rounds);
            assert!(primitives.tasks_executed() > 0, "primitives actually ran");
        }
    }
}

/// The scheduler A/B is output-invisible: on the skewed workloads (by-id
/// orientations, hub out-degrees = hub degrees) the cost-weighted grid +
/// stealing and the PR 3 contiguous grid produce bit-identical colorings,
/// palette trajectories and round counts — both equal to the sequential
/// reference — for every thread count. Only the wall clock may differ.
#[test]
fn weighted_and_contiguous_schedulers_agree_on_skewed_workloads() {
    for workload in [
        Workload::HubAndSpoke {
            n: 600,
            communities: 4,
        },
        Workload::PowerLaw {
            n: 600,
            edges_per_node: 3,
        },
    ] {
        let graph = workload.build(104);
        let orientation = Orientation::from_total_order(&graph, |v| v);
        let reference = arb_linial_coloring_with_runtime(
            &graph,
            &orientation,
            None,
            &RoundPrimitives::sequential(),
        )
        .expect("sequential Arb-Linial succeeds");
        for threads in [1usize, 2, 4, 7] {
            for contiguous in [false, true] {
                let primitives = if contiguous {
                    RoundPrimitives::new(threads).contiguous()
                } else {
                    RoundPrimitives::new(threads)
                };
                let run = arb_linial_coloring_with_runtime(&graph, &orientation, None, &primitives)
                    .expect("Arb-Linial succeeds");
                assert_eq!(
                    reference.coloring, run.coloring,
                    "workload {workload:?}, threads {threads}, contiguous {contiguous}"
                );
                assert_eq!(reference.palette_trajectory, run.palette_trajectory);
                assert_eq!(reference.rounds, run.rounds);
            }
        }
    }
}

/// The recoloring waves and the derandomized MPC sweeps agree across
/// thread counts too (the remaining intra-layer code paths).
#[test]
fn recolor_and_derand_sweeps_are_bit_identical_across_thread_counts() {
    for workload in ALL_WORKLOADS {
        let graph = workload.build(102);
        let beta = 2 * workload.alpha_bound() + 2;
        let partition = natural_partition(&graph, beta);
        // The trivial id-coloring is proper everywhere, hence within every
        // layer — a valid recoloring input with plenty of waves.
        let initial = Coloring::new((0..graph.num_nodes()).collect());
        let recolor_reference = recolor_layers_with_runtime(
            &graph,
            &partition,
            &initial,
            RecolorOrder::HighestAvailable,
            &RoundPrimitives::sequential(),
        )
        .expect("sequential recolor succeeds");
        let derand_reference = derandomized_coloring_with_runtime(
            &graph,
            &DerandParams::with_x(2),
            &RoundPrimitives::sequential(),
        );
        for threads in [2usize, 5] {
            let primitives = RoundPrimitives::new(threads);
            let recolored = recolor_layers_with_runtime(
                &graph,
                &partition,
                &initial,
                RecolorOrder::HighestAvailable,
                &primitives,
            )
            .expect("parallel recolor succeeds");
            assert_eq!(
                recolor_reference.coloring, recolored.coloring,
                "workload {workload:?}, threads {threads}"
            );
            assert_eq!(
                recolor_reference.repaired_conflicts,
                recolored.repaired_conflicts
            );
            let derand =
                derandomized_coloring_with_runtime(&graph, &DerandParams::with_x(2), &primitives);
            assert_eq!(
                derand_reference.coloring, derand.coloring,
                "workload {workload:?}, threads {threads}"
            );
            assert_eq!(derand_reference.uncolored_history, derand.uncolored_history);
            assert_eq!(derand_reference.mpc_rounds, derand.mpc_rounds);
        }
    }
}

/// The relabel × thread matrix of the memory-layout pass: every simulator,
/// run on a cache-aware relabeled instance (permute → color → un-permute),
/// reproduces the unrelabeled sequential reference byte for byte, for
/// every workload, relabel policy and thread count.
///
/// The ingredients of the contract (pinned here, argued in
/// `sparse_graph::relabel`'s module docs): orientations are computed on
/// the *original* graph and pushed through the permutation; initial
/// colorings are permuted alongside the graph; the derandomized coloring —
/// whose GF(2) queries read node ids — encodes *original* ids via
/// [`derandomized_coloring_relabeled`]. This same matrix doubles as the
/// forced-scalar equivalence gate: CI runs the suite once with
/// `AMPC_SIMD=0`, so any divergence between the SIMD and portable-scalar
/// kernels breaks the identity asserted here in exactly one of the two
/// jobs.
#[test]
fn relabeled_runs_unpermute_to_the_unrelabeled_reference() {
    for workload in ALL_WORKLOADS {
        let graph = workload.build(108);
        let n = graph.num_nodes();
        let orientation = Orientation::from_total_order(&graph, |v| v);
        let initial = Coloring::new((0..n).collect());
        let delta = graph.max_degree();
        let beta = 2 * workload.alpha_bound() + 2;
        let derand_params = DerandParams::with_x(2);

        let sequential = RoundPrimitives::sequential();
        let linial_reference =
            arb_linial_coloring_with_runtime(&graph, &orientation, Some(&initial), &sequential)
                .expect("reference Arb-Linial succeeds");
        let kw_reference = kw_color_reduction_with_runtime(&graph, &initial, delta, &sequential)
            .expect("reference KW succeeds");
        let recolor_reference = recolor_layers_with_runtime(
            &graph,
            &natural_partition(&graph, beta),
            &initial,
            RecolorOrder::HighestAvailable,
            &sequential,
        )
        .expect("reference recolor succeeds");
        let derand_reference =
            derandomized_coloring_with_runtime(&graph, &derand_params, &sequential);

        for policy in RelabelPolicy::ALL {
            let (relabeled, permutation) = relabel(&graph, policy);
            // Push the *original* instance through the permutation: the
            // orientation keeps its original tie-breaks, the initial colors
            // follow their nodes.
            let pushed_orientation = permutation.permute_orientation(&orientation);
            let pushed_initial = Coloring::new(permutation.permute_colors(initial.colors()));
            // The natural partition peels whole threshold sets at a time,
            // so its layers are label-independent and can be recomputed on
            // the relabeled graph directly.
            let pushed_partition = natural_partition(&relabeled, beta);

            for threads in [1usize, 4] {
                let primitives = RoundPrimitives::new(threads);
                let label = format!(
                    "workload {workload:?}, {}, threads {threads}",
                    policy.label()
                );

                let linial = arb_linial_coloring_with_runtime(
                    &relabeled,
                    &pushed_orientation,
                    Some(&pushed_initial),
                    &primitives,
                )
                .expect("relabeled Arb-Linial succeeds");
                assert_eq!(
                    permutation.unpermute_coloring(&linial.coloring),
                    linial_reference.coloring,
                    "arb-linial: {label}"
                );
                assert_eq!(
                    linial_reference.palette_trajectory, linial.palette_trajectory,
                    "arb-linial trajectory: {label}"
                );

                let kw = kw_color_reduction_with_runtime(
                    &relabeled,
                    &pushed_initial,
                    delta,
                    &primitives,
                )
                .expect("relabeled KW succeeds");
                assert_eq!(
                    permutation.unpermute_coloring(&kw.coloring),
                    kw_reference.coloring,
                    "kw: {label}"
                );
                assert_eq!(
                    kw_reference.palette_trajectory, kw.palette_trajectory,
                    "kw trajectory: {label}"
                );

                let recolored = recolor_layers_with_runtime(
                    &relabeled,
                    &pushed_partition,
                    &pushed_initial,
                    RecolorOrder::HighestAvailable,
                    &primitives,
                )
                .expect("relabeled recolor succeeds");
                assert_eq!(
                    permutation.unpermute_coloring(&recolored.coloring),
                    recolor_reference.coloring,
                    "recolor: {label}"
                );
                assert_eq!(
                    recolor_reference.repaired_conflicts, recolored.repaired_conflicts,
                    "recolor conflicts: {label}"
                );

                let derand = derandomized_coloring_relabeled(
                    &relabeled,
                    &derand_params,
                    &permutation,
                    &primitives,
                );
                assert_eq!(
                    permutation.unpermute_coloring(&derand.coloring),
                    derand_reference.coloring,
                    "derand: {label}"
                );
                assert_eq!(
                    derand_reference.uncolored_history, derand.uncolored_history,
                    "derand history: {label}"
                );
                assert_eq!(derand_reference.mpc_rounds, derand.mpc_rounds);
            }
        }
    }
}

/// End-to-end: the full drivers stay bit-identical across a thread matrix
/// now that the intra-layer loops are parallel too, and parallel runs
/// record intra-layer task counts (excluded from metric equality).
#[test]
fn drivers_agree_across_thread_matrix_and_record_intra_stats() {
    for workload in ALL_WORKLOADS {
        let graph = workload.build(103);
        let alpha = workload.alpha_bound();
        let color = |runtime: RuntimeConfig| {
            SparseColoring::new()
                .algorithm(Algorithm::TwoAlphaPlusOne)
                .alpha(alpha)
                .runtime(runtime)
                .color(&graph)
                .expect("coloring succeeds")
        };
        let sequential = color(RuntimeConfig::Sequential);
        for threads in [1usize, 2, 4, 7] {
            let parallel = color(RuntimeConfig::parallel().with_threads(threads));
            assert_eq!(
                sequential.coloring, parallel.coloring,
                "workload {workload:?}, threads {threads}"
            );
            assert_eq!(sequential.colors_used, parallel.colors_used);
            assert_eq!(sequential.total_rounds, parallel.total_rounds);
            assert_eq!(sequential.metrics, parallel.metrics, "model-level only");
            assert!(
                parallel
                    .metrics
                    .runtime_stats()
                    .iter()
                    .any(|stats| stats.intra_tasks > 0),
                "parallel runs record intra-layer stats"
            );
        }
    }
}

/// The allocation-discipline regression test: one shared `RoundPrimitives`
/// context — and therefore one shared set of scratch pools, marker sets
/// and recycled reduce grids — runs *different* workloads back-to-back
/// through every simulator, twice (the second pass leases only warm,
/// previously-dirty buffers). Results must be bit-identical to
/// fresh-context runs; a stale epoch, an unreset marker, or a dirty
/// recycled buffer leaking values between workloads would diverge here.
#[test]
fn shared_scratch_across_workloads_stays_bit_identical() {
    // Deliberately different shapes and palette sizes so recycled buffers
    // change logical dimensions between leases.
    let workloads = [
        Workload::HubAndSpoke {
            n: 700,
            communities: 5,
        },
        Workload::ForestUnion { n: 500, k: 3 },
        Workload::PowerLaw {
            n: 600,
            edges_per_node: 4,
        },
    ];
    let shared = RoundPrimitives::new(4);
    for pass in 0..2 {
        for workload in workloads {
            let graph = workload.build(105);
            let orientation = Orientation::from_total_order(&graph, |v| v);
            let initial = Coloring::new((0..graph.num_nodes()).collect());
            let delta = graph.max_degree();
            let beta = 2 * workload.alpha_bound() + 2;
            let partition = natural_partition(&graph, beta);

            let fresh = RoundPrimitives::new(4);
            let linial_fresh = arb_linial_coloring_with_runtime(&graph, &orientation, None, &fresh)
                .expect("fresh Arb-Linial succeeds");
            let linial_shared =
                arb_linial_coloring_with_runtime(&graph, &orientation, None, &shared)
                    .expect("shared Arb-Linial succeeds");
            assert_eq!(
                linial_fresh.coloring, linial_shared.coloring,
                "pass {pass}, workload {workload:?}: arb-linial diverged on shared scratch"
            );
            assert_eq!(
                linial_fresh.palette_trajectory,
                linial_shared.palette_trajectory
            );

            let kw_fresh = kw_color_reduction_with_runtime(&graph, &initial, delta, &fresh)
                .expect("fresh KW succeeds");
            let kw_shared = kw_color_reduction_with_runtime(&graph, &initial, delta, &shared)
                .expect("shared KW succeeds");
            assert_eq!(
                kw_fresh.coloring, kw_shared.coloring,
                "pass {pass}, workload {workload:?}: KW diverged on shared scratch"
            );
            assert_eq!(kw_fresh.palette_trajectory, kw_shared.palette_trajectory);

            let recolor_fresh = recolor_layers_with_runtime(
                &graph,
                &partition,
                &initial,
                RecolorOrder::HighestAvailable,
                &fresh,
            )
            .expect("fresh recolor succeeds");
            let recolor_shared = recolor_layers_with_runtime(
                &graph,
                &partition,
                &initial,
                RecolorOrder::HighestAvailable,
                &shared,
            )
            .expect("shared recolor succeeds");
            assert_eq!(
                recolor_fresh.coloring, recolor_shared.coloring,
                "pass {pass}, workload {workload:?}: recolor diverged on shared scratch"
            );

            let derand_fresh =
                derandomized_coloring_with_runtime(&graph, &DerandParams::with_x(2), &fresh);
            let derand_shared =
                derandomized_coloring_with_runtime(&graph, &DerandParams::with_x(2), &shared);
            assert_eq!(
                derand_fresh.coloring, derand_shared.coloring,
                "pass {pass}, workload {workload:?}: derand diverged on shared scratch"
            );
            assert_eq!(
                derand_fresh.uncolored_history,
                derand_shared.uncolored_history
            );
        }
    }
    // The shared context actually recycled buffers (the point of the test),
    // and the reuse counters surface through its runtime stats record.
    let stats = shared.runtime_stats();
    assert!(
        stats.scratch_reuses > 0,
        "the second pass must lease warm buffers: {stats:?}"
    );
    assert!(stats.scratch_allocs > 0, "cold leases are counted too");
}

/// Hardware-counter sampling is measurement-only: a run with the
/// primitives' perf sink disabled must produce byte-for-byte the same
/// coloring, palette trajectory and task counts as the default sampling
/// run. (Whether counters are actually live depends on the host —
/// `perf::available()` — but the enabled/disabled code paths diverge
/// either way, which is what this pins.)
#[test]
fn perf_sampling_on_and_off_are_bit_identical() {
    for workload in [
        Workload::ForestUnion { n: 400, k: 2 },
        Workload::HubAndSpoke {
            n: 400,
            communities: 8,
        },
    ] {
        let graph = workload.build(109);
        let decomposition = sparse_graph::degeneracy_ordering(&graph);
        let mut position = vec![0usize; graph.num_nodes()];
        for (i, &v) in decomposition.ordering.iter().enumerate() {
            position[v] = i;
        }
        let orientation = Orientation::from_total_order(&graph, |v| position[v]);
        for threads in [1, 4] {
            let sampled = RoundPrimitives::new(threads);
            let with_perf = {
                let scope = sampled.perf_span();
                let result = arb_linial_coloring_with_runtime(&graph, &orientation, None, &sampled)
                    .expect("sampled run succeeds");
                drop(scope);
                result
            };
            let unsampled = RoundPrimitives::new(threads).without_perf();
            let without_perf = {
                // The span is inert on a perf-disabled context: no
                // syscalls, nothing recorded.
                let scope = unsampled.perf_span();
                let result =
                    arb_linial_coloring_with_runtime(&graph, &orientation, None, &unsampled)
                        .expect("unsampled run succeeds");
                drop(scope);
                result
            };
            assert_eq!(
                with_perf.coloring, without_perf.coloring,
                "workload {workload:?}, threads {threads}"
            );
            assert_eq!(
                with_perf.palette_trajectory,
                without_perf.palette_trajectory
            );
            assert_eq!(with_perf.rounds, without_perf.rounds);
            // The disabled sink really recorded nothing.
            assert!(
                unsampled.perf_counters().is_zero(),
                "disabled sink must stay zero"
            );
            // And the sampled run's counters honor availability: all-zero
            // when perf is unavailable on this host.
            if !ampc_runtime::perf::available() {
                assert!(sampled.perf_counters().is_zero());
            }
        }
    }
}

/// The tracing subsystem's bit-identity guard: attaching a `TraceContext`
/// to a run is output-invisible. Colorings, color counts, round counts and
/// the model-level metrics are identical with tracing on and off, on both
/// backends — recording a span is a clock read plus a buffer push, never
/// a scheduling or merge decision.
#[test]
fn tracing_on_and_off_are_bit_identical() {
    use ampc_runtime::trace::TraceContext;
    use std::sync::Arc;
    for workload in [
        Workload::ForestUnion { n: 400, k: 2 },
        Workload::HubAndSpoke {
            n: 400,
            communities: 8,
        },
    ] {
        let graph = workload.build(106);
        let alpha = workload.alpha_bound();
        for runtime in [
            RuntimeConfig::Sequential,
            RuntimeConfig::parallel().with_threads(4).with_shards(8),
        ] {
            let builder = SparseColoring::new()
                .algorithm(Algorithm::TwoAlphaPlusOne)
                .alpha(alpha)
                .runtime(runtime);
            let untraced = builder.color(&graph).expect("untraced run succeeds");
            let trace = Arc::new(TraceContext::new());
            let traced = builder
                .color_traced(&graph, Some(Arc::clone(&trace)))
                .expect("traced run succeeds");
            let label = runtime.label();
            assert_eq!(
                untraced.coloring, traced.coloring,
                "workload {workload:?}, runtime {label}"
            );
            assert_eq!(untraced.colors_used, traced.colors_used);
            assert_eq!(untraced.total_rounds, traced.total_rounds);
            assert_eq!(
                untraced.metrics, traced.metrics,
                "model-level metrics must not see the trace ({label})"
            );
            // The traced run actually recorded the pipeline's phases.
            assert!(trace.recorded() > 0, "spans recorded ({label})");
            let timeline = trace.finish();
            for name in ["phase.partition", "phase.coloring", "partition.round"] {
                assert!(
                    timeline.events.iter().any(|event| event.name == name),
                    "span `{name}` missing from the {label} timeline"
                );
            }
        }
    }
}

#[test]
fn large_arboricity_variant_agrees_too() {
    // The Theorem 1.5 per-layer driver takes a different code path
    // (parallel per-layer palettes with sequential offset folding).
    let workload = Workload::ForestUnion { n: 300, k: 4 };
    let graph = workload.build(99);
    let color = |runtime: RuntimeConfig| {
        SparseColoring::new()
            .algorithm(Algorithm::LargeArboricity)
            .alpha(4)
            .runtime(runtime)
            .color(&graph)
            .expect("coloring succeeds")
    };
    let sequential = color(RuntimeConfig::Sequential);
    let parallel = color(RuntimeConfig::parallel().with_threads(3));
    assert_eq!(sequential.coloring, parallel.coloring);
    assert_eq!(sequential.colors_used, parallel.colors_used);
}

#[test]
fn budget_violation_errors_are_identical() {
    // Tight budgets: input size 16 at delta 0.5 gives 4 reads / 4 writes.
    let config = AmpcConfig::for_input_size(16, 0.5);
    let initial = || -> DataStore {
        (0..32u64)
            .map(|i| (Key::single(i), Value::single(i)))
            .collect()
    };

    let over_read = |backend: &mut dyn AmpcBackend| {
        backend.round(16, ConflictPolicy::KeepMin, |machine, ctx| {
            let reads = if machine >= 5 { 64 } else { 1 };
            for i in 0..reads {
                ctx.read(Key::single(i))?;
            }
            Ok(())
        })
    };
    let over_write = |backend: &mut dyn AmpcBackend| {
        backend.round(16, ConflictPolicy::KeepMin, |machine, ctx| {
            let writes = if machine >= 11 { 64 } else { 1 };
            for i in 0..writes {
                ctx.write(Key::pair(machine as u64, i), Value::single(i))?;
            }
            Ok(())
        })
    };
    let conflict = |backend: &mut dyn AmpcBackend| {
        backend.round(16, ConflictPolicy::Error, |machine, ctx| {
            ctx.write(Key::single(5), Value::single(machine as u64))
        })
    };

    for runtime in runtime_matrix() {
        let mut seq = RuntimeConfig::Sequential.backend(config, initial());
        let mut par = runtime.backend(config, initial());
        assert_eq!(
            over_read(seq.as_mut()).unwrap_err(),
            over_read(par.as_mut()).unwrap_err()
        );
        assert_eq!(
            over_read(seq.as_mut()).unwrap_err(),
            ModelError::ReadBudgetExceeded {
                machine: 5,
                budget: 4
            }
        );

        let mut seq = RuntimeConfig::Sequential.backend(config, initial());
        let mut par = runtime.backend(config, initial());
        assert_eq!(
            over_write(seq.as_mut()).unwrap_err(),
            over_write(par.as_mut()).unwrap_err()
        );
        assert_eq!(
            over_write(seq.as_mut()).unwrap_err(),
            ModelError::WriteBudgetExceeded {
                machine: 11,
                budget: 4
            }
        );

        let mut seq = RuntimeConfig::Sequential.backend(config, initial());
        let mut par = runtime.backend(config, initial());
        let a = conflict(seq.as_mut()).unwrap_err();
        let b = conflict(par.as_mut()).unwrap_err();
        assert_eq!(a, b);
        assert!(matches!(a, ModelError::WriteConflict { .. }));
    }
}
