//! End-to-end crash recovery for the multi-process backend: a live
//! `ampc-shard-worker` child SIGKILLed mid-computation — both via the
//! deterministic `kill` fault kind and directly via `kill(2)` on the
//! child pid from an asynchronous killer thread — never perturbs the
//! final coloring: it is byte-identical to the fault-free sequential
//! reference, and the supervision counters prove the crash was real.
//!
//! The fault plane is process-global, so both legs live in one `#[test]`
//! in their own test binary (the same isolation discipline as
//! `chaos_equivalence.rs`).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use ampc_coloring_repro::{Algorithm, RuntimeConfig, SparseColoring, Workload};
use ampc_runtime::faults::{self, FaultPlan};

/// Pids of live `ampc-shard-worker` children of *this* process, via a
/// `/proc` scan (other concurrently-running test binaries own their own
/// workers; the ppid filter keeps hands off them).
fn our_shard_worker_pids() -> Vec<u32> {
    let own = std::process::id().to_string();
    let mut pids = Vec::new();
    let Ok(entries) = std::fs::read_dir("/proc") else {
        return pids;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(pid) = name.to_str().and_then(|s| s.parse::<u32>().ok()) else {
            continue;
        };
        // `comm` is truncated to 15 characters by the kernel.
        let comm = std::fs::read_to_string(format!("/proc/{pid}/comm")).unwrap_or_default();
        if !comm.trim().starts_with("ampc-shard-work") {
            continue;
        }
        let status = std::fs::read_to_string(format!("/proc/{pid}/status")).unwrap_or_default();
        let is_ours = status.lines().any(|line| {
            line.strip_prefix("PPid:")
                .is_some_and(|ppid| ppid.trim() == own)
        });
        if is_ours {
            pids.push(pid);
        }
    }
    pids
}

#[test]
fn killed_workers_never_perturb_the_coloring() {
    let workload = Workload::PowerLaw {
        n: 500,
        edges_per_node: 3,
    };
    let graph = workload.build(97);
    let alpha = workload.alpha_bound();
    let color = |runtime: RuntimeConfig| {
        SparseColoring::new()
            .algorithm(Algorithm::TwoAlphaPlusOne)
            .alpha(alpha)
            .runtime(runtime)
            .color(&graph)
            .expect("coloring succeeds")
    };

    // Fault-free sequential reference, before any plan is installed.
    let reference = color(RuntimeConfig::Sequential);
    assert!(reference.coloring.is_proper(&graph));

    // -- Leg A: the deterministic `kill` fault kind. Roughly one in three
    // (round, worker) cells SIGKILLs that worker's child right before its
    // round input is streamed; every kill is healed by respawn + replay.
    let counters_before = faults::counters();
    faults::install(Some(
        FaultPlan::parse("seed=3,kill=1/3").expect("plan parses"),
    ));
    for workers in [2usize, 4] {
        let outcome = color(RuntimeConfig::process().with_workers(workers));
        assert_eq!(
            reference.coloring, outcome.coloring,
            "kill-fault run diverged (workers {workers})"
        );
        assert_eq!(reference.colors_used, outcome.colors_used);
        assert_eq!(reference.total_rounds, outcome.total_rounds);
        assert_eq!(reference.metrics, outcome.metrics, "model-level only");
    }
    faults::install(None);
    faults::set_max_round_retries(0);
    let counters = faults::counters();
    assert!(
        counters.worker_kills > counters_before.worker_kills,
        "the kill fault never fired: {counters:?}"
    );
    assert!(
        counters.worker_process_restarts > counters_before.worker_process_restarts,
        "no worker was respawned: {counters:?}"
    );
    assert!(
        counters.rounds_replayed > counters_before.rounds_replayed,
        "no round was replayed: {counters:?}"
    );

    // -- Leg B: direct `kill(2)` on the child pid, from an asynchronous
    // killer thread — no fault plan, no cooperation from the supervisor.
    // The killer SIGKILLs the first worker it sees (which is early in the
    // run: children outlive their backend, and plenty of rounds follow),
    // then one more a beat later.
    let counters_before = faults::counters();
    let done = Arc::new(AtomicBool::new(false));
    let killer = {
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut kills = 0u32;
            while !done.load(Ordering::SeqCst) && kills < 2 {
                if let Some(&pid) = our_shard_worker_pids().first() {
                    let _ = std::process::Command::new("kill")
                        .args(["-9", &pid.to_string()])
                        .status();
                    kills += 1;
                    std::thread::sleep(std::time::Duration::from_millis(40));
                } else {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
            }
            kills
        })
    };
    let outcome = color(RuntimeConfig::process().with_workers(2));
    done.store(true, Ordering::SeqCst);
    let kills = killer.join().expect("killer thread joins");
    assert_eq!(
        reference.coloring, outcome.coloring,
        "direct-kill run diverged"
    );
    assert_eq!(reference.colors_used, outcome.colors_used);
    assert_eq!(reference.total_rounds, outcome.total_rounds);
    assert_eq!(reference.metrics, outcome.metrics, "model-level only");
    assert!(kills >= 1, "the killer thread never found a worker");
    let counters = faults::counters();
    assert!(
        counters.worker_process_restarts > counters_before.worker_process_restarts,
        "the externally killed worker was never respawned: {counters:?}"
    );

    // No orphans: every shard worker this process ever spawned has been
    // killed and reaped by its backend's drop.
    assert!(
        our_shard_worker_pids().is_empty(),
        "leftover ampc-shard-worker children"
    );
    assert_eq!(faults::workers_alive(), 0, "liveness gauge back to zero");
}
