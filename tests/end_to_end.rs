//! Integration tests spanning all workspace crates: graph substrate →
//! β-partition → orientation / forest decomposition → coloring.

use ampc_coloring_repro::{Algorithm, SparseColoring, Workload};
use beta_partition::{natural_partition, PartitionParams};
use sparse_graph::{forest_decomposition, greedy_from_orientation, ArboricityEstimate};

#[test]
fn partition_orientation_forest_coloring_pipeline() {
    let workload = Workload::ForestUnion { n: 600, k: 3 };
    let graph = workload.build(1001);
    let alpha = workload.alpha_bound();
    let beta = 2 * alpha + 2;

    // Theorem 1.2: complete beta-partition.
    let partition =
        beta_partition::ampc_beta_partition(&graph, &PartitionParams::new(beta).with_x(4))
            .expect("partition succeeds for beta >= 2 alpha + 1");
    assert!(partition.partition.validate(&graph).is_ok());
    assert!(!partition.partition.is_partial());

    // Contribution 2: the orientation has out-degree <= beta and is acyclic.
    let orientation = partition.partition.orientation(&graph).unwrap();
    assert!(orientation.is_acyclic());
    assert!(orientation.max_out_degree() <= beta);
    assert!(orientation.covers_graph(&graph));

    // Nash-Williams: the orientation decomposes the edges into <= beta forests.
    let forests = forest_decomposition(&graph, &orientation).unwrap();
    assert!(forests.num_forests() <= beta);
    assert!(forests.all_classes_are_forests());
    assert_eq!(forests.num_edges(), graph.num_edges());

    // "Color from the sinks": out-degree + 1 colors via the orientation.
    let coloring = greedy_from_orientation(&graph, &orientation).unwrap();
    assert!(coloring.is_proper(&graph));
    assert!(coloring.num_colors() <= orientation.max_out_degree() + 1);
}

#[test]
fn all_theorem_13_variants_agree_on_properness_and_tradeoffs() {
    let workload = Workload::PowerLaw {
        n: 800,
        edges_per_node: 2,
    };
    let graph = workload.build(1002);
    let alpha = workload.alpha_bound();

    let two_alpha = SparseColoring::new()
        .algorithm(Algorithm::TwoAlphaPlusOne)
        .alpha(alpha)
        .color(&graph)
        .unwrap();
    let alpha_squared = SparseColoring::new()
        .algorithm(Algorithm::AlphaSquared)
        .alpha(alpha)
        .color(&graph)
        .unwrap();

    assert!(two_alpha.coloring.is_proper(&graph));
    assert!(alpha_squared.coloring.is_proper(&graph));
    // The trade-off of Theorem 1.3: the (2+eps)alpha variant uses fewer
    // colors, the alpha^2 variant never uses more rounds than colors would
    // suggest. At the very least, the palettes are ordered.
    assert!(two_alpha.colors_used <= alpha_squared.colors_used);
    // Both stay far below the degree-based budget on this heavy-tailed graph.
    assert!(two_alpha.colors_used < graph.max_degree() + 1);
}

#[test]
fn natural_partition_matches_ampc_partition_quality() {
    // The AMPC partition may use more layers than the natural partition
    // (because each round caps its reported layers) but it must stay within
    // the per-round-cap times round-count budget, and both must be valid.
    let workload = Workload::ForestUnion { n: 500, k: 2 };
    let graph = workload.build(1003);
    let beta = 6;

    let natural = natural_partition(&graph, beta);
    let ampc =
        beta_partition::ampc_beta_partition(&graph, &PartitionParams::new(beta).with_x(4)).unwrap();

    assert!(natural.validate(&graph).is_ok());
    assert!(ampc.partition.validate(&graph).is_ok());
    assert!(natural.size() <= ampc.partition.size().max(natural.size()));
    assert!(ampc.rounds >= 1);
}

#[test]
fn planar_graphs_get_constant_colors_across_sizes() {
    let mut colors_per_size = Vec::new();
    for side in [10usize, 20, 30] {
        let graph = Workload::PlanarGrid { side }.build(0);
        let outcome = SparseColoring::new()
            .algorithm(Algorithm::TwoAlphaPlusOne)
            .alpha(3)
            .epsilon(0.5)
            .color(&graph)
            .unwrap();
        assert!(outcome.coloring.is_proper(&graph));
        colors_per_size.push(outcome.colors_used);
    }
    // Corollary 1.4: the number of colors does not grow with n.
    assert!(colors_per_size.iter().all(|&c| c <= 9));
}

#[test]
fn deep_tree_exercises_multi_round_partitioning() {
    let workload = Workload::DeepTree { arity: 4, depth: 5 };
    let graph = workload.build(0);
    let estimate = ArboricityEstimate::of(&graph);
    assert_eq!(estimate.upper, 1); // it is a tree

    let outcome = SparseColoring::new()
        .algorithm(Algorithm::TwoAlphaPlusOne)
        .alpha(1)
        .epsilon(1.0)
        .color(&graph)
        .unwrap();
    assert!(outcome.coloring.is_proper(&graph));
    assert!(outcome.colors_used <= 4); // (2 + 1) * 1 + 1
                                       // The deep natural partition forces several AMPC rounds.
    assert!(outcome.partition_rounds >= 2);
}

#[test]
fn derandomized_mpc_coloring_composes_with_partitions() {
    let workload = Workload::ForestUnion { n: 300, k: 4 };
    let graph = workload.build(1004);
    let outcome = SparseColoring::new()
        .algorithm(Algorithm::LargeArboricity)
        .alpha(4)
        .epsilon(0.5)
        .color(&graph)
        .unwrap();
    assert!(outcome.coloring.is_proper(&graph));
    assert!(outcome.colors_used >= 2);
}
