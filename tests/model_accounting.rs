//! Integration tests for the model-resource accounting: the AMPC executor,
//! the graph store layout, the LCA query budgets and the round metrics
//! reported by the partition/coloring drivers.

use ampc_coloring_repro::Workload;
use ampc_model::{
    AmpcConfig, AmpcExecutor, ConflictPolicy, GraphStore, Key, LcaOracle, ModelError, Value,
};
use beta_partition::{ampc_beta_partition, partial_partition_lca, CoinGameConfig, PartitionParams};

/// Tag used by this test for layer values written into the DDS.
const TAG_LAYER: u64 = 0xA0;

#[test]
fn ampc_round_protocol_for_peeling_one_layer() {
    // Implement one Barenboim-Elkin peeling round *through the executor*:
    // machine v reads its degree, and if it is at most beta it writes its
    // layer. This exercises the D_{i-1} -> D_i protocol of Section 3.1 with
    // real budgets.
    let graph = Workload::ForestUnion { n: 64, k: 1 }.build(77);
    let beta = 3usize;
    let config = AmpcConfig::for_input_size(graph.num_nodes() + graph.num_edges(), 0.9);
    let mut executor = AmpcExecutor::new(config, GraphStore::store_of(&graph));

    executor
        .round_carrying_forward(graph.num_nodes(), ConflictPolicy::Error, |machine, ctx| {
            let degree = GraphStore::degree(ctx, machine)?;
            if degree <= beta {
                ctx.write(Key::pair(TAG_LAYER, machine as u64), Value::single(0))?;
            }
            Ok(())
        })
        .expect("round fits the budgets");

    // Every low-degree node now has a layer entry in the new store.
    let low_degree: Vec<usize> = graph.nodes().filter(|&v| graph.degree(v) <= beta).collect();
    assert!(!low_degree.is_empty());
    for &v in &low_degree {
        assert_eq!(
            executor.store().get(Key::pair(TAG_LAYER, v as u64)),
            Some(Value::single(0))
        );
    }
    let report = &executor.metrics().rounds()[0];
    assert_eq!(report.machines, graph.num_nodes());
    assert!(report.max_reads <= executor.config().read_budget());
    assert!(report.total_writes >= low_degree.len());
}

#[test]
fn tight_budgets_reject_heavy_rounds() {
    let graph = Workload::ForestUnion { n: 64, k: 2 }.build(78);
    // delta = 0.1 over a small input gives a tiny read budget.
    let config = AmpcConfig::for_input_size(16, 0.1);
    assert!(config.read_budget() <= 2);
    let mut executor = AmpcExecutor::new(config, GraphStore::store_of(&graph));
    let outcome = executor.round(graph.num_nodes(), ConflictPolicy::Error, |machine, ctx| {
        // Reading the degree and two neighbors exceeds the budget.
        let _ = GraphStore::degree(ctx, machine)?;
        let _ = GraphStore::neighbor(ctx, machine, 0)?;
        let _ = GraphStore::neighbor(ctx, machine, 1)?;
        Ok(())
    });
    assert!(matches!(
        outcome,
        Err(ModelError::ReadBudgetExceeded { .. })
    ));
}

#[test]
fn lca_query_budget_enforced_through_the_coin_game() {
    let graph = Workload::DeepTree { arity: 4, depth: 4 }.build(0);
    // The root's exploration needs far more than 10 queries.
    let oracle = LcaOracle::with_budget(&graph, 10);
    let outcome = partial_partition_lca(&oracle, 0, &CoinGameConfig::new(16, 3));
    assert!(matches!(
        outcome,
        Err(ModelError::QueryBudgetExceeded { budget: 10 })
    ));

    // A generous budget succeeds and reports its usage.
    let oracle = LcaOracle::new(&graph);
    let output = partial_partition_lca(&oracle, 0, &CoinGameConfig::new(16, 3)).unwrap();
    assert!(output.queries > 10);
    assert_eq!(output.queries, oracle.queries_used());
}

#[test]
fn partition_metrics_reflect_lca_work() {
    let graph = Workload::ForestUnion { n: 300, k: 2 }.build(79);
    let result = ampc_beta_partition(&graph, &PartitionParams::new(6).with_x(4)).unwrap();

    assert_eq!(result.metrics.num_rounds(), result.rounds);
    // Reads per machine (LCA queries of a single node) must stay sublinear —
    // with x = 4 the exploration is at most 65 nodes, far below n.
    assert!(result.max_queries_per_node < graph.num_nodes());
    assert!(result.metrics.max_reads_per_machine() >= result.max_queries_per_node);
    // Total communication is positive and the store never exceeds the
    // residual graph plus one entry per node.
    assert!(result.metrics.total_communication() > 0);
    assert!(result.metrics.max_store_words() <= 2 * graph.num_edges() + graph.num_nodes());
}

#[test]
fn coloring_rounds_compose_partition_and_simulation_costs() {
    use arbo_coloring::ampc::{color_alpha_squared, AmpcColoringParams};
    let graph = Workload::ForestUnion { n: 300, k: 2 }.build(80);
    let result = color_alpha_squared(&graph, 2, &AmpcColoringParams::default()).unwrap();
    assert_eq!(
        result.total_rounds,
        result.partition_rounds + result.coloring_rounds
    );
    assert!(result.partition_rounds >= 1);
    assert!(result.coloring_rounds >= 1);
}
