//! All degradation switches at once: SIMD kernels forced scalar
//! (`AMPC_SIMD=0`), hardware perf sampling forced off (`AMPC_PERF=0`),
//! AND a deterministic fault plan injecting panics/stalls/merge failures
//! with bounded retry — simultaneously. Each mechanism is proven
//! output-invisible on its own elsewhere (the SIMD CI leg, the
//! `perf_disabled` binary, the `chaos_equivalence` matrix); this binary
//! pins that they *compose*: a degraded, faulted run is still
//! byte-identical to the pristine reference.
//!
//! Its own test binary on purpose, twice over: the SIMD/perf probes are
//! cached in per-process `OnceLock`s (the env vars must be set before
//! anything touches the runtime), and the fault plan is process-global.

use ampc_coloring_repro::{Algorithm, RuntimeConfig, SparseColoring, Workload};
use ampc_runtime::faults::{self, FaultPlan};

#[test]
fn scalar_kernels_no_perf_and_faults_compose_bit_identically() {
    // Must precede every runtime touch: both probes are once-per-process.
    std::env::set_var("AMPC_SIMD", "0");
    std::env::set_var("AMPC_PERF", "0");
    assert!(
        !ampc_runtime::simd::available(),
        "AMPC_SIMD=0 must pin the scalar kernels"
    );
    assert!(
        !ampc_runtime::perf::available(),
        "AMPC_PERF=0 must disable sampling"
    );

    let workloads = [
        Workload::ForestUnion { n: 300, k: 2 },
        Workload::HubAndSpoke {
            n: 300,
            communities: 6,
        },
        Workload::PlanarGrid { side: 12 },
    ];

    // Pristine references first: scalar + no perf, but not yet faulted.
    let references: Vec<_> = workloads
        .iter()
        .map(|workload| {
            let graph = workload.build(53);
            let outcome = SparseColoring::new()
                .algorithm(Algorithm::TwoAlphaPlusOne)
                .alpha(workload.alpha_bound())
                .runtime(RuntimeConfig::Sequential)
                .color(&graph)
                .expect("reference coloring succeeds");
            (graph, outcome)
        })
        .collect();

    // Now light the third switch. Same seed rationale as the chaos
    // matrix: merge cells are per-round, so the rate must fire within the
    // few rounds each backend instance actually runs.
    let counters_before = faults::counters();
    faults::install(Some(
        FaultPlan::parse("seed=11,panic=1/173,stall=1/151,stall_ms=1,merge=1/5,alloc=1/89")
            .expect("plan parses"),
    ));
    faults::set_max_round_retries(6);

    for (workload, (graph, reference)) in workloads.iter().zip(&references) {
        for runtime in [
            RuntimeConfig::Sequential,
            RuntimeConfig::parallel().with_threads(4).with_shards(8),
            RuntimeConfig::parallel().with_threads(3).with_shards(0),
        ] {
            let outcome = SparseColoring::new()
                .algorithm(Algorithm::TwoAlphaPlusOne)
                .alpha(workload.alpha_bound())
                .runtime(runtime)
                .color(graph)
                .unwrap_or_else(|error| {
                    panic!(
                        "degraded run failed (workload {workload:?}, runtime {}): {error}",
                        runtime.label()
                    )
                });
            let label = format!("workload {workload:?}, runtime {}", runtime.label());
            assert_eq!(reference.coloring, outcome.coloring, "{label}");
            assert_eq!(reference.colors_used, outcome.colors_used, "{label}");
            assert_eq!(reference.total_rounds, outcome.total_rounds, "{label}");
            assert_eq!(reference.metrics, outcome.metrics, "{label}");
            // The perf degradation held throughout: no round ever sampled.
            assert!(
                outcome
                    .metrics
                    .runtime_stats()
                    .iter()
                    .all(|stats| stats.cycles == 0 && stats.instructions == 0),
                "{label}: perf counters must stay zero under AMPC_PERF=0"
            );
        }
    }
    faults::install(None);
    faults::set_max_round_retries(0);

    // The faults were live while the identities above held.
    let counters = faults::counters();
    assert!(
        counters.injected_panics > counters_before.injected_panics,
        "no panics injected: {counters:?}"
    );
    assert!(
        counters.rounds_retried > counters_before.rounds_retried,
        "no rounds retried: {counters:?}"
    );
    assert!(
        counters.injected_merge_failures > counters_before.injected_merge_failures,
        "no merge failures injected: {counters:?}"
    );
}
