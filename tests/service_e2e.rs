//! End-to-end test of the `ampc-service` subsystem: boots the HTTP server
//! on an ephemeral port, submits the four standard workloads concurrently
//! over real sockets, and checks the served colorings are **bit-identical**
//! to direct `SparseColoring::color_request` calls — plus that the
//! persistent worker pool keeps the process's thread count constant across
//! a 10-job sequence (no per-round or per-job thread spawning).

use std::net::SocketAddr;
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

/// Serializes the two e2e tests: they run in one process, and the
/// thread-count assertion below must not observe the other test's
/// server/client threads coming and going.
static E2E_LOCK: Mutex<()> = Mutex::new(());

use ampc_coloring_bench::http_client::{json_coloring, json_u64};
use ampc_coloring_repro::{Algorithm, ColorRequest, RuntimeConfig, SparseColoring, Workload};
use ampc_service::{Server, ServiceConfig};
use sparse_graph::write_edge_list;

/// Sends one raw HTTP/1.1 request and returns `(status, body)`.
fn http(addr: SocketAddr, method: &str, target: &str, body: &str) -> (u16, String) {
    ampc_coloring_bench::http_client::request(
        addr,
        method,
        target,
        body,
        Some(Duration::from_secs(120)),
    )
    .expect("request")
}

/// Current thread count of this process (Linux), if observable.
fn thread_count() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|line| line.starts_with("Threads:"))?
        .split_whitespace()
        .nth(1)?
        .parse()
        .ok()
}

fn boot() -> ampc_service::ServerHandle {
    Server::bind(
        "127.0.0.1:0",
        ServiceConfig {
            workers: 2,
            acceptors: 3,
            ..ServiceConfig::default()
        },
    )
    .expect("bind ephemeral port")
    .start()
    .expect("start acceptors")
}

fn poll_done(addr: SocketAddr, job: u64, timeout: Duration) -> String {
    let (status, body) = ampc_coloring_bench::http_client::poll_terminal(addr, job, timeout)
        .expect("job reaches a terminal state");
    assert_eq!(status, 200, "{body}");
    body
}

#[test]
fn served_colorings_are_bit_identical_to_direct_calls() {
    let _guard = E2E_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    let handle = boot();
    let addr = handle.addr();

    let workloads = [
        Workload::ForestUnion { n: 400, k: 2 },
        Workload::PowerLaw {
            n: 300,
            edges_per_node: 2,
        },
        Workload::PlanarGrid { side: 12 },
        Workload::DeepTree { arity: 3, depth: 5 },
    ];

    // Submit all four workloads concurrently over real sockets.
    let submissions: Vec<(Workload, u64, Arc<Vec<usize>>)> = {
        let clients: Vec<_> = workloads
            .into_iter()
            .map(|workload| {
                thread::spawn(move || {
                    let graph = workload.build(42);
                    let alpha = workload.alpha_bound();
                    // The reference result, computed directly.
                    let request = ColorRequest {
                        algorithm: Algorithm::Auto,
                        alpha: Some(alpha),
                        runtime: RuntimeConfig::parallel().with_threads(3).with_shards(8),
                        ..ColorRequest::default()
                    };
                    let direct = SparseColoring::color_request(&graph, &request)
                        .expect("direct coloring succeeds");
                    let expected = Arc::new(direct.coloring.colors().to_vec());

                    let target = format!(
                        "/v1/color?algorithm=auto&alpha={alpha}&runtime=parallel&threads=3&shards=8&min_nodes={}",
                        graph.num_nodes()
                    );
                    let (status, body) = http(addr, "POST", &target, &write_edge_list(&graph));
                    assert_eq!(status, 202, "{body}");
                    let job = json_u64(&body, "job").expect("job id");
                    (workload, job, expected)
                })
            })
            .collect();
        clients
            .into_iter()
            .map(|client| client.join().expect("client thread"))
            .collect()
    };

    for (workload, job, expected) in submissions {
        let body = poll_done(addr, job, Duration::from_secs(300));
        assert!(
            body.contains("\"status\":\"done\""),
            "{}: {body}",
            workload.label()
        );
        let served = json_coloring(&body).expect("coloring array");
        assert_eq!(
            served,
            *expected,
            "{}: served coloring must be bit-identical to the direct call",
            workload.label()
        );
        assert!(body.contains("\"runtime_stats\""), "{body}");
    }

    // The metrics endpoint saw all of it.
    let (status, metrics) = http(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(
        json_u64(&metrics, "computed").unwrap_or(0) >= 4,
        "{metrics}"
    );
    handle.shutdown();
}

/// Minimal structural validation of a Chrome trace-event document: the
/// JSON must be brace/bracket-balanced (outside strings) and carry a
/// non-empty `traceEvents` array of complete (`"ph":"X"`) events.
fn assert_chrome_trace_json(body: &str) {
    assert!(
        body.starts_with('{') && body.trim_end().ends_with('}'),
        "trace body must be a JSON object: {body}"
    );
    let (mut depth, mut max_depth, mut in_string, mut escaped) = (0i64, 0i64, false, false);
    for ch in body.chars() {
        if in_string {
            match ch {
                _ if escaped => escaped = false,
                '\\' => escaped = true,
                '"' => in_string = false,
                _ => {}
            }
            continue;
        }
        match ch {
            '"' => in_string = true,
            '{' | '[' => {
                depth += 1;
                max_depth = max_depth.max(depth);
            }
            '}' | ']' => depth -= 1,
            _ => {}
        }
    }
    assert_eq!(depth, 0, "unbalanced braces/brackets in trace JSON: {body}");
    assert!(!in_string, "unterminated string in trace JSON: {body}");
    // Object → traceEvents array → event objects: at least three levels.
    assert!(max_depth >= 3, "trace JSON has no event objects: {body}");
    assert!(body.contains("\"traceEvents\":["), "{body}");
    assert!(
        !body.contains("\"traceEvents\":[]"),
        "trace must be non-empty: {body}"
    );
    assert!(body.contains("\"ph\":\"X\""), "{body}");
}

#[test]
fn job_trace_is_served_as_chrome_trace_json() {
    let _guard = E2E_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    let handle = boot();
    let addr = handle.addr();

    let workload = Workload::PlanarGrid { side: 10 };
    let graph = workload.build(7);
    let target = format!(
        "/v1/color?algorithm=two-alpha-plus-one&alpha={}&runtime=parallel&threads=3&shards=8&wait=1&min_nodes={}",
        workload.alpha_bound(),
        graph.num_nodes()
    );
    let (status, body) = http(addr, "POST", &target, &write_edge_list(&graph));
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"trace_available\":true"), "{body}");
    let job = json_u64(&body, "job").expect("job id");

    let (status, trace) = http(addr, "GET", &format!("/v1/jobs/{job}/trace"), "");
    assert_eq!(status, 200, "{trace}");
    assert_chrome_trace_json(&trace);
    // The timeline covers the driver phases and the backend rounds under
    // them — the spans the tentpole wires through `RoundPrimitives`.
    for span in ["phase.partition", "phase.coloring", "backend.round"] {
        assert!(trace.contains(span), "missing {span} span: {trace}");
    }

    handle.shutdown();
}

#[test]
fn ten_job_sequence_spawns_no_per_round_threads() {
    let _guard = E2E_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    let handle = boot();
    let addr = handle.addr();

    // Ten distinct jobs (different seeds so the cache never hits) on the
    // parallel runtime; every round runs on the persistent pool.
    let mut counts = Vec::new();
    for seed in 0..10u64 {
        let graph = Workload::ForestUnion { n: 200, k: 2 }.build(seed);
        let target = format!(
            "/v1/color?algorithm=two-alpha-plus-one&alpha=2&runtime=parallel&threads=4&shards=8&wait=1&min_nodes={}",
            graph.num_nodes()
        );
        let (status, body) = http(addr, "POST", &target, &write_edge_list(&graph));
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"status\":\"done\""), "{body}");
        if let Some(count) = thread_count() {
            counts.push(count);
        }
    }

    // After the warm-up job every long-lived thread exists (acceptors, job
    // workers, the global runtime pool); the remaining nine jobs must not
    // change the process's thread count.
    if counts.len() == 10 {
        let stable = &counts[1..];
        assert!(
            stable.iter().all(|&count| count == stable[0]),
            "thread count must stay constant across the job sequence, got {counts:?}"
        );
    }

    // Identical resubmission: served from the cache without recomputation.
    let graph = Workload::ForestUnion { n: 200, k: 2 }.build(3);
    let target = format!(
        "/v1/color?algorithm=two-alpha-plus-one&alpha=2&runtime=parallel&threads=4&shards=8&wait=1&min_nodes={}",
        graph.num_nodes()
    );
    let (_, before) = http(addr, "GET", "/metrics", "");
    let computed_before = json_u64(&before, "computed").unwrap();
    let (status, body) = http(addr, "POST", &target, &write_edge_list(&graph));
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"cached\":true"), "{body}");
    let (_, after) = http(addr, "GET", "/metrics", "");
    assert_eq!(json_u64(&after, "computed").unwrap(), computed_before);
    handle.shutdown();
}
