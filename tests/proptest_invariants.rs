//! Property-based tests of the core invariants, driven by randomly generated
//! sparse graphs.
//!
//! The generators are hand-rolled over the seeded ChaCha8 shim (the build
//! environment has no registry access for the `proptest` crate): each
//! property runs against a family of graphs derived deterministically from a
//! fixed base seed, so failures are reproducible by seed.

use beta_partition::{
    dependency_set, h_partition, induced_partition, merge_min, natural_partition, Layer,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use sparse_graph::{
    degeneracy, forest_decomposition, greedy_by_degeneracy_order, greedy_from_orientation,
    ArboricityEstimate, CsrGraph, GraphBuilder, Orientation,
};
use std::collections::HashMap;

const ARBITRARY_CASES: u64 = 64;
const EXPENSIVE_CASES: u64 = 16;

/// A random graph with `n` in `[2, 60)` and a bounded number of random
/// edges — small enough for exhaustive checking, diverse enough to hit
/// corner cases (self-loops and duplicates are handled by the builder).
fn arbitrary_graph(seed: u64) -> CsrGraph {
    let mut rng = ChaCha8Rng::seed_from_u64(0xA5B1_0000 ^ seed);
    let n = rng.gen_range(2usize..60);
    let edges = rng.gen_range(0usize..(3 * n));
    let mut builder = GraphBuilder::new(n);
    for _ in 0..edges {
        let u = rng.gen_range(0usize..n);
        let v = rng.gen_range(0usize..n);
        if u != v {
            builder.add_edge(u, v);
        }
    }
    builder.build()
}

/// A sparse graph built as the union of `k <= 3` random forests — the
/// bounded-arboricity family the paper targets.
fn bounded_arboricity_graph(seed: u64) -> (CsrGraph, usize) {
    let mut rng = ChaCha8Rng::seed_from_u64(0xB0A7_0000 ^ seed);
    let n = rng.gen_range(2usize..80);
    let k = rng.gen_range(1usize..4);
    (sparse_graph::generators::forest_union(n, k, &mut rng), k)
}

#[test]
fn degeneracy_brackets_density_bound() {
    for seed in 0..ARBITRARY_CASES {
        let graph = arbitrary_graph(seed);
        let estimate = ArboricityEstimate::of(&graph);
        // density lower bound <= alpha <= degeneracy <= 2 alpha - 1.
        assert!(
            estimate.lower <= estimate.upper.max(estimate.lower),
            "seed {seed}"
        );
        if estimate.upper > 0 {
            assert!(estimate.lower >= 1, "seed {seed}");
            assert!(
                estimate.upper < 2 * estimate.lower.max(1) * 2,
                "seed {seed}"
            );
        }
    }
}

#[test]
fn degeneracy_greedy_uses_at_most_degeneracy_plus_one() {
    for seed in 0..ARBITRARY_CASES {
        let graph = arbitrary_graph(seed);
        let coloring = greedy_by_degeneracy_order(&graph);
        assert!(coloring.is_proper(&graph), "seed {seed}");
        assert!(
            coloring.num_colors() <= degeneracy(&graph) + 1,
            "seed {seed}"
        );
    }
}

#[test]
fn natural_partition_is_valid_and_complete_for_large_beta() {
    for seed in 0..ARBITRARY_CASES {
        let graph = arbitrary_graph(seed);
        let beta = 2 * degeneracy(&graph) + 1; // >= 2 alpha, guarantees completeness
        let partition = natural_partition(&graph, beta);
        assert!(partition.validate(&graph).is_ok(), "seed {seed}");
        assert!(!partition.is_partial(), "seed {seed}");
        // Orientation derived from the partition respects the beta bound.
        let orientation = partition.orientation(&graph).unwrap();
        assert!(orientation.is_acyclic(), "seed {seed}");
        assert!(orientation.max_out_degree() <= beta, "seed {seed}");
    }
}

#[test]
fn induced_partition_is_monotone_and_dominates_natural() {
    for seed in 0..ARBITRARY_CASES {
        let (graph, _k) = bounded_arboricity_graph(seed);
        let mut rng = ChaCha8Rng::seed_from_u64(0x5B5E_0000 ^ seed);
        let beta = 5;
        let n = graph.num_nodes();
        let in_s: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
        let induced = induced_partition(&graph, &in_s, beta);
        let natural = natural_partition(&graph, beta);
        assert!(induced.validate(&graph).is_ok(), "seed {seed}");
        for (v, &in_subset) in in_s.iter().enumerate() {
            // Lemma 3.13: sigma_S >= natural layer, pointwise.
            assert!(
                induced.layer(v) >= natural.layer(v),
                "seed {seed}, node {v}"
            );
            // Nodes outside S stay infinite.
            if !in_subset {
                assert!(induced.layer(v).is_infinite(), "seed {seed}, node {v}");
            }
        }
    }
}

#[test]
fn dependency_graphs_are_nested_and_bounded() {
    for seed in 0..ARBITRARY_CASES {
        let (graph, _k) = bounded_arboricity_graph(seed);
        let beta = 5;
        let sigma = natural_partition(&graph, beta);
        for v in 0..graph.num_nodes().min(12) {
            let dv = dependency_set(&graph, &sigma, v);
            if let Layer::Finite(_) = sigma.layer(v) {
                // Lemma 3.11: few neighbors outside the dependency graph.
                let outside = graph
                    .neighbors(v)
                    .iter()
                    .filter(|w| !dv.contains(w))
                    .count();
                assert!(outside <= beta, "seed {seed}, node {v}");
                // Observation 3.10: nested.
                for &w in dv.iter().take(5) {
                    let dw = dependency_set(&graph, &sigma, w);
                    assert!(dw.iter().all(|x| dv.contains(x)), "seed {seed}, node {v}");
                }
            } else {
                assert!(dv.is_empty(), "seed {seed}, node {v}");
            }
        }
    }
}

#[test]
fn merged_sparse_partitions_stay_valid() {
    for seed in 0..ARBITRARY_CASES {
        let (graph, _k) = bounded_arboricity_graph(seed);
        let beta = 5;
        let n = graph.num_nodes();
        // Build three induced partitions on thirds of the vertex set and
        // min-merge them (Lemma 4.10).
        let mut proofs: Vec<HashMap<usize, usize>> = Vec::new();
        for part in 0..3usize {
            let in_s: Vec<bool> = (0..n).map(|v| v % 3 == part).collect();
            let sigma = induced_partition(&graph, &in_s, beta);
            proofs.push(
                (0..n)
                    .filter_map(|v| sigma.layer(v).finite().map(|l| (v, l)))
                    .collect(),
            );
        }
        let merged = merge_min(n, beta, proofs.iter());
        assert!(merged.validate(&graph).is_ok(), "seed {seed}");
    }
}

#[test]
fn h_partition_size_is_logarithmic() {
    for seed in 0..ARBITRARY_CASES {
        let (graph, k) = bounded_arboricity_graph(seed);
        let beta = 3 * k; // (2 + 1) * alpha
        let result = h_partition(&graph, beta);
        assert!(result.partition.validate(&graph).is_ok(), "seed {seed}");
        assert!(!result.partition.is_partial(), "seed {seed}");
        let n = graph.num_nodes() as f64;
        let bound = (n.ln() / 1.5f64.ln()).ceil() as usize + 2;
        assert!(result.rounds <= bound, "seed {seed}");
    }
}

#[test]
fn forest_decomposition_from_degeneracy_orientation() {
    for seed in 0..ARBITRARY_CASES {
        let graph = arbitrary_graph(seed);
        let decomposition = sparse_graph::degeneracy_ordering(&graph);
        let mut position = vec![0usize; graph.num_nodes()];
        for (i, &v) in decomposition.ordering.iter().enumerate() {
            position[v] = i;
        }
        let orientation = Orientation::from_total_order(&graph, |v| position[v]);
        assert!(
            orientation.max_out_degree() <= decomposition.degeneracy,
            "seed {seed}"
        );
        let forests = forest_decomposition(&graph, &orientation).unwrap();
        assert!(forests.all_classes_are_forests(), "seed {seed}");
        assert_eq!(forests.num_edges(), graph.num_edges(), "seed {seed}");
        // Coloring from the orientation needs out-degree + 1 colors.
        let coloring = greedy_from_orientation(&graph, &orientation).unwrap();
        assert!(coloring.is_proper(&graph), "seed {seed}");
        assert!(
            coloring.num_colors() <= orientation.max_out_degree() + 1,
            "seed {seed}"
        );
    }
}

#[test]
fn coin_game_lca_outputs_valid_proofs() {
    use ampc_model::LcaOracle;
    use beta_partition::{partial_partition_lca, CoinGameConfig};
    for seed in 0..ARBITRARY_CASES {
        let (graph, _k) = bounded_arboricity_graph(seed);
        let beta = 5;
        let oracle = LcaOracle::new(&graph);
        let config = CoinGameConfig::new(4, beta);
        let mut proofs = Vec::new();
        for v in 0..graph.num_nodes().min(10) {
            let output = partial_partition_lca(&oracle, v, &config).unwrap();
            assert!(
                output.proof.values().all(|&l| l <= output.layer_cap),
                "seed {seed}, node {v}"
            );
            proofs.push(output.proof);
        }
        let merged = merge_min(graph.num_nodes(), beta, proofs.iter());
        assert!(merged.validate(&graph).is_ok(), "seed {seed}");
    }
}

// Coloring end-to-end properties are more expensive: fewer cases.

#[test]
fn theorem_13_colorings_are_proper_and_bounded() {
    use arbo_coloring::ampc::{color_two_alpha_plus_one, AmpcColoringParams};
    for seed in 0..EXPENSIVE_CASES {
        let (graph, k) = bounded_arboricity_graph(seed);
        let params = AmpcColoringParams::default().with_x(4);
        let result = color_two_alpha_plus_one(&graph, k, &params).unwrap();
        assert!(result.coloring.is_proper(&graph), "seed {seed}");
        assert!(result.colors_used <= result.beta + 1, "seed {seed}");
    }
}

#[test]
fn derandomized_coloring_is_proper() {
    use arbo_coloring::{derandomized_coloring, DerandParams};
    for seed in 0..EXPENSIVE_CASES {
        let graph = arbitrary_graph(seed);
        let result = derandomized_coloring(&graph, &DerandParams::with_x(2));
        assert!(result.coloring.is_proper(&graph), "seed {seed}");
        assert!(
            result.coloring.palette_size() <= result.palette,
            "seed {seed}"
        );
    }
}
