//! Property-based tests of the core invariants, driven by randomly generated
//! sparse graphs.

use proptest::prelude::*;

use beta_partition::{
    dependency_set, h_partition, induced_partition, merge_min, natural_partition, Layer,
};
use sparse_graph::{
    degeneracy, forest_decomposition, greedy_by_degeneracy_order, greedy_from_orientation,
    ArboricityEstimate, CsrGraph, GraphBuilder, Orientation,
};
use std::collections::HashMap;

/// Strategy: a random graph given as (n, edge list) with n in [2, 60] and a
/// bounded number of random edges — small enough for exhaustive checking,
/// diverse enough to hit corner cases (self-loops and duplicates are handled
/// by the builder).
fn arbitrary_graph() -> impl Strategy<Value = CsrGraph> {
    (2usize..60).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n), 0..(3 * n));
        edges.prop_map(move |edges| {
            let mut builder = GraphBuilder::new(n);
            for (u, v) in edges {
                if u != v {
                    builder.add_edge(u, v);
                }
            }
            builder.build()
        })
    })
}

/// Strategy: a sparse graph built as the union of `k <= 3` random forests —
/// the bounded-arboricity family the paper targets.
fn bounded_arboricity_graph() -> impl Strategy<Value = (CsrGraph, usize)> {
    (2usize..80, 1usize..4, any::<u64>()).prop_map(|(n, k, seed)| {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        (sparse_graph::generators::forest_union(n, k, &mut rng), k)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn degeneracy_brackets_density_bound(graph in arbitrary_graph()) {
        let estimate = ArboricityEstimate::of(&graph);
        // density lower bound <= alpha <= degeneracy <= 2 alpha - 1.
        prop_assert!(estimate.lower <= estimate.upper.max(estimate.lower));
        if estimate.upper > 0 {
            prop_assert!(estimate.lower >= 1);
            prop_assert!(estimate.upper < 2 * estimate.lower.max(1) * 2);
        }
    }

    #[test]
    fn degeneracy_greedy_uses_at_most_degeneracy_plus_one(graph in arbitrary_graph()) {
        let coloring = greedy_by_degeneracy_order(&graph);
        prop_assert!(coloring.is_proper(&graph));
        prop_assert!(coloring.num_colors() <= degeneracy(&graph) + 1);
    }

    #[test]
    fn natural_partition_is_valid_and_complete_for_large_beta(graph in arbitrary_graph()) {
        let beta = 2 * degeneracy(&graph) + 1; // >= 2 alpha, guarantees completeness
        let partition = natural_partition(&graph, beta);
        prop_assert!(partition.validate(&graph).is_ok());
        prop_assert!(!partition.is_partial());
        // Orientation derived from the partition respects the beta bound.
        let orientation = partition.orientation(&graph).unwrap();
        prop_assert!(orientation.is_acyclic());
        prop_assert!(orientation.max_out_degree() <= beta);
    }

    #[test]
    fn induced_partition_is_monotone_and_dominates_natural(
        (graph, _k) in bounded_arboricity_graph(),
        subset_bits in proptest::collection::vec(any::<bool>(), 80)
    ) {
        let beta = 5;
        let n = graph.num_nodes();
        let in_s: Vec<bool> = (0..n).map(|v| subset_bits[v % subset_bits.len()]).collect();
        let induced = induced_partition(&graph, &in_s, beta);
        let natural = natural_partition(&graph, beta);
        prop_assert!(induced.validate(&graph).is_ok());
        for v in 0..n {
            // Lemma 3.13: sigma_S >= natural layer, pointwise.
            prop_assert!(induced.layer(v) >= natural.layer(v));
            // Nodes outside S stay infinite.
            if !in_s[v] {
                prop_assert!(induced.layer(v).is_infinite());
            }
        }
    }

    #[test]
    fn dependency_graphs_are_nested_and_bounded((graph, _k) in bounded_arboricity_graph()) {
        let beta = 5;
        let sigma = natural_partition(&graph, beta);
        for v in 0..graph.num_nodes().min(12) {
            let dv = dependency_set(&graph, &sigma, v);
            if let Layer::Finite(_) = sigma.layer(v) {
                // Lemma 3.11: few neighbors outside the dependency graph.
                let outside = graph
                    .neighbors(v)
                    .iter()
                    .filter(|w| !dv.contains(w))
                    .count();
                prop_assert!(outside <= beta);
                // Observation 3.10: nested.
                for &w in dv.iter().take(5) {
                    let dw = dependency_set(&graph, &sigma, w);
                    prop_assert!(dw.iter().all(|x| dv.contains(x)));
                }
            } else {
                prop_assert!(dv.is_empty());
            }
        }
    }

    #[test]
    fn merged_sparse_partitions_stay_valid((graph, _k) in bounded_arboricity_graph()) {
        let beta = 5;
        let n = graph.num_nodes();
        // Build three induced partitions on thirds of the vertex set and
        // min-merge them (Lemma 4.10).
        let mut proofs: Vec<HashMap<usize, usize>> = Vec::new();
        for part in 0..3usize {
            let in_s: Vec<bool> = (0..n).map(|v| v % 3 == part).collect();
            let sigma = induced_partition(&graph, &in_s, beta);
            proofs.push(
                (0..n)
                    .filter_map(|v| sigma.layer(v).finite().map(|l| (v, l)))
                    .collect(),
            );
        }
        let merged = merge_min(n, beta, proofs.iter());
        prop_assert!(merged.validate(&graph).is_ok());
    }

    #[test]
    fn h_partition_size_is_logarithmic((graph, k) in bounded_arboricity_graph()) {
        let beta = 3 * k; // (2 + 1) * alpha
        let result = h_partition(&graph, beta);
        prop_assert!(result.partition.validate(&graph).is_ok());
        prop_assert!(!result.partition.is_partial());
        let n = graph.num_nodes() as f64;
        let bound = (n.ln() / 1.5f64.ln()).ceil() as usize + 2;
        prop_assert!(result.rounds <= bound);
    }

    #[test]
    fn forest_decomposition_from_degeneracy_orientation(graph in arbitrary_graph()) {
        let decomposition = sparse_graph::degeneracy_ordering(&graph);
        let mut position = vec![0usize; graph.num_nodes()];
        for (i, &v) in decomposition.ordering.iter().enumerate() {
            position[v] = i;
        }
        let orientation = Orientation::from_total_order(&graph, |v| position[v]);
        prop_assert!(orientation.max_out_degree() <= decomposition.degeneracy);
        let forests = forest_decomposition(&graph, &orientation).unwrap();
        prop_assert!(forests.all_classes_are_forests());
        prop_assert_eq!(forests.num_edges(), graph.num_edges());
        // Coloring from the orientation needs out-degree + 1 colors.
        let coloring = greedy_from_orientation(&graph, &orientation).unwrap();
        prop_assert!(coloring.is_proper(&graph));
        prop_assert!(coloring.num_colors() <= orientation.max_out_degree() + 1);
    }

    #[test]
    fn coin_game_lca_outputs_valid_proofs((graph, _k) in bounded_arboricity_graph()) {
        use ampc_model::LcaOracle;
        use beta_partition::{partial_partition_lca, CoinGameConfig};
        let beta = 5;
        let oracle = LcaOracle::new(&graph);
        let config = CoinGameConfig::new(4, beta);
        let mut proofs = Vec::new();
        for v in 0..graph.num_nodes().min(10) {
            let output = partial_partition_lca(&oracle, v, &config).unwrap();
            prop_assert!(output.proof.values().all(|&l| l <= output.layer_cap));
            proofs.push(output.proof);
        }
        let merged = merge_min(graph.num_nodes(), beta, proofs.iter());
        prop_assert!(merged.validate(&graph).is_ok());
    }
}

proptest! {
    // Coloring end-to-end properties are more expensive: fewer cases.
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn theorem_13_colorings_are_proper_and_bounded((graph, k) in bounded_arboricity_graph()) {
        use arbo_coloring::ampc::{color_two_alpha_plus_one, AmpcColoringParams};
        let params = AmpcColoringParams::default().with_x(4);
        let result = color_two_alpha_plus_one(&graph, k, &params).unwrap();
        prop_assert!(result.coloring.is_proper(&graph));
        prop_assert!(result.colors_used <= result.beta + 1);
    }

    #[test]
    fn derandomized_coloring_is_proper(graph in arbitrary_graph()) {
        use arbo_coloring::{derandomized_coloring, DerandParams};
        let result = derandomized_coloring(&graph, &DerandParams::with_x(2));
        prop_assert!(result.coloring.is_proper(&graph));
        prop_assert!(result.coloring.palette_size() <= result.palette);
    }
}
