//! Degeneracy (core number) computation via bucket peeling.

use crate::csr::CsrGraph;
use crate::types::NodeId;

/// Result of a degeneracy (k-core) decomposition.
///
/// The *degeneracy* `d` of a graph is the smallest value such that every
/// subgraph has a node of degree at most `d`. It satisfies
/// `α ≤ d ≤ 2α − 1` where `α` is the arboricity (Definition 3.1), so it is a
/// convenient 2-approximation used by the tests and the arboricity guessing
/// scheme.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegeneracyDecomposition {
    /// The degeneracy of the graph.
    pub degeneracy: usize,
    /// A degeneracy ordering: peeling order such that every node has at most
    /// `degeneracy` neighbors *later* in the ordering.
    pub ordering: Vec<NodeId>,
    /// Core number of every node.
    pub core_numbers: Vec<usize>,
}

/// Computes the full degeneracy decomposition with the classic linear-time
/// bucket peeling algorithm (Matula–Beck).
///
/// # Examples
///
/// ```
/// use sparse_graph::{CsrGraph, degeneracy_ordering};
///
/// // A triangle has degeneracy 2, a path has degeneracy 1.
/// let triangle = CsrGraph::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
/// assert_eq!(degeneracy_ordering(&triangle).degeneracy, 2);
/// let path = CsrGraph::from_edges(3, [(0, 1), (1, 2)]);
/// assert_eq!(degeneracy_ordering(&path).degeneracy, 1);
/// ```
pub fn degeneracy_ordering(graph: &CsrGraph) -> DegeneracyDecomposition {
    let n = graph.num_nodes();
    if n == 0 {
        return DegeneracyDecomposition {
            degeneracy: 0,
            ordering: Vec::new(),
            core_numbers: Vec::new(),
        };
    }

    let mut degree: Vec<usize> = (0..n).map(|v| graph.degree(v)).collect();
    let max_degree = graph.max_degree();
    // buckets[d] holds nodes of current degree d.
    let mut buckets: Vec<Vec<NodeId>> = vec![Vec::new(); max_degree + 1];
    for v in 0..n {
        buckets[degree[v]].push(v);
    }

    let mut removed = vec![false; n];
    let mut ordering = Vec::with_capacity(n);
    let mut core_numbers = vec![0usize; n];
    let mut degeneracy = 0usize;
    let mut current = 0usize;

    for _ in 0..n {
        // Find the smallest non-empty bucket; `current` may have to move down
        // by at most one per removed edge, so the total work stays linear.
        while current > 0 && !buckets[current - 1].is_empty() {
            current -= 1;
        }
        while buckets[current].is_empty() {
            current += 1;
        }
        // Pop a node of minimum current degree, skipping stale entries.
        let v = loop {
            match buckets[current].pop() {
                Some(v) if !removed[v] && degree[v] == current => break v,
                Some(_) => continue,
                None => {
                    current += 1;
                    while buckets[current].is_empty() {
                        current += 1;
                    }
                }
            }
        };

        removed[v] = true;
        degeneracy = degeneracy.max(current);
        core_numbers[v] = degeneracy;
        ordering.push(v);

        for &w in graph.neighbors(v) {
            if !removed[w] {
                degree[w] -= 1;
                buckets[degree[w]].push(w);
            }
        }
    }

    DegeneracyDecomposition {
        degeneracy,
        ordering,
        core_numbers,
    }
}

/// Convenience wrapper returning only the degeneracy value.
///
/// ```
/// let g = sparse_graph::CsrGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
/// assert_eq!(sparse_graph::degeneracy(&g), 1);
/// ```
pub fn degeneracy(graph: &CsrGraph) -> usize {
    degeneracy_ordering(graph).degeneracy
}

/// Convenience wrapper returning the per-node core numbers.
pub fn core_numbers(graph: &CsrGraph) -> Vec<usize> {
    degeneracy_ordering(graph).core_numbers
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_isolated_nodes() {
        assert_eq!(degeneracy(&CsrGraph::empty(0)), 0);
        assert_eq!(degeneracy(&CsrGraph::empty(10)), 0);
    }

    #[test]
    fn known_degeneracies() {
        let star = CsrGraph::from_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4)]);
        assert_eq!(degeneracy(&star), 1);

        let cycle = CsrGraph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        assert_eq!(degeneracy(&cycle), 2);

        let k4 = CsrGraph::from_edges(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        assert_eq!(degeneracy(&k4), 3);
    }

    #[test]
    fn ordering_has_bounded_forward_degree() {
        // In a degeneracy ordering every node has at most `degeneracy`
        // neighbors that appear later in the ordering.
        let g = CsrGraph::from_edges(
            7,
            [
                (0, 1),
                (0, 2),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 3),
            ],
        );
        let decomposition = degeneracy_ordering(&g);
        let position: Vec<usize> = {
            let mut pos = vec![0; g.num_nodes()];
            for (i, &v) in decomposition.ordering.iter().enumerate() {
                pos[v] = i;
            }
            pos
        };
        for v in g.nodes() {
            let forward = g
                .neighbors(v)
                .iter()
                .filter(|&&w| position[w] > position[v])
                .count();
            assert!(forward <= decomposition.degeneracy);
        }
    }

    #[test]
    fn core_numbers_are_monotone_under_max() {
        let g = CsrGraph::from_edges(6, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5)]);
        let cores = core_numbers(&g);
        // Triangle nodes are in the 2-core, the tail is in the 1-core.
        assert_eq!(cores[0], 2);
        assert_eq!(cores[1], 2);
        assert_eq!(cores[2], 2);
        assert!(cores[4] <= 2);
        assert_eq!(*cores.iter().max().unwrap(), degeneracy(&g));
    }

    #[test]
    fn ordering_is_a_permutation() {
        let g = CsrGraph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)]);
        let mut ordering = degeneracy_ordering(&g).ordering;
        ordering.sort_unstable();
        assert_eq!(ordering, vec![0, 1, 2, 3, 4]);
    }
}
