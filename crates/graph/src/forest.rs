//! Nash–Williams-style forest decompositions derived from acyclic
//! low out-degree orientations.

use crate::csr::CsrGraph;
use crate::orientation::Orientation;
use crate::types::{Edge, NodeId};

/// A partition of the edge set into forests.
///
/// By Nash–Williams [NW64] a graph of arboricity `α` can be partitioned into
/// exactly `α` forests. This implementation takes the constructive route the
/// paper relies on: given an **acyclic** orientation with maximum out-degree
/// `k`, assigning the `i`-th out-edge of every node to forest `i` partitions
/// the edges into at most `k` forests (each class has out-degree ≤ 1 and
/// inherits acyclicity, hence is a forest).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForestDecomposition {
    /// `forests[i]` is the edge set of the `i`-th forest, in canonical
    /// `(from, to)` orientation order.
    forests: Vec<Vec<Edge>>,
    num_nodes: usize,
}

impl ForestDecomposition {
    /// Number of forests in the decomposition.
    pub fn num_forests(&self) -> usize {
        self.forests.len()
    }

    /// The edges assigned to forest `i` (as oriented `(from, to)` pairs).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.num_forests()`.
    pub fn forest_edges(&self, i: usize) -> &[Edge] {
        &self.forests[i]
    }

    /// Total number of edges across all forests.
    pub fn num_edges(&self) -> usize {
        self.forests.iter().map(Vec::len).sum()
    }

    /// Materializes forest `i` as a standalone [`CsrGraph`] on the original
    /// node set.
    pub fn forest_graph(&self, i: usize) -> CsrGraph {
        CsrGraph::from_edges(self.num_nodes, self.forests[i].iter().copied())
    }

    /// Checks that every class is indeed a forest (contains no cycle).
    pub fn all_classes_are_forests(&self) -> bool {
        (0..self.num_forests()).all(|i| self.forest_graph(i).is_forest())
    }
}

/// Decomposes the edges of `graph` into at most `orientation.max_out_degree()`
/// forests using the out-slot construction described on
/// [`ForestDecomposition`].
///
/// # Errors
///
/// Returns an error message if the orientation is not acyclic or does not
/// cover the graph's edge set exactly.
///
/// # Examples
///
/// ```
/// use sparse_graph::{forest_decomposition, CsrGraph, Orientation};
///
/// let g = CsrGraph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
/// let orientation = Orientation::from_total_order(&g, |v| v);
/// let decomposition = forest_decomposition(&g, &orientation).unwrap();
/// assert!(decomposition.num_forests() <= orientation.max_out_degree());
/// assert!(decomposition.all_classes_are_forests());
/// assert_eq!(decomposition.num_edges(), g.num_edges());
/// ```
pub fn forest_decomposition(
    graph: &CsrGraph,
    orientation: &Orientation,
) -> Result<ForestDecomposition, String> {
    if !orientation.covers_graph(graph) {
        return Err("orientation does not cover the graph's edge set exactly once".to_string());
    }
    if !orientation.is_acyclic() {
        return Err("orientation contains a directed cycle".to_string());
    }

    let k = orientation.max_out_degree();
    let mut forests: Vec<Vec<Edge>> = vec![Vec::new(); k];
    for v in 0..orientation.num_nodes() as NodeId {
        for (slot, &w) in orientation.out_neighbors(v).iter().enumerate() {
            forests[slot].push((v, w));
        }
    }
    Ok(ForestDecomposition {
        forests,
        num_nodes: graph.num_nodes(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decomposes_cycle_into_two_forests() {
        let g = CsrGraph::from_edges(5, (0..5).map(|i| (i, (i + 1) % 5)));
        let o = Orientation::from_total_order(&g, |v| v);
        let d = forest_decomposition(&g, &o).unwrap();
        assert!(d.num_forests() <= 2);
        assert!(d.all_classes_are_forests());
        assert_eq!(d.num_edges(), 5);
    }

    #[test]
    fn tree_decomposes_into_one_forest() {
        let g = CsrGraph::from_edges(5, [(0, 1), (0, 2), (2, 3), (2, 4)]);
        // Orient from children to parents (towards node 0) using BFS depth as key.
        let depth = |v: usize| match v {
            0 => 0,
            1 | 2 => 1,
            _ => 2,
        };
        let o = Orientation::from_total_order(&g, |v| usize::MAX - depth(v));
        assert_eq!(o.max_out_degree(), 1);
        let d = forest_decomposition(&g, &o).unwrap();
        assert_eq!(d.num_forests(), 1);
        assert!(d.all_classes_are_forests());
    }

    #[test]
    fn rejects_cyclic_orientation() {
        let g = CsrGraph::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
        let cyclic = Orientation::from_out_neighbors(vec![vec![1], vec![2], vec![0]]);
        assert!(forest_decomposition(&g, &cyclic).is_err());
    }

    #[test]
    fn rejects_incomplete_orientation() {
        let g = CsrGraph::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
        let partial = Orientation::from_out_neighbors(vec![vec![1], vec![2], vec![]]);
        assert!(forest_decomposition(&g, &partial).is_err());
    }

    #[test]
    fn forest_graph_reconstruction() {
        let g = CsrGraph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        let o = Orientation::from_total_order(&g, |v| v);
        let d = forest_decomposition(&g, &o).unwrap();
        let total: usize = (0..d.num_forests())
            .map(|i| d.forest_graph(i).num_edges())
            .sum();
        assert_eq!(total, g.num_edges());
    }
}
