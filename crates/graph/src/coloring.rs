//! Proper vertex colorings: representation, validation and greedy reference
//! algorithms.

use serde::{Deserialize, Serialize};

use crate::csr::CsrGraph;
use crate::degeneracy::degeneracy_ordering;
use crate::orientation::Orientation;
use crate::types::NodeId;

/// A total assignment of colors (non-negative integers) to nodes.
///
/// Colors are arbitrary `usize` values; [`Coloring::num_colors`] reports the
/// number of *distinct* colors used, which is the quantity the paper's
/// theorems bound.
///
/// # Examples
///
/// ```
/// use sparse_graph::{Coloring, CsrGraph};
///
/// let g = CsrGraph::from_edges(3, [(0, 1), (1, 2)]);
/// let coloring = Coloring::new(vec![0, 1, 0]);
/// assert!(coloring.is_proper(&g));
/// assert_eq!(coloring.num_colors(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Coloring {
    colors: Vec<usize>,
}

impl Coloring {
    /// Wraps a vector of per-node colors.
    pub fn new(colors: Vec<usize>) -> Self {
        Coloring { colors }
    }

    /// Number of nodes covered by the coloring.
    pub fn num_nodes(&self) -> usize {
        self.colors.len()
    }

    /// The color of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn color(&self, v: NodeId) -> usize {
        self.colors[v]
    }

    /// The underlying per-node color slice.
    pub fn colors(&self) -> &[usize] {
        &self.colors
    }

    /// Consumes the coloring and returns the per-node color vector.
    pub fn into_colors(self) -> Vec<usize> {
        self.colors
    }

    /// Number of distinct colors used.
    pub fn num_colors(&self) -> usize {
        let mut sorted = self.colors.clone();
        sorted.sort_unstable();
        sorted.dedup();
        sorted.len()
    }

    /// Largest color value used plus one (the size of the palette
    /// `{0, …, max}` the coloring fits into). Zero for an empty coloring.
    pub fn palette_size(&self) -> usize {
        self.colors.iter().max().map_or(0, |&c| c + 1)
    }

    /// Number of monochromatic (conflicting) edges under this coloring.
    pub fn num_conflicts(&self, graph: &CsrGraph) -> usize {
        graph
            .edges()
            .filter(|&(u, v)| self.colors[u] == self.colors[v])
            .count()
    }

    /// Returns `true` if no edge of `graph` is monochromatic.
    ///
    /// # Panics
    ///
    /// Panics if the coloring does not cover all nodes of `graph`.
    pub fn is_proper(&self, graph: &CsrGraph) -> bool {
        assert_eq!(
            self.colors.len(),
            graph.num_nodes(),
            "coloring covers {} nodes but the graph has {}",
            self.colors.len(),
            graph.num_nodes()
        );
        self.num_conflicts(graph) == 0
    }

    /// Renumbers the colors to the dense range `0..num_colors()`, preserving
    /// properness. Returns the renumbered coloring.
    pub fn normalized(&self) -> Coloring {
        let mut distinct: Vec<usize> = self.colors.clone();
        distinct.sort_unstable();
        distinct.dedup();
        let colors = self
            .colors
            .iter()
            .map(|c| distinct.binary_search(c).expect("color present"))
            .collect();
        Coloring { colors }
    }
}

/// A partial assignment of colors: uncolored nodes hold `None`.
///
/// Used by the derandomized MPC coloring of Theorem 1.5, which colors the
/// graph in waves and re-runs the trial on the still-uncolored set.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PartialColoring {
    colors: Vec<Option<usize>>,
}

impl PartialColoring {
    /// Creates an all-uncolored partial coloring on `n` nodes.
    pub fn uncolored(n: usize) -> Self {
        PartialColoring {
            colors: vec![None; n],
        }
    }

    /// Number of nodes (colored or not).
    pub fn num_nodes(&self) -> usize {
        self.colors.len()
    }

    /// The color of node `v`, if assigned.
    pub fn color(&self, v: NodeId) -> Option<usize> {
        self.colors[v]
    }

    /// Assigns color `c` to node `v` (overwriting any previous color).
    pub fn set_color(&mut self, v: NodeId, c: usize) {
        self.colors[v] = Some(c);
    }

    /// Removes the color of node `v`.
    pub fn clear_color(&mut self, v: NodeId) {
        self.colors[v] = None;
    }

    /// Nodes that do not have a color yet.
    pub fn uncolored_nodes(&self) -> Vec<NodeId> {
        self.colors
            .iter()
            .enumerate()
            .filter_map(|(v, c)| if c.is_none() { Some(v) } else { None })
            .collect()
    }

    /// Number of colored nodes.
    pub fn num_colored(&self) -> usize {
        self.colors.iter().filter(|c| c.is_some()).count()
    }

    /// Returns `true` if every node has a color.
    pub fn is_complete(&self) -> bool {
        self.colors.iter().all(Option::is_some)
    }

    /// Number of edges whose two endpoints are both colored with the same
    /// color.
    pub fn num_conflicts(&self, graph: &CsrGraph) -> usize {
        graph
            .edges()
            .filter(
                |&(u, v)| matches!((self.colors[u], self.colors[v]), (Some(a), Some(b)) if a == b),
            )
            .count()
    }

    /// Converts into a total [`Coloring`].
    ///
    /// # Panics
    ///
    /// Panics if some node is still uncolored.
    pub fn into_coloring(self) -> Coloring {
        Coloring::new(
            self.colors
                .into_iter()
                .map(|c| c.expect("partial coloring is not complete"))
                .collect(),
        )
    }
}

/// Greedy coloring that processes nodes in the given order and assigns each
/// node the smallest color unused among its already-colored neighbors.
///
/// Uses at most `max_back_degree + 1` colors where `max_back_degree` is the
/// maximum number of neighbors a node has *earlier* in the order.
pub fn greedy_by_order(graph: &CsrGraph, order: &[NodeId]) -> Coloring {
    let n = graph.num_nodes();
    assert_eq!(order.len(), n, "order must cover every node exactly once");
    let mut colors: Vec<Option<usize>> = vec![None; n];
    let mut forbidden: Vec<usize> = Vec::new();
    for &v in order {
        forbidden.clear();
        for &w in graph.neighbors(v) {
            if let Some(c) = colors[w] {
                forbidden.push(c);
            }
        }
        forbidden.sort_unstable();
        forbidden.dedup();
        let mut candidate = 0usize;
        for &c in &forbidden {
            if c == candidate {
                candidate += 1;
            } else if c > candidate {
                break;
            }
        }
        colors[v] = Some(candidate);
    }
    Coloring::new(colors.into_iter().map(|c| c.unwrap()).collect())
}

/// Greedy coloring in increasing node-id order (the weakest baseline).
pub fn greedy_by_id_order(graph: &CsrGraph) -> Coloring {
    let order: Vec<NodeId> = graph.nodes().collect();
    greedy_by_order(graph, &order)
}

/// Greedy coloring in *reverse* degeneracy order, which uses at most
/// `degeneracy + 1 ≤ 2α` colors — the classic sequential baseline the paper's
/// parallel algorithms are measured against.
///
/// ```
/// use sparse_graph::{greedy_by_degeneracy_order, CsrGraph};
///
/// let cycle = CsrGraph::from_edges(5, (0..5).map(|i| (i, (i + 1) % 5)));
/// let coloring = greedy_by_degeneracy_order(&cycle);
/// assert!(coloring.is_proper(&cycle));
/// assert!(coloring.num_colors() <= 3);
/// ```
pub fn greedy_by_degeneracy_order(graph: &CsrGraph) -> Coloring {
    let decomposition = degeneracy_ordering(graph);
    // The peeling order removes low-degree nodes first; coloring must process
    // the *reverse* order so every node sees at most `degeneracy` colored
    // neighbors when its turn comes.
    let order: Vec<NodeId> = decomposition.ordering.iter().rev().copied().collect();
    greedy_by_order(graph, &order)
}

/// Greedy coloring along a *reverse topological order* of an acyclic
/// orientation: every node is colored after all of its out-neighbors, so at
/// most `max_out_degree` colors are forbidden and
/// `max_out_degree + 1` colors suffice.
///
/// This is the "color from the sinks" routine the paper's introduction
/// describes for turning low out-degree orientations into colorings.
///
/// # Errors
///
/// Returns an error if the orientation is cyclic or does not cover `graph`.
pub fn greedy_from_orientation(
    graph: &CsrGraph,
    orientation: &Orientation,
) -> Result<Coloring, String> {
    if !orientation.covers_graph(graph) {
        return Err("orientation does not cover the graph's edge set exactly once".to_string());
    }
    let order = orientation
        .reverse_topological_order()
        .ok_or_else(|| "orientation contains a directed cycle".to_string())?;
    let n = graph.num_nodes();
    let mut colors: Vec<Option<usize>> = vec![None; n];
    let mut forbidden: Vec<usize> = Vec::new();
    for &v in &order {
        forbidden.clear();
        for &w in orientation.out_neighbors(v) {
            if let Some(c) = colors[w] {
                forbidden.push(c);
            }
        }
        forbidden.sort_unstable();
        forbidden.dedup();
        let mut candidate = 0usize;
        for &c in &forbidden {
            if c == candidate {
                candidate += 1;
            } else if c > candidate {
                break;
            }
        }
        colors[v] = Some(candidate);
    }
    Ok(Coloring::new(
        colors.into_iter().map(|c| c.unwrap()).collect(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn petersen_like() -> CsrGraph {
        // Outer 5-cycle, inner 5-cycle (pentagram), spokes.
        let mut edges = Vec::new();
        for i in 0..5 {
            edges.push((i, (i + 1) % 5));
            edges.push((5 + i, 5 + ((i + 2) % 5)));
            edges.push((i, 5 + i));
        }
        CsrGraph::from_edges(10, edges)
    }

    #[test]
    fn proper_and_improper_colorings() {
        let g = CsrGraph::from_edges(3, [(0, 1), (1, 2)]);
        assert!(Coloring::new(vec![0, 1, 0]).is_proper(&g));
        let bad = Coloring::new(vec![0, 0, 1]);
        assert!(!bad.is_proper(&g));
        assert_eq!(bad.num_conflicts(&g), 1);
    }

    #[test]
    fn num_colors_and_palette() {
        let c = Coloring::new(vec![7, 3, 7, 9]);
        assert_eq!(c.num_colors(), 3);
        assert_eq!(c.palette_size(), 10);
        let normalized = c.normalized();
        assert_eq!(normalized.num_colors(), 3);
        assert_eq!(normalized.palette_size(), 3);
        // Same color classes after renumbering.
        assert_eq!(normalized.color(0), normalized.color(2));
        assert_ne!(normalized.color(0), normalized.color(1));
    }

    #[test]
    fn greedy_orders_produce_proper_colorings() {
        let g = petersen_like();
        for coloring in [greedy_by_id_order(&g), greedy_by_degeneracy_order(&g)] {
            assert!(coloring.is_proper(&g));
            assert!(coloring.num_colors() <= g.max_degree() + 1);
        }
    }

    #[test]
    fn degeneracy_greedy_respects_degeneracy_bound() {
        let g = petersen_like();
        let decomposition = degeneracy_ordering(&g);
        let coloring = greedy_by_degeneracy_order(&g);
        assert!(coloring.num_colors() <= decomposition.degeneracy + 1);
    }

    #[test]
    fn orientation_greedy_uses_out_degree_plus_one_colors() {
        let g = petersen_like();
        let o = Orientation::from_total_order(&g, |v| v);
        let coloring = greedy_from_orientation(&g, &o).unwrap();
        assert!(coloring.is_proper(&g));
        assert!(coloring.num_colors() <= o.max_out_degree() + 1);
    }

    #[test]
    fn orientation_greedy_rejects_bad_orientations() {
        let g = CsrGraph::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
        let cyclic = Orientation::from_out_neighbors(vec![vec![1], vec![2], vec![0]]);
        assert!(greedy_from_orientation(&g, &cyclic).is_err());
        let incomplete = Orientation::from_out_neighbors(vec![vec![1], vec![2], vec![]]);
        assert!(greedy_from_orientation(&g, &incomplete).is_err());
    }

    #[test]
    fn partial_coloring_workflow() {
        let g = CsrGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let mut pc = PartialColoring::uncolored(4);
        assert_eq!(pc.uncolored_nodes(), vec![0, 1, 2, 3]);
        pc.set_color(0, 0);
        pc.set_color(1, 0);
        assert_eq!(pc.num_conflicts(&g), 1);
        pc.set_color(1, 1);
        pc.set_color(2, 0);
        pc.set_color(3, 1);
        assert_eq!(pc.num_conflicts(&g), 0);
        assert!(pc.is_complete());
        let total = pc.into_coloring();
        assert!(total.is_proper(&g));
    }

    #[test]
    #[should_panic(expected = "not complete")]
    fn incomplete_partial_coloring_cannot_be_finalized() {
        let mut pc = PartialColoring::uncolored(2);
        pc.set_color(0, 1);
        let _ = pc.into_coloring();
    }

    #[test]
    fn greedy_by_order_uses_smallest_available_color() {
        let g = CsrGraph::from_edges(4, [(0, 1), (0, 2), (0, 3)]);
        let coloring = greedy_by_order(&g, &[1, 2, 3, 0]);
        // Leaves get color 0, the hub gets color 1.
        assert_eq!(coloring.color(1), 0);
        assert_eq!(coloring.color(0), 1);
        assert_eq!(coloring.num_colors(), 2);
    }
}
