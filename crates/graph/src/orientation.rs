//! Edge orientations: acyclicity, out-degrees and construction helpers.

use serde::{Deserialize, Serialize};

use crate::csr::CsrGraph;
use crate::types::{Edge, NodeId};

/// An orientation of (a subset of) the edges of an undirected graph.
///
/// Orientations are the bridge between β-partitions and colorings (paper
/// Contribution 2): orienting every edge from lower to higher layer of a
/// β-partition, and arbitrarily inside a layer, yields an acyclic orientation
/// of out-degree at most β, and coloring then proceeds "from the sinks".
///
/// The orientation stores, for every node, the list of its *out*-neighbors.
///
/// # Examples
///
/// ```
/// use sparse_graph::{CsrGraph, Orientation};
///
/// let g = CsrGraph::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
/// // Orient the triangle acyclically by node id.
/// let orientation = Orientation::from_total_order(&g, |v| v);
/// assert!(orientation.is_acyclic());
/// assert_eq!(orientation.max_out_degree(), 2);
/// assert!(orientation.covers_graph(&g));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Orientation {
    out_neighbors: Vec<Vec<NodeId>>,
}

impl Orientation {
    /// Creates an orientation with no oriented edges on `n` nodes.
    pub fn empty(n: usize) -> Self {
        Orientation {
            out_neighbors: vec![Vec::new(); n],
        }
    }

    /// Builds an orientation from explicit per-node out-neighbor lists.
    pub fn from_out_neighbors(out_neighbors: Vec<Vec<NodeId>>) -> Self {
        Orientation { out_neighbors }
    }

    /// Orients every edge of `graph` from the endpoint with the smaller key
    /// to the endpoint with the larger key, breaking ties towards the larger
    /// node id. The resulting orientation is always acyclic.
    ///
    /// With `key = degeneracy position` this produces the classic
    /// `out-degree ≤ degeneracy` orientation; with `key = β-partition layer`
    /// it produces the orientation of paper Contribution 2.
    pub fn from_total_order<F>(graph: &CsrGraph, key: F) -> Self
    where
        F: Fn(NodeId) -> usize,
    {
        let n = graph.num_nodes();
        let mut out_neighbors = vec![Vec::new(); n];
        for (u, v) in graph.edges() {
            let (from, to) = orient_edge(u, v, key(u), key(v));
            out_neighbors[from].push(to);
        }
        for list in &mut out_neighbors {
            list.sort_unstable();
        }
        Orientation { out_neighbors }
    }

    /// Number of nodes of the underlying graph.
    pub fn num_nodes(&self) -> usize {
        self.out_neighbors.len()
    }

    /// Number of oriented edges.
    pub fn num_oriented_edges(&self) -> usize {
        self.out_neighbors.iter().map(Vec::len).sum()
    }

    /// Out-neighbors of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn out_neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.out_neighbors[v]
    }

    /// Out-degree of node `v`.
    pub fn out_degree(&self, v: NodeId) -> usize {
        self.out_neighbors[v].len()
    }

    /// Maximum out-degree over all nodes.
    pub fn max_out_degree(&self) -> usize {
        self.out_neighbors.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Iterator over the oriented edges as `(from, to)` pairs.
    pub fn oriented_edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.out_neighbors
            .iter()
            .enumerate()
            .flat_map(|(u, outs)| outs.iter().map(move |&v| (u, v)))
    }

    /// Checks that every undirected edge of `graph` is oriented exactly once
    /// (in exactly one direction) and that no oriented edge is absent from
    /// `graph`.
    pub fn covers_graph(&self, graph: &CsrGraph) -> bool {
        if self.num_nodes() != graph.num_nodes() {
            return false;
        }
        if self.num_oriented_edges() != graph.num_edges() {
            return false;
        }
        // Duplicate detection via a bitmap over the graph's adjacency
        // slots (each canonical edge {a ≤ b} owns the slot of `b` inside
        // `neighbors(a)`): three O(n + m) allocations for the whole check
        // instead of a B-tree node per few edges — this runs in front of
        // every Arb-Linial invocation, so its allocation cost is measured
        // by the intra bench's allocation gate.
        let n = graph.num_nodes();
        let mut slot_offsets = Vec::with_capacity(n + 1);
        slot_offsets.push(0usize);
        for v in graph.nodes() {
            slot_offsets.push(slot_offsets[v] + graph.degree(v));
        }
        let mut seen = vec![false; slot_offsets[n]];
        for (u, v) in self.oriented_edges() {
            let (a, b) = crate::types::canonical_edge(u, v);
            // The binary search doubles as the `has_edge` membership test
            // (neighbor lists are sorted); `a < n` because the node counts
            // matched above and `u` enumerates `0..n`.
            let Ok(position) = graph.neighbors(a).binary_search(&b) else {
                return false;
            };
            let slot = slot_offsets[a] + position;
            if seen[slot] {
                // Edge oriented twice (in both or the same direction).
                return false;
            }
            seen[slot] = true;
        }
        true
    }

    /// Returns `true` if the oriented graph contains no directed cycle
    /// (Kahn's algorithm).
    pub fn is_acyclic(&self) -> bool {
        self.topological_order().is_some()
    }

    /// A topological order of the oriented graph (sources first), or `None`
    /// if the orientation contains a directed cycle.
    pub fn topological_order(&self) -> Option<Vec<NodeId>> {
        let n = self.num_nodes();
        let mut in_degree = vec![0usize; n];
        for (_, v) in self.oriented_edges() {
            in_degree[v] += 1;
        }
        let mut queue: Vec<NodeId> = (0..n).filter(|&v| in_degree[v] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(v) = queue.pop() {
            order.push(v);
            for &w in self.out_neighbors(v) {
                in_degree[w] -= 1;
                if in_degree[w] == 0 {
                    queue.push(w);
                }
            }
        }
        if order.len() == n {
            Some(order)
        } else {
            None
        }
    }

    /// A *reverse* topological order (sinks first), convenient for coloring
    /// "starting from sinks" as described in the paper's introduction.
    pub fn reverse_topological_order(&self) -> Option<Vec<NodeId>> {
        self.topological_order().map(|mut order| {
            order.reverse();
            order
        })
    }
}

/// Orients the edge `{u, v}` from smaller key to larger key, breaking ties by
/// node id (smaller id → larger id) so the orientation stays acyclic.
fn orient_edge(u: NodeId, v: NodeId, key_u: usize, key_v: usize) -> (NodeId, NodeId) {
    if (key_u, u) < (key_v, v) {
        (u, v)
    } else {
        (v, u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: usize) -> CsrGraph {
        CsrGraph::from_edges(n, (0..n).map(|i| (i, (i + 1) % n)))
    }

    #[test]
    fn order_based_orientation_is_acyclic_and_covers() {
        let g = cycle(6);
        let o = Orientation::from_total_order(&g, |v| v);
        assert!(o.is_acyclic());
        assert!(o.covers_graph(&g));
        assert_eq!(o.num_oriented_edges(), 6);
    }

    #[test]
    fn cyclic_orientation_is_detected() {
        let o = Orientation::from_out_neighbors(vec![vec![1], vec![2], vec![0]]);
        assert!(!o.is_acyclic());
        assert!(o.topological_order().is_none());
    }

    #[test]
    fn topological_order_respects_edges() {
        let g = CsrGraph::from_edges(5, [(0, 1), (1, 2), (0, 3), (3, 4), (1, 4)]);
        let o = Orientation::from_total_order(&g, |v| v);
        let order = o.topological_order().expect("acyclic");
        let mut position = [0; 5];
        for (i, &v) in order.iter().enumerate() {
            position[v] = i;
        }
        for (u, v) in o.oriented_edges() {
            assert!(
                position[u] < position[v],
                "edge ({u},{v}) violates topo order"
            );
        }
    }

    #[test]
    fn covers_graph_detects_missing_and_foreign_edges() {
        let g = cycle(4);
        // Missing one edge.
        let o = Orientation::from_out_neighbors(vec![vec![1], vec![2], vec![3], vec![]]);
        assert!(!o.covers_graph(&g));
        // Edge not present in the graph.
        let o = Orientation::from_out_neighbors(vec![vec![1, 2], vec![2], vec![3], vec![0]]);
        assert!(!o.covers_graph(&g));
        // Edge oriented in both directions.
        let o = Orientation::from_out_neighbors(vec![vec![1], vec![0, 2], vec![3], vec![0]]);
        assert!(!o.covers_graph(&g));
    }

    #[test]
    fn out_degree_statistics() {
        let star = CsrGraph::from_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4)]);
        // Orient towards the center: leaves have key 0, the center key 1.
        let o = Orientation::from_total_order(&star, |v| if v == 0 { 1 } else { 0 });
        assert_eq!(o.out_degree(1), 1);
        assert_eq!(o.out_degree(0), 0);
        assert_eq!(o.max_out_degree(), 1);
        // Orient away from the center.
        let o = Orientation::from_total_order(&star, |v| if v == 0 { 0 } else { 1 });
        assert_eq!(o.out_degree(0), 4);
        assert_eq!(o.max_out_degree(), 4);
    }

    #[test]
    fn reverse_topological_order_sinks_first() {
        let g = CsrGraph::from_edges(3, [(0, 1), (1, 2)]);
        let o = Orientation::from_total_order(&g, |v| v);
        let rev = o.reverse_topological_order().unwrap();
        assert_eq!(*rev.first().unwrap(), 2);
        assert_eq!(*rev.last().unwrap(), 0);
    }
}
