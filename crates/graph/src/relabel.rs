//! Cache-aware node relabeling: permute, color, un-permute.
//!
//! CSR neighbor scans are memory-latency-bound on graphs whose ids are
//! scattered relative to the traversal order: every `targets[w]` lookup
//! lands on a cold cache line. Relabeling nodes so that neighbors sit
//! close together in id space turns those scans into mostly-sequential
//! walks. This module provides the two standard deterministic policies —
//!
//! * [`RelabelPolicy::DegreeSorted`]: nodes in descending degree order
//!   (ties by ascending old id). Hubs and their shared color/degree state
//!   cluster at the low end of every array, the layout that helps skewed
//!   (power-law, hub-and-spoke) instances most.
//! * [`RelabelPolicy::Rcm`]: reverse Cuthill–McKee — per connected
//!   component, a BFS from a minimum-`(degree, id)` start expanding
//!   neighbors in ascending `(degree, id)` order, with the final order
//!   reversed. The classic bandwidth-minimizing layout: neighbors end up
//!   with nearby ids, so adjacency scans touch few distinct cache lines.
//!
//! — and the [`NodePermutation`] machinery for the **bit-identity story**
//! the workspace's determinism contract requires: callers permute the
//! graph (and any orientation computed on the *original* ids), run a
//! simulator on the relabeled instance, and un-permute the resulting
//! coloring. For every simulator in `arbo-coloring` the un-permuted
//! coloring is byte-for-byte identical to the coloring computed without
//! relabeling (pinned by `tests/backend_equivalence.rs`):
//!
//! * the per-node decisions of Arb-Linial, Kuhn–Wattenhofer and the
//!   recoloring waves are *set*-valued (mark neighbor colors, take the
//!   first/last free one) — they never depend on what a neighbor's id
//!   *is*, only on which colors appear;
//! * the derandomized coloring is the one simulator whose decisions *read*
//!   node ids — its GF(2) queries encode them — so its relabeled entry
//!   point encodes each node's **original** id
//!   ([`NodePermutation::old_ids`]). With that, the seed search sees the
//!   same multiset of queries; it sums per-edge collision probabilities in
//!   edge order, which relabeling reorders, but every summand is an exact
//!   dyadic rational `2^-k` with tiny `k`, so the partial sums are exact
//!   in `f64` and the total is addition-order-independent (see the
//!   README's determinism argument).
//!
//! Orientations must be computed on the original graph and pushed through
//! [`NodePermutation::permute_orientation`]: recomputing a degeneracy
//! order on the relabeled graph would break ties by *new* ids and produce
//! a different (equally valid, but not bit-identical) orientation.

use std::collections::VecDeque;

use crate::coloring::Coloring;
use crate::csr::CsrGraph;
use crate::orientation::Orientation;
use crate::types::NodeId;

/// Which node-relabeling permutation to apply at graph build time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RelabelPolicy {
    /// Keep the original ids (the identity permutation).
    #[default]
    Off,
    /// Descending degree, ties by ascending old id.
    DegreeSorted,
    /// Reverse Cuthill–McKee (bandwidth-minimizing BFS layout).
    Rcm,
}

impl RelabelPolicy {
    /// All policies, in the order benches sweep them.
    pub const ALL: [RelabelPolicy; 3] = [
        RelabelPolicy::Off,
        RelabelPolicy::DegreeSorted,
        RelabelPolicy::Rcm,
    ];

    /// Stable CLI/bench-table label.
    pub fn label(self) -> &'static str {
        match self {
            RelabelPolicy::Off => "off",
            RelabelPolicy::DegreeSorted => "degree-sorted",
            RelabelPolicy::Rcm => "rcm",
        }
    }

    /// Parses a [`RelabelPolicy::label`] spelling.
    pub fn parse(text: &str) -> Option<RelabelPolicy> {
        match text.trim() {
            "off" => Some(RelabelPolicy::Off),
            "degree-sorted" | "degree" => Some(RelabelPolicy::DegreeSorted),
            "rcm" => Some(RelabelPolicy::Rcm),
            _ => None,
        }
    }
}

/// A bijection between *old* node ids (the caller's graph) and *new* node
/// ids (the relabeled graph), with helpers to push graphs, orientations
/// and colorings across it in either direction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodePermutation {
    /// `to_new[old]` = the relabeled id of old node `old`.
    to_new: Vec<NodeId>,
    /// `to_old[new]` = the original id of relabeled node `new`.
    to_old: Vec<NodeId>,
}

impl NodePermutation {
    /// The identity permutation on `n` nodes.
    pub fn identity(n: usize) -> Self {
        let ids: Vec<NodeId> = (0..n).collect();
        NodePermutation {
            to_new: ids.clone(),
            to_old: ids,
        }
    }

    /// Builds the permutation whose *new* order is `to_old` (i.e.
    /// `to_old[new]` is the old id placed at new id `new`).
    ///
    /// # Panics
    ///
    /// Panics if `to_old` is not a permutation of `0..to_old.len()`.
    fn from_new_order(to_old: Vec<NodeId>) -> Self {
        let n = to_old.len();
        let mut to_new = vec![usize::MAX; n];
        for (new, &old) in to_old.iter().enumerate() {
            assert!(old < n, "order entry {old} out of range for {n} nodes");
            assert_eq!(to_new[old], usize::MAX, "order places old node {old} twice");
            to_new[old] = new;
        }
        NodePermutation { to_new, to_old }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.to_new.len()
    }

    /// Whether the permutation is empty (zero nodes).
    pub fn is_empty(&self) -> bool {
        self.to_new.is_empty()
    }

    /// `true` when every node keeps its id (the [`RelabelPolicy::Off`]
    /// result, and occasionally a nontrivial policy's fixed point).
    pub fn is_identity(&self) -> bool {
        self.to_new.iter().enumerate().all(|(old, &new)| old == new)
    }

    /// The relabeled id of old node `old`.
    #[inline]
    pub fn to_new(&self, old: NodeId) -> NodeId {
        self.to_new[old]
    }

    /// The original id of relabeled node `new`.
    #[inline]
    pub fn to_old(&self, new: NodeId) -> NodeId {
        self.to_old[new]
    }

    /// The full new-id-indexed original-id table (`old_ids()[new]` =
    /// original id) — what id-reading simulators use to keep their
    /// decisions anchored to the original labels.
    pub fn old_ids(&self) -> &[NodeId] {
        &self.to_old
    }

    /// The graph with every node renamed to its relabeled id (adjacency
    /// re-sorted per row, as [`CsrGraph`] requires).
    pub fn permute_graph(&self, graph: &CsrGraph) -> CsrGraph {
        let n = graph.num_nodes();
        assert_eq!(n, self.len(), "permutation/graph size mismatch");
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(2 * graph.num_edges());
        offsets.push(0);
        for new in 0..n {
            let start = targets.len();
            targets.extend(
                graph
                    .neighbors(self.to_old[new])
                    .iter()
                    .map(|&w| self.to_new[w]),
            );
            targets[start..].sort_unstable();
            offsets.push(targets.len());
        }
        CsrGraph::from_csr_parts(offsets, targets)
    }

    /// An orientation over relabeled ids: edge `u → w` becomes
    /// `to_new(u) → to_new(w)`, out-lists re-sorted by new id. Compute the
    /// orientation on the *original* graph and push it through this — see
    /// the module docs for why recomputing on the relabeled graph breaks
    /// bit-identity.
    pub fn permute_orientation(&self, orientation: &Orientation) -> Orientation {
        let n = orientation.num_nodes();
        assert_eq!(n, self.len(), "permutation/orientation size mismatch");
        let mut out_neighbors: Vec<Vec<NodeId>> = Vec::with_capacity(n);
        for new in 0..n {
            let mut list: Vec<NodeId> = orientation
                .out_neighbors(self.to_old[new])
                .iter()
                .map(|&w| self.to_new[w])
                .collect();
            list.sort_unstable();
            out_neighbors.push(list);
        }
        Orientation::from_out_neighbors(out_neighbors)
    }

    /// Reindexes an old-id-indexed color array to relabeled ids.
    pub fn permute_colors(&self, colors: &[usize]) -> Vec<usize> {
        assert_eq!(colors.len(), self.len(), "permutation/colors size mismatch");
        self.to_old.iter().map(|&old| colors[old]).collect()
    }

    /// Reindexes a relabeled-id-indexed color array back to old ids — the
    /// "un-permute" leg of permute → color → un-permute.
    pub fn unpermute_colors(&self, colors: &[usize]) -> Vec<usize> {
        assert_eq!(colors.len(), self.len(), "permutation/colors size mismatch");
        self.to_new.iter().map(|&new| colors[new]).collect()
    }

    /// [`NodePermutation::unpermute_colors`] over a [`Coloring`].
    pub fn unpermute_coloring(&self, coloring: &Coloring) -> Coloring {
        Coloring::new(self.unpermute_colors(coloring.colors()))
    }
}

/// Computes `policy`'s permutation for `graph` and applies it, returning
/// the relabeled graph together with the [`NodePermutation`] that maps
/// results back. [`RelabelPolicy::Off`] returns a clone of the input and
/// the identity.
pub fn relabel(graph: &CsrGraph, policy: RelabelPolicy) -> (CsrGraph, NodePermutation) {
    let permutation = match policy {
        RelabelPolicy::Off => NodePermutation::identity(graph.num_nodes()),
        RelabelPolicy::DegreeSorted => NodePermutation::from_new_order(degree_sorted_order(graph)),
        RelabelPolicy::Rcm => NodePermutation::from_new_order(rcm_order(graph)),
    };
    if permutation.is_identity() {
        return (graph.clone(), permutation);
    }
    let relabeled = permutation.permute_graph(graph);
    (relabeled, permutation)
}

/// Old ids in descending-degree order, ties by ascending id — fully
/// deterministic for a fixed graph.
fn degree_sorted_order(graph: &CsrGraph) -> Vec<NodeId> {
    let mut order: Vec<NodeId> = graph.nodes().collect();
    order.sort_by_key(|&v| (std::cmp::Reverse(graph.degree(v)), v));
    order
}

/// Old ids in reverse Cuthill–McKee order. Deterministic: components are
/// entered at their minimum-`(degree, id)` node and BFS frontiers expand
/// neighbors in ascending `(degree, id)` order; isolated nodes form their
/// own (trivial) components.
fn rcm_order(graph: &CsrGraph) -> Vec<NodeId> {
    let n = graph.num_nodes();
    let mut starts: Vec<NodeId> = graph.nodes().collect();
    starts.sort_by_key(|&v| (graph.degree(v), v));
    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut queue = VecDeque::new();
    let mut frontier: Vec<NodeId> = Vec::new();
    for &start in &starts {
        if visited[start] {
            continue;
        }
        visited[start] = true;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            frontier.clear();
            frontier.extend(graph.neighbors(v).iter().copied().filter(|&w| !visited[w]));
            frontier.sort_by_key(|&w| (graph.degree(w), w));
            for &w in &frontier {
                visited[w] = true;
                queue.push_back(w);
            }
        }
    }
    order.reverse();
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coloring::greedy_by_id_order;

    /// Two components, an isolated node, and duplicate degrees everywhere:
    /// the tie-break edge cases both policies must stay deterministic on.
    fn awkward_graph() -> CsrGraph {
        // 0-1-2-3 path, 4 isolated, 5-6 and 7-8 disjoint edges (all four
        // of 5,6,7,8 share degree 1 with the path endpoints 0 and 3).
        CsrGraph::from_edges(9, [(0, 1), (1, 2), (2, 3), (5, 6), (7, 8)])
    }

    #[test]
    fn off_policy_is_the_identity() {
        let graph = awkward_graph();
        let (relabeled, permutation) = relabel(&graph, RelabelPolicy::Off);
        assert_eq!(relabeled, graph);
        assert!(permutation.is_identity());
        assert_eq!(permutation.len(), 9);
    }

    #[test]
    fn permutations_are_bijections_preserving_structure() {
        let graph = awkward_graph();
        for policy in [RelabelPolicy::DegreeSorted, RelabelPolicy::Rcm] {
            let (relabeled, permutation) = relabel(&graph, policy);
            assert_eq!(relabeled.num_nodes(), graph.num_nodes());
            assert_eq!(relabeled.num_edges(), graph.num_edges());
            for old in graph.nodes() {
                let new = permutation.to_new(old);
                assert_eq!(permutation.to_old(new), old, "{policy:?} round trip");
                assert_eq!(
                    relabeled.degree(new),
                    graph.degree(old),
                    "{policy:?} degree of old node {old}"
                );
            }
            for (u, v) in graph.edges() {
                assert!(
                    relabeled.has_edge(permutation.to_new(u), permutation.to_new(v)),
                    "{policy:?} lost edge ({u}, {v})"
                );
            }
        }
    }

    #[test]
    fn degree_sorted_order_is_descending_with_id_ties() {
        let graph = awkward_graph();
        let (relabeled, permutation) = relabel(&graph, RelabelPolicy::DegreeSorted);
        let degrees: Vec<usize> = relabeled.nodes().map(|v| relabeled.degree(v)).collect();
        let mut sorted = degrees.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(degrees, sorted, "degrees must be non-increasing in new id");
        // Ties break by ascending old id: degree-1 nodes are 0,3,5,6,7,8
        // in old-id order, after the two degree-2 nodes 1,2.
        let tie_block: Vec<NodeId> = (2..8).map(|new| permutation.to_old(new)).collect();
        assert_eq!(tie_block, vec![0, 3, 5, 6, 7, 8]);
        // The isolated node lands last.
        assert_eq!(permutation.to_old(8), 4);
    }

    #[test]
    fn rcm_brings_path_neighbors_together() {
        // A path inserted in scrambled id order has bandwidth ~n with the
        // original ids; RCM must relabel it to bandwidth 1.
        let path = CsrGraph::from_edges(7, [(3, 5), (5, 0), (0, 6), (6, 2), (2, 4), (4, 1)]);
        let (relabeled, permutation) = relabel(&path, RelabelPolicy::Rcm);
        let bandwidth = relabeled.edges().map(|(u, v)| v - u).max().unwrap();
        assert_eq!(bandwidth, 1, "RCM must linearize a path");
        assert!(!permutation.is_identity());
    }

    #[test]
    fn colorings_round_trip_through_the_permutation() {
        let graph = awkward_graph();
        for policy in [RelabelPolicy::DegreeSorted, RelabelPolicy::Rcm] {
            let (relabeled, permutation) = relabel(&graph, policy);
            // A proper coloring of the relabeled graph un-permutes to a
            // proper coloring of the original.
            let colored = greedy_by_id_order(&relabeled);
            assert!(colored.is_proper(&relabeled));
            let unpermuted = permutation.unpermute_coloring(&colored);
            assert!(
                unpermuted.is_proper(&graph),
                "{policy:?} unpermute broke propriety"
            );
            // permute ∘ unpermute is the identity on color arrays.
            assert_eq!(
                permutation.permute_colors(unpermuted.colors()),
                colored.colors(),
                "{policy:?} permute/unpermute must invert each other"
            );
        }
    }

    #[test]
    fn orientations_push_forward_and_keep_covering() {
        let graph = awkward_graph();
        let orientation = Orientation::from_total_order(&graph, |v| v);
        for policy in [RelabelPolicy::DegreeSorted, RelabelPolicy::Rcm] {
            let (relabeled, permutation) = relabel(&graph, policy);
            let pushed = permutation.permute_orientation(&orientation);
            assert!(
                pushed.covers_graph(&relabeled),
                "{policy:?} pushed orientation must cover the relabeled graph"
            );
            assert_eq!(
                pushed.num_oriented_edges(),
                orientation.num_oriented_edges()
            );
            assert_eq!(pushed.max_out_degree(), orientation.max_out_degree());
        }
    }

    #[test]
    fn policy_labels_round_trip() {
        for policy in RelabelPolicy::ALL {
            assert_eq!(RelabelPolicy::parse(policy.label()), Some(policy));
        }
        assert_eq!(
            RelabelPolicy::parse("degree"),
            Some(RelabelPolicy::DegreeSorted)
        );
        assert_eq!(RelabelPolicy::parse("nope"), None);
    }

    #[test]
    fn empty_and_singleton_graphs_are_fine() {
        for policy in RelabelPolicy::ALL {
            let (empty, permutation) = relabel(&CsrGraph::empty(0), policy);
            assert_eq!(empty.num_nodes(), 0);
            assert!(permutation.is_empty());
            let (one, permutation) = relabel(&CsrGraph::empty(1), policy);
            assert_eq!(one.num_nodes(), 1);
            assert!(permutation.is_identity());
        }
    }
}
