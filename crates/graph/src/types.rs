//! Fundamental identifier and edge types shared across the workspace.

/// Identifier of a node in a graph.
///
/// Nodes of an `n`-node graph are always the integers `0..n`. Algorithm
/// crates treat node ids as machine identifiers in the AMPC model ("machine
/// `M_v` is responsible for node `v`"), so the identity mapping keeps the
/// simulation simple and deterministic.
pub type NodeId = usize;

/// An undirected edge given by its two endpoints.
///
/// Edges are stored in canonical form `(min, max)` by [`crate::GraphBuilder`]
/// so that the same undirected edge always compares equal.
pub type Edge = (NodeId, NodeId);

/// Returns the canonical form `(min(u, v), max(u, v))` of an undirected edge.
///
/// ```
/// assert_eq!(sparse_graph::canonical_edge(5, 2), (2, 5));
/// assert_eq!(sparse_graph::canonical_edge(2, 5), (2, 5));
/// ```
pub fn canonical_edge(u: NodeId, v: NodeId) -> Edge {
    if u <= v {
        (u, v)
    } else {
        (v, u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_edge_orders_endpoints() {
        assert_eq!(canonical_edge(3, 1), (1, 3));
        assert_eq!(canonical_edge(1, 3), (1, 3));
        assert_eq!(canonical_edge(4, 4), (4, 4));
    }
}
