//! Arboricity estimates: density lower bounds and degeneracy upper bounds.

use crate::csr::CsrGraph;
use crate::degeneracy::degeneracy;

/// Lower and upper bounds on the arboricity of a graph.
///
/// Computing the exact arboricity requires matroid-union machinery that the
/// paper never needs: all its algorithms only require an *upper bound*
/// parameter `α ≥ α(G)` (and Lemma 5.1 removes even that assumption through
/// guessing). The bounds below bracket the true value within a factor of two:
///
/// * `lower` is the Nash–Williams density bound `⌈m / (n − 1)⌉` of
///   Definition 3.1 evaluated on the whole graph and on every core of the
///   degeneracy decomposition,
/// * `upper` is the degeneracy `d`, which satisfies `α ≤ d ≤ 2α − 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArboricityEstimate {
    /// A certified lower bound on the arboricity.
    pub lower: usize,
    /// A certified upper bound on the arboricity (the degeneracy).
    pub upper: usize,
}

impl ArboricityEstimate {
    /// Computes both bounds for `graph`.
    ///
    /// ```
    /// use sparse_graph::{ArboricityEstimate, CsrGraph};
    ///
    /// let k4 = CsrGraph::from_edges(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
    /// let est = ArboricityEstimate::of(&k4);
    /// assert_eq!(est.lower, 2); // ceil(6 / 3)
    /// assert_eq!(est.upper, 3); // degeneracy of K4
    /// assert!(est.lower <= est.upper);
    /// ```
    pub fn of(graph: &CsrGraph) -> Self {
        ArboricityEstimate {
            lower: arboricity_density_lower_bound(graph),
            upper: arboricity_upper_bound(graph),
        }
    }
}

/// The density lower bound `max_{G' ⊆ G, |V(G')| ≥ 2} ⌈|E(G')| / (|V(G')| − 1)⌉`
/// of Definition 3.1, evaluated on the whole graph and on the subgraphs
/// induced by every suffix of the degeneracy ordering (which contains the
/// densest cores).
///
/// This is a true lower bound on `α(G)` (every evaluated subgraph witnesses
/// the bound) though not necessarily tight on adversarial instances.
pub fn arboricity_density_lower_bound(graph: &CsrGraph) -> usize {
    let n = graph.num_nodes();
    if n < 2 {
        return 0;
    }

    let density = |edges: usize, nodes: usize| -> usize {
        if nodes < 2 {
            0
        } else {
            edges.div_ceil(nodes - 1)
        }
    };

    let mut best = density(graph.num_edges(), n);

    // Evaluate the density of every suffix of the degeneracy ordering.
    // Peeling nodes in degeneracy order keeps the densest part of the graph
    // for last, so the best suffix is a good witness subgraph.
    let ordering = crate::degeneracy::degeneracy_ordering(graph).ordering;
    let mut removed = vec![false; n];
    let mut remaining_edges = graph.num_edges();
    let mut remaining_nodes = n;
    for &v in &ordering {
        let live_degree = graph.neighbors(v).iter().filter(|&&w| !removed[w]).count();
        removed[v] = true;
        remaining_edges -= live_degree;
        remaining_nodes -= 1;
        if remaining_nodes >= 2 {
            best = best.max(density(remaining_edges, remaining_nodes));
        }
    }
    best
}

/// The degeneracy of the graph, which upper-bounds the arboricity
/// (`α ≤ degeneracy ≤ 2α − 1`).
///
/// ```
/// let path = sparse_graph::CsrGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
/// assert_eq!(sparse_graph::arboricity_upper_bound(&path), 1);
/// ```
pub fn arboricity_upper_bound(graph: &CsrGraph) -> usize {
    degeneracy(graph)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_on_trivial_graphs() {
        let empty = CsrGraph::empty(0);
        assert_eq!(
            ArboricityEstimate::of(&empty),
            ArboricityEstimate { lower: 0, upper: 0 }
        );

        let isolated = CsrGraph::empty(5);
        let est = ArboricityEstimate::of(&isolated);
        assert_eq!(est.lower, 0);
        assert_eq!(est.upper, 0);
    }

    #[test]
    fn tree_has_arboricity_one() {
        let path = CsrGraph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let est = ArboricityEstimate::of(&path);
        assert_eq!(est.lower, 1);
        assert_eq!(est.upper, 1);
    }

    #[test]
    fn clique_bounds() {
        // K5: arboricity = ceil(10 / 4) = 3, degeneracy = 4.
        let mut edges = Vec::new();
        for u in 0..5 {
            for v in (u + 1)..5 {
                edges.push((u, v));
            }
        }
        let k5 = CsrGraph::from_edges(5, edges);
        let est = ArboricityEstimate::of(&k5);
        assert_eq!(est.lower, 3);
        assert_eq!(est.upper, 4);
        assert!(est.lower <= est.upper);
    }

    #[test]
    fn dense_core_hidden_in_sparse_graph() {
        // A K5 attached to a long path: global density is low but the core
        // witnesses arboricity >= 3.
        let mut edges = Vec::new();
        for u in 0..5 {
            for v in (u + 1)..5 {
                edges.push((u, v));
            }
        }
        for i in 5..100 {
            edges.push((i - 1, i));
        }
        let g = CsrGraph::from_edges(100, edges);
        let est = ArboricityEstimate::of(&g);
        assert!(est.lower >= 3, "suffix density should expose the K5 core");
        assert!(est.upper >= est.lower);
    }

    #[test]
    fn degeneracy_within_factor_two_of_density() {
        let cycle = CsrGraph::from_edges(8, (0..8).map(|i| (i, (i + 1) % 8)));
        let est = ArboricityEstimate::of(&cycle);
        assert_eq!(est.lower, 2); // ceil(8/7) = 2
        assert_eq!(est.upper, 2);
    }
}
