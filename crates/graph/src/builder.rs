//! Mutable edge-list builder producing [`CsrGraph`]s.

use std::collections::BTreeSet;

use crate::csr::CsrGraph;
use crate::relabel::{relabel, NodePermutation, RelabelPolicy};
use crate::types::{canonical_edge, Edge, NodeId};

/// Incrementally collects undirected edges and produces a [`CsrGraph`].
///
/// Self-loops are ignored and parallel edges are merged, so the resulting
/// graph is always simple.
///
/// # Examples
///
/// ```
/// use sparse_graph::GraphBuilder;
///
/// let mut builder = GraphBuilder::new(4);
/// builder.add_edge(0, 1);
/// builder.add_edge(1, 0); // duplicate, merged
/// builder.add_edge(2, 2); // self-loop, ignored
/// builder.add_edge(2, 3);
/// let graph = builder.build();
/// assert_eq!(graph.num_edges(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    num_nodes: usize,
    edges: BTreeSet<Edge>,
}

impl GraphBuilder {
    /// Creates a builder for a graph on the node set `0..n`.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            num_nodes: n,
            edges: BTreeSet::new(),
        }
    }

    /// Number of nodes of the graph under construction.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of distinct undirected edges added so far.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds the undirected edge `{u, v}`.
    ///
    /// Self-loops are ignored; duplicates are merged. Returns `true` if the
    /// edge was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is not a valid node id (`>= n`).
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        assert!(
            u < self.num_nodes && v < self.num_nodes,
            "edge ({u}, {v}) references a node outside 0..{}",
            self.num_nodes
        );
        if u == v {
            return false;
        }
        self.edges.insert(canonical_edge(u, v))
    }

    /// Returns `true` if the undirected edge `{u, v}` has been added.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.edges.contains(&canonical_edge(u, v))
    }

    /// Adds all edges from an iterator. See [`GraphBuilder::add_edge`].
    pub fn extend_edges<I: IntoIterator<Item = Edge>>(&mut self, edges: I) {
        for (u, v) in edges {
            self.add_edge(u, v);
        }
    }

    /// Grows the node set to `n` nodes if `n` is larger than the current size.
    pub fn ensure_nodes(&mut self, n: usize) {
        self.num_nodes = self.num_nodes.max(n);
    }

    /// Finalizes the builder into an immutable [`CsrGraph`].
    pub fn build(self) -> CsrGraph {
        let mut adjacency = vec![Vec::new(); self.num_nodes];
        for (u, v) in &self.edges {
            adjacency[*u].push(*v);
            adjacency[*v].push(*u);
        }
        // BTreeSet iteration is sorted by (u, v); each adjacency list receives
        // targets in increasing order of the *other* endpoint only for the
        // first component, so sort explicitly to guarantee the CSR invariant.
        for list in &mut adjacency {
            list.sort_unstable();
        }
        CsrGraph::from_sorted_adjacency(adjacency)
    }

    /// Finalizes into a cache-aware relabeled [`CsrGraph`] plus the
    /// [`NodePermutation`] mapping results back to the builder's ids.
    /// Equivalent to [`GraphBuilder::build`] followed by
    /// [`relabel`](crate::relabel::relabel); see the relabel module docs
    /// for the permute → color → un-permute bit-identity story.
    pub fn build_relabeled(self, policy: RelabelPolicy) -> (CsrGraph, NodePermutation) {
        relabel(&self.build(), policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deduplicates_and_ignores_self_loops() {
        let mut b = GraphBuilder::new(3);
        assert!(b.add_edge(0, 1));
        assert!(!b.add_edge(1, 0));
        assert!(!b.add_edge(1, 1));
        assert_eq!(b.num_edges(), 1);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(1), 1);
    }

    #[test]
    #[should_panic(expected = "references a node outside")]
    fn rejects_out_of_range_nodes() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 5);
    }

    #[test]
    fn ensure_nodes_grows_but_never_shrinks() {
        let mut b = GraphBuilder::new(2);
        b.ensure_nodes(10);
        assert_eq!(b.num_nodes(), 10);
        b.ensure_nodes(4);
        assert_eq!(b.num_nodes(), 10);
        b.add_edge(9, 0);
        assert_eq!(b.build().num_nodes(), 10);
    }

    #[test]
    fn extend_edges_and_has_edge() {
        let mut b = GraphBuilder::new(4);
        b.extend_edges([(0, 1), (1, 2), (2, 3)]);
        assert!(b.has_edge(2, 1));
        assert!(!b.has_edge(0, 3));
        assert_eq!(b.num_edges(), 3);
    }

    #[test]
    fn adjacency_lists_are_sorted() {
        let mut b = GraphBuilder::new(5);
        b.extend_edges([(4, 2), (2, 0), (2, 3), (1, 2)]);
        let g = b.build();
        assert_eq!(g.neighbors(2), &[0, 1, 3, 4]);
    }
}
