//! Node-induced subgraphs with mappings back to the parent graph.

use crate::csr::CsrGraph;
use crate::types::NodeId;

/// A node-induced subgraph `G[S]` rebuilt as a standalone [`CsrGraph`]
/// together with the mapping between the local node ids `0..|S|` and the
/// original node ids.
///
/// The paper repeatedly passes induced subgraphs to recursive invocations
/// (e.g. the AMPC partitioner of Theorem 1.2 recurses on the subgraph induced
/// by the nodes whose layer is still `∞`). This type packages the recursion
/// plumbing so that layer assignments computed on the subgraph can be
/// translated back to the original vertex set.
///
/// # Examples
///
/// ```
/// use sparse_graph::{CsrGraph, InducedSubgraph};
///
/// let g = CsrGraph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
/// let sub = InducedSubgraph::new(&g, &[0, 1, 2]);
/// assert_eq!(sub.graph().num_nodes(), 3);
/// assert_eq!(sub.graph().num_edges(), 2); // edges (0,1) and (1,2)
/// assert_eq!(sub.to_original(0), 0);
/// assert_eq!(sub.to_local(2), Some(2));
/// assert_eq!(sub.to_local(4), None);
/// ```
#[derive(Debug, Clone)]
pub struct InducedSubgraph {
    graph: CsrGraph,
    /// `local_to_original[local] = original`.
    local_to_original: Vec<NodeId>,
    /// `original_to_local[original] = Some(local)` for retained nodes.
    original_to_local: Vec<Option<NodeId>>,
}

impl InducedSubgraph {
    /// Builds the subgraph of `parent` induced by `nodes`.
    ///
    /// Duplicate entries in `nodes` are ignored; the local ids follow the
    /// order of first occurrence in `nodes`.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` references a node outside the parent graph.
    pub fn new(parent: &CsrGraph, nodes: &[NodeId]) -> Self {
        let n = parent.num_nodes();
        let mut original_to_local: Vec<Option<NodeId>> = vec![None; n];
        let mut local_to_original = Vec::with_capacity(nodes.len());
        for &v in nodes {
            assert!(v < n, "node {v} outside parent graph of size {n}");
            if original_to_local[v].is_none() {
                original_to_local[v] = Some(local_to_original.len());
                local_to_original.push(v);
            }
        }

        let mut adjacency: Vec<Vec<NodeId>> = vec![Vec::new(); local_to_original.len()];
        for (local_u, &orig_u) in local_to_original.iter().enumerate() {
            for &orig_w in parent.neighbors(orig_u) {
                if let Some(local_w) = original_to_local[orig_w] {
                    adjacency[local_u].push(local_w);
                }
            }
            adjacency[local_u].sort_unstable();
        }

        InducedSubgraph {
            graph: CsrGraph::from_sorted_adjacency(adjacency),
            local_to_original,
            original_to_local,
        }
    }

    /// The induced subgraph as a standalone [`CsrGraph`] on nodes
    /// `0..self.num_nodes()`.
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    /// Number of nodes retained in the subgraph.
    pub fn num_nodes(&self) -> usize {
        self.local_to_original.len()
    }

    /// Maps a local node id back to the original node id.
    ///
    /// # Panics
    ///
    /// Panics if `local` is not a valid local node id.
    pub fn to_original(&self, local: NodeId) -> NodeId {
        self.local_to_original[local]
    }

    /// Maps an original node id to its local id, or `None` if the node was
    /// not retained.
    pub fn to_local(&self, original: NodeId) -> Option<NodeId> {
        self.original_to_local.get(original).copied().flatten()
    }

    /// The original node ids retained in the subgraph, indexed by local id.
    pub fn original_nodes(&self) -> &[NodeId] {
        &self.local_to_original
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle5() -> CsrGraph {
        CsrGraph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)])
    }

    #[test]
    fn induces_correct_edge_set() {
        let g = cycle5();
        let sub = InducedSubgraph::new(&g, &[1, 2, 3]);
        assert_eq!(sub.graph().num_nodes(), 3);
        assert_eq!(sub.graph().num_edges(), 2);
        // Local ids follow order of appearance: 1 -> 0, 2 -> 1, 3 -> 2.
        assert!(sub.graph().has_edge(0, 1));
        assert!(sub.graph().has_edge(1, 2));
        assert!(!sub.graph().has_edge(0, 2));
    }

    #[test]
    fn mapping_round_trips() {
        let g = cycle5();
        let sub = InducedSubgraph::new(&g, &[4, 0, 2]);
        for local in 0..sub.num_nodes() {
            let original = sub.to_original(local);
            assert_eq!(sub.to_local(original), Some(local));
        }
        assert_eq!(sub.to_local(1), None);
        assert_eq!(sub.original_nodes(), &[4, 0, 2]);
    }

    #[test]
    fn duplicate_nodes_are_ignored() {
        let g = cycle5();
        let sub = InducedSubgraph::new(&g, &[3, 3, 3, 2]);
        assert_eq!(sub.num_nodes(), 2);
        assert_eq!(sub.graph().num_edges(), 1);
    }

    #[test]
    fn empty_selection_gives_empty_graph() {
        let g = cycle5();
        let sub = InducedSubgraph::new(&g, &[]);
        assert_eq!(sub.num_nodes(), 0);
        assert_eq!(sub.graph().num_edges(), 0);
    }

    #[test]
    #[should_panic(expected = "outside parent graph")]
    fn rejects_out_of_range_nodes() {
        let g = cycle5();
        InducedSubgraph::new(&g, &[7]);
    }
}
