//! Seeded random and deterministic generators for the sparse graph families
//! used throughout the paper's motivation and this reproduction's benchmarks.
//!
//! All random generators take an explicit `&mut impl Rng`; experiments use a
//! seeded `rand_chacha::ChaCha8Rng` so every table is reproducible bit for
//! bit.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::types::NodeId;

/// A uniformly random labelled tree on `n` nodes (via a random Prüfer-like
/// attachment process: node `i` attaches to a uniformly random node `< i`
/// after a random relabelling).
///
/// The result is connected, has `n − 1` edges and arboricity exactly 1
/// (for `n ≥ 2`).
pub fn random_tree<R: Rng + ?Sized>(n: usize, rng: &mut R) -> CsrGraph {
    let mut builder = GraphBuilder::new(n);
    if n <= 1 {
        return builder.build();
    }
    let mut labels: Vec<NodeId> = (0..n).collect();
    labels.shuffle(rng);
    for i in 1..n {
        let parent = rng.gen_range(0..i);
        builder.add_edge(labels[i], labels[parent]);
    }
    builder.build()
}

/// A random forest on `n` nodes: a random tree with every edge independently
/// kept with probability `keep_probability`.
///
/// The result has arboricity at most 1.
pub fn random_forest<R: Rng + ?Sized>(n: usize, keep_probability: f64, rng: &mut R) -> CsrGraph {
    let tree = random_tree(n, rng);
    let edges: Vec<_> = tree
        .edges()
        .filter(|_| rng.gen_bool(keep_probability.clamp(0.0, 1.0)))
        .collect();
    CsrGraph::from_edges(n, edges)
}

/// The union of `k` independent random trees on the same node set.
///
/// Since the edge set is a union of `k` forests the arboricity is at most `k`
/// (and typically very close to `k` for `n ≫ k`), making this the canonical
/// bounded-arboricity workload for the paper's algorithms: `α ≤ k` while the
/// maximum degree grows like `Θ(k log n / log log n)` — much larger than `α`.
pub fn forest_union<R: Rng + ?Sized>(n: usize, k: usize, rng: &mut R) -> CsrGraph {
    let mut builder = GraphBuilder::new(n);
    for _ in 0..k {
        let tree = random_tree(n, rng);
        builder.extend_edges(tree.edges());
    }
    builder.build()
}

/// An Erdős–Rényi `G(n, m)` graph: `m` distinct uniformly random edges.
///
/// If `m` exceeds the number of possible edges the complete graph is
/// returned.
pub fn gnm<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> CsrGraph {
    let mut builder = GraphBuilder::new(n);
    if n < 2 {
        return builder.build();
    }
    let max_edges = n * (n - 1) / 2;
    let target = m.min(max_edges);
    // Rejection sampling is fine in the sparse regime the benchmarks use
    // (m = O(n polylog n) ≪ n²); fall back to dense enumeration otherwise.
    if target * 3 >= max_edges {
        let mut all: Vec<(NodeId, NodeId)> = Vec::with_capacity(max_edges);
        for u in 0..n {
            for v in (u + 1)..n {
                all.push((u, v));
            }
        }
        all.shuffle(rng);
        builder.extend_edges(all.into_iter().take(target));
        return builder.build();
    }
    while builder.num_edges() < target {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u != v {
            builder.add_edge(u, v);
        }
    }
    builder.build()
}

/// A Barabási–Albert style preferential-attachment graph: every new node
/// attaches to `edges_per_node` existing nodes chosen proportionally to their
/// current degree.
///
/// The construction adds at most `edges_per_node` edges per node, so the
/// graph decomposes into `edges_per_node` forests and has arboricity at most
/// `edges_per_node`, while the degree distribution is heavy-tailed with
/// `∆ ≫ α` — exactly the "sparse graphs with high maximum degree" regime the
/// paper motivates.
pub fn preferential_attachment<R: Rng + ?Sized>(
    n: usize,
    edges_per_node: usize,
    rng: &mut R,
) -> CsrGraph {
    let mut builder = GraphBuilder::new(n);
    if n == 0 {
        return builder.build();
    }
    // Repeated-endpoint list for degree-proportional sampling.
    let mut endpoints: Vec<NodeId> = Vec::new();
    for v in 1..n {
        let attachments = edges_per_node.min(v);
        let mut chosen: Vec<NodeId> = Vec::with_capacity(attachments);
        for _ in 0..attachments {
            let target = if endpoints.is_empty() || rng.gen_bool(0.2) {
                // Mix in uniform choices so early nodes are not the only hubs
                // and to guarantee progress when the endpoint list is empty.
                rng.gen_range(0..v)
            } else {
                endpoints[rng.gen_range(0..endpoints.len())]
            };
            if !chosen.contains(&target) {
                chosen.push(target);
            }
        }
        for &t in &chosen {
            builder.add_edge(v, t);
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    builder.build()
}

/// A 2-dimensional grid graph with `rows × cols` nodes.
///
/// Grid graphs are planar, hence have arboricity at most 3 (in fact at most
/// 2), while being large and structured — a good "road network" stand-in.
pub fn grid(rows: usize, cols: usize) -> CsrGraph {
    let n = rows * cols;
    let mut builder = GraphBuilder::new(n);
    let id = |r: usize, c: usize| r * cols + c;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                builder.add_edge(id(r, c), id(r, c + 1));
            }
            if r + 1 < rows {
                builder.add_edge(id(r, c), id(r + 1, c));
            }
        }
    }
    builder.build()
}

/// A triangulated grid: the grid of [`grid`] plus one diagonal per cell.
/// Still planar (arboricity ≤ 3) but with denser local structure.
pub fn triangulated_grid(rows: usize, cols: usize) -> CsrGraph {
    let n = rows * cols;
    let mut builder = GraphBuilder::new(n);
    let id = |r: usize, c: usize| r * cols + c;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                builder.add_edge(id(r, c), id(r, c + 1));
            }
            if r + 1 < rows {
                builder.add_edge(id(r, c), id(r + 1, c));
            }
            if r + 1 < rows && c + 1 < cols {
                builder.add_edge(id(r, c), id(r + 1, c + 1));
            }
        }
    }
    builder.build()
}

/// The complete graph `K_n`.
pub fn complete(n: usize) -> CsrGraph {
    let mut builder = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            builder.add_edge(u, v);
        }
    }
    builder.build()
}

/// The cycle `C_n` (requires `n ≥ 3`; smaller `n` yields a path).
pub fn cycle(n: usize) -> CsrGraph {
    let mut builder = GraphBuilder::new(n);
    if n >= 2 {
        for i in 0..n.saturating_sub(1) {
            builder.add_edge(i, i + 1);
        }
        if n >= 3 {
            builder.add_edge(n - 1, 0);
        }
    }
    builder.build()
}

/// The path `P_n`.
pub fn path(n: usize) -> CsrGraph {
    let mut builder = GraphBuilder::new(n);
    for i in 1..n {
        builder.add_edge(i - 1, i);
    }
    builder.build()
}

/// The star `K_{1,n−1}` centered at node 0.
pub fn star(n: usize) -> CsrGraph {
    let mut builder = GraphBuilder::new(n);
    for v in 1..n {
        builder.add_edge(0, v);
    }
    builder.build()
}

/// The adversarial "skewed dependency graph" of Figure 2b: a spine path of
/// `spine_len` nodes where every spine node additionally has
/// `leaves_per_spine` private leaves.
///
/// The instance defeats naive volume-based exploration (Section 2.1): a
/// querying node on the spine burns its budget on leaves unless the
/// forwarding rules adaptively prioritize the spine. Arboricity is 1.
pub fn skewed_caterpillar(spine_len: usize, leaves_per_spine: usize) -> CsrGraph {
    let n = spine_len * (1 + leaves_per_spine);
    let mut builder = GraphBuilder::new(n);
    for i in 1..spine_len {
        builder.add_edge(i - 1, i);
    }
    let mut next = spine_len;
    for spine in 0..spine_len {
        for _ in 0..leaves_per_spine {
            builder.add_edge(spine, next);
            next += 1;
        }
    }
    builder.build()
}

/// A complete `arity`-ary tree of the given `depth` (a root at depth 0,
/// `arity^depth` leaves). Node 0 is the root; children of node `v` are
/// assigned consecutive ids in breadth-first order.
///
/// With `arity = β + 1` the natural β-partition of this tree has exactly
/// `depth + 1` layers and the root's dependency graph is the whole tree —
/// the canonical "deep dependency" instance behind Figure 2 of the paper.
pub fn complete_kary_tree(arity: usize, depth: usize) -> CsrGraph {
    assert!(arity >= 1, "arity must be at least 1");
    // Total nodes: 1 + arity + arity^2 + ... + arity^depth.
    let mut level_sizes = Vec::with_capacity(depth + 1);
    let mut size = 1usize;
    for _ in 0..=depth {
        level_sizes.push(size);
        size = size.saturating_mul(arity);
    }
    let n: usize = level_sizes.iter().sum();
    let mut builder = GraphBuilder::new(n);
    let mut next_child = 1usize;
    let mut frontier = vec![0usize];
    for _ in 0..depth {
        let mut next_frontier = Vec::with_capacity(frontier.len() * arity);
        for &parent in &frontier {
            for _ in 0..arity {
                builder.add_edge(parent, next_child);
                next_frontier.push(next_child);
                next_child += 1;
            }
        }
        frontier = next_frontier;
    }
    builder.build()
}

/// A complete bipartite graph `K_{a,b}` (left part `0..a`, right part
/// `a..a+b`). Its arboricity is `⌈ab / (a + b − 1)⌉`, useful for exercising
/// the large-α code paths with a graph whose maximum degree equals one side.
pub fn complete_bipartite(a: usize, b: usize) -> CsrGraph {
    let mut builder = GraphBuilder::new(a + b);
    for u in 0..a {
        for v in 0..b {
            builder.add_edge(u, a + v);
        }
    }
    builder.build()
}

/// A "hub-and-spoke community" graph: `communities` disjoint stars of size
/// `community_size` whose hubs form a cycle. Arboricity 2, maximum degree
/// `community_size + 1` — another `∆ ≫ α` workload.
pub fn hub_and_spoke(communities: usize, community_size: usize) -> CsrGraph {
    let n = communities * community_size;
    let mut builder = GraphBuilder::new(n.max(communities));
    let hub = |c: usize| c * community_size;
    for c in 0..communities {
        for i in 1..community_size {
            builder.add_edge(hub(c), hub(c) + i);
        }
        if communities >= 2 {
            builder.add_edge(hub(c), hub((c + 1) % communities));
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arboricity::ArboricityEstimate;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn random_tree_is_a_spanning_tree() {
        let g = random_tree(100, &mut rng(1));
        assert_eq!(g.num_nodes(), 100);
        assert_eq!(g.num_edges(), 99);
        assert_eq!(g.num_connected_components(), 1);
        assert!(g.is_forest());
    }

    #[test]
    fn random_forest_is_a_forest() {
        let g = random_forest(200, 0.7, &mut rng(2));
        assert!(g.is_forest());
        assert!(g.num_edges() <= 199);
    }

    #[test]
    fn forest_union_has_bounded_arboricity() {
        for k in [1usize, 2, 4, 8] {
            let g = forest_union(300, k, &mut rng(3 + k as u64));
            let est = ArboricityEstimate::of(&g);
            // Union of k forests: arboricity at most k; degeneracy at most 2k - 1.
            assert!(
                est.upper <= 2 * k,
                "degeneracy {} too large for k = {k}",
                est.upper
            );
            assert!(g.num_edges() <= k * 299);
        }
    }

    #[test]
    fn gnm_has_requested_edge_count() {
        let g = gnm(100, 250, &mut rng(4));
        assert_eq!(g.num_edges(), 250);
        // Requesting more edges than possible yields the complete graph.
        let g = gnm(5, 1000, &mut rng(5));
        assert_eq!(g.num_edges(), 10);
    }

    #[test]
    fn preferential_attachment_is_sparse_with_high_degree() {
        let g = preferential_attachment(2_000, 3, &mut rng(6));
        assert!(g.num_edges() <= 3 * 2_000);
        let est = ArboricityEstimate::of(&g);
        assert!(est.upper <= 6, "degeneracy {} exceeds 2 * m0", est.upper);
        // Heavy tail: the max degree should comfortably exceed the degeneracy.
        assert!(g.max_degree() > 2 * est.upper);
    }

    #[test]
    fn grid_graphs_are_planar_sparse() {
        let g = grid(20, 30);
        assert_eq!(g.num_nodes(), 600);
        assert_eq!(g.num_edges(), 20 * 29 + 30 * 19);
        assert!(ArboricityEstimate::of(&g).upper <= 2);

        let t = triangulated_grid(10, 10);
        assert!(ArboricityEstimate::of(&t).upper <= 3);
        // The triangulated grid adds one diagonal per interior cell.
        assert_eq!(t.num_edges(), grid(10, 10).num_edges() + 9 * 9);
    }

    #[test]
    fn deterministic_families_have_expected_shape() {
        assert_eq!(complete(6).num_edges(), 15);
        assert_eq!(cycle(7).num_edges(), 7);
        assert_eq!(cycle(2).num_edges(), 1);
        assert_eq!(path(9).num_edges(), 8);
        assert_eq!(star(11).num_edges(), 10);
        assert_eq!(star(11).max_degree(), 10);
        assert_eq!(complete_bipartite(3, 4).num_edges(), 12);
    }

    #[test]
    fn skewed_caterpillar_shape() {
        let g = skewed_caterpillar(10, 5);
        assert_eq!(g.num_nodes(), 60);
        assert_eq!(g.num_edges(), 9 + 50);
        assert!(g.is_forest());
        // Interior spine nodes have degree 2 (spine) + 5 (leaves).
        assert_eq!(g.degree(5), 7);
    }

    #[test]
    fn complete_kary_tree_shape() {
        let g = complete_kary_tree(3, 3);
        assert_eq!(g.num_nodes(), 1 + 3 + 9 + 27);
        assert_eq!(g.num_edges(), g.num_nodes() - 1);
        assert!(g.is_forest());
        assert_eq!(g.degree(0), 3);
        // Interior nodes have degree arity + 1.
        assert_eq!(g.degree(1), 4);
        // A single-level "tree" is a star.
        let star_like = complete_kary_tree(5, 1);
        assert_eq!(star_like.num_nodes(), 6);
        assert_eq!(star_like.max_degree(), 5);
    }

    #[test]
    fn hub_and_spoke_shape() {
        let g = hub_and_spoke(4, 10);
        assert_eq!(g.num_nodes(), 40);
        // Each hub: 9 spokes; hub cycle: 4 edges.
        assert_eq!(g.num_edges(), 4 * 9 + 4);
        assert!(g.max_degree() >= 11);
        assert!(ArboricityEstimate::of(&g).upper <= 2);
    }

    #[test]
    fn generators_are_deterministic_for_fixed_seed() {
        let a = forest_union(150, 3, &mut rng(42));
        let b = forest_union(150, 3, &mut rng(42));
        assert_eq!(a, b);
        let c = forest_union(150, 3, &mut rng(43));
        assert_ne!(a, c);
    }
}
