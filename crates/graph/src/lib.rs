//! # sparse-graph
//!
//! Graph substrate for the reproduction of *Adaptive Massively Parallel
//! Coloring in Sparse Graphs* (PODC 2024).
//!
//! The crate provides everything the higher-level algorithmic crates need
//! from a graph library:
//!
//! * a compact, immutable [`CsrGraph`] representation together with a
//!   mutable [`GraphBuilder`],
//! * seeded random **generators** for the sparse graph families the paper
//!   targets (forests, unions of forests, planar grids, power-law graphs,
//!   Erdős–Rényi graphs and the adversarial "skewed" instances of Figure 2b),
//! * **arboricity** machinery: the density lower bound of Definition 3.1,
//!   degeneracy/core decomposition (a 2-approximation of arboricity) and
//!   Nash–Williams-style forest decompositions derived from acyclic low
//!   out-degree orientations,
//! * edge [`Orientation`]s with acyclicity checks and out-degree statistics,
//! * proper vertex [`Coloring`]s with validation helpers and greedy
//!   reference algorithms,
//! * cache-aware **node relabeling** ([`RelabelPolicy`] /
//!   [`NodePermutation`]): deterministic degree-sorted and reverse
//!   Cuthill–McKee permutations applied at build time, with
//!   permute/un-permute helpers so relabeled runs stay bit-identical to
//!   unrelabeled ones.
//!
//! # Quick example
//!
//! ```
//! use sparse_graph::{generators, Coloring, greedy_by_degeneracy_order};
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
//! // A union of 3 random forests has arboricity at most 3.
//! let graph = generators::forest_union(1_000, 3, &mut rng);
//! let coloring = greedy_by_degeneracy_order(&graph);
//! assert!(coloring.is_proper(&graph));
//! // Degeneracy-order greedy uses at most degeneracy+1 <= 2*arboricity colors.
//! assert!(coloring.num_colors() <= 2 * 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arboricity;
mod builder;
mod coloring;
mod csr;
mod degeneracy;
mod forest;
mod io;
mod orientation;
mod relabel;
mod subgraph;
mod types;

pub mod generators;

pub use arboricity::{arboricity_density_lower_bound, arboricity_upper_bound, ArboricityEstimate};
pub use builder::GraphBuilder;
pub use coloring::{
    greedy_by_degeneracy_order, greedy_by_id_order, greedy_by_order, greedy_from_orientation,
    Coloring, PartialColoring,
};
pub use csr::CsrGraph;
pub use degeneracy::{core_numbers, degeneracy, degeneracy_ordering, DegeneracyDecomposition};
pub use forest::{forest_decomposition, ForestDecomposition};
pub use io::{
    parse_edge_list, read_edge_list, read_edge_list_bounded, write_edge_list, EdgeListReader,
    ParseEdgeListError,
};
pub use orientation::Orientation;
pub use relabel::{relabel, NodePermutation, RelabelPolicy};
pub use subgraph::InducedSubgraph;
pub use types::{canonical_edge, Edge, NodeId};
