//! Immutable compressed-sparse-row (CSR) graph representation.

use serde::{Deserialize, Serialize};

use crate::builder::GraphBuilder;
use crate::types::{Edge, NodeId};

/// An immutable, undirected, simple graph stored in compressed sparse row
/// (CSR) form.
///
/// * Nodes are the integers `0..n`.
/// * The adjacency list of every node is sorted by neighbor id.
/// * Self-loops and parallel edges are removed at construction time.
///
/// The representation is the "input graph stored in the first distributed
/// data store `D_0`" of the AMPC model (Section 3.1 of the paper): the
/// algorithm crates only access it through degree and neighbor queries, which
/// is exactly the key-value interface that `D_0` exposes.
///
/// # Examples
///
/// ```
/// use sparse_graph::CsrGraph;
///
/// // A triangle plus a pendant vertex.
/// let graph = CsrGraph::from_edges(4, [(0, 1), (1, 2), (2, 0), (2, 3)]);
/// assert_eq!(graph.num_nodes(), 4);
/// assert_eq!(graph.num_edges(), 4);
/// assert_eq!(graph.degree(2), 3);
/// assert_eq!(graph.neighbors(3), &[2]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CsrGraph {
    /// `offsets[v]..offsets[v + 1]` is the slice of `targets` holding `v`'s
    /// neighbors.
    offsets: Vec<usize>,
    /// Concatenated, per-node-sorted adjacency lists.
    targets: Vec<NodeId>,
}

impl CsrGraph {
    /// Creates an empty graph with `n` isolated nodes.
    ///
    /// ```
    /// let graph = sparse_graph::CsrGraph::empty(5);
    /// assert_eq!(graph.num_nodes(), 5);
    /// assert_eq!(graph.num_edges(), 0);
    /// ```
    pub fn empty(n: usize) -> Self {
        CsrGraph {
            offsets: vec![0; n + 1],
            targets: Vec::new(),
        }
    }

    /// Builds a graph with `n` nodes from an iterator of undirected edges.
    ///
    /// Self-loops are dropped and parallel edges are merged.
    ///
    /// # Panics
    ///
    /// Panics if an edge references a node `>= n`.
    pub fn from_edges<I>(n: usize, edges: I) -> Self
    where
        I: IntoIterator<Item = Edge>,
    {
        let mut builder = GraphBuilder::new(n);
        for (u, v) in edges {
            builder.add_edge(u, v);
        }
        builder.build()
    }

    /// Internal constructor used by [`GraphBuilder`]; expects adjacency lists
    /// that are already deduplicated and sorted.
    pub(crate) fn from_sorted_adjacency(adjacency: Vec<Vec<NodeId>>) -> Self {
        let n = adjacency.len();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::new();
        offsets.push(0);
        for list in &adjacency {
            targets.extend_from_slice(list);
            offsets.push(targets.len());
        }
        CsrGraph { offsets, targets }
    }

    /// Internal constructor from prebuilt CSR arrays; used by the relabel
    /// machinery, which emits already-sorted, already-deduplicated rows and
    /// would waste a full adjacency-list round-trip on
    /// [`CsrGraph::from_sorted_adjacency`].
    pub(crate) fn from_csr_parts(offsets: Vec<usize>, targets: Vec<NodeId>) -> Self {
        debug_assert_eq!(offsets.first().copied(), Some(0));
        debug_assert_eq!(offsets.last().copied(), Some(targets.len()));
        debug_assert!(offsets.windows(2).all(|pair| pair[0] <= pair[1]));
        CsrGraph { offsets, targets }
    }

    /// Number of nodes `n`.
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges `m`.
    pub fn num_edges(&self) -> usize {
        self.targets.len() / 2
    }

    /// Degree of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= self.num_nodes()`.
    pub fn degree(&self, v: NodeId) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// The sorted adjacency list of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= self.num_nodes()`.
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.targets[self.offsets[v]..self.offsets[v + 1]]
    }

    /// The `i`-th neighbor (0-based) of node `v`, as exposed by the LCA
    /// adjacency-list oracle of [RTVX11].
    ///
    /// Returns `None` if `i >= self.degree(v)`.
    pub fn neighbor(&self, v: NodeId, i: usize) -> Option<NodeId> {
        self.neighbors(v).get(i).copied()
    }

    /// Returns `true` if the undirected edge `{u, v}` is present.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        if u >= self.num_nodes() || v >= self.num_nodes() {
            return false;
        }
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterator over all nodes `0..n`.
    pub fn nodes(&self) -> std::ops::Range<NodeId> {
        0..self.num_nodes()
    }

    /// Iterator over all undirected edges in canonical `(u, v)` form with
    /// `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.nodes().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Maximum degree `∆` of the graph (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        self.nodes().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Average degree `2m / n` (0.0 for an empty graph).
    pub fn average_degree(&self) -> f64 {
        if self.num_nodes() == 0 {
            0.0
        } else {
            (2 * self.num_edges()) as f64 / self.num_nodes() as f64
        }
    }

    /// Histogram of degrees: entry `d` counts nodes of degree `d`.
    pub fn degree_histogram(&self) -> Vec<usize> {
        let mut histogram = vec![0usize; self.max_degree() + 1];
        for v in self.nodes() {
            histogram[self.degree(v)] += 1;
        }
        histogram
    }

    /// Number of connected components.
    pub fn num_connected_components(&self) -> usize {
        let n = self.num_nodes();
        let mut seen = vec![false; n];
        let mut components = 0;
        let mut stack = Vec::new();
        for start in 0..n {
            if seen[start] {
                continue;
            }
            components += 1;
            seen[start] = true;
            stack.push(start);
            while let Some(v) = stack.pop() {
                for &w in self.neighbors(v) {
                    if !seen[w] {
                        seen[w] = true;
                        stack.push(w);
                    }
                }
            }
        }
        components
    }

    /// Returns `true` if the graph contains no cycle (i.e. it is a forest).
    pub fn is_forest(&self) -> bool {
        // A graph is a forest iff m = n - (#components).
        self.num_edges() + self.num_connected_components() == self.num_nodes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_pendant() -> CsrGraph {
        CsrGraph::from_edges(4, [(0, 1), (1, 2), (2, 0), (2, 3)])
    }

    #[test]
    fn empty_graph_has_no_edges() {
        let g = CsrGraph::empty(3);
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.num_connected_components(), 3);
        assert!(g.is_forest());
    }

    #[test]
    fn from_edges_builds_sorted_adjacency() {
        let g = triangle_plus_pendant();
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.neighbors(2), &[0, 1, 3]);
        assert_eq!(g.neighbors(3), &[2]);
    }

    #[test]
    fn from_edges_removes_duplicates_and_self_loops() {
        let g = CsrGraph::from_edges(3, [(0, 1), (1, 0), (0, 1), (2, 2)]);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(2), 0);
    }

    #[test]
    fn has_edge_and_neighbor_lookup() {
        let g = triangle_plus_pendant();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 3));
        assert!(!g.has_edge(0, 17));
        assert_eq!(g.neighbor(2, 0), Some(0));
        assert_eq!(g.neighbor(2, 2), Some(3));
        assert_eq!(g.neighbor(2, 3), None);
    }

    #[test]
    fn edges_iterator_is_canonical_and_complete() {
        let g = triangle_plus_pendant();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2), (2, 3)]);
    }

    #[test]
    fn degree_statistics() {
        let g = triangle_plus_pendant();
        assert_eq!(g.max_degree(), 3);
        assert!((g.average_degree() - 2.0).abs() < 1e-9);
        assert_eq!(g.degree_histogram(), vec![0, 1, 2, 1]);
    }

    #[test]
    fn connectivity_and_forest_detection() {
        let g = triangle_plus_pendant();
        assert_eq!(g.num_connected_components(), 1);
        assert!(!g.is_forest());

        let path = CsrGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        assert!(path.is_forest());

        let two_components = CsrGraph::from_edges(4, [(0, 1), (2, 3)]);
        assert_eq!(two_components.num_connected_components(), 2);
        assert!(two_components.is_forest());
    }

    #[test]
    fn clone_and_equality() {
        let g = triangle_plus_pendant();
        assert_eq!(g.clone(), g);
        assert_ne!(g, CsrGraph::empty(4));
    }
}
