//! Plain-text edge-list parsing and writing.
//!
//! Two entry points share one line-level parser: [`parse_edge_list`] for
//! in-memory text and [`read_edge_list`] for streaming sources (a file, a
//! socket body) via any [`BufRead`] — the serving subsystem feeds HTTP
//! request bodies through the latter without buffering the whole graph
//! twice.

use std::fmt;
use std::io::BufRead;

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;

/// Error returned by [`parse_edge_list`] and [`read_edge_list`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseEdgeListError {
    /// A line held fewer than two node ids.
    MissingNodeId {
        /// 1-based line number.
        line: usize,
    },
    /// A token was not a non-negative integer node id.
    InvalidNodeId {
        /// 1-based line number.
        line: usize,
        /// The offending token.
        token: String,
    },
    /// A line held more than two node ids.
    TrailingTokens {
        /// 1-based line number.
        line: usize,
    },
    /// A node id exceeded the reader's configured limit (untrusted-input
    /// guard: without it a single line like `0 999999999999` would demand a
    /// terabyte-sized adjacency allocation).
    NodeIdOutOfRange {
        /// 1-based line number.
        line: usize,
        /// The offending node id.
        id: usize,
        /// The configured limit (ids must be `< limit`).
        limit: usize,
    },
    /// The underlying reader failed (streaming input only).
    Io {
        /// 1-based line number at which the read failed.
        line: usize,
        /// The I/O error rendered as text (kept as a string so the error
        /// stays `Clone + PartialEq` for callers and tests).
        message: String,
    },
}

impl ParseEdgeListError {
    /// The 1-based line number where parsing failed.
    pub fn line(&self) -> usize {
        match self {
            ParseEdgeListError::MissingNodeId { line }
            | ParseEdgeListError::InvalidNodeId { line, .. }
            | ParseEdgeListError::TrailingTokens { line }
            | ParseEdgeListError::NodeIdOutOfRange { line, .. }
            | ParseEdgeListError::Io { line, .. } => *line,
        }
    }
}

impl fmt::Display for ParseEdgeListError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseEdgeListError::MissingNodeId { line } => {
                write!(
                    f,
                    "edge list parse error on line {line}: expected two node ids"
                )
            }
            ParseEdgeListError::InvalidNodeId { line, token } => {
                write!(
                    f,
                    "edge list parse error on line {line}: invalid node id `{token}`"
                )
            }
            ParseEdgeListError::TrailingTokens { line } => {
                write!(
                    f,
                    "edge list parse error on line {line}: expected exactly two node ids"
                )
            }
            ParseEdgeListError::NodeIdOutOfRange { line, id, limit } => {
                write!(
                    f,
                    "edge list parse error on line {line}: node id {id} exceeds the limit of {limit} nodes"
                )
            }
            ParseEdgeListError::Io { line, message } => {
                write!(f, "edge list read error on line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for ParseEdgeListError {}

/// Incremental edge-list reader: feed lines, then [`finish`].
///
/// Comment lines (`#`, `%` or `c` prefixes, the latter as used by DIMACS
///-style files) and blank lines are ignored.
///
/// [`finish`]: EdgeListReader::finish
#[derive(Debug)]
pub struct EdgeListReader {
    edges: Vec<(usize, usize)>,
    max_node: usize,
    has_nodes: bool,
    lines_seen: usize,
    node_limit: usize,
}

impl Default for EdgeListReader {
    fn default() -> Self {
        EdgeListReader::new()
    }
}

impl EdgeListReader {
    /// Creates an empty reader accepting any node id.
    pub fn new() -> Self {
        EdgeListReader {
            edges: Vec::new(),
            max_node: 0,
            has_nodes: false,
            lines_seen: 0,
            node_limit: usize::MAX,
        }
    }

    /// Rejects node ids `>= limit` with
    /// [`ParseEdgeListError::NodeIdOutOfRange`] instead of accepting them —
    /// required when the input is untrusted, since the node count (and the
    /// adjacency allocation) is `max id + 1`.
    pub fn with_node_limit(mut self, limit: usize) -> Self {
        self.node_limit = limit;
        self
    }

    /// Number of (non-comment) edges accepted so far.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Consumes one line of input.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseEdgeListError`] if the line is malformed; the
    /// reader's prior state is unaffected, so the caller may skip or abort.
    pub fn push_line(&mut self, raw_line: &str) -> Result<(), ParseEdgeListError> {
        self.lines_seen += 1;
        let line_number = self.lines_seen;
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            return Ok(());
        }
        // `c`-prefixed comments (DIMACS idiom): only when the token is the
        // single letter, so node ids never collide with it.
        if line == "c" || line.starts_with("c ") || line.starts_with("c\t") {
            return Ok(());
        }
        let mut parts = line.split_whitespace();
        let parse = |token: Option<&str>| -> Result<usize, ParseEdgeListError> {
            let token = token.ok_or(ParseEdgeListError::MissingNodeId { line: line_number })?;
            token
                .parse::<usize>()
                .map_err(|_| ParseEdgeListError::InvalidNodeId {
                    line: line_number,
                    token: token.to_string(),
                })
        };
        let u = parse(parts.next())?;
        let v = parse(parts.next())?;
        if parts.next().is_some() {
            return Err(ParseEdgeListError::TrailingTokens { line: line_number });
        }
        if let Some(&id) = [u, v].iter().find(|&&id| id >= self.node_limit) {
            return Err(ParseEdgeListError::NodeIdOutOfRange {
                line: line_number,
                id,
                limit: self.node_limit,
            });
        }
        self.max_node = self.max_node.max(u).max(v);
        self.has_nodes = true;
        self.edges.push((u, v));
        Ok(())
    }

    /// Builds the graph from everything read so far. The node count is
    /// `max id + 1` unless a larger `min_nodes` is given.
    ///
    /// # Panics
    ///
    /// Panics if the largest node id is `usize::MAX` (impossible under a
    /// [`node limit`](EdgeListReader::with_node_limit)).
    pub fn finish(self, min_nodes: usize) -> CsrGraph {
        let n = if self.has_nodes {
            self.max_node
                .checked_add(1)
                .expect("node id overflows the node count")
        } else {
            0
        }
        .max(min_nodes);
        let mut builder = GraphBuilder::new(n);
        builder.extend_edges(self.edges);
        builder.build()
    }
}

/// Parses a whitespace-separated edge list held in memory.
///
/// * Empty lines and lines starting with `#`, `%` or `c` are ignored.
/// * Each remaining line must contain two node ids.
/// * The node count is `max id + 1` unless a larger `min_nodes` is given.
///
/// # Errors
///
/// Returns a [`ParseEdgeListError`] pointing at the first malformed line.
///
/// # Examples
///
/// ```
/// let text = "# a triangle\n0 1\n1 2\n2 0\n";
/// let graph = sparse_graph::parse_edge_list(text, 0)?;
/// assert_eq!(graph.num_nodes(), 3);
/// assert_eq!(graph.num_edges(), 3);
/// # Ok::<(), sparse_graph::ParseEdgeListError>(())
/// ```
pub fn parse_edge_list(text: &str, min_nodes: usize) -> Result<CsrGraph, ParseEdgeListError> {
    let mut reader = EdgeListReader::new();
    for line in text.lines() {
        reader.push_line(line)?;
    }
    Ok(reader.finish(min_nodes))
}

/// Streams a whitespace-separated edge list from any [`BufRead`] source
/// (file, socket body, …) without materializing the text first. Same
/// grammar as [`parse_edge_list`].
///
/// # Errors
///
/// Returns a [`ParseEdgeListError`] pointing at the first malformed line,
/// or [`ParseEdgeListError::Io`] if the reader itself fails.
pub fn read_edge_list<R: BufRead>(
    reader: R,
    min_nodes: usize,
) -> Result<CsrGraph, ParseEdgeListError> {
    read_edge_list_bounded(reader, min_nodes, usize::MAX)
}

/// Like [`read_edge_list`], but rejecting node ids `>= max_nodes` — the
/// entry point for untrusted sources (e.g. an HTTP request body), where an
/// attacker-chosen node id must not dictate the adjacency allocation.
///
/// # Errors
///
/// As [`read_edge_list`], plus [`ParseEdgeListError::NodeIdOutOfRange`].
pub fn read_edge_list_bounded<R: BufRead>(
    reader: R,
    min_nodes: usize,
    max_nodes: usize,
) -> Result<CsrGraph, ParseEdgeListError> {
    let mut parser = EdgeListReader::new().with_node_limit(max_nodes);
    for line in reader.lines() {
        let line = line.map_err(|error| ParseEdgeListError::Io {
            line: parser.lines_seen + 1,
            message: error.to_string(),
        })?;
        parser.push_line(&line)?;
    }
    Ok(parser.finish(min_nodes))
}

/// Writes the graph as a canonical edge list (one `u v` pair per line, with a
/// leading comment recording `n` and `m`).
pub fn write_edge_list(graph: &CsrGraph) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# nodes: {} edges: {}\n",
        graph.num_nodes(),
        graph.num_edges()
    ));
    for (u, v) in graph.edges() {
        out.push_str(&format!("{u} {v}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_comments_and_blank_lines() {
        let text = "# comment\n\n% another\nc dimacs comment\nc\n0 1\n 1 2 \n";
        let g = parse_edge_list(text, 0).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn respects_min_nodes() {
        let g = parse_edge_list("0 1\n", 10).unwrap();
        assert_eq!(g.num_nodes(), 10);
        let empty = parse_edge_list("", 4).unwrap();
        assert_eq!(empty.num_nodes(), 4);
        assert_eq!(empty.num_edges(), 0);
    }

    #[test]
    fn reports_malformed_lines() {
        let err = parse_edge_list("0 1\nbroken\n", 0).unwrap_err();
        assert_eq!(
            err,
            ParseEdgeListError::InvalidNodeId {
                line: 2,
                token: "broken".to_string()
            }
        );
        assert_eq!(err.line(), 2);
        assert!(err.to_string().contains("line 2"));

        let err = parse_edge_list("0\n", 0).unwrap_err();
        assert_eq!(err, ParseEdgeListError::MissingNodeId { line: 1 });

        let err = parse_edge_list("0 1 2\n", 0).unwrap_err();
        assert_eq!(err, ParseEdgeListError::TrailingTokens { line: 1 });
    }

    #[test]
    fn display_covers_every_variant() {
        let cases: Vec<(ParseEdgeListError, &str)> = vec![
            (
                ParseEdgeListError::MissingNodeId { line: 3 },
                "edge list parse error on line 3: expected two node ids",
            ),
            (
                ParseEdgeListError::InvalidNodeId {
                    line: 7,
                    token: "x9".to_string(),
                },
                "edge list parse error on line 7: invalid node id `x9`",
            ),
            (
                ParseEdgeListError::TrailingTokens { line: 11 },
                "edge list parse error on line 11: expected exactly two node ids",
            ),
            (
                ParseEdgeListError::NodeIdOutOfRange {
                    line: 5,
                    id: 900,
                    limit: 100,
                },
                "edge list parse error on line 5: node id 900 exceeds the limit of 100 nodes",
            ),
            (
                ParseEdgeListError::Io {
                    line: 2,
                    message: "connection reset".to_string(),
                },
                "edge list read error on line 2: connection reset",
            ),
        ];
        for (error, expected) in cases {
            assert_eq!(error.to_string(), expected);
            assert!(error.line() > 0);
        }
    }

    #[test]
    fn c_prefixed_ids_are_not_comments() {
        // A lone `c` or `c ` prefix is a comment; a token *starting* with c
        // is still an invalid id, not silently skipped.
        let err = parse_edge_list("c3 4\n", 0).unwrap_err();
        assert_eq!(
            err,
            ParseEdgeListError::InvalidNodeId {
                line: 1,
                token: "c3".to_string()
            }
        );
    }

    #[test]
    fn node_limit_rejects_huge_ids() {
        let err = read_edge_list_bounded(std::io::Cursor::new("0 1\n2 999999999999\n"), 0, 1000)
            .unwrap_err();
        assert_eq!(
            err,
            ParseEdgeListError::NodeIdOutOfRange {
                line: 2,
                id: 999_999_999_999,
                limit: 1000,
            }
        );
        // In-range ids still parse under a limit.
        let g = read_edge_list_bounded(std::io::Cursor::new("0 1\n"), 0, 1000).unwrap();
        assert_eq!(g.num_nodes(), 2);
    }

    #[test]
    fn streaming_reader_matches_in_memory_parser() {
        let text = "# header\nc comment\n0 1\n1 2\n\n2 3\n";
        let streamed = read_edge_list(std::io::Cursor::new(text), 0).unwrap();
        let parsed = parse_edge_list(text, 0).unwrap();
        assert_eq!(streamed, parsed);
        assert_eq!(streamed.num_edges(), 3);
    }

    #[test]
    fn streaming_reader_is_incremental() {
        let mut reader = EdgeListReader::new();
        reader.push_line("# comment").unwrap();
        assert_eq!(reader.num_edges(), 0);
        reader.push_line("0 1").unwrap();
        reader.push_line("1 2").unwrap();
        assert_eq!(reader.num_edges(), 2);
        // A malformed line reports its true line number (comments counted).
        let err = reader.push_line("nope").unwrap_err();
        assert_eq!(err.line(), 4);
        let g = reader.finish(0);
        assert_eq!(g.num_nodes(), 3);
    }

    #[test]
    fn round_trip() {
        let g = CsrGraph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        let text = write_edge_list(&g);
        let parsed = parse_edge_list(&text, 0).unwrap();
        assert_eq!(parsed, g);
    }

    /// Property-style fuzzing of the untrusted-input path: hundreds of
    /// randomly mutated edge lists (and pure byte soup) must either parse
    /// or fail with a structured error pointing at a real line — never
    /// panic, never disagree between the in-memory and streaming parsers,
    /// and never accept a node id past the configured bound. The LCG is
    /// seeded deterministically so any failure reproduces exactly.
    #[test]
    fn fuzzed_edge_lists_never_panic_and_parsers_agree() {
        let mut lcg = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (lcg >> 33) as u32
        };
        let seed_text = "# header\nc comment\n0 1\n1 2\n2 3\n3 0\n4 5\n% tail\n";
        for case in 0..400 {
            // Half the cases mutate a valid document, half are raw noise —
            // the former probe near-miss grammar, the latter probe the
            // tokenizer's worst inputs.
            let text = if case % 2 == 0 {
                let mut bytes = seed_text.as_bytes().to_vec();
                for _ in 0..=(next() % 8) {
                    let at = next() as usize % bytes.len();
                    bytes[at] = next() as u8;
                }
                String::from_utf8_lossy(&bytes).into_owned()
            } else {
                let len = next() as usize % 64;
                let bytes: Vec<u8> = (0..len).map(|_| next() as u8).collect();
                String::from_utf8_lossy(&bytes).into_owned()
            };
            let limit = 1 + next() as usize % 4096;

            let in_memory = parse_edge_list(&text, 0);
            let streamed = read_edge_list(std::io::Cursor::new(text.as_bytes()), 0);
            match (&in_memory, &streamed) {
                (Ok(a), Ok(b)) => assert_eq!(a, b, "case {case}: parsers diverged on {text:?}"),
                (Err(a), Err(b)) => {
                    assert_eq!(a, b, "case {case}: errors diverged on {text:?}");
                    let lines = text.lines().count().max(1);
                    assert!(
                        a.line() >= 1 && a.line() <= lines,
                        "case {case}: error line {} outside 1..={lines} for {text:?}",
                        a.line()
                    );
                    // Every error renders a line-numbered message.
                    assert!(a.to_string().contains(&format!("line {}", a.line())));
                }
                _ => panic!("case {case}: parsers disagreed on Ok/Err for {text:?}"),
            }

            // The bounded reader upholds its allocation guard: whatever it
            // accepts fits the limit (plus min_nodes padding of 0 here).
            if let Ok(graph) =
                read_edge_list_bounded(std::io::Cursor::new(text.as_bytes()), 0, limit)
            {
                assert!(
                    graph.num_nodes() <= limit,
                    "case {case}: {} nodes accepted past limit {limit} for {text:?}",
                    graph.num_nodes()
                );
            }
        }
    }
}
