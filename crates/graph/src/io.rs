//! Plain-text edge-list parsing and writing.

use std::fmt;

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;

/// Error returned by [`parse_edge_list`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseEdgeListError {
    /// 1-based line number where parsing failed.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseEdgeListError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "edge list parse error on line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseEdgeListError {}

/// Parses a whitespace-separated edge list.
///
/// * Empty lines and lines starting with `#` or `%` are ignored.
/// * Each remaining line must contain two node ids.
/// * The node count is `max id + 1` unless a larger `min_nodes` is given.
///
/// # Errors
///
/// Returns a [`ParseEdgeListError`] pointing at the first malformed line.
///
/// # Examples
///
/// ```
/// let text = "# a triangle\n0 1\n1 2\n2 0\n";
/// let graph = sparse_graph::parse_edge_list(text, 0)?;
/// assert_eq!(graph.num_nodes(), 3);
/// assert_eq!(graph.num_edges(), 3);
/// # Ok::<(), sparse_graph::ParseEdgeListError>(())
/// ```
pub fn parse_edge_list(text: &str, min_nodes: usize) -> Result<CsrGraph, ParseEdgeListError> {
    let mut edges = Vec::new();
    let mut max_node = 0usize;
    let mut has_nodes = false;
    for (index, raw_line) in text.lines().enumerate() {
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let parse = |token: Option<&str>, index: usize| -> Result<usize, ParseEdgeListError> {
            let token = token.ok_or_else(|| ParseEdgeListError {
                line: index + 1,
                message: "expected two node ids".to_string(),
            })?;
            token.parse::<usize>().map_err(|_| ParseEdgeListError {
                line: index + 1,
                message: format!("invalid node id `{token}`"),
            })
        };
        let u = parse(parts.next(), index)?;
        let v = parse(parts.next(), index)?;
        if parts.next().is_some() {
            return Err(ParseEdgeListError {
                line: index + 1,
                message: "expected exactly two node ids".to_string(),
            });
        }
        max_node = max_node.max(u).max(v);
        has_nodes = true;
        edges.push((u, v));
    }
    let n = if has_nodes { max_node + 1 } else { 0 }.max(min_nodes);
    let mut builder = GraphBuilder::new(n);
    builder.extend_edges(edges);
    Ok(builder.build())
}

/// Writes the graph as a canonical edge list (one `u v` pair per line, with a
/// leading comment recording `n` and `m`).
pub fn write_edge_list(graph: &CsrGraph) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# nodes: {} edges: {}\n",
        graph.num_nodes(),
        graph.num_edges()
    ));
    for (u, v) in graph.edges() {
        out.push_str(&format!("{u} {v}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_comments_and_blank_lines() {
        let text = "# comment\n\n% another\n0 1\n 1 2 \n";
        let g = parse_edge_list(text, 0).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn respects_min_nodes() {
        let g = parse_edge_list("0 1\n", 10).unwrap();
        assert_eq!(g.num_nodes(), 10);
        let empty = parse_edge_list("", 4).unwrap();
        assert_eq!(empty.num_nodes(), 4);
        assert_eq!(empty.num_edges(), 0);
    }

    #[test]
    fn reports_malformed_lines() {
        let err = parse_edge_list("0 1\nbroken\n", 0).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("line 2"));

        let err = parse_edge_list("0\n", 0).unwrap_err();
        assert_eq!(err.line, 1);

        let err = parse_edge_list("0 1 2\n", 0).unwrap_err();
        assert!(err.message.contains("exactly two"));
    }

    #[test]
    fn round_trip() {
        let g = CsrGraph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        let text = write_edge_list(&g);
        let parsed = parse_edge_list(&text, 0).unwrap();
        assert_eq!(parsed, g);
    }
}
