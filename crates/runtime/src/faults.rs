//! Deterministic, seeded fault injection for the AMPC backends and the
//! worker pool.
//!
//! The AMPC model assumes machines that can stall or die between rounds;
//! this module is the controlled way to make that happen. A [`FaultPlan`]
//! describes *which* faults fire *where*, keyed by `(round, machine)` and
//! a seed — never by thread id, worker id or wall clock — so a plan
//! reproduces the exact same injections for any thread/shard count, which
//! is what lets the chaos equivalence matrix pin bit-identity under
//! faults.
//!
//! ## Plan format (`AMPC_FAULTS`)
//!
//! A comma-separated list of `key=value` fields:
//!
//! ```text
//! seed=7,panic=1/40,stall=1/48,stall_ms=1,merge=1/400,alloc=1/64,abort=1/96
//! ```
//!
//! * `seed=N` — seed mixed into every injection decision (default 0).
//! * `panic=1/N` — a machine body panics with probability 1/N (per
//!   `(round, machine)` cell; `0` disables, the default).
//! * `stall=1/N`, `stall_ms=M` — a machine body sleeps `M` ms.
//! * `merge=1/N` — the round's shard merge fails (per round).
//! * `alloc=1/N` — a machine body allocates and touches a scratch burst
//!   (pressure on the allocation-discipline gate).
//! * `abort=1/N` — the pool worker running the machine is poisoned: it
//!   panics the task *and* exits after the batch, forcing a supervised
//!   respawn.
//! * `kill=1/N` — the `abort` kind taken across a process boundary: the
//!   shard-worker **child process** selected by the `(round, worker)`
//!   cell is genuinely SIGKILLed by the `ProcessBackend` supervisor,
//!   which then respawns it and replays the round from its retained
//!   input (only the process backend runs child workers; the in-process
//!   backends ignore this rate).
//!
//! Every injected fault fires on **attempt 0 only**: a retried round
//! replays from the same input store with no faults, so the merged result
//! is byte-identical to an un-faulted run. Real (non-injected) failures
//! are still retried the same bounded number of times and then surfaced —
//! a deterministic error reproduces identically on every attempt, so
//! retries never change *which* error the caller sees.
//!
//! When no plan is installed the whole module collapses to one relaxed
//! atomic load per round — the no-op branch the hot path pays.

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, Once};
use std::time::Duration;

/// A fault injected into one machine's body execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskFault {
    /// Panic inside the machine body (caught, retried).
    Panic,
    /// Sleep for the plan's `stall_ms` before running the body.
    Stall,
    /// Allocate and touch a scratch burst before running the body.
    AllocPressure,
    /// Poison the executing pool worker (it panics the task and exits
    /// after the batch, triggering a supervised respawn).
    AbortWorker,
}

/// The panic payload of every injected panic. Backends downcast the
/// caught payload to this type to tell an injected fault from a real bug.
#[derive(Debug, Clone, Copy)]
pub struct InjectedPanic;

/// A deterministic, seeded description of which faults fire where.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed mixed into every injection decision.
    pub seed: u64,
    /// Fire a [`TaskFault::Panic`] in 1-in-`panic_rate` cells (0 = never).
    pub panic_rate: u64,
    /// Fire a [`TaskFault::Stall`] in 1-in-`stall_rate` cells.
    pub stall_rate: u64,
    /// How long a stalled body sleeps.
    pub stall_ms: u64,
    /// Fail the shard merge of 1-in-`merge_rate` rounds.
    pub merge_rate: u64,
    /// Fire a [`TaskFault::AllocPressure`] in 1-in-`alloc_rate` cells.
    pub alloc_rate: u64,
    /// Poison the worker of 1-in-`abort_rate` cells.
    pub abort_rate: u64,
    /// SIGKILL the shard-worker child process of 1-in-`kill_rate`
    /// `(round, worker)` cells (process backend only).
    pub kill_rate: u64,
}

impl FaultPlan {
    /// Parses the `AMPC_FAULTS` plan format.
    ///
    /// # Errors
    ///
    /// A description of the first malformed field.
    pub fn parse(text: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan {
            stall_ms: 1,
            ..FaultPlan::default()
        };
        for field in text.split(',').map(str::trim).filter(|f| !f.is_empty()) {
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| format!("fault field `{field}` is not key=value"))?;
            let rate = |value: &str| -> Result<u64, String> {
                let digits = value.strip_prefix("1/").unwrap_or(value);
                digits
                    .parse::<u64>()
                    .map_err(|_| format!("fault rate `{value}` is neither `1/N` nor an integer"))
            };
            match key.trim() {
                "seed" => plan.seed = rate(value.trim())?,
                "panic" => plan.panic_rate = rate(value.trim())?,
                "stall" => plan.stall_rate = rate(value.trim())?,
                "stall_ms" => plan.stall_ms = rate(value.trim())?,
                "merge" => plan.merge_rate = rate(value.trim())?,
                "alloc" => plan.alloc_rate = rate(value.trim())?,
                "abort" => plan.abort_rate = rate(value.trim())?,
                "kill" => plan.kill_rate = rate(value.trim())?,
                other => return Err(format!("unknown fault field `{other}`")),
            }
        }
        Ok(plan)
    }

    /// The fault (if any) injected into machine `machine` of round `round`
    /// on attempt `attempt`. Retried attempts are never faulted, so a
    /// bounded retry always converges on the plan's own injections.
    pub fn task_fault(&self, round: u64, machine: u64, attempt: u32) -> Option<TaskFault> {
        if attempt > 0 {
            return None;
        }
        let roll = mix(self.seed, round, machine);
        // Disjoint sub-rolls per kind: deriving each decision from its own
        // bits keeps e.g. panic and abort cells from always coinciding.
        if fires(roll, 0, self.abort_rate) {
            Some(TaskFault::AbortWorker)
        } else if fires(roll, 1, self.panic_rate) {
            Some(TaskFault::Panic)
        } else if fires(roll, 2, self.stall_rate) {
            Some(TaskFault::Stall)
        } else if fires(roll, 3, self.alloc_rate) {
            Some(TaskFault::AllocPressure)
        } else {
            None
        }
    }

    /// Whether round `round`'s shard merge fails on attempt `attempt`.
    pub fn merge_fails(&self, round: u64, attempt: u32) -> bool {
        attempt == 0 && fires(mix(self.seed, round, u64::MAX), 4, self.merge_rate)
    }

    /// Whether the shard-worker child process `worker` is SIGKILLed while
    /// serving round `round`. Keyed per `(round, worker)` cell — never by
    /// pid or wall clock — so a plan kills the same workers in the same
    /// rounds on every run; like every other kind it fires on attempt 0
    /// only, so the supervised replay always converges.
    pub fn worker_killed(&self, round: u64, worker: u64, attempt: u32) -> bool {
        attempt == 0 && fires(mix(self.seed, round, worker), 5, self.kill_rate)
    }
}

/// splitmix64-style finalizer over the injection cell coordinates.
fn mix(seed: u64, round: u64, machine: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(round.wrapping_mul(0xbf58_476d_1ce4_e5b9))
        .wrapping_add(machine.wrapping_mul(0x94d0_49bb_1331_11eb))
        .wrapping_add(0x2545_f491_4f6c_dd1d);
    z ^= z >> 30;
    z = z.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z ^= z >> 27;
    z = z.wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One kind's decision: a distinct byte rotation of the cell roll modulo
/// the rate. Rate 0 never fires.
fn fires(roll: u64, kind: u32, rate: u64) -> bool {
    rate != 0 && roll.rotate_left(kind * 13).is_multiple_of(rate)
}

// ---------------------------------------------------------------------------
// Process-global plan + knobs.

static INIT: Once = Once::new();
static ENABLED: AtomicBool = AtomicBool::new(false);
static PLAN: Mutex<Option<FaultPlan>> = Mutex::new(None);
/// Per-round deadline in milliseconds; 0 = no deadline.
static ROUND_DEADLINE_MS: AtomicU64 = AtomicU64::new(0);
/// Bounded retry count for failed rounds. `u32::MAX` = unset (derive the
/// default: 2 when a plan is active, 0 otherwise).
static ROUND_RETRIES: AtomicU32 = AtomicU32::new(u32::MAX);

fn ensure_init() {
    INIT.call_once(|| {
        if let Ok(text) = std::env::var("AMPC_FAULTS") {
            match FaultPlan::parse(&text) {
                Ok(plan) => {
                    *PLAN.lock().unwrap_or_else(|e| e.into_inner()) = Some(plan);
                    ENABLED.store(true, Ordering::Release);
                    silence_injected_panics();
                }
                Err(error) => eprintln!("ignoring malformed AMPC_FAULTS: {error}"),
            }
        }
        if let Some(ms) = env_u64("AMPC_ROUND_DEADLINE_MS") {
            ROUND_DEADLINE_MS.store(ms, Ordering::Relaxed);
        }
        if let Some(retries) = env_u64("AMPC_ROUND_RETRIES") {
            ROUND_RETRIES.store(retries.min(u32::MAX as u64 - 1) as u32, Ordering::Relaxed);
        }
    });
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// The active plan, if any. The disabled fast path is one relaxed load.
pub fn active() -> Option<FaultPlan> {
    ensure_init();
    if !ENABLED.load(Ordering::Acquire) {
        return None;
    }
    PLAN.lock().unwrap_or_else(|e| e.into_inner()).clone()
}

/// Installs (or with `None`, clears) the process-wide plan — the test
/// hook; production configuration goes through `AMPC_FAULTS`.
pub fn install(plan: Option<FaultPlan>) {
    ensure_init();
    let enabled = plan.is_some();
    *PLAN.lock().unwrap_or_else(|e| e.into_inner()) = plan;
    ENABLED.store(enabled, Ordering::Release);
    if enabled {
        silence_injected_panics();
    }
}

static HOOK: Once = Once::new();

/// Injected panics are expected, caught and retried — chaining the panic
/// hook once keeps a chaos run from flooding stderr with hundreds of
/// "thread panicked" reports while leaving real panics fully reported.
fn silence_injected_panics() {
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedPanic>().is_none() {
                previous(info);
            }
        }));
    });
}

/// The per-round deadline, `None` when disabled.
pub fn round_deadline() -> Option<Duration> {
    ensure_init();
    match ROUND_DEADLINE_MS.load(Ordering::Relaxed) {
        0 => None,
        ms => Some(Duration::from_millis(ms)),
    }
}

/// Sets the per-round deadline in milliseconds (0 disables). Wired from
/// `ServiceConfig::round_deadline_ms` and the `AMPC_ROUND_DEADLINE_MS`
/// env var.
pub fn set_round_deadline_ms(ms: u64) {
    ensure_init();
    ROUND_DEADLINE_MS.store(ms, Ordering::Relaxed);
}

/// How many times a failed round is retried before its failure surfaces.
/// Defaults to 2 while a plan is active (so every injected fault heals on
/// replay) and 0 otherwise; override via [`set_max_round_retries`] or
/// `AMPC_ROUND_RETRIES`.
pub fn max_round_retries() -> u32 {
    ensure_init();
    match ROUND_RETRIES.load(Ordering::Relaxed) {
        u32::MAX => {
            if ENABLED.load(Ordering::Acquire) || round_deadline().is_some() {
                2
            } else {
                0
            }
        }
        explicit => explicit,
    }
}

/// Overrides the bounded retry count for failed rounds.
pub fn set_max_round_retries(retries: u32) {
    ensure_init();
    ROUND_RETRIES.store(retries.min(u32::MAX - 1), Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Worker poisoning (the AbortWorker channel into the pool's supervisor).

thread_local! {
    static POISONED: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Marks the current thread's pool worker as poisoned; the worker loop
/// checks this after every task and respawns itself.
pub fn poison_current_worker() {
    POISONED.with(|flag| flag.set(true));
}

/// Reads and clears the current thread's poison flag.
pub fn take_worker_poison() -> bool {
    POISONED.with(|flag| flag.replace(false))
}

// ---------------------------------------------------------------------------
// Injection side effects + counters.

/// Cumulative process-wide fault/recovery counters, for tests and
/// `/metrics`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Injected machine-body panics (including worker aborts).
    pub injected_panics: u64,
    /// Injected stalls.
    pub injected_stalls: u64,
    /// Injected shard-merge failures.
    pub injected_merge_failures: u64,
    /// Injected allocation bursts.
    pub injected_allocs: u64,
    /// Workers poisoned (each forces one supervised respawn).
    pub worker_poisons: u64,
    /// Rounds that were retried after a failed attempt.
    pub rounds_retried: u64,
    /// Round attempts discarded because they overran the deadline.
    pub deadline_trips: u64,
    /// Shard-worker child processes SIGKILLed by the `kill` fault kind.
    pub worker_kills: u64,
    /// Shard-worker child processes respawned by the supervisor after a
    /// death (injected kill, external SIGKILL, EOF or deadline miss).
    pub worker_process_restarts: u64,
    /// Rounds whose input was re-streamed to a respawned worker after a
    /// mid-round death.
    pub rounds_replayed: u64,
}

static INJECTED_PANICS: AtomicU64 = AtomicU64::new(0);
static INJECTED_STALLS: AtomicU64 = AtomicU64::new(0);
static INJECTED_MERGES: AtomicU64 = AtomicU64::new(0);
static INJECTED_ALLOCS: AtomicU64 = AtomicU64::new(0);
static WORKER_POISONS: AtomicU64 = AtomicU64::new(0);
static ROUNDS_RETRIED: AtomicU64 = AtomicU64::new(0);
static DEADLINE_TRIPS: AtomicU64 = AtomicU64::new(0);
static WORKER_KILLS: AtomicU64 = AtomicU64::new(0);
static WORKER_PROCESS_RESTARTS: AtomicU64 = AtomicU64::new(0);
static ROUNDS_REPLAYED: AtomicU64 = AtomicU64::new(0);
/// Live shard-worker child processes, as `spawns - observed deaths`.
/// Signed because a death can be observed (and counted) slightly before
/// the spawn accounting of its replacement settles; reads clamp at 0.
static WORKERS_ALIVE: AtomicI64 = AtomicI64::new(0);

/// A snapshot of the process-wide fault/recovery counters.
pub fn counters() -> FaultCounters {
    FaultCounters {
        injected_panics: INJECTED_PANICS.load(Ordering::Relaxed),
        injected_stalls: INJECTED_STALLS.load(Ordering::Relaxed),
        injected_merge_failures: INJECTED_MERGES.load(Ordering::Relaxed),
        injected_allocs: INJECTED_ALLOCS.load(Ordering::Relaxed),
        worker_poisons: WORKER_POISONS.load(Ordering::Relaxed),
        rounds_retried: ROUNDS_RETRIED.load(Ordering::Relaxed),
        deadline_trips: DEADLINE_TRIPS.load(Ordering::Relaxed),
        worker_kills: WORKER_KILLS.load(Ordering::Relaxed),
        worker_process_restarts: WORKER_PROCESS_RESTARTS.load(Ordering::Relaxed),
        rounds_replayed: ROUNDS_REPLAYED.load(Ordering::Relaxed),
    }
}

/// Number of shard-worker child processes currently alive (the
/// `workers_alive` gauge in `/healthz` and `/metrics`).
pub fn workers_alive() -> u64 {
    WORKERS_ALIVE.load(Ordering::Relaxed).max(0) as u64
}

/// Records one injected SIGKILL of a shard-worker child.
pub fn note_worker_kill() {
    WORKER_KILLS.fetch_add(1, Ordering::Relaxed);
}

/// Records one shard-worker child spawn (bumps the liveness gauge).
pub fn note_worker_spawned() {
    WORKERS_ALIVE.fetch_add(1, Ordering::Relaxed);
}

/// Records one observed shard-worker child death (drops the liveness
/// gauge). Respawns are counted separately via
/// [`note_worker_process_restart`].
pub fn note_worker_death() {
    WORKERS_ALIVE.fetch_sub(1, Ordering::Relaxed);
}

/// Records one supervised respawn of a dead shard-worker child.
pub fn note_worker_process_restart() {
    WORKER_PROCESS_RESTARTS.fetch_add(1, Ordering::Relaxed);
}

/// Records one round whose input was re-streamed after a worker death.
pub fn note_round_replayed() {
    ROUNDS_REPLAYED.fetch_add(1, Ordering::Relaxed);
}

/// Records one retried round (called by the backends' retry loops).
pub fn note_round_retry() {
    ROUNDS_RETRIED.fetch_add(1, Ordering::Relaxed);
}

/// Records one deadline-overrun attempt.
pub fn note_deadline_trip() {
    DEADLINE_TRIPS.fetch_add(1, Ordering::Relaxed);
}

/// Records one injected merge failure.
pub fn note_merge_failure() {
    INJECTED_MERGES.fetch_add(1, Ordering::Relaxed);
}

/// Performs the side effect of an injected task fault. `Panic` and
/// `AbortWorker` do not return.
pub fn apply(fault: TaskFault) {
    match fault {
        TaskFault::Panic => {
            INJECTED_PANICS.fetch_add(1, Ordering::Relaxed);
            std::panic::panic_any(InjectedPanic);
        }
        TaskFault::Stall => {
            INJECTED_STALLS.fetch_add(1, Ordering::Relaxed);
            let ms = active().map_or(1, |plan| plan.stall_ms.max(1));
            std::thread::sleep(Duration::from_millis(ms));
        }
        TaskFault::AllocPressure => {
            INJECTED_ALLOCS.fetch_add(1, Ordering::Relaxed);
            // One touched allocation: enough to show up in the alloc-count
            // gate without blowing the budget at sane rates.
            let burst = vec![0u8; 4096];
            std::hint::black_box(&burst);
        }
        TaskFault::AbortWorker => {
            INJECTED_PANICS.fetch_add(1, Ordering::Relaxed);
            WORKER_POISONS.fetch_add(1, Ordering::Relaxed);
            poison_current_worker();
            std::panic::panic_any(InjectedPanic);
        }
    }
}

/// Whether a caught panic payload is an injected fault.
pub fn is_injected_panic(payload: &(dyn std::any::Any + Send)) -> bool {
    payload.downcast_ref::<InjectedPanic>().is_some()
}

// ---------------------------------------------------------------------------
// The shared bounded-retry driver for both backends.

/// Why one round attempt did not produce a report.
pub(crate) enum AttemptFailure {
    /// A deterministic model error — reproduces identically on every
    /// attempt, so it surfaces immediately without retrying.
    Fatal(ampc_model::ModelError),
    /// The attempt overran the per-round deadline (in milliseconds); its
    /// results were discarded before touching the backend's state.
    Deadline(u64),
}

/// Runs `attempt_fn` until it succeeds or the bounded retry budget
/// ([`max_round_retries`]) is exhausted, with exponential backoff between
/// attempts. Panics out of an attempt (injected or real) are caught and
/// retried; an attempt must therefore leave the backend untouched until it
/// commits — the "failed rounds leave no trace" invariant both backends
/// already hold.
pub(crate) fn run_with_retries<T>(
    round: usize,
    mut attempt_fn: impl FnMut(u32) -> Result<T, AttemptFailure>,
) -> Result<T, ampc_model::ModelError> {
    let max_retries = max_round_retries();
    let mut attempt = 0u32;
    loop {
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| attempt_fn(attempt)));
        match outcome {
            Ok(Ok(value)) => return Ok(value),
            Ok(Err(AttemptFailure::Fatal(error))) => return Err(error),
            Ok(Err(AttemptFailure::Deadline(deadline_ms))) => {
                note_deadline_trip();
                if attempt >= max_retries {
                    return Err(ampc_model::ModelError::RoundDeadlineExceeded {
                        round,
                        deadline_ms,
                        attempts: attempt + 1,
                    });
                }
            }
            Err(payload) => {
                // A sequential-backend AbortWorker fault panics on the
                // calling thread itself — clear the stray poison flag (no
                // pool worker to respawn here).
                let _ = take_worker_poison();
                if attempt >= max_retries {
                    return Err(ampc_model::ModelError::RoundPanicked {
                        round,
                        detail: panic_detail(payload.as_ref()),
                    });
                }
            }
        }
        note_round_retry();
        std::thread::sleep(Duration::from_millis(1u64 << attempt.min(6)));
        attempt += 1;
    }
}

/// Best-effort description of a caught panic payload.
fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    if is_injected_panic(payload) {
        "injected fault".to_string()
    } else if let Some(text) = payload.downcast_ref::<&'static str>() {
        (*text).to_string()
    } else if let Some(text) = payload.downcast_ref::<String>() {
        text.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_rates_and_rejects_junk() {
        let plan = FaultPlan::parse(
            "seed=7, panic=1/40, stall=48, stall_ms=2, merge=1/400, alloc=1/64, abort=1/96, kill=1/128",
        )
        .unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.panic_rate, 40);
        assert_eq!(plan.stall_rate, 48);
        assert_eq!(plan.stall_ms, 2);
        assert_eq!(plan.merge_rate, 400);
        assert_eq!(plan.alloc_rate, 64);
        assert_eq!(plan.abort_rate, 96);
        assert_eq!(plan.kill_rate, 128);
        assert_eq!(
            FaultPlan::parse("").unwrap(),
            FaultPlan {
                stall_ms: 1,
                ..FaultPlan::default()
            }
        );
        assert!(FaultPlan::parse("panic").is_err());
        assert!(FaultPlan::parse("panic=x").is_err());
        assert!(FaultPlan::parse("warp=1/2").is_err());
    }

    #[test]
    fn decisions_are_deterministic_and_attempt_gated() {
        let plan =
            FaultPlan::parse("seed=3,panic=1/8,stall=1/8,alloc=1/8,abort=1/16,merge=1/4").unwrap();
        let mut fired = 0usize;
        for round in 0..64u64 {
            for machine in 0..64u64 {
                let first = plan.task_fault(round, machine, 0);
                assert_eq!(first, plan.task_fault(round, machine, 0), "stable");
                assert_eq!(
                    plan.task_fault(round, machine, 1),
                    None,
                    "retries run clean"
                );
                fired += usize::from(first.is_some());
            }
            assert_eq!(plan.merge_fails(round, 0), plan.merge_fails(round, 0));
            assert!(!plan.merge_fails(round, 1));
        }
        // ~3/8 of 4096 cells; loose bounds, the point is "plenty but not all".
        assert!(fired > 400 && fired < 3000, "{fired} faults fired");
    }

    #[test]
    fn worker_kills_are_deterministic_attempt_gated_and_plentiful() {
        let plan = FaultPlan::parse("seed=9,kill=1/4").unwrap();
        let mut killed = 0usize;
        for round in 0..64u64 {
            for worker in 0..4u64 {
                let first = plan.worker_killed(round, worker, 0);
                assert_eq!(first, plan.worker_killed(round, worker, 0), "stable");
                assert!(!plan.worker_killed(round, worker, 1), "replays run clean");
                killed += usize::from(first);
            }
        }
        // ~1/4 of 256 cells.
        assert!(killed > 20 && killed < 150, "{killed} kills fired");
        assert!(
            !FaultPlan::default().worker_killed(3, 1, 0),
            "rate 0 never fires"
        );
    }

    #[test]
    fn zero_rates_never_fire() {
        let plan = FaultPlan::default();
        for round in 0..32u64 {
            for machine in 0..32u64 {
                assert_eq!(plan.task_fault(round, machine, 0), None);
            }
            assert!(!plan.merge_fails(round, 0));
        }
    }

    #[test]
    fn worker_poison_is_thread_local_and_one_shot() {
        assert!(!take_worker_poison());
        poison_current_worker();
        assert!(take_worker_poison());
        assert!(!take_worker_poison());
        let other = std::thread::spawn(take_worker_poison).join().unwrap();
        assert!(!other);
    }
}
