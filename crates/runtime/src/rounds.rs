//! Deterministic data-parallel round primitives for the LOCAL/MPC
//! simulators.
//!
//! PR 1 parallelized the AMPC rounds *across* machines and the coloring
//! phase *across* layers; the simulators inside one layer
//! (`arb_linial_coloring`, `kw_color_reduction`, the recoloring and
//! derandomization sweeps) still ran sequentially, so one huge layer
//! serialized the whole job. [`RoundPrimitives`] is the small vocabulary
//! those per-node loops are written in:
//!
//! * [`RoundPrimitives::par_node_map`] — a chunked per-node map over the
//!   shared [`WorkerPool`] whose results are merged in index order.
//! * [`RoundPrimitives::par_color_classes`] — a recoloring sweep over an
//!   independent set (one color class / block of classes): every member's
//!   new color is a pure function of the *pre-sweep* snapshot, written back
//!   in member order.
//! * [`RoundPrimitives::par_reduce`] / [`RoundPrimitives::par_reduce_range`]
//!   — a chunked fold whose chunk boundaries depend only on the item count
//!   (never on the thread count), combined left-to-right in chunk order.
//! * the `*_weighted` forms ([`RoundPrimitives::par_node_map_weighted`],
//!   [`RoundPrimitives::par_color_classes_weighted`],
//!   [`RoundPrimitives::par_reduce_range_weighted`]) — the same primitives
//!   with **cost-weighted chunking** for skewed inputs: a per-item cost
//!   function (the CSR degree for edge-dominated loops) splits the index
//!   space into many small chunks of roughly equal total cost, which the
//!   pool's work-stealing deques rebalance. Chunk boundaries derive only
//!   from the prefix sum of the costs, never from the thread count, so the
//!   bit-identity contract is untouched.
//!
//! ## Determinism contract
//!
//! Every primitive produces **bit-identical** results for any thread count,
//! including 1, provided the supplied closures are pure functions of their
//! arguments:
//!
//! * maps write into index-keyed slots, so scheduling order cannot leak;
//! * color-class sweeps read a snapshot taken before the sweep — sound
//!   because the members form an independent set, which is exactly the
//!   invariant the LOCAL algorithms (Kuhn–Wattenhofer color classes,
//!   recoloring waves of equal `(layer, color)`) provide;
//! * reductions use a *fixed* chunk grid (`REDUCE_CHUNK` items per chunk)
//!   so even non-associative accumulators (floating-point sums) come out
//!   identical whether chunks run inline or on eight workers.
//!
//! The primitives record how many tasks they dispatched and how long they
//! ran; algorithm drivers fold those counters into
//! [`ampc_model::RoundRuntimeStats::intra_tasks`] /
//! [`ampc_model::RoundRuntimeStats::intra_wall_nanos`] — measurement data,
//! excluded from metric equality like the existing pool stats.

use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use ampc_model::RoundRuntimeStats;

use crate::config::RuntimeConfig;
use crate::perf::{self, PerfCounters, PerfSink};
use crate::pool::{
    chunk_ranges, cost_grouped_ranges, weighted_chunk_grid, ScopedTask, WorkerPool,
    STEAL_GRANULARITY,
};
use crate::scratch::{ScratchCounters, ScratchPool};
use crate::trace::{span_on, SpanGuard, TraceContext};

/// Below this many items a map runs inline: the work is too small to
/// amortize a pool round-trip.
const MIN_PAR_ITEMS: usize = 4096;

/// Fixed reduction chunk width. Chunk boundaries must depend only on the
/// item count so that non-associative accumulators (floating-point sums)
/// are bit-identical across thread counts.
const REDUCE_CHUNK: usize = 4096;

/// Below this many items a reduction runs inline (over the same fixed
/// chunk grid). Reductions are usually cheap per item — a filter predicate
/// or one float multiply — so they need more items than a map to amortize
/// a dispatch.
const MIN_PAR_REDUCE_ITEMS: usize = 4 * REDUCE_CHUNK;

/// The intra-layer parallelism context threaded through the LOCAL/MPC
/// simulators: a thread budget plus reuse counters.
///
/// One instance is shared (by reference) across every per-node loop of a
/// coloring run, including loops nested inside per-layer pool tasks — the
/// counters are atomic, and the underlying [`WorkerPool`] supports nested
/// submission (submitters help drain their own batches).
///
/// The context also owns the **scratch registry** behind
/// [`RoundPrimitives::scratch_pool`]: one [`ScratchPool`] per buffer type,
/// shared by every simulator running on this context, so the per-node /
/// per-round scratch of the hot loops (marker sets, polynomial decodings,
/// probability buffers) is recycled across rounds *and* across simulator
/// invocations instead of re-allocated. The registry's reuse counters are
/// folded into [`RoundPrimitives::runtime_stats`] as
/// `scratch_reuses` / `scratch_allocs`.
pub struct RoundPrimitives {
    threads: usize,
    /// Whether the `*_weighted` primitives honor their cost function. The
    /// default; `false` (see [`RoundPrimitives::contiguous`]) falls back to
    /// the PR-3-era contiguous equal-width grids, kept as the A/B baseline
    /// for the scheduler benchmarks.
    weighted: bool,
    tasks: AtomicU64,
    wall_nanos: AtomicU64,
    /// Reuse-vs-alloc accounting shared by every scratch pool of this
    /// context and by the `_into` primitives' output-buffer checks.
    scratch_counters: Arc<ScratchCounters>,
    /// The type-keyed scratch registry: `TypeId::of::<T>()` →
    /// `Arc<ScratchPool<T>>` (stored type-erased).
    scratch: Mutex<HashMap<TypeId, Arc<dyn Any + Send + Sync>>>,
    /// Optional span recorder: when attached, the simulators running on
    /// this context emit per-round/per-phase spans through
    /// [`RoundPrimitives::span`]. `None` (the default) is the zero-cost
    /// disabled path.
    trace: Option<Arc<TraceContext>>,
    /// Accumulated hardware-counter deltas from [`RoundPrimitives::perf_span`]
    /// scopes, surfaced through [`RoundPrimitives::runtime_stats`]. Stays
    /// all-zero when sampling is unavailable or disabled.
    perf: PerfSink,
    /// Whether [`RoundPrimitives::perf_span`] samples at all (on by
    /// default; [`RoundPrimitives::without_perf`] is the A/B/test knob —
    /// sampling is measurement-only either way).
    perf_enabled: bool,
}

impl std::fmt::Debug for RoundPrimitives {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RoundPrimitives")
            .field("threads", &self.threads)
            .field("weighted", &self.weighted)
            .field("tasks", &self.tasks_executed())
            .field("scratch_reuses", &self.scratch_counters.reuses())
            .field("scratch_allocs", &self.scratch_counters.allocs())
            .finish()
    }
}

impl RoundPrimitives {
    /// A context running on up to `threads` workers of the global pool
    /// (1 means strictly inline execution).
    pub fn new(threads: usize) -> Self {
        RoundPrimitives {
            threads: threads.max(1),
            weighted: true,
            tasks: AtomicU64::new(0),
            wall_nanos: AtomicU64::new(0),
            scratch_counters: Arc::new(ScratchCounters::default()),
            scratch: Mutex::new(HashMap::new()),
            trace: None,
            perf: PerfSink::new(),
            perf_enabled: true,
        }
    }

    /// Attaches (or detaches) a span recorder: simulators running on this
    /// context will emit spans through [`RoundPrimitives::span`]. Tracing
    /// is measurement-only — it never changes what the primitives compute.
    pub fn with_trace(mut self, trace: Option<Arc<TraceContext>>) -> Self {
        self.trace = trace;
        self
    }

    /// The attached span recorder, if any.
    pub fn trace(&self) -> Option<&Arc<TraceContext>> {
        self.trace.as_ref()
    }

    /// Opens a span on the attached recorder; inert (a single branch, no
    /// clock read) when no recorder is attached. The guard records one
    /// complete event when dropped.
    pub fn span(&self, name: &'static str, cat: &'static str) -> SpanGuard<'_> {
        span_on(self.trace.as_deref(), name, cat)
    }

    /// Disables hardware-counter sampling on this context:
    /// [`RoundPrimitives::perf_span`] scopes become inert and
    /// [`RoundPrimitives::runtime_stats`] reports zero counters. Sampling
    /// is measurement-only, so results are bit-identical either way (the
    /// equivalence suite pins this).
    pub fn without_perf(mut self) -> Self {
        self.perf_enabled = false;
        self
    }

    /// Opens an RAII hardware-counter scope accumulating into this
    /// context's sink: drivers bracket a phase with it at the same
    /// boundaries they open wall-clock spans, and the deltas surface as
    /// `cycles`/`instructions`/… in [`RoundPrimitives::runtime_stats`].
    /// Inert (no syscalls) when sampling is unavailable or disabled.
    pub fn perf_span(&self) -> perf::PerfScope<'_> {
        perf::sample_into(self.perf_enabled.then_some(&self.perf))
    }

    /// The hardware counters sampled so far by [`RoundPrimitives::perf_span`]
    /// scopes on this context.
    pub fn perf_counters(&self) -> PerfCounters {
        self.perf.counters()
    }

    /// The scratch pool for buffers of type `T`, shared by every simulator
    /// running on this context (created on first request). Leasing from a
    /// context-owned pool is what makes the hot loops allocation-free in
    /// steady state: a buffer allocated for one round (or one layer's
    /// simulator invocation) is recycled by the next instead of re-created.
    ///
    /// The pool's reuse/alloc counts feed this context's
    /// [`RoundPrimitives::runtime_stats`].
    pub fn scratch_pool<T: Default + Send + 'static>(&self) -> Arc<ScratchPool<T>> {
        let mut pools = self
            .scratch
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let entry = pools.entry(TypeId::of::<T>()).or_insert_with(|| {
            Arc::new(ScratchPool::<T>::with_counters(Arc::clone(
                &self.scratch_counters,
            ))) as Arc<dyn Any + Send + Sync>
        });
        Arc::clone(entry)
            .downcast::<ScratchPool<T>>()
            .expect("registry entries are keyed by their exact type")
    }

    /// Disables cost-weighted chunking: the `*_weighted` primitives ignore
    /// their weight function and use the contiguous equal-width grids of
    /// the unweighted forms. A benchmarking/testing knob for A/B-ing the
    /// scheduler — colorings are identical either way (maps merge in index
    /// order; the weighted reducers in this workspace use associative
    /// accumulators), only the wall clock under skew differs.
    pub fn contiguous(mut self) -> Self {
        self.weighted = false;
        self
    }

    /// Whether the `*_weighted` primitives honor their cost function.
    pub fn is_weighted(&self) -> bool {
        self.weighted
    }

    /// The context a [`RuntimeConfig`] implies: inline for
    /// [`RuntimeConfig::Sequential`], the configured thread count otherwise.
    pub fn from_config(config: &RuntimeConfig) -> Self {
        RoundPrimitives::new(config.effective_threads())
    }

    /// The strictly inline context (the sequential reference path).
    pub fn sequential() -> Self {
        RoundPrimitives::new(1)
    }

    /// The configured thread budget.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether this context ever dispatches to the pool.
    pub fn is_parallel(&self) -> bool {
        self.threads > 1
    }

    /// Whether a map over `items` elements would actually dispatch to the
    /// pool (rather than run inline). Callers with a cheaper streaming
    /// fallback (e.g. an allocation-free sum) use this to skip the
    /// collect-then-consume shape when no parallelism would be gained.
    pub fn map_dispatches(&self, items: usize) -> bool {
        self.threads > 1 && items >= MIN_PAR_ITEMS
    }

    /// Tasks dispatched (pool chunks plus inline executions) so far.
    pub fn tasks_executed(&self) -> u64 {
        self.tasks.load(Ordering::Relaxed)
    }

    /// Wall clock spent inside primitives so far, in nanoseconds.
    pub fn wall_nanos(&self) -> u64 {
        self.wall_nanos.load(Ordering::Relaxed)
    }

    /// Scratch-buffer acquisitions served by recycling so far (pool leases
    /// plus `_into` output buffers whose capacity sufficed).
    pub fn scratch_reuses(&self) -> u64 {
        self.scratch_counters.reuses()
    }

    /// Scratch-buffer acquisitions that allocated so far.
    pub fn scratch_allocs(&self) -> u64 {
        self.scratch_counters.allocs()
    }

    /// The counters as a [`RoundRuntimeStats`] record (all model-level
    /// fields zero), ready for [`ampc_model::AmpcMetrics::record_runtime`].
    pub fn runtime_stats(&self) -> RoundRuntimeStats {
        let perf = self.perf.counters();
        RoundRuntimeStats {
            intra_tasks: self.tasks_executed(),
            intra_wall_nanos: self.wall_nanos(),
            scratch_reuses: self.scratch_reuses(),
            scratch_allocs: self.scratch_allocs(),
            cycles: perf.cycles,
            instructions: perf.instructions,
            cache_references: perf.cache_references,
            cache_misses: perf.cache_misses,
            branch_misses: perf.branch_misses,
            ..RoundRuntimeStats::default()
        }
    }

    fn record(&self, tasks: u64, started: Instant) {
        self.tasks.fetch_add(tasks, Ordering::Relaxed);
        self.wall_nanos
            .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }

    /// Applies `f` to every index in `0..items`, returning the results in
    /// index order. `f` must be a pure function of the index (and whatever
    /// immutable state it captures); under that contract the result is
    /// bit-identical for any thread count.
    pub fn par_node_map<U, F>(&self, items: usize, f: F) -> Vec<U>
    where
        U: Send,
        F: Fn(usize) -> U + Sync,
    {
        let started = Instant::now();
        if self.threads == 1 || items < MIN_PAR_ITEMS {
            let out: Vec<U> = (0..items).map(f).collect();
            self.record(1, started);
            return out;
        }

        let chunks = chunk_ranges(items, self.threads);
        let mut slots: Vec<Option<Vec<U>>> = (0..chunks.len()).map(|_| None).collect();
        {
            let f = &f;
            let tasks: Vec<ScopedTask<'_>> = slots
                .iter_mut()
                .zip(chunks.iter().cloned())
                .map(|(slot, range)| {
                    Box::new(move || {
                        *slot = Some(range.map(f).collect());
                    }) as ScopedTask<'_>
                })
                .collect();
            WorkerPool::global().execute(tasks);
        }
        let mut out = Vec::with_capacity(items);
        for slot in slots {
            out.extend(slot.expect("the pool ran every chunk"));
        }
        self.record(chunks.len() as u64, started);
        out
    }

    /// Applies `f` to every element of `items`, returning the results in
    /// item order (the slice-input convenience over
    /// [`RoundPrimitives::par_node_map`]).
    pub fn par_map<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(usize, &T) -> U + Sync,
    {
        self.par_node_map(items.len(), |index| f(index, &items[index]))
    }

    /// Runs a chunk grid over `out`, writing `f(index)` into slot `index`.
    /// The grid must exactly cover `0..out.len()` in ascending order.
    fn fill_chunks<U, F>(&self, chunks: &[Range<usize>], f: &F, out: &mut [U])
    where
        U: Send,
        F: Fn(usize) -> U + Sync,
    {
        let mut rest: &mut [U] = out;
        let mut tasks: Vec<ScopedTask<'_>> = Vec::with_capacity(chunks.len());
        for range in chunks {
            let (mine, remainder) = rest.split_at_mut(range.len());
            rest = remainder;
            let start = range.start;
            tasks.push(Box::new(move || {
                for (offset, slot) in mine.iter_mut().enumerate() {
                    *slot = f(start + offset);
                }
            }) as ScopedTask<'_>);
        }
        debug_assert!(rest.is_empty(), "the grid covers the output exactly");
        WorkerPool::global().execute(tasks);
    }

    /// [`RoundPrimitives::par_node_map`] writing into a caller-owned,
    /// reusable output buffer: `out` is cleared and refilled with
    /// `f(0..items)` in index order, recycling its capacity across rounds
    /// (chunk results are written straight into disjoint sub-slices — no
    /// per-chunk buffers either). Values are bit-identical to
    /// [`RoundPrimitives::par_node_map`] for any thread count; only where
    /// they live differs. Buffer reuse is booked in the scratch counters.
    pub fn par_node_map_into<U, F>(&self, items: usize, f: F, out: &mut Vec<U>)
    where
        U: Send + Default,
        F: Fn(usize) -> U + Sync,
    {
        let started = Instant::now();
        self.scratch_counters.note(out.capacity() >= items);
        out.clear();
        out.resize_with(items, U::default);
        if self.threads == 1 || items < MIN_PAR_ITEMS {
            for (index, slot) in out.iter_mut().enumerate() {
                *slot = f(index);
            }
            self.record(1, started);
            return;
        }
        let chunks = chunk_ranges(items, self.threads);
        self.fill_chunks(&chunks, &f, out);
        self.record(chunks.len() as u64, started);
    }

    /// [`RoundPrimitives::par_node_map_weighted`] writing into a
    /// caller-owned, reusable output buffer (see
    /// [`RoundPrimitives::par_node_map_into`]).
    pub fn par_node_map_weighted_into<U, F, W>(
        &self,
        items: usize,
        weight: W,
        f: F,
        out: &mut Vec<U>,
    ) where
        U: Send + Default,
        F: Fn(usize) -> U + Sync,
        W: Fn(usize) -> usize,
    {
        if !self.weighted {
            return self.par_node_map_into(items, f, out);
        }
        let started = Instant::now();
        self.scratch_counters.note(out.capacity() >= items);
        out.clear();
        out.resize_with(items, U::default);
        if self.threads == 1 || items < MIN_PAR_ITEMS {
            for (index, slot) in out.iter_mut().enumerate() {
                *slot = f(index);
            }
            self.record(1, started);
            return;
        }
        let chunks = cost_grouped_ranges(items, weight, STEAL_GRANULARITY * self.threads);
        self.fill_chunks(&chunks, &f, out);
        self.record(chunks.len() as u64, started);
    }

    /// The slice-input convenience over
    /// [`RoundPrimitives::par_node_map_into`].
    pub fn par_map_into<T, U, F>(&self, items: &[T], f: F, out: &mut Vec<U>)
    where
        T: Sync,
        U: Send + Default,
        F: Fn(usize, &T) -> U + Sync,
    {
        self.par_node_map_into(items.len(), |index| f(index, &items[index]), out)
    }

    /// The slice-input convenience over
    /// [`RoundPrimitives::par_node_map_weighted_into`].
    pub fn par_map_weighted_into<T, U, F, W>(&self, items: &[T], weight: W, f: F, out: &mut Vec<U>)
    where
        T: Sync,
        U: Send + Default,
        F: Fn(usize, &T) -> U + Sync,
        W: Fn(usize, &T) -> usize,
    {
        self.par_node_map_weighted_into(
            items.len(),
            |index| weight(index, &items[index]),
            |index| f(index, &items[index]),
            out,
        )
    }

    /// [`RoundPrimitives::par_node_map`] with **cost-weighted chunking**:
    /// `weight(index)` estimates the cost of item `index` (callers pass the
    /// CSR degree, `adj_offsets[i + 1] - adj_offsets[i]`), and the index
    /// space is split into up to `STEAL_GRANULARITY × threads` chunks of
    /// roughly equal *total* cost instead of `threads` equal-width ranges.
    /// On skewed (power-law) inputs the hub-heavy parts of the index space
    /// shatter into stealable tasks, so the pool's work-stealing deques
    /// keep every worker busy instead of idling behind one hub chunk —
    /// while pool occupancy stays proportional to the configured thread
    /// budget.
    ///
    /// Results merge in index order, so the output is bit-identical to
    /// [`RoundPrimitives::par_node_map`] for any thread count — including
    /// one — no matter how the grid is cut; map grids have always been
    /// thread-dependent, only reductions need the fixed grid.
    pub fn par_node_map_weighted<U, F, W>(&self, items: usize, weight: W, f: F) -> Vec<U>
    where
        U: Send,
        F: Fn(usize) -> U + Sync,
        W: Fn(usize) -> usize,
    {
        if !self.weighted {
            return self.par_node_map(items, f);
        }
        let started = Instant::now();
        if self.threads == 1 || items < MIN_PAR_ITEMS {
            let out: Vec<U> = (0..items).map(f).collect();
            self.record(1, started);
            return out;
        }

        let chunks = cost_grouped_ranges(items, weight, STEAL_GRANULARITY * self.threads);
        let mut slots: Vec<Option<Vec<U>>> = (0..chunks.len()).map(|_| None).collect();
        {
            let f = &f;
            let tasks: Vec<ScopedTask<'_>> = slots
                .iter_mut()
                .zip(chunks.iter().cloned())
                .map(|(slot, range)| {
                    Box::new(move || {
                        *slot = Some(range.map(f).collect());
                    }) as ScopedTask<'_>
                })
                .collect();
            WorkerPool::global().execute(tasks);
        }
        let mut out = Vec::with_capacity(items);
        for slot in slots {
            out.extend(slot.expect("the pool ran every chunk"));
        }
        self.record(chunks.len() as u64, started);
        out
    }

    /// The slice-input convenience over
    /// [`RoundPrimitives::par_node_map_weighted`].
    pub fn par_map_weighted<T, U, F, W>(&self, items: &[T], weight: W, f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(usize, &T) -> U + Sync,
        W: Fn(usize, &T) -> usize,
    {
        self.par_node_map_weighted(
            items.len(),
            |index| weight(index, &items[index]),
            |index| f(index, &items[index]),
        )
    }

    /// One parallel recoloring sweep over an independent set: every member
    /// `v` of `members` is assigned `f(v, snapshot)` where `snapshot` is the
    /// state of `colors` *before* the sweep.
    ///
    /// This matches the sequential in-place loop exactly **when the members
    /// form an independent set whose decisions only inspect colors no
    /// co-member can change** — the invariant the Kuhn–Wattenhofer color
    /// classes and the recoloring waves provide. The caller is responsible
    /// for that invariant; the primitive guarantees the snapshot semantics
    /// and the member-order write-back.
    pub fn par_color_classes<C, F>(&self, members: &[usize], colors: &mut [C], f: F)
    where
        C: Copy + Send + Sync + Default + 'static,
        F: Fn(usize, &[C]) -> C + Sync,
    {
        // The sweep's update buffer is leased from the context's scratch
        // registry, so repeated sweeps (one per color class per round)
        // recycle one allocation instead of creating a Vec each.
        let pool = self.scratch_pool::<Vec<C>>();
        let mut updates = pool.lease();
        {
            let snapshot: &[C] = colors;
            self.par_node_map_into(
                members.len(),
                |index| f(members[index], snapshot),
                &mut updates,
            );
        }
        for (&member, &update) in members.iter().zip(updates.iter()) {
            colors[member] = update;
        }
    }

    /// [`RoundPrimitives::par_color_classes`] with cost-weighted chunking
    /// over the member list: `weight(member)` estimates each member's sweep
    /// cost (callers pass the member's degree — a recoloring decision scans
    /// its adjacency list). Identical results to the unweighted sweep for
    /// any thread count; only the chunk grid (and therefore load balance
    /// under skew) differs.
    pub fn par_color_classes_weighted<C, F, W>(
        &self,
        members: &[usize],
        colors: &mut [C],
        weight: W,
        f: F,
    ) where
        C: Copy + Send + Sync + Default + 'static,
        F: Fn(usize, &[C]) -> C + Sync,
        W: Fn(usize) -> usize,
    {
        let pool = self.scratch_pool::<Vec<C>>();
        let mut updates = pool.lease();
        {
            let snapshot: &[C] = colors;
            self.par_node_map_weighted_into(
                members.len(),
                |index| weight(members[index]),
                |index| f(members[index], snapshot),
                &mut updates,
            );
        }
        for (&member, &update) in members.iter().zip(updates.iter()) {
            colors[member] = update;
        }
    }

    /// Chunked fold over `items`: each fixed-width chunk is folded
    /// left-to-right with `fold` starting from a clone of `identity`, and
    /// the chunk accumulators are combined left-to-right (in chunk order)
    /// with `combine`.
    ///
    /// The chunk grid depends only on `items.len()`, never on the thread
    /// count — so the result is bit-identical across thread counts even for
    /// non-associative accumulators (floating-point sums, ordered
    /// collection).
    pub fn par_reduce<T, A, F, C>(&self, items: &[T], identity: A, fold: F, combine: C) -> A
    where
        T: Sync,
        A: Clone + Send + Sync + 'static,
        F: Fn(A, usize, &T) -> A + Sync,
        C: Fn(A, A) -> A,
    {
        self.par_reduce_range(
            items.len(),
            identity,
            |acc, index| fold(acc, index, &items[index]),
            combine,
        )
    }

    /// [`RoundPrimitives::par_reduce`] over the index range `0..items`.
    pub fn par_reduce_range<A, F, C>(&self, items: usize, identity: A, fold: F, combine: C) -> A
    where
        A: Clone + Send + Sync + 'static,
        F: Fn(A, usize) -> A + Sync,
        C: Fn(A, A) -> A,
    {
        let started = Instant::now();
        let num_chunks = items.div_ceil(REDUCE_CHUNK).max(1);
        let chunk_partial = |chunk: usize| -> A {
            let start = chunk * REDUCE_CHUNK;
            let end = (start + REDUCE_CHUNK).min(items);
            (start..end).fold(identity.clone(), &fold)
        };
        if self.threads == 1 || items < MIN_PAR_REDUCE_ITEMS {
            // Same chunk grid as the parallel path, executed inline — the
            // per-chunk partials and the left-to-right combine (and
            // therefore any floating-point rounding) are identical.
            let acc = (0..num_chunks)
                .map(chunk_partial)
                .reduce(&combine)
                .unwrap_or(identity);
            self.record(1, started);
            return acc;
        }

        // Dispatch at most `threads` tasks, each filling a contiguous run
        // of per-chunk slots. The grouping affects only scheduling: the
        // partials are still one per fixed chunk, combined left-to-right
        // in chunk order below, so the result never depends on the
        // thread count. The partial grid itself is leased scratch, reused
        // across reduce calls.
        let groups = chunk_ranges(num_chunks, self.threads);
        let num_groups = groups.len();
        let slots_pool = self.scratch_pool::<Vec<Option<A>>>();
        let mut slots = slots_pool.lease();
        slots.clear();
        slots.resize_with(num_chunks, || None);
        {
            let chunk_partial = &chunk_partial;
            let mut rest: &mut [Option<A>] = &mut slots;
            let mut tasks: Vec<ScopedTask<'_>> = Vec::with_capacity(num_groups);
            for group in groups {
                let (mine, remainder) = rest.split_at_mut(group.len());
                rest = remainder;
                tasks.push(Box::new(move || {
                    for (offset, slot) in mine.iter_mut().enumerate() {
                        *slot = Some(chunk_partial(group.start + offset));
                    }
                }) as ScopedTask<'_>);
            }
            WorkerPool::global().execute(tasks);
        }
        let acc = slots
            .iter_mut()
            .map(|slot| slot.take().expect("the pool ran every chunk"))
            .reduce(combine)
            .unwrap_or(identity);
        self.record(num_groups as u64, started);
        acc
    }

    /// [`RoundPrimitives::par_reduce_range`] with **cost-weighted
    /// chunking**: the chunk grid is derived from the prefix sum of
    /// `weight(index)` (callers pass the CSR degree for edge-dominated
    /// folds), so skewed index ranges split into many cost-balanced,
    /// stealable chunks instead of the fixed equal-width grid.
    ///
    /// The grid depends only on the weights — never on the thread count —
    /// and the inline path folds over the *same* grid, so results are
    /// bit-identical across thread counts even for non-associative
    /// accumulators. (Between the weighted and the unweighted primitive
    /// the grids differ, so only associative-and-commutative-free
    /// accumulators — sums, `Option::or` in index order — may switch
    /// between the two without changing results; that is what the
    /// simulators use.)
    pub fn par_reduce_range_weighted<A, F, C, W>(
        &self,
        items: usize,
        weight: W,
        identity: A,
        fold: F,
        combine: C,
    ) -> A
    where
        A: Clone + Send + Sync + 'static,
        F: Fn(A, usize) -> A + Sync,
        C: Fn(A, A) -> A,
        W: Fn(usize) -> usize,
    {
        if !self.weighted {
            return self.par_reduce_range(items, identity, fold, combine);
        }
        let started = Instant::now();
        let (chunks, chunk_costs) = weighted_chunk_grid(items, weight);
        let chunk_partial =
            |range: std::ops::Range<usize>| -> A { range.fold(identity.clone(), &fold) };
        if self.threads == 1 || items < MIN_PAR_REDUCE_ITEMS {
            // Same weighted grid as the parallel path, executed inline —
            // the per-chunk partials and the left-to-right combine (and
            // therefore any floating-point rounding) are identical.
            let acc = chunks
                .into_iter()
                .map(chunk_partial)
                .reduce(&combine)
                .unwrap_or(identity);
            self.record(1, started);
            return acc;
        }

        // The partials stay one per fixed chunk (combined left-to-right in
        // chunk order below, so the result never depends on the thread
        // count), but the *dispatch* groups contiguous chunks by their
        // cost into at most STEAL_GRANULARITY × threads stealable tasks —
        // bounding pool occupancy by the thread budget, like the maps.
        // The partial grid is leased scratch, reused across reduce calls.
        let num_chunks = chunks.len();
        let groups = cost_grouped_ranges(
            num_chunks,
            |chunk| chunk_costs[chunk] as usize,
            STEAL_GRANULARITY * self.threads,
        );
        let num_groups = groups.len();
        let slots_pool = self.scratch_pool::<Vec<Option<A>>>();
        let mut slots = slots_pool.lease();
        slots.clear();
        slots.resize_with(num_chunks, || None);
        {
            let chunk_partial = &chunk_partial;
            let chunks = &chunks;
            let mut rest: &mut [Option<A>] = &mut slots;
            let mut tasks: Vec<ScopedTask<'_>> = Vec::with_capacity(num_groups);
            for group in groups {
                let (mine, remainder) = rest.split_at_mut(group.len());
                rest = remainder;
                tasks.push(Box::new(move || {
                    for (offset, slot) in mine.iter_mut().enumerate() {
                        *slot = Some(chunk_partial(chunks[group.start + offset].clone()));
                    }
                }) as ScopedTask<'_>);
            }
            WorkerPool::global().execute(tasks);
        }
        let acc = slots
            .iter_mut()
            .map(|slot| slot.take().expect("the pool ran every chunk"))
            .reduce(combine)
            .unwrap_or(identity);
        self.record(num_groups as u64, started);
        acc
    }

    /// The slice-input convenience over
    /// [`RoundPrimitives::par_reduce_range_weighted`].
    pub fn par_reduce_weighted<T, A, F, C, W>(
        &self,
        items: &[T],
        weight: W,
        identity: A,
        fold: F,
        combine: C,
    ) -> A
    where
        T: Sync,
        A: Clone + Send + Sync + 'static,
        F: Fn(A, usize, &T) -> A + Sync,
        C: Fn(A, A) -> A,
        W: Fn(usize, &T) -> usize,
    {
        self.par_reduce_range_weighted(
            items.len(),
            |index| weight(index, &items[index]),
            identity,
            |acc, index| fold(acc, index, &items[index]),
            combine,
        )
    }

    /// The indices in `0..items` satisfying `pred`, in ascending order —
    /// the parallel form of a sequential `filter` over the node range.
    pub fn par_collect_indices<F>(&self, items: usize, pred: F) -> Vec<usize>
    where
        F: Fn(usize) -> bool + Sync,
    {
        let mut out = Vec::new();
        self.par_collect_indices_into(items, pred, &mut out);
        out
    }

    /// [`RoundPrimitives::par_collect_indices`] writing into a
    /// caller-owned, reusable output buffer: `out` is cleared and refilled
    /// with the matching indices in ascending order. The parallel path
    /// filters each chunk into a scratch-leased buffer and concatenates
    /// them in chunk order, so in steady state neither the chunks nor the
    /// output allocate. Output values are independent of the thread count
    /// and the chunk grid (ascending chunks of ascending indices
    /// concatenate to the plain filter).
    pub fn par_collect_indices_into<F>(&self, items: usize, pred: F, out: &mut Vec<usize>)
    where
        F: Fn(usize) -> bool + Sync,
    {
        let started = Instant::now();
        out.clear();
        if self.threads == 1 || items < MIN_PAR_REDUCE_ITEMS {
            out.extend((0..items).filter(|&index| pred(index)));
            self.record(1, started);
            return;
        }
        let pool = self.scratch_pool::<Vec<usize>>();
        let chunks = chunk_ranges(items, self.threads);
        let mut buffers: Vec<Option<crate::scratch::ScratchLease<'_, Vec<usize>>>> =
            (0..chunks.len()).map(|_| None).collect();
        {
            let pred = &pred;
            let pool = &pool;
            let tasks: Vec<ScopedTask<'_>> = buffers
                .iter_mut()
                .zip(chunks.iter().cloned())
                .map(|(slot, range)| {
                    Box::new(move || {
                        let mut buffer = pool.lease();
                        buffer.clear();
                        buffer.extend(range.filter(|&index| pred(index)));
                        *slot = Some(buffer);
                    }) as ScopedTask<'_>
                })
                .collect();
            WorkerPool::global().execute(tasks);
        }
        for buffer in buffers {
            let buffer = buffer.expect("the pool ran every chunk");
            out.extend_from_slice(&buffer);
        }
        self.record(chunks.len() as u64, started);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{self, AssertUnwindSafe};

    #[test]
    fn node_map_merges_in_index_order_for_any_thread_count() {
        let reference: Vec<usize> = (0..10_000).map(|i| i * 3 + 1).collect();
        for threads in [1usize, 2, 4, 7] {
            let primitives = RoundPrimitives::new(threads);
            let out = primitives.par_node_map(10_000, |i| i * 3 + 1);
            assert_eq!(out, reference, "threads = {threads}");
            assert!(primitives.tasks_executed() >= 1);
        }
    }

    #[test]
    fn slice_map_matches_node_map() {
        let items: Vec<u64> = (0..5_000).map(|i| i * i).collect();
        let sequential = RoundPrimitives::sequential().par_map(&items, |i, &x| x + i as u64);
        let parallel = RoundPrimitives::new(4).par_map(&items, |i, &x| x + i as u64);
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn color_classes_read_the_pre_sweep_snapshot() {
        // Members double their *own* pre-sweep value; non-members keep
        // theirs. A racy in-place implementation reading co-member updates
        // would differ; snapshot semantics make it order-free.
        let members: Vec<usize> = (0..8_000).step_by(2).collect();
        for threads in [1usize, 4] {
            let mut colors: Vec<usize> = (0..8_000).collect();
            let primitives = RoundPrimitives::new(threads);
            primitives.par_color_classes(&members, &mut colors, |v, snapshot| snapshot[v] * 2);
            for (v, &color) in colors.iter().enumerate() {
                let expected = if v % 2 == 0 { v * 2 } else { v };
                assert_eq!(color, expected, "threads {threads}, node {v}");
            }
        }
    }

    #[test]
    fn reduce_is_bit_identical_across_thread_counts_even_for_floats() {
        // A sum of values at many magnitudes: any change in association
        // order shows up in the low bits.
        let items: Vec<f64> = (0..50_000)
            .map(|i| (i as f64).sqrt() * if i % 3 == 0 { 1e-9 } else { 1e3 })
            .collect();
        let sum = |threads: usize| -> f64 {
            RoundPrimitives::new(threads).par_reduce(
                &items,
                0.0f64,
                |acc, _, &x| acc + x,
                |a, b| a + b,
            )
        };
        let reference = sum(1);
        for threads in [2usize, 3, 8] {
            assert_eq!(reference.to_bits(), sum(threads).to_bits());
        }
    }

    #[test]
    fn collect_indices_preserves_ascending_order() {
        let reference: Vec<usize> = (0..20_000).filter(|i| i % 7 == 0).collect();
        for threads in [1usize, 4] {
            let out = RoundPrimitives::new(threads).par_collect_indices(20_000, |i| i % 7 == 0);
            assert_eq!(out, reference, "threads = {threads}");
        }
    }

    #[test]
    fn primitives_propagate_panics() {
        for threads in [1usize, 4] {
            let primitives = RoundPrimitives::new(threads);
            let result = panic::catch_unwind(AssertUnwindSafe(|| {
                primitives.par_node_map(5_000, |i| {
                    if i == 4_321 {
                        panic!("intra-layer task exploded");
                    }
                    i
                })
            }));
            let payload = result.expect_err("the panic must reach the submitter");
            let message = payload
                .downcast_ref::<&str>()
                .copied()
                .unwrap_or("non-str payload");
            assert!(message.contains("exploded"), "{message}");
        }
    }

    #[test]
    fn stats_accumulate_tasks_and_wall_clock() {
        let primitives = RoundPrimitives::new(4);
        let _ = primitives.par_node_map(50_000, |i| i);
        let _ = primitives.par_reduce_range(50_000, 0usize, |a, i| a + i, |a, b| a + b);
        let stats = primitives.runtime_stats();
        // 4 map chunks + 4 reduce chunk-groups (one per thread).
        assert!(stats.intra_tasks >= 4 + 4, "{}", stats.intra_tasks);
        assert!(stats.intra_wall_nanos > 0);
        // Model-level fields stay zero: intra stats never affect metric
        // equality.
        assert_eq!(stats.wall_clock_nanos, 0);
        assert_eq!(stats.conflict_merges, 0);
    }

    #[test]
    fn weighted_map_is_bit_identical_for_any_thread_count() {
        // A hub-heavy weight profile: item 0 is 10_000x heavier.
        let weight = |i: usize| if i == 0 { 100_000 } else { 10 };
        let reference: Vec<usize> = (0..20_000).map(|i| i * 5 + 2).collect();
        for threads in [1usize, 2, 4, 7] {
            let primitives = RoundPrimitives::new(threads);
            let out = primitives.par_node_map_weighted(20_000, weight, |i| i * 5 + 2);
            assert_eq!(out, reference, "threads = {threads}");
        }
        // The contiguous fallback produces the same values through the
        // unweighted grid.
        let contiguous = RoundPrimitives::new(4).contiguous();
        assert!(!contiguous.is_weighted());
        let out = contiguous.par_node_map_weighted(20_000, weight, |i| i * 5 + 2);
        assert_eq!(out, reference);
    }

    #[test]
    fn weighted_reduce_is_bit_identical_across_thread_counts_even_for_floats() {
        // Non-associative accumulator + skewed weights: the weighted grid
        // must be the same for every thread count (it only depends on the
        // prefix sum of the weights), so the float sum's low bits agree.
        let items: Vec<f64> = (0..50_000)
            .map(|i| (i as f64).sqrt() * if i % 5 == 0 { 1e-9 } else { 1e3 })
            .collect();
        let weight = |i: usize, _: &f64| if i.is_multiple_of(1000) { 5_000 } else { 1 };
        let sum = |threads: usize| -> f64 {
            RoundPrimitives::new(threads).par_reduce_weighted(
                &items,
                weight,
                0.0f64,
                |acc, _, &x| acc + x,
                |a, b| a + b,
            )
        };
        let reference = sum(1);
        for threads in [2usize, 3, 8] {
            assert_eq!(reference.to_bits(), sum(threads).to_bits());
        }
    }

    #[test]
    fn weighted_color_classes_match_unweighted_sweeps() {
        let members: Vec<usize> = (0..9_000).step_by(3).collect();
        let mut expected: Vec<usize> = (0..9_000).collect();
        RoundPrimitives::sequential()
            .par_color_classes(&members, &mut expected, |v, snapshot| snapshot[v] + 7);
        for threads in [1usize, 4] {
            let mut colors: Vec<usize> = (0..9_000).collect();
            RoundPrimitives::new(threads).par_color_classes_weighted(
                &members,
                &mut colors,
                |member| member % 97,
                |v, snapshot| snapshot[v] + 7,
            );
            assert_eq!(colors, expected, "threads {threads}");
        }
    }

    #[test]
    fn sequential_context_from_config() {
        let sequential = RoundPrimitives::from_config(&RuntimeConfig::Sequential);
        assert_eq!(sequential.threads(), 1);
        assert!(!sequential.is_parallel());
        let parallel = RoundPrimitives::from_config(&RuntimeConfig::parallel().with_threads(3));
        assert_eq!(parallel.threads(), 3);
        assert!(parallel.is_parallel());
    }
}
