//! The sharded multi-threaded round scheduler.

use std::sync::Arc;
use std::time::Instant;

use ampc_model::{
    AmpcConfig, AmpcMetrics, ConflictPolicy, DataStore, Key, MachineContext, ModelError,
    RoundReport, RoundRuntimeStats, Value,
};

use crate::backend::{AmpcBackend, RoundBody};
use crate::faults::{self, AttemptFailure, FaultPlan};
use crate::pool::{chunk_ranges, PoolStats, ScopedTask, WorkerPool};
use crate::shard::{FlatShard, ShardedStore};
use crate::trace::{span_on, TraceContext};

/// A write buffered by one machine: `(machine id, index within the
/// machine's write sequence, key, value)`. The `(machine, index)` pair is
/// the global sequential-application order, which the merge preserves so
/// [`ConflictPolicy::KeepFirst`] and conflict errors stay deterministic.
type BufferedWrite = (usize, usize, Key, Value);

/// Per-worker result of executing a contiguous machine range.
struct ChunkOutcome {
    max_reads: usize,
    total_reads: usize,
    max_writes: usize,
    total_writes: usize,
    /// Writes bucketed by destination shard, in `(machine, index)` order.
    per_shard: Vec<Vec<BufferedWrite>>,
    /// First failing machine of the chunk, if any.
    error: Option<(usize, ModelError)>,
}

impl ChunkOutcome {
    fn new(num_shards: usize) -> Self {
        ChunkOutcome {
            max_reads: 0,
            total_reads: 0,
            max_writes: 0,
            total_writes: 0,
            per_shard: (0..num_shards).map(|_| Vec::new()).collect(),
            error: None,
        }
    }
}

/// Result of the merge phase: the next generation of shard tables, the
/// per-shard routed-write counts, and the total conflict merges.
type MergedShards = (Vec<FlatShard>, Vec<u64>, usize);

/// Per-worker tasks completed between two pool snapshots.
fn pool_delta(before: &PoolStats, after: &PoolStats) -> Vec<u64> {
    after
        .tasks_per_worker
        .iter()
        .zip(&before.tasks_per_worker)
        .map(|(&now, &then)| now.saturating_sub(then))
        .collect()
}

/// Per-shard result of the merge phase.
struct ShardMerge {
    shard: usize,
    merged: FlatShard,
    writes_routed: u64,
    conflict_merges: usize,
    /// First conflicting write under [`ConflictPolicy::Error`], as
    /// `(machine, index, error)`.
    conflict: Option<(usize, usize, ModelError)>,
}

/// The sharded parallel implementation of [`AmpcBackend`].
///
/// Machines are split into contiguous id ranges, one per worker; every
/// worker drives its machines through [`MachineContext`]s with the exact
/// budget enforcement of the sequential executor, reading the previous
/// round's [`ShardedStore`] lock-free. Buffered writes are merged
/// shard-by-shard (also in parallel) in global `(machine, write index)`
/// order, so the resulting store is bit-identical to the sequential
/// backend's for every [`ConflictPolicy`].
///
/// Rounds run on a persistent [`WorkerPool`] — by default the process-wide
/// [`WorkerPool::global`] pool, shared across backends and jobs — so no
/// threads are spawned per round (or even per backend). The pool-reuse
/// deltas of every round are recorded in
/// [`RoundRuntimeStats::pool_tasks_per_worker`] and
/// [`RoundRuntimeStats::pool_idle_nanos`].
pub struct ParallelBackend {
    config: AmpcConfig,
    store: ShardedStore,
    metrics: AmpcMetrics,
    threads: usize,
    pool: Arc<WorkerPool>,
    /// When set, the shard count grows (doubles, up to
    /// [`MAX_AUTO_SHARDS`]) between rounds while the observed per-shard
    /// read load stays imbalanced. Selected by `RuntimeConfig` with
    /// `shards == Some(0)`.
    auto_shards: bool,
    /// The hottest shard's share of all reads at the last doubling —
    /// compared against the next observation to tell *spreadable*
    /// imbalance (more shards dilute the hot shard) from *irreducible*
    /// imbalance (one hot key that lands in a single shard at any count).
    last_hot_share: Option<f64>,
    /// Set once a doubling failed to shrink the hot share: further
    /// doublings cannot help either, so the tuner stops re-partitioning.
    retune_stalled: bool,
    /// Optional span recorder ([`AmpcBackend::set_trace`]): when attached,
    /// every round emits execute/merge spans and every shard retune emits
    /// a retune span. Measurement-only.
    trace: Option<Arc<TraceContext>>,
}

/// Ceiling for the auto-tuned shard count.
const MAX_AUTO_SHARDS: usize = 1024;

/// The auto-tuner doubles the shard count while the hottest shard serves
/// more than `IMBALANCE_FACTOR` times its fair share of reads.
const IMBALANCE_FACTOR: u64 = 2;

/// A doubling must shrink the hottest shard's read *share* below this
/// fraction of the previous observation to count as progress; otherwise
/// the imbalance is concentrated on fewer keys than shards (ultimately one
/// hot key) and re-partitioning — a full store copy per attempt — is
/// wasted work.
const RETUNE_IMPROVEMENT: f64 = 0.75;

impl std::fmt::Debug for ParallelBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParallelBackend")
            .field("threads", &self.threads)
            .field("shards", &self.store.num_shards())
            .field("store_len", &self.store.len())
            .field("rounds", &self.metrics.num_rounds())
            .finish()
    }
}

impl ParallelBackend {
    /// Creates a parallel backend over `initial`, partitioned into `shards`
    /// shards and fanning each round out into up to `threads` chunks (both
    /// clamped to at least 1) on the process-wide [`WorkerPool::global`]
    /// pool.
    pub fn new(config: AmpcConfig, initial: DataStore, threads: usize, shards: usize) -> Self {
        ParallelBackend::with_pool(
            config,
            initial,
            threads,
            shards,
            Arc::clone(WorkerPool::global()),
        )
    }

    /// Like [`ParallelBackend::new`], but executing on a caller-owned
    /// persistent pool instead of the global one.
    pub fn with_pool(
        config: AmpcConfig,
        initial: DataStore,
        threads: usize,
        shards: usize,
        pool: Arc<WorkerPool>,
    ) -> Self {
        ParallelBackend {
            config,
            store: ShardedStore::from_store(initial, shards.max(1)),
            metrics: AmpcMetrics::default(),
            threads: threads.max(1),
            pool,
            auto_shards: false,
            last_hot_share: None,
            retune_stalled: false,
            trace: None,
        }
    }

    /// Enables (or disables) imbalance-driven shard-count auto-tuning: the
    /// constructor's shard count becomes the starting point and the
    /// backend doubles it between rounds while the hottest shard keeps
    /// serving more than [`IMBALANCE_FACTOR`]× its fair share of the
    /// observed reads ([`RoundRuntimeStats::shard_reads`]). The shard
    /// count chosen for each round is logged in
    /// [`RoundRuntimeStats::auto_shards`]. Results are unaffected: the
    /// key→shard mapping only spreads load, the per-key merge order stays
    /// global `(machine, write index)` order for any count.
    pub fn with_auto_shard_tuning(mut self, enabled: bool) -> Self {
        self.auto_shards = enabled;
        self
    }

    /// Number of worker threads used per round.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The persistent pool this backend schedules rounds on.
    pub fn pool(&self) -> &Arc<WorkerPool> {
        &self.pool
    }

    /// The sharded store backing the current round.
    pub fn store(&self) -> &ShardedStore {
        &self.store
    }

    /// Executes the machine bodies for one round, returning per-chunk
    /// outcomes in chunk (= ascending machine) order. `faults` carries the
    /// active fault plan plus the `(round, attempt)` injection coordinates;
    /// injections key on the machine id, never the chunk or worker, so the
    /// same cells fault for any thread count.
    fn execute_machines(
        &self,
        machines: usize,
        body: &RoundBody<'_>,
        read_budget: usize,
        write_budget: usize,
        faults: Option<(&FaultPlan, usize, u32)>,
    ) -> Vec<ChunkOutcome> {
        let num_shards = self.store.num_shards();
        let chunks = chunk_ranges(machines, self.threads);
        let store = &self.store;

        let mut outcomes: Vec<Option<ChunkOutcome>> = (0..chunks.len()).map(|_| None).collect();
        let tasks: Vec<ScopedTask<'_>> = outcomes
            .iter_mut()
            .zip(chunks)
            .map(|(slot, range)| {
                Box::new(move || {
                    let mut outcome = ChunkOutcome::new(num_shards);
                    for machine in range {
                        if let Some((plan, round, attempt)) = faults {
                            if let Some(fault) =
                                plan.task_fault(round as u64, machine as u64, attempt)
                            {
                                faults::apply(fault);
                            }
                        }
                        let mut ctx =
                            MachineContext::for_round(machine, store, read_budget, write_budget);
                        if let Err(error) = body(machine, &mut ctx) {
                            outcome.error = Some((machine, error));
                            break;
                        }
                        let reads = ctx.reads_used();
                        let writes = ctx.writes_used();
                        outcome.max_reads = outcome.max_reads.max(reads);
                        outcome.total_reads += reads;
                        outcome.max_writes = outcome.max_writes.max(writes);
                        outcome.total_writes += writes;
                        for (index, (key, value)) in ctx.into_writes().into_iter().enumerate() {
                            let shard = store.shard_of(&key);
                            outcome.per_shard[shard].push((machine, index, key, value));
                        }
                    }
                    *slot = Some(outcome);
                }) as ScopedTask<'_>
            })
            .collect();
        self.pool.execute(tasks);
        outcomes
            .into_iter()
            .map(|outcome| outcome.expect("the pool ran every machine chunk"))
            .collect()
    }

    /// Merges the buffered writes of all chunks, shard-by-shard in parallel.
    fn merge_shards(
        &self,
        outcomes: &[ChunkOutcome],
        policy: ConflictPolicy,
        carry_forward: bool,
    ) -> Result<MergedShards, ModelError> {
        let num_shards = self.store.num_shards();
        let base: Vec<FlatShard> = if carry_forward {
            self.store.clone_shards()
        } else {
            vec![FlatShard::default(); num_shards]
        };

        let shard_chunks = chunk_ranges(num_shards, self.threads);
        let mut chunk_merges: Vec<Option<Vec<ShardMerge>>> =
            (0..shard_chunks.len()).map(|_| None).collect();
        let tasks: Vec<ScopedTask<'_>> = chunk_merges
            .iter_mut()
            .zip(shard_chunks)
            .map(|(slot, range)| {
                Box::new(move || {
                    let mut results = Vec::with_capacity(range.len());
                    for shard in range {
                        let mut staged = FlatShard::default();
                        let mut writes_routed = 0u64;
                        let mut conflict_merges = 0usize;
                        let mut conflict: Option<(usize, usize, ModelError)> = None;
                        // Chunks are ascending machine ranges and each
                        // bucket is in (machine, index) order, so this
                        // fold replays the sequential write order.
                        'outer: for outcome in outcomes {
                            for &(machine, index, key, value) in &outcome.per_shard[shard] {
                                writes_routed += 1;
                                // Single probe per write: absent keys are
                                // inserted, resident ones come back for
                                // conflict resolution.
                                if let Some(existing) = staged.get_or_insert(key, value) {
                                    conflict_merges += 1;
                                    match policy.resolve(&key, *existing, value) {
                                        Ok(resolved) => {
                                            *existing = resolved;
                                        }
                                        Err(error) => {
                                            conflict = Some((machine, index, error));
                                            break 'outer;
                                        }
                                    }
                                }
                            }
                        }
                        results.push(ShardMerge {
                            shard,
                            merged: staged,
                            writes_routed,
                            conflict_merges,
                            conflict,
                        });
                    }
                    *slot = Some(results);
                }) as ScopedTask<'_>
            })
            .collect();
        self.pool.execute(tasks);
        let merges: Vec<ShardMerge> = chunk_merges
            .into_iter()
            .flat_map(|chunk| chunk.expect("the pool ran every merge chunk"))
            .collect();

        // Deterministic conflict reporting: the first conflict in global
        // (machine, write index) order is the one the sequential executor
        // would have raised.
        if let Some((_, _, error)) = merges
            .iter()
            .filter_map(|m| m.conflict.clone())
            .min_by_key(|&(machine, index, _)| (machine, index))
        {
            return Err(error);
        }

        let mut next = base;
        let mut shard_writes = vec![0u64; num_shards];
        let mut conflict_merges = 0usize;
        for merge in merges {
            shard_writes[merge.shard] = merge.writes_routed;
            conflict_merges += merge.conflict_merges;
            let target = &mut next[merge.shard];
            for (key, value) in merge.merged.into_entries() {
                target.insert(key, value);
            }
        }
        Ok((next, shard_writes, conflict_merges))
    }
}

impl ParallelBackend {
    /// The imbalance-driven auto-tuner: after a round, if the hottest
    /// shard served more than [`IMBALANCE_FACTOR`]× its fair share of the
    /// round's reads, double the shard count (re-partitioning the store)
    /// so the hot keys spread over more shards next round. No-op when
    /// auto-tuning is disabled, the cap is reached, the round issued no
    /// reads — or a previous doubling failed to dilute the hot shard
    /// (irreducible single-hot-key imbalance, which no shard count fixes;
    /// without this check every round would pay a full store copy all the
    /// way to the cap for zero benefit).
    fn retune_shards(&mut self, shard_reads: &[u64]) {
        if !self.auto_shards || self.retune_stalled {
            return;
        }
        let num_shards = self.store.num_shards();
        if num_shards >= MAX_AUTO_SHARDS {
            return;
        }
        let total: u64 = shard_reads.iter().sum();
        let hottest = shard_reads.iter().copied().max().unwrap_or(0);
        if total == 0 || hottest * num_shards as u64 <= IMBALANCE_FACTOR * total {
            return;
        }
        let share = hottest as f64 / total as f64;
        if let Some(previous) = self.last_hot_share {
            if share >= RETUNE_IMPROVEMENT * previous {
                self.retune_stalled = true;
                return;
            }
        }
        self.last_hot_share = Some(share);
        let doubled = (num_shards * 2).min(MAX_AUTO_SHARDS);
        let _span = span_on(self.trace.as_deref(), "backend.retune", "backend")
            .with_arg("from_shards", num_shards as u64)
            .with_arg("to_shards", doubled as u64);
        self.store = ShardedStore::from_store(self.store.to_data_store(), doubled);
    }
}

impl AmpcBackend for ParallelBackend {
    fn config(&self) -> &AmpcConfig {
        &self.config
    }

    fn metrics(&self) -> &AmpcMetrics {
        &self.metrics
    }

    fn get(&self, key: Key) -> Option<Value> {
        self.store.peek(key)
    }

    fn store_len(&self) -> usize {
        self.store.len()
    }

    fn snapshot_store(&self) -> DataStore {
        self.store.to_data_store()
    }

    fn load_store(&mut self, entries: Vec<(Key, Value)>) {
        for (key, value) in entries {
            self.store.insert(key, value);
        }
    }

    fn run_round(
        &mut self,
        machines: usize,
        policy: ConflictPolicy,
        carry_forward: bool,
        body: &RoundBody<'_>,
    ) -> Result<RoundReport, ModelError> {
        let plan = faults::active();
        let deadline = faults::round_deadline();
        if plan.is_none() && deadline.is_none() && faults::max_round_retries() == 0 {
            // The production fast path: no plan, no deadline, no retries —
            // run the attempt directly with zero extra bookkeeping.
            return match self.attempt_round(machines, policy, carry_forward, body, None, 0, 0, None)
            {
                Ok(report) => Ok(report),
                Err(AttemptFailure::Fatal(error)) => Err(error),
                Err(AttemptFailure::Deadline(_)) => unreachable!("no deadline configured"),
            };
        }
        // The round index only advances on success, so every attempt of
        // one logical round — and both backends — see the same index, and
        // with it the same injection cells.
        let round = self.metrics.num_rounds();
        faults::run_with_retries(round, |attempt| {
            self.attempt_round(
                machines,
                policy,
                carry_forward,
                body,
                plan.as_ref(),
                round,
                attempt,
                deadline,
            )
        })
    }

    fn into_parts(self: Box<Self>) -> (DataStore, AmpcMetrics) {
        (self.store.to_data_store(), self.metrics)
    }

    fn name(&self) -> &'static str {
        "parallel"
    }

    fn set_trace(&mut self, trace: Option<Arc<TraceContext>>) {
        self.trace = trace;
    }
}

impl ParallelBackend {
    /// One attempt at one round. Commits to `self` (store, metrics, shard
    /// retune) only at the very end, so a panic, injected failure or
    /// deadline overrun anywhere earlier leaves the backend byte-identical
    /// to its pre-round state — which is what makes a retry a clean replay.
    #[allow(clippy::too_many_arguments)]
    fn attempt_round(
        &mut self,
        machines: usize,
        policy: ConflictPolicy,
        carry_forward: bool,
        body: &RoundBody<'_>,
        plan: Option<&FaultPlan>,
        round: usize,
        attempt: u32,
        deadline: Option<std::time::Duration>,
    ) -> Result<RoundReport, AttemptFailure> {
        let started = Instant::now();
        // Guards borrow the context, so hold the Arc in a local: `self`
        // must stay mutably borrowable for the retune below.
        let trace = self.trace.clone();
        let _round_span = span_on(trace.as_deref(), "backend.round", "backend")
            .with_arg("round", self.metrics.num_rounds() as u64)
            .with_arg("machines", machines as u64);
        let pool_before = self.pool.stats();
        // Hardware counters use the same before/after idiom as the pool
        // stats — a process-wide snapshot of every registered thread's
        // counter group, all-zero when sampling is unavailable.
        let perf_before = crate::perf::snapshot();
        let read_budget = self.config.read_budget();
        let write_budget = self.config.write_budget();
        self.store.reset_read_counts();

        let mut outcomes = {
            let _span = span_on(trace.as_deref(), "backend.execute", "backend")
                .with_arg("machines", machines as u64);
            self.execute_machines(
                machines,
                body,
                read_budget,
                write_budget,
                plan.map(|p| (p, round, attempt)),
            )
        };

        // Injected merge failure: the whole merge phase of this attempt is
        // declared lost before it starts; the retry replays the round from
        // its untouched input store.
        if let Some(plan) = plan {
            if plan.merge_fails(round as u64, attempt) {
                faults::note_merge_failure();
                std::panic::panic_any(faults::InjectedPanic);
            }
        }

        // Error precedence replays the sequential executor's event order:
        // it runs machine m's body and then merges m's writes before
        // touching machine m + 1, so a merge conflict among machines below
        // the lowest failing body still fires first. Restrict the merge to
        // writes of machines below the lowest body failure; a conflict
        // found there wins, otherwise the body error does.
        let body_error = outcomes
            .iter()
            .filter_map(|o| o.error.clone())
            .min_by_key(|&(machine, _)| machine);
        if let Some((failing_machine, error)) = body_error {
            for outcome in &mut outcomes {
                for bucket in &mut outcome.per_shard {
                    bucket.retain(|&(machine, ..)| machine < failing_machine);
                }
            }
            self.merge_shards(&outcomes, policy, carry_forward)
                .map_err(AttemptFailure::Fatal)?;
            return Err(AttemptFailure::Fatal(error));
        }

        let (next_shards, shard_writes, conflict_merges) = {
            let _span = span_on(trace.as_deref(), "backend.merge", "backend")
                .with_arg("shards", self.store.num_shards() as u64);
            self.merge_shards(&outcomes, policy, carry_forward)
                .map_err(AttemptFailure::Fatal)?
        };

        // Deadline check before anything commits: an overrunning attempt
        // is discarded whole, exactly like a panicked one.
        if let Some(limit) = deadline {
            if started.elapsed() > limit {
                return Err(AttemptFailure::Deadline(limit.as_millis() as u64));
            }
        }

        let shard_reads = self.store.read_counts();
        self.store.replace_shards(next_shards);

        let mut report = RoundReport::from_measurements(
            self.metrics.num_rounds(),
            machines,
            outcomes.iter().map(|o| o.max_reads).max().unwrap_or(0),
            outcomes.iter().map(|o| o.max_writes).max().unwrap_or(0),
            outcomes.iter().map(|o| o.total_reads).sum(),
            outcomes.iter().map(|o| o.total_writes).sum(),
            0,
        );
        report.store_words = self.store.space_in_words();
        self.metrics.record(report.clone());
        let pool_after = self.pool.stats();
        let perf = crate::perf::snapshot().saturating_delta(&perf_before);
        self.metrics.record_runtime(RoundRuntimeStats {
            wall_clock_nanos: started.elapsed().as_nanos() as u64,
            conflict_merges,
            shard_reads: shard_reads.clone(),
            shard_writes,
            pool_tasks_per_worker: pool_delta(&pool_before, &pool_after),
            pool_idle_nanos: pool_after
                .total_idle_nanos()
                .saturating_sub(pool_before.total_idle_nanos()),
            pool_steals: pool_after.steals.saturating_sub(pool_before.steals),
            pool_overflows: pool_after.overflows.saturating_sub(pool_before.overflows),
            auto_shards: if self.auto_shards {
                self.store.num_shards()
            } else {
                0
            },
            cycles: perf.cycles,
            instructions: perf.instructions,
            cache_references: perf.cache_references,
            cache_misses: perf.cache_misses,
            branch_misses: perf.branch_misses,
            ..RoundRuntimeStats::default()
        });
        self.retune_shards(&shard_reads);
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::SequentialBackend;

    fn config() -> AmpcConfig {
        AmpcConfig::for_input_size(256, 0.5)
    }

    fn seeded_store(n: u64) -> DataStore {
        (0..n)
            .map(|i| (Key::single(i), Value::single(i * 7 % 13)))
            .collect()
    }

    /// Two adaptive rounds with duplicate writes, run on both backends.
    fn run_program(
        backend: &mut dyn AmpcBackend,
        machines: usize,
        policy: ConflictPolicy,
    ) -> Result<DataStore, ModelError> {
        backend.round(machines, policy, |machine, ctx| {
            // Adaptive chain: read own key, then the key it points at.
            let own = ctx.read(Key::single(machine as u64))?.unwrap();
            let other = ctx.read(Key::single(own.words()[0]))?;
            let derived = other.map_or(1, |v| v.words()[0] + 1);
            // Duplicate-key writes: machines collide modulo 5.
            ctx.write(Key::single((machine % 5) as u64), Value::single(derived))?;
            ctx.write(Key::pair(1, machine as u64), Value::single(machine as u64))
        })?;
        backend.round_carrying_forward(machines, policy, |machine, ctx| {
            if let Some(v) = ctx.read(Key::pair(1, machine as u64))? {
                ctx.write(
                    Key::pair(2, machine as u64),
                    Value::single(v.words()[0] * 2),
                )?;
            }
            Ok(())
        })?;
        Ok(backend.snapshot_store())
    }

    #[test]
    fn parallel_matches_sequential_for_every_policy() {
        for policy in [
            ConflictPolicy::KeepMin,
            ConflictPolicy::KeepMax,
            ConflictPolicy::KeepFirst,
        ] {
            let mut seq: Box<dyn AmpcBackend> =
                Box::new(SequentialBackend::new(config(), seeded_store(64)));
            let sequential = run_program(seq.as_mut(), 64, policy).unwrap();
            for threads in [1usize, 3, 4] {
                for shards in [1usize, 2, 8] {
                    let mut par: Box<dyn AmpcBackend> = Box::new(ParallelBackend::new(
                        config(),
                        seeded_store(64),
                        threads,
                        shards,
                    ));
                    let parallel = run_program(par.as_mut(), 64, policy).unwrap();
                    assert_eq!(
                        sequential, parallel,
                        "policy {policy:?}, threads {threads}, shards {shards}"
                    );
                    assert_eq!(par.metrics().num_rounds(), 2);
                }
            }
        }
    }

    #[test]
    fn metrics_agree_with_sequential() {
        let mut seq: Box<dyn AmpcBackend> =
            Box::new(SequentialBackend::new(config(), seeded_store(32)));
        let mut par: Box<dyn AmpcBackend> =
            Box::new(ParallelBackend::new(config(), seeded_store(32), 4, 4));
        run_program(seq.as_mut(), 32, ConflictPolicy::KeepMin).unwrap();
        run_program(par.as_mut(), 32, ConflictPolicy::KeepMin).unwrap();
        // AmpcMetrics equality compares the model-level reports only.
        assert_eq!(seq.metrics(), par.metrics());
        let stats = &par.metrics().runtime_stats()[0];
        assert_eq!(stats.shard_reads.len(), 4);
        assert_eq!(stats.shard_writes.len(), 4);
        assert!(stats.shard_reads.iter().sum::<u64>() > 0);
        assert!(stats.conflict_merges > 0, "machines collide modulo 5");
        assert_eq!(
            stats.conflict_merges,
            seq.metrics().runtime_stats()[0].conflict_merges
        );
    }

    #[test]
    fn pool_reuse_stats_are_recorded_but_excluded_from_equality() {
        // A dedicated pool so other tests' global-pool traffic cannot leak
        // into the deltas.
        let pool = Arc::new(WorkerPool::new(2));
        let mut par: Box<dyn AmpcBackend> = Box::new(ParallelBackend::with_pool(
            config(),
            seeded_store(64),
            4,
            4,
            Arc::clone(&pool),
        ));
        run_program(par.as_mut(), 64, ConflictPolicy::KeepMin).unwrap();
        let mut seq: Box<dyn AmpcBackend> =
            Box::new(SequentialBackend::new(config(), seeded_store(64)));
        run_program(seq.as_mut(), 64, ConflictPolicy::KeepMin).unwrap();

        // Every parallel round reports a delta slot per persistent worker;
        // the sequential reference reports none.
        for stats in par.metrics().runtime_stats() {
            assert_eq!(stats.pool_tasks_per_worker.len(), pool.num_workers());
        }
        for stats in seq.metrics().runtime_stats() {
            assert!(stats.pool_tasks_per_worker.is_empty());
            assert_eq!(stats.pool_idle_nanos, 0);
        }
        // Across the whole run, every executed pool task is accounted to a
        // worker or to the helping submitter, and the recorded per-round
        // worker deltas never exceed the pool's cumulative totals.
        let pool_stats = pool.stats();
        assert!(pool_stats.total_tasks() > 0, "rounds must use the pool");
        let recorded_worker_tasks: u64 = par
            .metrics()
            .runtime_stats()
            .iter()
            .map(|s| s.pool_tasks_per_worker.iter().sum::<u64>())
            .sum();
        assert!(recorded_worker_tasks <= pool_stats.tasks_per_worker.iter().sum::<u64>());
        // Reuse stats are measurements: metric equality ignores them.
        assert_eq!(seq.metrics(), par.metrics());
        let combined = par.metrics().runtime_stats()[0].combine(&par.metrics().runtime_stats()[1]);
        assert_eq!(
            combined.pool_tasks_per_worker.len(),
            pool.num_workers(),
            "combine keeps per-worker slots"
        );
    }

    #[test]
    fn auto_shard_tuning_grows_under_imbalance_and_stays_bit_identical() {
        // Every machine hammers one hot key, so whichever shard owns it
        // serves (almost) all reads: maximal imbalance. The auto-tuner
        // must double the shard count between rounds — and the store must
        // stay bit-identical to the sequential reference throughout,
        // because shard counts only spread load.
        let hot_rounds = |backend: &mut dyn AmpcBackend| -> DataStore {
            for round in 0..4u64 {
                backend
                    .round_carrying_forward(32, ConflictPolicy::KeepMin, |machine, ctx| {
                        let hot = ctx.read(Key::single(0))?.map_or(0, |v| v.words()[0]);
                        ctx.write(
                            Key::pair(round + 1, machine as u64),
                            Value::single(hot + machine as u64),
                        )
                    })
                    .expect("budgets are generous");
            }
            backend.snapshot_store()
        };
        let mut seq: Box<dyn AmpcBackend> =
            Box::new(SequentialBackend::new(config(), seeded_store(8)));
        let expected = hot_rounds(seq.as_mut());

        let runtime = crate::RuntimeConfig::parallel()
            .with_threads(2)
            .with_shards(0);
        assert!(runtime.auto_shards());
        let mut auto = runtime.backend(config(), seeded_store(8));
        let actual = hot_rounds(auto.as_mut());
        assert_eq!(expected, actual, "auto-sharding never changes results");

        let recorded: Vec<usize> = auto
            .metrics()
            .runtime_stats()
            .iter()
            .map(|stats| stats.auto_shards)
            .collect();
        assert!(
            recorded.iter().all(|&shards| shards > 0),
            "auto runs log the chosen shard count per round: {recorded:?}"
        );
        assert!(
            recorded.last() > recorded.first(),
            "a fully imbalanced read load must grow the shard count: {recorded:?}"
        );
        // One hot key is *irreducible* imbalance: after the first doubling
        // fails to dilute the hot shard, the tuner stalls instead of
        // paying a full store re-partition every round up to the cap.
        assert_eq!(
            recorded.last(),
            recorded.get(1),
            "the tuner must stop doubling once doubling stops helping: {recorded:?}"
        );
        // Fixed-shard runs log 0 (not auto-tuned).
        let mut fixed: Box<dyn AmpcBackend> =
            Box::new(ParallelBackend::new(config(), seeded_store(8), 2, 4));
        let _ = hot_rounds(fixed.as_mut());
        assert!(fixed
            .metrics()
            .runtime_stats()
            .iter()
            .all(|stats| stats.auto_shards == 0));
    }

    #[test]
    fn steal_and_overflow_deltas_are_recorded_per_round() {
        // A dedicated pool so other tests' traffic cannot leak in.
        let pool = Arc::new(WorkerPool::new(2));
        let mut par: Box<dyn AmpcBackend> = Box::new(ParallelBackend::with_pool(
            config(),
            seeded_store(64),
            4,
            4,
            Arc::clone(&pool),
        ));
        run_program(par.as_mut(), 64, ConflictPolicy::KeepMin).unwrap();
        let pool_stats = pool.stats();
        for stats in par.metrics().runtime_stats() {
            assert!(stats.pool_steals <= pool_stats.steals);
            assert!(stats.pool_overflows <= pool_stats.overflows);
        }
    }

    #[test]
    fn error_policy_reports_the_first_conflict() {
        let run = |backend: &mut dyn AmpcBackend| {
            backend.round(16, ConflictPolicy::Error, |machine, ctx| {
                // All machines write a different value to the same key.
                ctx.write(Key::single(9), Value::single(machine as u64))
            })
        };
        let mut seq: Box<dyn AmpcBackend> =
            Box::new(SequentialBackend::new(config(), DataStore::new()));
        let mut par: Box<dyn AmpcBackend> =
            Box::new(ParallelBackend::new(config(), DataStore::new(), 4, 4));
        let a = run(seq.as_mut()).unwrap_err();
        let b = run(par.as_mut()).unwrap_err();
        assert_eq!(a, b);
        assert!(matches!(a, ModelError::WriteConflict { .. }));
    }

    #[test]
    fn budget_violations_report_the_lowest_machine() {
        let tight = AmpcConfig::for_input_size(16, 0.5); // budget 4
        let run = |backend: &mut dyn AmpcBackend| {
            backend.round(12, ConflictPolicy::KeepMin, |machine, ctx| {
                // Machines 3, 7, 11 over-read; 3 must win on both backends.
                let reads = if machine % 4 == 3 { 100 } else { 1 };
                for i in 0..reads {
                    ctx.read(Key::single(i))?;
                }
                Ok(())
            })
        };
        let mut seq: Box<dyn AmpcBackend> =
            Box::new(SequentialBackend::new(tight, DataStore::new()));
        let mut par: Box<dyn AmpcBackend> =
            Box::new(ParallelBackend::new(tight, DataStore::new(), 4, 2));
        let a = run(seq.as_mut()).unwrap_err();
        let b = run(par.as_mut()).unwrap_err();
        assert_eq!(a, b);
        assert_eq!(
            a,
            ModelError::ReadBudgetExceeded {
                machine: 3,
                budget: 4
            }
        );
    }

    #[test]
    fn early_write_conflict_outranks_later_body_error() {
        // Sequential event order: machine 3's conflicting write merges
        // before machine 5's body ever runs, so WriteConflict must win on
        // both backends even though a body error exists at machine 5.
        let tight = AmpcConfig::for_input_size(16, 0.5); // budget 4
        let run = |backend: &mut dyn AmpcBackend| {
            backend.round(8, ConflictPolicy::Error, |machine, ctx| {
                if machine == 2 || machine == 3 {
                    ctx.write(Key::single(9), Value::single(machine as u64))?;
                }
                if machine == 5 {
                    for i in 0..100 {
                        ctx.read(Key::single(i))?;
                    }
                }
                Ok(())
            })
        };
        let mut seq: Box<dyn AmpcBackend> =
            Box::new(SequentialBackend::new(tight, DataStore::new()));
        let mut par: Box<dyn AmpcBackend> =
            Box::new(ParallelBackend::new(tight, DataStore::new(), 4, 4));
        let a = run(seq.as_mut()).unwrap_err();
        let b = run(par.as_mut()).unwrap_err();
        assert_eq!(a, b);
        assert!(matches!(a, ModelError::WriteConflict { .. }));

        // Mirror case: the body error strikes at machine 1, before the
        // conflicting writes of machines 2/3 — now it must win.
        let run = |backend: &mut dyn AmpcBackend| {
            backend.round(8, ConflictPolicy::Error, |machine, ctx| {
                if machine == 2 || machine == 3 {
                    ctx.write(Key::single(9), Value::single(machine as u64))?;
                }
                if machine == 1 {
                    for i in 0..100 {
                        ctx.read(Key::single(i))?;
                    }
                }
                Ok(())
            })
        };
        let mut seq: Box<dyn AmpcBackend> =
            Box::new(SequentialBackend::new(tight, DataStore::new()));
        let mut par: Box<dyn AmpcBackend> =
            Box::new(ParallelBackend::new(tight, DataStore::new(), 4, 4));
        let a = run(seq.as_mut()).unwrap_err();
        let b = run(par.as_mut()).unwrap_err();
        assert_eq!(a, b);
        assert_eq!(
            a,
            ModelError::ReadBudgetExceeded {
                machine: 1,
                budget: 4
            }
        );
    }

    #[test]
    fn failed_rounds_leave_no_trace() {
        let mut par: Box<dyn AmpcBackend> =
            Box::new(ParallelBackend::new(config(), seeded_store(8), 2, 2));
        let before = par.snapshot_store();
        let err = par.round(8, ConflictPolicy::Error, |machine, ctx| {
            ctx.write(Key::single(0), Value::single(machine as u64))
        });
        assert!(err.is_err());
        assert_eq!(par.snapshot_store(), before);
        assert_eq!(par.metrics().num_rounds(), 0);
    }
}
