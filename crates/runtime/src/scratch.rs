//! Reusable scratch memory for the intra-layer hot paths.
//!
//! PR 3/4 parallelized every LOCAL/MPC simulator loop, but profiling showed
//! the loops were *allocator*-bound, not scheduler-bound: every
//! Kuhn–Wattenhofer decision allocated a `vec![false; palette]`, every
//! Arb-Linial round decoded polynomials into fresh `Vec`s, and every
//! derandomization candidate cloned the seed — hundreds of thousands of
//! mallocs per simulated round that the work-stealing pool could only
//! spread around, not remove. This module is the vocabulary that removes
//! them:
//!
//! * [`MarkerSet`] — an epoch-stamped membership set with O(1) clear: the
//!   standard replacement for repeated small `vec![false; n]` scratch.
//!   Marking stamps the current epoch; clearing just bumps the epoch.
//! * [`ScratchPool`] — a thread-indexed pool of reusable `T: Default`
//!   buffers. Worker closures [`ScratchPool::lease`] a buffer, use it for
//!   one item (or one chunk) and return it on drop; in steady state no
//!   lease allocates. Pools are **generation-checked**: bumping the
//!   generation ([`ScratchPool::advance_generation`]) lazily discards every
//!   cached buffer, so a caller that cannot prove its buffers reset cleanly
//!   can force fresh ones without walking the pool.
//! * [`ScratchCounters`] / [`scratch_totals`] — reuse-vs-alloc accounting.
//!   Each pool bumps its shared counters (surfaced per round as
//!   [`ampc_model::RoundRuntimeStats::scratch_reuses`] /
//!   [`ampc_model::RoundRuntimeStats::scratch_allocs`]) and the
//!   process-wide totals behind [`scratch_totals`] (surfaced by the
//!   service's `/metrics`).
//!
//! ## Determinism
//!
//! Scratch reuse is invisible to the bit-identity contract by construction:
//! a lease hands out a logically cleared buffer (values never depend on
//! which physical buffer serves a lease), and the counters are measurement
//! data excluded from metric equality like the pool stats.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Process-wide reuse/alloc totals across every [`ScratchPool`], for the
/// service's `/metrics` document.
static GLOBAL_REUSES: AtomicU64 = AtomicU64::new(0);
static GLOBAL_ALLOCS: AtomicU64 = AtomicU64::new(0);

/// Cumulative `(reuses, allocs)` across every [`ScratchPool`] in the
/// process since start.
pub fn scratch_totals() -> (u64, u64) {
    (
        GLOBAL_REUSES.load(Ordering::Relaxed),
        GLOBAL_ALLOCS.load(Ordering::Relaxed),
    )
}

/// Locks a mutex, ignoring poisoning (pool bookkeeping never runs caller
/// code under the lock, so poisoning only means another thread panicked
/// elsewhere).
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A small dense id for the current thread, used to spread scratch leases
/// (and trace-event records, see `crate::trace`) over per-context shards so
/// concurrent workers rarely contend on one lock.
pub(crate) fn thread_slot() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SLOT: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    SLOT.with(|slot| {
        let mut index = slot.get();
        if index == usize::MAX {
            index = NEXT.fetch_add(1, Ordering::Relaxed);
            slot.set(index);
        }
        index
    })
}

/// Shared reuse-vs-alloc counters, typically owned by a
/// `RoundPrimitives` context and fed by every scratch pool (and reusable
/// output buffer) attached to it.
#[derive(Debug, Default)]
pub struct ScratchCounters {
    reuses: AtomicU64,
    allocs: AtomicU64,
}

impl ScratchCounters {
    /// Books one buffer acquisition: `reused` tells whether an existing
    /// buffer's capacity was recycled (no allocation) or a fresh one was
    /// created. Also feeds the process-wide [`scratch_totals`].
    pub fn note(&self, reused: bool) {
        if reused {
            self.reuses.fetch_add(1, Ordering::Relaxed);
            GLOBAL_REUSES.fetch_add(1, Ordering::Relaxed);
        } else {
            self.allocs.fetch_add(1, Ordering::Relaxed);
            GLOBAL_ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Buffer acquisitions served from recycled buffers.
    pub fn reuses(&self) -> u64 {
        self.reuses.load(Ordering::Relaxed)
    }

    /// Buffer acquisitions that had to allocate.
    pub fn allocs(&self) -> u64 {
        self.allocs.load(Ordering::Relaxed)
    }
}

/// Number of independently locked free-lists per pool. Leases index by
/// [`thread_slot`], so up to this many threads lease without contending.
const SCRATCH_SHARDS: usize = 16;

/// A cached buffer, tagged with the pool generation it was returned under.
struct Entry<T> {
    value: T,
    generation: u64,
}

/// A thread-indexed pool of reusable `T: Default` scratch buffers.
///
/// [`ScratchPool::lease`] pops a cached buffer from the current thread's
/// shard (or creates a fresh `T::default()` when none is cached — counted
/// as an alloc); dropping the returned [`ScratchLease`] pushes the buffer
/// back for the next lease. The pool never clears buffers itself: `T` is
/// expected to expose a cheap logical reset (e.g. [`MarkerSet::reset`],
/// `Vec::clear`) that the *user* of the lease applies, so stale contents
/// can never influence results even when a buffer migrates between
/// workloads.
///
/// Pools are generation-checked: [`ScratchPool::advance_generation`]
/// invalidates every cached buffer lazily (stale entries are dropped the
/// next time a lease finds them), forcing fresh `T::default()` values
/// without walking the shards.
pub struct ScratchPool<T> {
    shards: Vec<Mutex<Vec<Entry<T>>>>,
    generation: AtomicU64,
    counters: Arc<ScratchCounters>,
}

impl<T> std::fmt::Debug for ScratchPool<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScratchPool")
            .field("generation", &self.generation.load(Ordering::Relaxed))
            .field("counters", &self.counters)
            .finish()
    }
}

impl<T: Default> Default for ScratchPool<T> {
    fn default() -> Self {
        ScratchPool::new()
    }
}

impl<T: Default> ScratchPool<T> {
    /// An empty pool with its own (unshared) counters.
    pub fn new() -> Self {
        ScratchPool::with_counters(Arc::new(ScratchCounters::default()))
    }

    /// An empty pool feeding the supplied shared counters (what
    /// `RoundPrimitives::scratch_pool` uses, so every pool of one context
    /// reports into one `RoundRuntimeStats` record).
    pub fn with_counters(counters: Arc<ScratchCounters>) -> Self {
        ScratchPool {
            shards: (0..SCRATCH_SHARDS)
                .map(|_| Mutex::new(Vec::new()))
                .collect(),
            generation: AtomicU64::new(0),
            counters,
        }
    }

    /// Leases a buffer: a recycled one when the thread's shard has a
    /// current-generation entry cached, a fresh `T::default()` otherwise.
    /// The buffer returns to the pool when the lease drops.
    pub fn lease(&self) -> ScratchLease<'_, T> {
        let shard = thread_slot() % self.shards.len();
        let generation = self.generation.load(Ordering::Acquire);
        let recycled = {
            let mut entries = lock(&self.shards[shard]);
            loop {
                match entries.pop() {
                    None => break None,
                    Some(entry) if entry.generation == generation => break Some(entry.value),
                    // Stale generation: drop the buffer and keep looking.
                    Some(_) => continue,
                }
            }
        };
        let reused = recycled.is_some();
        self.counters.note(reused);
        ScratchLease {
            pool: self,
            shard,
            generation,
            value: Some(recycled.unwrap_or_default()),
        }
    }

    /// Invalidates every cached buffer (lazily): subsequent leases create
    /// fresh `T::default()` values, and buffers returned by still-live
    /// leases of older generations are dropped instead of recycled.
    pub fn advance_generation(&self) {
        self.generation.fetch_add(1, Ordering::Release);
    }

    /// The pool's shared counters.
    pub fn counters(&self) -> &Arc<ScratchCounters> {
        &self.counters
    }

    /// Number of buffers currently cached (for tests/diagnostics; stale
    /// generations still count until a lease discards them).
    pub fn cached(&self) -> usize {
        self.shards.iter().map(|shard| lock(shard).len()).sum()
    }
}

/// An exclusively held scratch buffer, returned to its [`ScratchPool`] on
/// drop. Dereferences to `T`.
pub struct ScratchLease<'a, T: Default> {
    pool: &'a ScratchPool<T>,
    shard: usize,
    generation: u64,
    /// Present from construction until `Drop` takes it back.
    value: Option<T>,
}

impl<T: Default> std::ops::Deref for ScratchLease<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.value.as_ref().expect("present until drop")
    }
}

impl<T: Default> std::ops::DerefMut for ScratchLease<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.value.as_mut().expect("present until drop")
    }
}

impl<T: Default> Drop for ScratchLease<'_, T> {
    fn drop(&mut self) {
        let value = self.value.take().expect("dropped once");
        // A generation bump while the lease was out means the buffer is
        // considered stale: drop it instead of recycling.
        if self.pool.generation.load(Ordering::Acquire) != self.generation {
            return;
        }
        lock(&self.pool.shards[self.shard]).push(Entry {
            value,
            generation: self.generation,
        });
    }
}

/// An epoch-stamped membership set over `0..len` with O(1) clear — the
/// allocation-free replacement for the per-item `vec![false; len]` pattern
/// in the simulators' inner loops.
///
/// Every slot stores the epoch at which it was last marked;
/// [`MarkerSet::is_marked`] compares against the current epoch, so
/// [`MarkerSet::reset`] clears the whole set by bumping the epoch (and
/// re-zeroes the stamps only on the one-in-`u32::MAX` wraparound, keeping
/// stale stamps from a four-billion-reset-old epoch from reading as
/// marked).
#[derive(Debug, Default)]
pub struct MarkerSet {
    stamp: Vec<u32>,
    epoch: u32,
}

impl MarkerSet {
    /// An empty set ([`MarkerSet::reset`] sizes it).
    pub fn new() -> Self {
        MarkerSet::default()
    }

    /// Clears the set and ensures it covers `0..len`. O(1) except when the
    /// domain grows or the epoch wraps around.
    pub fn reset(&mut self, len: usize) {
        if self.stamp.len() < len {
            self.stamp.resize(len, 0);
        }
        self.epoch = match self.epoch.checked_add(1) {
            Some(epoch) => epoch,
            None => {
                // Wraparound: epoch 0 would collide with never-marked
                // slots' initial stamp, and old stamps would alias future
                // epochs — re-zero everything and restart at 1.
                self.stamp.fill(0);
                1
            }
        };
    }

    /// Marks `index` as a member.
    ///
    /// # Panics
    ///
    /// Panics if `index` is outside the domain of the last
    /// [`MarkerSet::reset`].
    #[inline]
    pub fn mark(&mut self, index: usize) {
        self.stamp[index] = self.epoch;
    }

    /// Whether `index` was marked since the last [`MarkerSet::reset`].
    ///
    /// # Panics
    ///
    /// Panics if `index` is outside the domain of the last
    /// [`MarkerSet::reset`].
    #[inline]
    pub fn is_marked(&self, index: usize) -> bool {
        self.stamp[index] == self.epoch
    }
}

/// A word-packed bitset over a small universe `0..len` — the compact
/// color-set companion to [`MarkerSet`].
///
/// Where [`MarkerSet`] spends a `u32` stamp per slot to buy O(1) clear over
/// *large* domains, `BitSet` packs 64 slots per `u64` word: for the palette
/// domains of the elimination sweeps and recoloring waves (tens to a few
/// thousand colors) the whole set fits in a cache line or two, the clear is
/// a short `memset`, and — the reason it exists — **free-color queries
/// become word scans**: [`BitSet::first_absent`] / [`BitSet::last_absent`]
/// replace per-color probe loops with `!word` plus a trailing/leading-zero
/// count, 64 candidate colors per instruction.
#[derive(Debug, Default)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

/// Bits per [`BitSet`] storage word.
const WORD_BITS: usize = 64;

impl BitSet {
    /// An empty set ([`BitSet::reset`] sizes it).
    pub fn new() -> Self {
        BitSet::default()
    }

    /// Clears the set and sizes it to cover `0..len`. Cost is one word-fill
    /// over `len / 64` words — for palette-sized domains, a few cache
    /// lines.
    pub fn reset(&mut self, len: usize) {
        self.words.clear();
        self.words.resize(len.div_ceil(WORD_BITS), 0);
        self.len = len;
    }

    /// The universe size set by the last [`BitSet::reset`].
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the universe is empty (`len == 0`).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `value` into the set.
    ///
    /// # Panics
    ///
    /// Panics if `value` is outside the domain of the last
    /// [`BitSet::reset`].
    #[inline]
    pub fn insert(&mut self, value: usize) {
        assert!(value < self.len, "BitSet::insert out of domain");
        self.words[value / WORD_BITS] |= 1u64 << (value % WORD_BITS);
    }

    /// Whether `value` was inserted since the last [`BitSet::reset`].
    ///
    /// # Panics
    ///
    /// Panics if `value` is outside the domain of the last
    /// [`BitSet::reset`].
    #[inline]
    pub fn contains(&self, value: usize) -> bool {
        assert!(value < self.len, "BitSet::contains out of domain");
        self.words[value / WORD_BITS] >> (value % WORD_BITS) & 1 == 1
    }

    /// The smallest value in `0..len` *not* in the set, or `None` when the
    /// set is full. Equivalent to `(0..len).find(|&c| !set.contains(c))`,
    /// 64 candidates per word scan.
    pub fn first_absent(&self) -> Option<usize> {
        for (index, &word) in self.words.iter().enumerate() {
            let free = !word;
            if free != 0 {
                // Only the last word carries out-of-domain bits, and when
                // a middle word has a free bit the candidate is always in
                // domain — so one range check covers both cases.
                let candidate = index * WORD_BITS + free.trailing_zeros() as usize;
                return (candidate < self.len).then_some(candidate);
            }
        }
        None
    }

    /// The largest value in `0..len` *not* in the set, or `None` when the
    /// set is full. Equivalent to `(0..len).rev().find(|&c|
    /// !set.contains(c))`.
    pub fn last_absent(&self) -> Option<usize> {
        for (index, &word) in self.words.iter().enumerate().rev() {
            let mut free = !word;
            // Mask off the out-of-domain tail of the last word.
            let in_domain = self.len - index * WORD_BITS;
            if in_domain < WORD_BITS {
                free &= (1u64 << in_domain) - 1;
            }
            if free != 0 {
                return Some(index * WORD_BITS + (WORD_BITS - 1) - free.leading_zeros() as usize);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marker_set_clears_in_constant_time() {
        let mut marks = MarkerSet::new();
        marks.reset(10);
        marks.mark(3);
        marks.mark(7);
        assert!(marks.is_marked(3));
        assert!(marks.is_marked(7));
        assert!(!marks.is_marked(4));
        marks.reset(10);
        for i in 0..10 {
            assert!(!marks.is_marked(i), "slot {i} survived a reset");
        }
        // Growing the domain keeps new slots unmarked.
        marks.mark(1);
        marks.reset(20);
        for i in 0..20 {
            assert!(!marks.is_marked(i));
        }
    }

    #[test]
    fn marker_set_epoch_wraparound_cannot_resurrect_stale_marks() {
        let mut marks = MarkerSet::new();
        marks.reset(4);
        marks.mark(2);
        // Fast-forward to the wraparound edge: the next reset overflows.
        marks.epoch = u32::MAX;
        marks.stamp[1] = u32::MAX; // "marked at the last pre-wrap epoch"
        marks.reset(4);
        assert_eq!(marks.epoch, 1, "wraparound restarts at epoch 1");
        for i in 0..4 {
            assert!(!marks.is_marked(i), "slot {i} read as marked after wrap");
        }
        marks.mark(0);
        assert!(marks.is_marked(0));
        assert!(!marks.is_marked(1));
        // A stamp that happened to hold the restarted epoch was re-zeroed.
        let mut aliased = MarkerSet::new();
        aliased.reset(2);
        aliased.mark(0); // stamp 1 — would alias epoch 1 after a wrap
        aliased.epoch = u32::MAX;
        aliased.reset(2);
        assert!(
            !aliased.is_marked(0),
            "pre-wrap stamp aliased the new epoch"
        );
    }

    #[test]
    fn scratch_pool_recycles_buffers_and_counts() {
        let pool: ScratchPool<Vec<u64>> = ScratchPool::new();
        {
            let mut lease = pool.lease();
            lease.extend_from_slice(&[1, 2, 3]);
        } // returned with its capacity (and stale contents) intact
        assert_eq!(pool.cached(), 1);
        {
            let mut lease = pool.lease();
            // The user applies the logical reset; capacity survives.
            assert!(lease.capacity() >= 3, "capacity must be recycled");
            lease.clear();
            assert!(lease.is_empty());
        }
        assert_eq!(
            pool.counters().allocs(),
            1,
            "only the first lease allocates"
        );
        assert_eq!(pool.counters().reuses(), 1);
    }

    #[test]
    fn advancing_the_generation_discards_cached_buffers() {
        let pool: ScratchPool<Vec<u64>> = ScratchPool::new();
        {
            let mut lease = pool.lease();
            lease.push(42);
        }
        pool.advance_generation();
        {
            let lease = pool.lease();
            assert!(lease.is_empty(), "stale-generation buffers are dropped");
        }
        assert_eq!(pool.counters().allocs(), 2);
        assert_eq!(pool.counters().reuses(), 0);
        // A lease outstanding across the bump is dropped on return, not
        // recycled: the next lease after the bump allocates fresh.
        let lease = pool.lease(); // recycles the current-generation buffer
        assert_eq!(pool.counters().reuses(), 1);
        pool.advance_generation();
        drop(lease);
        assert_eq!(pool.cached(), 0, "stale returns are discarded");
        let fresh = pool.lease();
        assert_eq!(pool.counters().allocs(), 3);
        drop(fresh);
    }

    #[test]
    fn bitset_matches_the_probe_loop_reference() {
        // Domains straddling the word width, including the exact-word and
        // empty edges.
        for len in [0, 1, 2, 63, 64, 65, 127, 128, 130, 200] {
            let mut set = BitSet::new();
            set.reset(len);
            // Deterministic pseudo-random membership.
            let mut member = vec![false; len];
            for (value, slot) in member.iter_mut().enumerate() {
                if (value * 2_654_435_761) % 7 < 3 {
                    set.insert(value);
                    *slot = true;
                }
            }
            for (value, &expected) in member.iter().enumerate() {
                assert_eq!(set.contains(value), expected, "len {len} value {value}");
            }
            assert_eq!(
                set.first_absent(),
                (0..len).find(|&value| !member[value]),
                "first_absent at len {len}"
            );
            assert_eq!(
                set.last_absent(),
                (0..len).rev().find(|&value| !member[value]),
                "last_absent at len {len}"
            );
        }
    }

    #[test]
    fn bitset_full_and_boundary_behavior() {
        let mut set = BitSet::new();
        set.reset(65);
        for value in 0..65 {
            set.insert(value);
        }
        assert_eq!(set.first_absent(), None, "full set has no absent value");
        assert_eq!(set.last_absent(), None);
        // Reset clears and resizes; only the tail value stays absent-able.
        set.reset(64);
        for value in 0..63 {
            set.insert(value);
        }
        assert_eq!(set.first_absent(), Some(63));
        assert_eq!(set.last_absent(), Some(63));
        set.insert(63);
        assert_eq!(set.first_absent(), None);
        // Empty universe.
        set.reset(0);
        assert!(set.is_empty());
        assert_eq!(set.first_absent(), None);
        assert_eq!(set.last_absent(), None);
    }

    #[test]
    fn concurrent_leases_get_distinct_buffers() {
        let pool: ScratchPool<Vec<usize>> = ScratchPool::new();
        std::thread::scope(|scope| {
            for worker in 0..4 {
                let pool = &pool;
                scope.spawn(move || {
                    for round in 0..100 {
                        let mut lease = pool.lease();
                        lease.clear();
                        lease.push(worker * 1000 + round);
                        assert_eq!(lease.len(), 1, "no two leases share a buffer");
                    }
                });
            }
        });
        let (reuses, allocs) = {
            let counters = pool.counters();
            (counters.reuses(), counters.allocs())
        };
        assert_eq!(reuses + allocs, 400);
        assert!(reuses > 0, "steady-state leases recycle");
    }
}
