//! The backend selection switch threaded through the algorithm drivers.

use ampc_model::{AmpcConfig, DataStore};

use crate::backend::{AmpcBackend, SequentialBackend};
use crate::parallel::ParallelBackend;
use crate::process_backend::ProcessBackend;

/// Selects the executor backend (and its parallelism) for an algorithm run.
///
/// `Copy`, comparable and cheap so it can ride along inside parameter
/// structs (`PartitionParams`, `AmpcColoringParams`, the `SparseColoring`
/// builder) — every algorithm in the workspace accepts one and runs
/// unchanged on either backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RuntimeConfig {
    /// The original single-threaded reference simulator.
    #[default]
    Sequential,
    /// The sharded multi-threaded runtime.
    Parallel {
        /// Worker threads per round; `None` uses the host's available
        /// parallelism.
        threads: Option<usize>,
        /// Store shards; `None` derives the fixed default `4 × threads`.
        /// **`Some(0)` selects auto-tuning**: the initial count derives
        /// from the thread count and the backend doubles it between rounds
        /// while the observed per-shard read load
        /// ([`ampc_model::RoundRuntimeStats::shard_reads`]) stays
        /// imbalanced. Shard counts never affect results, only load
        /// spread, so auto-tuning preserves bit-identity.
        shards: Option<usize>,
    },
    /// The multi-process runtime: shard merges run in supervised
    /// `ampc-shard-worker` child OS processes (stage 1 of distributed
    /// execution), with crash recovery by respawn + round replay.
    Process {
        /// Shard-worker child processes; `None` uses the default of 2.
        workers: Option<usize>,
    },
}

impl RuntimeConfig {
    /// The parallel runtime with host-derived thread and shard counts.
    pub fn parallel() -> Self {
        RuntimeConfig::Parallel {
            threads: None,
            shards: None,
        }
    }

    /// The multi-process runtime with the default worker count.
    pub fn process() -> Self {
        RuntimeConfig::Process { workers: None }
    }

    /// Pins the child-process count (switching to the process runtime if
    /// necessary).
    pub fn with_workers(self, workers: usize) -> Self {
        RuntimeConfig::Process {
            workers: Some(workers),
        }
    }

    /// Pins the worker thread count (switching to the parallel runtime if
    /// necessary; a no-op for the process runtime, whose parallelism is
    /// its worker-process count).
    pub fn with_threads(self, threads: usize) -> Self {
        match self {
            RuntimeConfig::Sequential => RuntimeConfig::Parallel {
                threads: Some(threads),
                shards: None,
            },
            RuntimeConfig::Parallel { shards, .. } => RuntimeConfig::Parallel {
                threads: Some(threads),
                shards,
            },
            process @ RuntimeConfig::Process { .. } => process,
        }
    }

    /// Pins the shard count (switching to the parallel runtime if
    /// necessary; a no-op for the process runtime, whose shard count is
    /// fixed at `4 × workers`).
    pub fn with_shards(self, shards: usize) -> Self {
        match self {
            RuntimeConfig::Sequential => RuntimeConfig::Parallel {
                threads: None,
                shards: Some(shards),
            },
            RuntimeConfig::Parallel { threads, .. } => RuntimeConfig::Parallel {
                threads,
                shards: Some(shards),
            },
            process @ RuntimeConfig::Process { .. } => process,
        }
    }

    /// Whether the multi-process runtime is selected.
    pub fn is_process(&self) -> bool {
        matches!(self, RuntimeConfig::Process { .. })
    }

    /// Shard-worker child processes the process runtime spawns (0 for the
    /// in-process runtimes).
    pub fn effective_workers(&self) -> usize {
        match self {
            RuntimeConfig::Process { workers } => workers.unwrap_or(2).max(1),
            _ => 0,
        }
    }

    /// Whether the parallel runtime is selected.
    pub fn is_parallel(&self) -> bool {
        matches!(self, RuntimeConfig::Parallel { .. })
    }

    /// Worker threads an algorithm phase may use (1 for sequential).
    pub fn effective_threads(&self) -> usize {
        match self {
            // Process-runtime machine bodies run in the parent, single
            // threaded; its parallelism lives in the worker processes.
            RuntimeConfig::Sequential | RuntimeConfig::Process { .. } => 1,
            RuntimeConfig::Parallel { threads, .. } => threads
                .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |p| p.get()))
                .max(1),
        }
    }

    /// Whether the shard count is auto-tuned (`shards == Some(0)`).
    pub fn auto_shards(&self) -> bool {
        matches!(
            self,
            RuntimeConfig::Parallel {
                shards: Some(0),
                ..
            }
        )
    }

    /// Store shards the parallel backend will start with. For the
    /// auto-tuned setting (`shards == Some(0)`) this is the initial count
    /// derived from the thread count — a power of two so doublings stay
    /// powers of two; the backend may grow it from observed imbalance.
    pub fn effective_shards(&self) -> usize {
        match self {
            RuntimeConfig::Sequential => 1,
            RuntimeConfig::Parallel { shards, .. } => match shards {
                Some(0) => (4 * self.effective_threads()).next_power_of_two(),
                Some(shards) => (*shards).max(1),
                None => (4 * self.effective_threads()).max(1),
            },
            RuntimeConfig::Process { .. } => 4 * self.effective_workers(),
        }
    }

    /// Instantiates the selected backend over an initial store.
    pub fn backend(&self, config: AmpcConfig, initial: DataStore) -> Box<dyn AmpcBackend> {
        match self {
            RuntimeConfig::Sequential => Box::new(SequentialBackend::new(config, initial)),
            RuntimeConfig::Parallel { .. } => Box::new(
                ParallelBackend::new(
                    config,
                    initial,
                    self.effective_threads(),
                    self.effective_shards(),
                )
                .with_auto_shard_tuning(self.auto_shards()),
            ),
            RuntimeConfig::Process { .. } => Box::new(ProcessBackend::new(
                config,
                initial,
                self.effective_workers(),
            )),
        }
    }

    /// Short label for tables and bench output.
    pub fn label(&self) -> String {
        match self {
            RuntimeConfig::Sequential => "sequential".to_string(),
            RuntimeConfig::Parallel { .. } => format!(
                "parallel(threads={}, shards={})",
                self.effective_threads(),
                self.effective_shards()
            ),
            RuntimeConfig::Process { .. } => {
                format!("process(workers={})", self.effective_workers())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampc_model::{ConflictPolicy, Key, Value};

    #[test]
    fn builder_switches_to_parallel() {
        assert!(!RuntimeConfig::Sequential.is_parallel());
        assert_eq!(RuntimeConfig::Sequential.effective_threads(), 1);
        let rt = RuntimeConfig::Sequential.with_threads(4).with_shards(16);
        assert!(rt.is_parallel());
        assert_eq!(rt.effective_threads(), 4);
        assert_eq!(rt.effective_shards(), 16);
        // Default shard count derives from the thread count.
        let derived = RuntimeConfig::parallel().with_threads(2);
        assert_eq!(derived.effective_shards(), 8);
        assert!(RuntimeConfig::parallel().label().starts_with("parallel"));
    }

    #[test]
    fn process_runtime_selection() {
        let rt = RuntimeConfig::process();
        assert!(rt.is_process());
        assert!(!rt.is_parallel());
        assert_eq!(rt.effective_workers(), 2);
        assert_eq!(rt.effective_threads(), 1);
        assert_eq!(rt.effective_shards(), 8);
        assert_eq!(rt.label(), "process(workers=2)");
        let pinned = RuntimeConfig::Sequential.with_workers(4);
        assert!(pinned.is_process());
        assert_eq!(pinned.effective_workers(), 4);
        assert_eq!(pinned.effective_shards(), 16);
        // Thread/shard pins are no-ops on the process runtime.
        assert_eq!(pinned.with_threads(8).with_shards(64), pinned);
        // Workers clamp to at least one; in-process runtimes have none.
        assert_eq!(
            RuntimeConfig::process().with_workers(0).effective_workers(),
            1
        );
        assert_eq!(RuntimeConfig::Sequential.effective_workers(), 0);
        assert_eq!(RuntimeConfig::parallel().effective_workers(), 0);
    }

    #[test]
    fn zero_shards_selects_auto_tuning() {
        let auto = RuntimeConfig::parallel().with_threads(3).with_shards(0);
        assert!(auto.auto_shards());
        // Initial auto count: derived from the thread count, a power of
        // two so doublings stay powers of two.
        assert_eq!(auto.effective_shards(), 16);
        assert!(!RuntimeConfig::parallel().with_threads(3).auto_shards());
        assert!(!RuntimeConfig::Sequential.auto_shards());
        // A non-zero explicit count is honored verbatim.
        let fixed = RuntimeConfig::parallel().with_threads(3).with_shards(5);
        assert!(!fixed.auto_shards());
        assert_eq!(fixed.effective_shards(), 5);
    }

    #[test]
    fn both_backends_instantiate() {
        for rt in [
            RuntimeConfig::Sequential,
            RuntimeConfig::parallel().with_threads(2),
        ] {
            let mut backend = rt.backend(AmpcConfig::for_input_size(16, 0.5), DataStore::new());
            backend.load_store(vec![(Key::single(0), Value::single(1))]);
            backend
                .round(1, ConflictPolicy::Error, |_, ctx| {
                    let v = ctx.read(Key::single(0))?.unwrap();
                    ctx.write(Key::single(0), Value::single(v.words()[0] + 1))
                })
                .unwrap();
            assert_eq!(backend.get(Key::single(0)), Some(Value::single(2)));
        }
    }
}
