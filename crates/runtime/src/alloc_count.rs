//! A counting global allocator for allocation-budget benchmarks.
//!
//! Compiled only under the `alloc-count` feature (bench/test builds; the
//! production binaries never pay the per-allocation atomic). The
//! `intra_bench` bin installs [`CountingAllocator`] as its
//! `#[global_allocator]` and reports the per-round allocation deltas as
//! the `allocs_per_round` column of `BENCH_intra.json`, which CI gates on.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// Heap allocations (`alloc` + growing `realloc` calls) served since
/// process start. Subtract two snapshots to attribute allocations to a
/// region of code; with a single-threaded driver the attribution is exact
/// up to pool-worker activity the region itself caused.
pub fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// The system allocator with a relaxed allocation counter in front —
/// behavior-identical to [`System`], plus [`allocations`] accounting.
pub struct CountingAllocator;

// SAFETY: delegates every operation verbatim to `System`; the counter is a
// relaxed atomic with no allocation or panic paths of its own.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A growing realloc is a fresh backing allocation on most
        // allocators; count it so Vec growth patterns stay visible.
        if new_size > layout.size() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}
