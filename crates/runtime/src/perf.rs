//! Hardware performance-counter sampling via `perf_event_open(2)`.
//!
//! The ROADMAP's single-thread-speed work is blocked on *measurement*: wall
//! clock alone cannot distinguish "memory-latency-bound" from "issue-bound",
//! and the repo's policy of never asserting what it can measure needs
//! cycles, instructions and cache misses per round. This module provides
//! them with zero external dependencies, consistent with the offline-shims
//! policy: the syscall is issued through a tiny FFI shim over the libc
//! `syscall(3)` entry point that `std` already links — no `libc` crate, no
//! `perf-event` crate.
//!
//! # Model
//!
//! Each sampling thread owns one **counter group**: five hardware events
//! (cycles, instructions, cache references, cache misses, branch misses)
//! multiplexed behind a single leader fd, read with one `read(2)` returning
//! the whole group atomically (`PERF_FORMAT_GROUP`). Groups are opened
//! lazily, enabled once, and registered in a process-wide list; a
//! [`snapshot`] sums the current readings of every registered thread, so a
//! *delta of two snapshots* brackets the hardware work the process did in
//! between — the same before/after idiom the worker-pool stats already use
//! (and with the same caveat: concurrent executions sharing the pool
//! attribute each other's work to whichever round is being measured).
//!
//! Counter values are scaled by `time_enabled / time_running` when the
//! kernel had to multiplex the group onto limited PMU hardware, the
//! standard estimate used by `perf stat`.
//!
//! # Graceful degradation
//!
//! Availability is probed **once** per process: non-Linux targets, a kernel
//! with `perf_event_paranoid` too strict, a seccomp filter rejecting the
//! syscall, or the explicit `AMPC_PERF=0` override all make [`available`]
//! return `false`, after which every API here is an inert no-op returning
//! zero counters — never an error. Consumers report `perf.available=false`
//! honestly instead of fabricating numbers.
//!
//! Sampling is measurement-only: it never influences scheduling, chunking
//! or merge order, so the workspace's bit-identity contract is unaffected
//! by sampling on or off (pinned by `tests/backend_equivalence.rs`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// One reading (or delta) of the five-event hardware counter group.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PerfCounters {
    /// CPU cycles retired (`PERF_COUNT_HW_CPU_CYCLES`).
    pub cycles: u64,
    /// Instructions retired (`PERF_COUNT_HW_INSTRUCTIONS`).
    pub instructions: u64,
    /// Cache references, usually last-level (`PERF_COUNT_HW_CACHE_REFERENCES`).
    pub cache_references: u64,
    /// Cache misses, usually last-level (`PERF_COUNT_HW_CACHE_MISSES`).
    pub cache_misses: u64,
    /// Mispredicted branches (`PERF_COUNT_HW_BRANCH_MISSES`).
    pub branch_misses: u64,
}

impl PerfCounters {
    /// `true` when every counter is zero (nothing measured, or perf
    /// unavailable).
    pub fn is_zero(&self) -> bool {
        *self == PerfCounters::default()
    }

    /// Instructions per cycle, the canonical "issue-bound vs stalled"
    /// ratio. `None` when cycles were not measured.
    pub fn ipc(&self) -> Option<f64> {
        (self.cycles > 0).then(|| self.instructions as f64 / self.cycles as f64)
    }

    /// Fraction of cache references that missed, in `0.0..=1.0`. `None`
    /// when references were not measured.
    pub fn cache_miss_rate(&self) -> Option<f64> {
        (self.cache_references > 0).then(|| self.cache_misses as f64 / self.cache_references as f64)
    }

    /// Element-wise sum.
    pub fn add(&mut self, other: &PerfCounters) {
        self.cycles += other.cycles;
        self.instructions += other.instructions;
        self.cache_references += other.cache_references;
        self.cache_misses += other.cache_misses;
        self.branch_misses += other.branch_misses;
    }

    /// Element-wise `self - earlier`, saturating at zero so a thread
    /// registering mid-window can never underflow the delta.
    pub fn saturating_delta(&self, earlier: &PerfCounters) -> PerfCounters {
        PerfCounters {
            cycles: self.cycles.saturating_sub(earlier.cycles),
            instructions: self.instructions.saturating_sub(earlier.instructions),
            cache_references: self
                .cache_references
                .saturating_sub(earlier.cache_references),
            cache_misses: self.cache_misses.saturating_sub(earlier.cache_misses),
            branch_misses: self.branch_misses.saturating_sub(earlier.branch_misses),
        }
    }
}

/// A lock-free accumulator for sampled counter deltas, shared by reference
/// like the trace context: scopes add into it, readers snapshot it.
#[derive(Debug, Default)]
pub struct PerfSink {
    cycles: AtomicU64,
    instructions: AtomicU64,
    cache_references: AtomicU64,
    cache_misses: AtomicU64,
    branch_misses: AtomicU64,
    samples: AtomicU64,
}

impl PerfSink {
    /// An empty sink.
    pub fn new() -> Self {
        PerfSink::default()
    }

    /// Adds one sampled delta.
    pub fn record(&self, delta: &PerfCounters) {
        self.cycles.fetch_add(delta.cycles, Ordering::Relaxed);
        self.instructions
            .fetch_add(delta.instructions, Ordering::Relaxed);
        self.cache_references
            .fetch_add(delta.cache_references, Ordering::Relaxed);
        self.cache_misses
            .fetch_add(delta.cache_misses, Ordering::Relaxed);
        self.branch_misses
            .fetch_add(delta.branch_misses, Ordering::Relaxed);
        self.samples.fetch_add(1, Ordering::Relaxed);
    }

    /// The accumulated totals.
    pub fn counters(&self) -> PerfCounters {
        PerfCounters {
            cycles: self.cycles.load(Ordering::Relaxed),
            instructions: self.instructions.load(Ordering::Relaxed),
            cache_references: self.cache_references.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            branch_misses: self.branch_misses.load(Ordering::Relaxed),
        }
    }

    /// Number of deltas recorded.
    pub fn samples(&self) -> u64 {
        self.samples.load(Ordering::Relaxed)
    }
}

/// `true` when the given `AMPC_PERF` value forces sampling off. Factored
/// out of the cached probe so the policy is unit-testable without touching
/// process-global state.
pub fn env_disables(value: Option<&str>) -> bool {
    matches!(
        value.map(str::trim),
        Some("0") | Some("off") | Some("false") | Some("no")
    )
}

/// Whether hardware counters can be sampled in this process. Probed once
/// (syscall support, `perf_event_paranoid`, seccomp, the `AMPC_PERF=0`
/// override) and cached for the process lifetime.
pub fn available() -> bool {
    static AVAILABLE: OnceLock<bool> = OnceLock::new();
    *AVAILABLE.get_or_init(|| {
        if env_disables(std::env::var("AMPC_PERF").ok().as_deref()) {
            return false;
        }
        imp::probe()
    })
}

/// Opens and enables this thread's counter group if sampling is available
/// and it has none yet. Worker threads call this once at startup; safe to
/// call from any thread, any number of times. A no-op when unavailable.
pub fn register_current_thread() {
    if available() {
        imp::ensure_registered();
    }
}

/// Sums the current counter readings of every registered thread. Two
/// snapshots bracket a measured region: `end.saturating_delta(&start)` is
/// the hardware work the process's registered threads did in between.
/// All-zero when sampling is unavailable.
pub fn snapshot() -> PerfCounters {
    if !available() {
        return PerfCounters::default();
    }
    imp::ensure_registered();
    imp::read_all()
}

/// RAII sampling scope: snapshots on creation and, on drop, records the
/// delta into `sink`. Inert — no syscalls at all — when `sink` is `None`
/// or sampling is unavailable, mirroring [`crate::trace::span_on`].
#[must_use = "the scope samples when dropped"]
pub struct PerfScope<'a> {
    sink: Option<&'a PerfSink>,
    start: PerfCounters,
}

/// Opens a [`PerfScope`] accumulating into `sink` (if any).
pub fn sample_into(sink: Option<&PerfSink>) -> PerfScope<'_> {
    let sink = sink.filter(|_| available());
    PerfScope {
        start: if sink.is_some() {
            snapshot()
        } else {
            PerfCounters::default()
        },
        sink,
    }
}

impl Drop for PerfScope<'_> {
    fn drop(&mut self) {
        if let Some(sink) = self.sink {
            sink.record(&snapshot().saturating_delta(&self.start));
        }
    }
}

/// Linux implementation: the FFI shim, the counter-group plumbing and the
/// process-wide registry of per-thread groups.
///
/// The one `unsafe` surface of this module (the crate otherwise denies
/// unsafe code, see `lib.rs`): four libc entry points and a `repr(C)`
/// attribute struct. Audited invariants: the attribute struct matches
/// `PERF_ATTR_SIZE_VER0` (64 bytes, accepted by every kernel that has the
/// syscall), fds are only read/ioctl'd while their owning `ThreadGroup` is
/// alive (groups registered in the global list are never dropped), and the
/// group read buffer is sized for the maximum possible reply.
#[cfg(target_os = "linux")]
#[allow(unsafe_code)]
mod imp {
    use super::{Arc, Mutex, OnceLock, PerfCounters};
    use std::os::raw::{c_int, c_long, c_ulong, c_void};

    extern "C" {
        fn syscall(num: c_long, ...) -> c_long;
        fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        fn close(fd: c_int) -> c_int;
        fn ioctl(fd: c_int, request: c_ulong, ...) -> c_int;
    }

    #[cfg(target_arch = "x86_64")]
    const SYS_PERF_EVENT_OPEN: c_long = 298;
    #[cfg(target_arch = "aarch64")]
    const SYS_PERF_EVENT_OPEN: c_long = 241;
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    const SYS_PERF_EVENT_OPEN: c_long = -1;

    const PERF_TYPE_HARDWARE: u32 = 0;
    /// `PERF_COUNT_HW_{CPU_CYCLES, INSTRUCTIONS, CACHE_REFERENCES,
    /// CACHE_MISSES, BRANCH_MISSES}`, in the order the group is opened and
    /// [`PerfCounters`] is laid out.
    const EVENT_CONFIGS: [u64; 5] = [0, 1, 2, 3, 5];

    const PERF_FORMAT_TOTAL_TIME_ENABLED: u64 = 1 << 0;
    const PERF_FORMAT_TOTAL_TIME_RUNNING: u64 = 1 << 1;
    const PERF_FORMAT_GROUP: u64 = 1 << 3;

    const FLAG_DISABLED: u64 = 1 << 0;
    const FLAG_EXCLUDE_KERNEL: u64 = 1 << 5;
    const FLAG_EXCLUDE_HV: u64 = 1 << 6;

    const PERF_EVENT_IOC_ENABLE: c_ulong = 0x2400;
    const PERF_IOC_FLAG_GROUP: c_ulong = 1;

    /// `perf_event_attr` at `PERF_ATTR_SIZE_VER0` (64 bytes): the prefix
    /// every kernel version accepts, and all this module needs.
    #[repr(C)]
    #[derive(Default)]
    struct PerfEventAttr {
        kind: u32,
        size: u32,
        config: u64,
        sample_period: u64,
        sample_type: u64,
        read_format: u64,
        flags: u64,
        wakeup_events: u32,
        bp_type: u32,
        bp_addr: u64,
    }

    fn open_event(config: u64, group_fd: c_int) -> Option<c_int> {
        let leader = group_fd < 0;
        let attr = PerfEventAttr {
            kind: PERF_TYPE_HARDWARE,
            size: std::mem::size_of::<PerfEventAttr>() as u32,
            config,
            read_format: PERF_FORMAT_TOTAL_TIME_ENABLED
                | PERF_FORMAT_TOTAL_TIME_RUNNING
                | PERF_FORMAT_GROUP,
            // The group starts disabled and is enabled once fully
            // assembled; siblings inherit the leader's enable state.
            flags: if leader { FLAG_DISABLED } else { 0 } | FLAG_EXCLUDE_KERNEL | FLAG_EXCLUDE_HV,
            ..PerfEventAttr::default()
        };
        // pid = 0, cpu = -1: measure the calling thread on every CPU.
        let fd = unsafe {
            syscall(
                SYS_PERF_EVENT_OPEN,
                &attr as *const PerfEventAttr,
                0 as c_int,
                -1 as c_int,
                group_fd,
                0 as c_ulong,
            )
        };
        (fd >= 0).then_some(fd as c_int)
    }

    /// One thread's five-event counter group. The fds stay open (and the
    /// counters keep counting) for the life of the process; readings are
    /// monotone, so deltas of two reads measure the interval between them.
    /// Reading another thread's group fd is explicitly supported by the
    /// perf API — the fd identifies the measured thread, not the reader.
    pub(super) struct ThreadGroup {
        leader: c_int,
        siblings: Vec<c_int>,
        /// `attached[i]` ⇔ event `i` of [`EVENT_CONFIGS`] joined the group
        /// (a PMU may lack e.g. cache-miss events; missing ones read 0).
        attached: [bool; 5],
    }

    impl Drop for ThreadGroup {
        fn drop(&mut self) {
            for &fd in self.siblings.iter().chain(std::iter::once(&self.leader)) {
                unsafe { close(fd) };
            }
        }
    }

    impl ThreadGroup {
        fn open() -> Option<ThreadGroup> {
            let leader = open_event(EVENT_CONFIGS[0], -1)?;
            let mut group = ThreadGroup {
                leader,
                siblings: Vec::with_capacity(4),
                attached: [true, false, false, false, false],
            };
            for (slot, &config) in EVENT_CONFIGS.iter().enumerate().skip(1) {
                if let Some(fd) = open_event(config, leader) {
                    group.siblings.push(fd);
                    group.attached[slot] = true;
                }
            }
            let rc = unsafe { ioctl(leader, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP) };
            (rc == 0).then_some(group)
        }

        fn read_counters(&self) -> PerfCounters {
            // PERF_FORMAT_GROUP reply: { nr, time_enabled, time_running,
            // value[nr] } — at most 3 + 5 words for this group.
            let mut buf = [0u64; 8];
            let wanted = std::mem::size_of_val(&buf);
            let got = unsafe { read(self.leader, buf.as_mut_ptr().cast::<c_void>(), wanted) };
            if got < 24 {
                return PerfCounters::default();
            }
            let nr = buf[0] as usize;
            let (enabled, running) = (buf[1], buf[2]);
            // Multiplexing estimate, as `perf stat` scales: value × the
            // fraction of wall time the group was actually on hardware.
            let scale = |value: u64| -> u64 {
                if running == 0 || running >= enabled {
                    value
                } else {
                    ((value as u128 * enabled as u128) / running as u128) as u64
                }
            };
            let mut values = buf[3..].iter().take(nr).copied();
            let mut out = [0u64; 5];
            for (slot, present) in self.attached.iter().enumerate() {
                if *present {
                    out[slot] = scale(values.next().unwrap_or(0));
                }
            }
            PerfCounters {
                cycles: out[0],
                instructions: out[1],
                cache_references: out[2],
                cache_misses: out[3],
                branch_misses: out[4],
            }
        }
    }

    // The fds are plain integers read via thread-safe syscalls.
    unsafe impl Send for ThreadGroup {}
    unsafe impl Sync for ThreadGroup {}

    fn registry() -> &'static Mutex<Vec<Arc<ThreadGroup>>> {
        static REGISTRY: OnceLock<Mutex<Vec<Arc<ThreadGroup>>>> = OnceLock::new();
        REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
    }

    thread_local! {
        static THREAD_GROUP: std::cell::OnceCell<Option<Arc<ThreadGroup>>> =
            const { std::cell::OnceCell::new() };
    }

    /// Availability probe: can this process open a hardware cycles event?
    pub(super) fn probe() -> bool {
        match open_event(EVENT_CONFIGS[0], -1) {
            Some(fd) => {
                unsafe { close(fd) };
                true
            }
            None => false,
        }
    }

    pub(super) fn ensure_registered() {
        THREAD_GROUP.with(|cell| {
            cell.get_or_init(|| {
                let group = ThreadGroup::open().map(Arc::new);
                if let Some(group) = &group {
                    registry()
                        .lock()
                        .unwrap_or_else(|poisoned| poisoned.into_inner())
                        .push(Arc::clone(group));
                }
                group
            });
        });
    }

    pub(super) fn read_all() -> PerfCounters {
        let groups: Vec<Arc<ThreadGroup>> = registry()
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .clone();
        let mut total = PerfCounters::default();
        for group in groups {
            total.add(&group.read_counters());
        }
        total
    }
}

/// Non-Linux stub: sampling is never available, every entry point is inert.
#[cfg(not(target_os = "linux"))]
mod imp {
    use super::PerfCounters;

    pub(super) fn probe() -> bool {
        false
    }

    pub(super) fn ensure_registered() {}

    pub(super) fn read_all() -> PerfCounters {
        PerfCounters::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_override_values() {
        for off in ["0", "off", "false", "no", " 0 "] {
            assert!(env_disables(Some(off)), "{off:?} must force sampling off");
        }
        for on in ["1", "on", "true", "yes", ""] {
            assert!(!env_disables(Some(on)), "{on:?} must not force off");
        }
        assert!(!env_disables(None), "unset must not force off");
    }

    #[test]
    fn derived_ratios() {
        let zero = PerfCounters::default();
        assert!(zero.is_zero());
        assert_eq!(zero.ipc(), None);
        assert_eq!(zero.cache_miss_rate(), None);

        let c = PerfCounters {
            cycles: 1000,
            instructions: 2500,
            cache_references: 400,
            cache_misses: 100,
            branch_misses: 7,
        };
        assert!((c.ipc().unwrap() - 2.5).abs() < 1e-9);
        assert!((c.cache_miss_rate().unwrap() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn delta_saturates() {
        let small = PerfCounters {
            cycles: 5,
            ..PerfCounters::default()
        };
        let big = PerfCounters {
            cycles: 8,
            instructions: 3,
            ..PerfCounters::default()
        };
        let delta = big.saturating_delta(&small);
        assert_eq!(delta.cycles, 3);
        assert_eq!(delta.instructions, 3);
        // Never underflows when a thread registered mid-window.
        assert_eq!(small.saturating_delta(&big), PerfCounters::default());
    }

    #[test]
    fn sink_accumulates() {
        let sink = PerfSink::new();
        sink.record(&PerfCounters {
            cycles: 10,
            instructions: 20,
            ..PerfCounters::default()
        });
        sink.record(&PerfCounters {
            cycles: 1,
            cache_misses: 4,
            ..PerfCounters::default()
        });
        let total = sink.counters();
        assert_eq!(total.cycles, 11);
        assert_eq!(total.instructions, 20);
        assert_eq!(total.cache_misses, 4);
        assert_eq!(sink.samples(), 2);
    }

    #[test]
    fn inert_scope_records_nothing() {
        // No sink: no sample, regardless of availability.
        drop(sample_into(None));
        // A sink with sampling forced off behaves as unavailable: the
        // scope records a sample of all-zero counters or (when the probe
        // failed) nothing measurable — either way the totals stay zero.
        if !available() {
            let sink = PerfSink::new();
            drop(sample_into(Some(&sink)));
            assert_eq!(sink.samples(), 0, "unavailable scopes are inert");
            assert!(sink.counters().is_zero());
            assert!(snapshot().is_zero(), "snapshots are zero when unavailable");
        }
    }

    #[test]
    fn scoped_sampling_is_self_consistent_when_available() {
        if !available() {
            // Graceful degradation is itself under test elsewhere; nothing
            // to assert against real hardware here.
            return;
        }
        let sink = PerfSink::new();
        {
            let _scope = sample_into(Some(&sink));
            // Burn measurable work: a data-dependent loop the optimizer
            // cannot fold away below a few thousand instructions.
            let mut acc = 1u64;
            for i in 1..50_000u64 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            assert_ne!(acc, 0);
        }
        assert_eq!(sink.samples(), 1);
        let counters = sink.counters();
        assert!(
            counters.instructions > 0,
            "instructions counted: {counters:?}"
        );
        assert!(
            counters.cycles >= counters.instructions / 8,
            "cycles consistent with a max-issue-width machine: {counters:?}"
        );
    }
}
