//! SIMD capability probe and word-level GF(2)/bitset kernels.
//!
//! The intra-layer simulators' hot loops are bound by data width, not
//! scheduling: the derandomized coloring evaluates GF(2) parities over
//! bit-packed seed rows, and the elimination sweeps scan word-packed color
//! sets. This module owns the word-level kernels those loops run on —
//! XOR, masked parity (`popcount(a & mask) & 1`) and and-not intersection
//! tests over `&[u64]` — with three dispatch tiers:
//!
//! * an explicit AVX2 path (4 × `u64` per instruction),
//! * an explicit SSE2 path (2 × `u64`, baseline on `x86_64`), and
//! * a portable scalar path ([`scalar`]) that is **bit-identical** to both
//!   vector paths and always compiled, so equivalence tests can compare a
//!   dispatched result against the reference in-process.
//!
//! # Probe-once dispatch
//!
//! Mirroring [`crate::perf`], the dispatch path is probed **once** per
//! process: the `AMPC_SIMD=0` environment override (same spelling rules as
//! `AMPC_PERF`) or the `force-scalar` cargo feature pin the scalar path;
//! otherwise `x86_64` hosts pick AVX2 when `is_x86_feature_detected!`
//! says so and SSE2 otherwise, and every other architecture runs scalar.
//! All three paths produce identical bits for identical inputs — the
//! probe affects wall clock only, never results, so the workspace's
//! bit-identity contract is indifferent to it (pinned by
//! `tests/backend_equivalence.rs` and CI's forced-scalar job).
//!
//! Kernels shorter than [`SIMD_MIN_WORDS`] words skip the vector paths
//! entirely: the common seed-row width is one or two words (`id_bits + 1`
//! packed bits), where the win comes from the word packing itself and a
//! vector setup would cost more than it saves.
//!
//! # Prefetch
//!
//! [`prefetch_read`] is a portable software-prefetch shim over
//! `PREFETCHT0` for the CSR neighbor scans: a pure latency hint that never
//! faults and never changes results, compiled to a no-op off `x86_64`.
//! It is deliberately *not* gated on the probe — a hint cannot violate
//! the forced-scalar equivalence story.

// Explicit vector paths and the prefetch hint need `core::arch`
// intrinsics; this module opts out of the crate-wide `deny(unsafe_code)`
// the same way `pool.rs` and `perf.rs` do, with the unsafety confined to
// bounds-checked pointer arithmetic over caller-validated slices.
#![allow(unsafe_code)]

use std::sync::OnceLock;

/// Slices shorter than this many words dispatch straight to [`scalar`]:
/// below it the vector setup overhead exceeds the arithmetic saved.
pub const SIMD_MIN_WORDS: usize = 4;

/// How many neighbor-list entries ahead of the cursor the CSR scans issue
/// [`prefetch_read`] hints: far enough to cover DRAM latency at a few
/// cycles per scan step, near enough to stay inside the list.
pub const PREFETCH_LOOKAHEAD: usize = 8;

/// The resolved dispatch tier. Probed once, cached for the process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Path {
    #[cfg(target_arch = "x86_64")]
    Avx2,
    #[cfg(target_arch = "x86_64")]
    Sse2,
    Scalar,
}

fn path() -> Path {
    static PATH: OnceLock<Path> = OnceLock::new();
    *PATH.get_or_init(|| {
        if cfg!(feature = "force-scalar") {
            return Path::Scalar;
        }
        // Same override spelling as `AMPC_PERF` (0 / off / false / no).
        if crate::perf::env_disables(std::env::var("AMPC_SIMD").ok().as_deref()) {
            return Path::Scalar;
        }
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                Path::Avx2
            } else {
                Path::Sse2
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            Path::Scalar
        }
    })
}

/// `true` when a vector (non-scalar) path is dispatching. `false` on
/// non-`x86_64` hosts, under `AMPC_SIMD=0`, or with the `force-scalar`
/// feature — in all of which every kernel still works, bit-identically,
/// through [`scalar`].
pub fn available() -> bool {
    path() != Path::Scalar
}

/// The dispatch tier as a stable label: `"avx2"`, `"sse2"` or `"scalar"`.
/// Surfaced in bench table `meta` so recorded numbers carry the path that
/// produced them.
pub fn dispatch_path() -> &'static str {
    match path() {
        #[cfg(target_arch = "x86_64")]
        Path::Avx2 => "avx2",
        #[cfg(target_arch = "x86_64")]
        Path::Sse2 => "sse2",
        Path::Scalar => "scalar",
    }
}

/// `out = a ^ b`, word-wise. `out` is cleared and resized to the common
/// length; `a` and `b` must be the same length.
pub fn xor_words(a: &[u64], b: &[u64], out: &mut Vec<u64>) {
    assert_eq!(a.len(), b.len(), "xor_words operands must match");
    out.clear();
    out.resize(a.len(), 0);
    if a.len() < SIMD_MIN_WORDS {
        scalar::xor_words_into(a, b, out);
        return;
    }
    match path() {
        #[cfg(target_arch = "x86_64")]
        // Safety: the probe confirmed AVX2 at process start.
        Path::Avx2 => unsafe { x86::xor_words_avx2(a, b, out) },
        #[cfg(target_arch = "x86_64")]
        // Safety: SSE2 is baseline on x86_64.
        Path::Sse2 => unsafe { x86::xor_words_sse2(a, b, out) },
        Path::Scalar => scalar::xor_words_into(a, b, out),
    }
}

/// Parity of `popcount(a & mask)`: `true` for odd. The GF(2) inner
/// product of two packed bit vectors.
pub fn masked_parity(a: &[u64], mask: &[u64]) -> bool {
    debug_assert_eq!(a.len(), mask.len());
    if a.len() < SIMD_MIN_WORDS {
        return scalar::masked_parity(a, mask);
    }
    match path() {
        #[cfg(target_arch = "x86_64")]
        // Safety: the probe confirmed AVX2 at process start.
        Path::Avx2 => unsafe { x86::masked_parity_avx2(a, mask) },
        #[cfg(target_arch = "x86_64")]
        // Safety: SSE2 is baseline on x86_64.
        Path::Sse2 => unsafe { x86::masked_parity_sse2(a, mask) },
        Path::Scalar => scalar::masked_parity(a, mask),
    }
}

/// `true` when `a & !b` has any bit set — i.e. some bit of `a` falls
/// outside `b`. The seed-fixing loop asks this per row ("does this edge
/// query touch a still-free seed bit?").
pub fn and_not_any(a: &[u64], b: &[u64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    if a.len() < SIMD_MIN_WORDS {
        return scalar::and_not_any(a, b);
    }
    match path() {
        #[cfg(target_arch = "x86_64")]
        // Safety: the probe confirmed AVX2 at process start.
        Path::Avx2 => unsafe { x86::and_not_any_avx2(a, b) },
        #[cfg(target_arch = "x86_64")]
        // Safety: SSE2 is baseline on x86_64.
        Path::Sse2 => unsafe { x86::and_not_any_sse2(a, b) },
        Path::Scalar => scalar::and_not_any(a, b),
    }
}

/// Hints the cache hierarchy to pull `data[index]` toward L1
/// (`PREFETCHT0`). Out-of-range indices and non-`x86_64` targets are
/// no-ops; the hint never faults and never changes observable state.
#[inline(always)]
pub fn prefetch_read<T>(data: &[T], index: usize) {
    #[cfg(target_arch = "x86_64")]
    if index < data.len() {
        // Safety: the pointer is in bounds, and PREFETCHT0 is
        // architecturally a hint — it cannot fault even on a bad address.
        unsafe {
            core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(
                data.as_ptr().add(index).cast::<i8>(),
            );
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (data, index);
    }
}

/// The portable reference kernels — always compiled, bit-identical to the
/// vector paths, and the path every dispatch takes under `AMPC_SIMD=0`.
/// Public so equivalence tests can compare a dispatched result against
/// the reference without spawning a second process.
pub mod scalar {
    /// `out[i] = a[i] ^ b[i]`; `out` must already have the operands'
    /// length.
    pub fn xor_words_into(a: &[u64], b: &[u64], out: &mut [u64]) {
        for ((slot, &x), &y) in out.iter_mut().zip(a).zip(b) {
            *slot = x ^ y;
        }
    }

    /// Parity of `popcount(a & mask)`. Folding the masked words with XOR
    /// first and popcounting once is exact: parity of a sum of popcounts
    /// equals the popcount parity of the XOR fold.
    pub fn masked_parity(a: &[u64], mask: &[u64]) -> bool {
        let folded = a.iter().zip(mask).fold(0u64, |acc, (&x, &m)| acc ^ (x & m));
        folded.count_ones() & 1 == 1
    }

    /// `true` when `a & !b` is nonzero in any word.
    pub fn and_not_any(a: &[u64], b: &[u64]) -> bool {
        a.iter().zip(b).any(|(&x, &y)| x & !y != 0)
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! Explicit vector kernels. Every function is `unsafe` only because of
    //! `#[target_feature]`; all memory access is unaligned loads/stores at
    //! indices bounded by the slice lengths the safe dispatchers checked.

    use core::arch::x86_64::*;

    /// # Safety
    /// Caller must have verified AVX2 support; `out.len() == a.len() ==
    /// b.len()`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn xor_words_avx2(a: &[u64], b: &[u64], out: &mut [u64]) {
        let n = a.len();
        let mut i = 0;
        while i + 4 <= n {
            let va = _mm256_loadu_si256(a.as_ptr().add(i).cast());
            let vb = _mm256_loadu_si256(b.as_ptr().add(i).cast());
            _mm256_storeu_si256(out.as_mut_ptr().add(i).cast(), _mm256_xor_si256(va, vb));
            i += 4;
        }
        while i < n {
            out[i] = a[i] ^ b[i];
            i += 1;
        }
    }

    /// # Safety
    /// `out.len() == a.len() == b.len()` (SSE2 is baseline on `x86_64`).
    #[target_feature(enable = "sse2")]
    pub unsafe fn xor_words_sse2(a: &[u64], b: &[u64], out: &mut [u64]) {
        let n = a.len();
        let mut i = 0;
        while i + 2 <= n {
            let va = _mm_loadu_si128(a.as_ptr().add(i).cast());
            let vb = _mm_loadu_si128(b.as_ptr().add(i).cast());
            _mm_storeu_si128(out.as_mut_ptr().add(i).cast(), _mm_xor_si128(va, vb));
            i += 2;
        }
        if i < n {
            out[i] = a[i] ^ b[i];
        }
    }

    /// # Safety
    /// Caller must have verified AVX2 support; `a.len() == mask.len()`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn masked_parity_avx2(a: &[u64], mask: &[u64]) -> bool {
        let n = a.len();
        let mut acc = _mm256_setzero_si256();
        let mut i = 0;
        while i + 4 <= n {
            let va = _mm256_loadu_si256(a.as_ptr().add(i).cast());
            let vm = _mm256_loadu_si256(mask.as_ptr().add(i).cast());
            acc = _mm256_xor_si256(acc, _mm256_and_si256(va, vm));
            i += 4;
        }
        let mut lanes = [0u64; 4];
        _mm256_storeu_si256(lanes.as_mut_ptr().cast(), acc);
        let mut folded = lanes[0] ^ lanes[1] ^ lanes[2] ^ lanes[3];
        while i < n {
            folded ^= a[i] & mask[i];
            i += 1;
        }
        folded.count_ones() & 1 == 1
    }

    /// # Safety
    /// `a.len() == mask.len()` (SSE2 is baseline on `x86_64`).
    #[target_feature(enable = "sse2")]
    pub unsafe fn masked_parity_sse2(a: &[u64], mask: &[u64]) -> bool {
        let n = a.len();
        let mut acc = _mm_setzero_si128();
        let mut i = 0;
        while i + 2 <= n {
            let va = _mm_loadu_si128(a.as_ptr().add(i).cast());
            let vm = _mm_loadu_si128(mask.as_ptr().add(i).cast());
            acc = _mm_xor_si128(acc, _mm_and_si128(va, vm));
            i += 2;
        }
        let mut lanes = [0u64; 2];
        _mm_storeu_si128(lanes.as_mut_ptr().cast(), acc);
        let mut folded = lanes[0] ^ lanes[1];
        if i < n {
            folded ^= a[i] & mask[i];
        }
        folded.count_ones() & 1 == 1
    }

    /// # Safety
    /// Caller must have verified AVX2 support; `a.len() == b.len()`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn and_not_any_avx2(a: &[u64], b: &[u64]) -> bool {
        let n = a.len();
        let mut i = 0;
        while i + 4 <= n {
            let va = _mm256_loadu_si256(a.as_ptr().add(i).cast());
            let vb = _mm256_loadu_si256(b.as_ptr().add(i).cast());
            // `_mm256_andnot_si256(x, y)` computes `!x & y`.
            let hit = _mm256_andnot_si256(vb, va);
            if _mm256_testz_si256(hit, hit) == 0 {
                return true;
            }
            i += 4;
        }
        while i < n {
            if a[i] & !b[i] != 0 {
                return true;
            }
            i += 1;
        }
        false
    }

    /// # Safety
    /// `a.len() == b.len()` (SSE2 is baseline on `x86_64`).
    #[target_feature(enable = "sse2")]
    pub unsafe fn and_not_any_sse2(a: &[u64], b: &[u64]) -> bool {
        let n = a.len();
        let mut i = 0;
        while i + 2 <= n {
            let va = _mm_loadu_si128(a.as_ptr().add(i).cast());
            let vb = _mm_loadu_si128(b.as_ptr().add(i).cast());
            let hit = _mm_andnot_si128(vb, va);
            // SSE2 has no TESTZ: compare every byte against zero and
            // check the 16-bit equality mask instead.
            let all_zero = _mm_movemask_epi8(_mm_cmpeq_epi8(hit, _mm_setzero_si128())) == 0xFFFF;
            if !all_zero {
                return true;
            }
            i += 2;
        }
        if i < n && a[i] & !b[i] != 0 {
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift64* word stream — no `rand` dependency in
    /// this crate, and tests must not depend on ambient entropy.
    fn words(seed: u64, len: usize) -> Vec<u64> {
        let mut state = seed.max(1);
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state.wrapping_mul(0x2545_F491_4F6C_DD1D)
            })
            .collect()
    }

    #[test]
    fn dispatch_path_is_a_known_label() {
        let label = dispatch_path();
        assert!(
            ["avx2", "sse2", "scalar"].contains(&label),
            "unexpected path {label}"
        );
        assert_eq!(available(), label != "scalar");
    }

    #[test]
    fn dispatched_kernels_match_scalar_reference_across_lengths() {
        // Lengths straddle SIMD_MIN_WORDS and every vector-width tail
        // residue (0..=3 mod 4, 0..=1 mod 2).
        for len in [0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 33, 64, 100] {
            let a = words(0xA11CE ^ len as u64, len);
            let b = words(0xB0B ^ (len as u64) << 8, len);

            let mut dispatched = Vec::new();
            xor_words(&a, &b, &mut dispatched);
            let mut reference = vec![0u64; len];
            scalar::xor_words_into(&a, &b, &mut reference);
            assert_eq!(dispatched, reference, "xor mismatch at len {len}");

            assert_eq!(
                masked_parity(&a, &b),
                scalar::masked_parity(&a, &b),
                "parity mismatch at len {len}"
            );
            assert_eq!(
                and_not_any(&a, &b),
                scalar::and_not_any(&a, &b),
                "and-not mismatch at len {len}"
            );
            // Force both branches of the intersection test: a ⊆ b never
            // escapes b, and an extra bit outside b always does.
            let cover: Vec<u64> = a.iter().map(|&x| x | 0x8000_0000_0000_0001).collect();
            let inside: Vec<u64> = a.iter().map(|&x| x & 0x7FFF_FFFF_FFFF_FFFE).collect();
            assert!(!and_not_any(&inside, &cover));
            assert_eq!(and_not_any(&a, &inside), scalar::and_not_any(&a, &inside));
        }
    }

    #[test]
    fn masked_parity_counts_exactly() {
        // Hand-checkable case: three overlapping bits → odd parity.
        let a = vec![0b1011u64, 0, 0, 0, 1];
        let m = vec![0b1110u64, 0, 0, 0, 1];
        // a & m = 0b1010 plus the lone top word bit = 3 bits set.
        assert!(masked_parity(&a, &m));
        assert!(scalar::masked_parity(&a, &m));
    }

    #[test]
    fn prefetch_is_inert() {
        let data = vec![1u32, 2, 3];
        prefetch_read(&data, 0);
        prefetch_read(&data, 2);
        prefetch_read(&data, 999); // out of range: no-op, no fault
        prefetch_read::<u64>(&[], 0);
        assert_eq!(data, vec![1, 2, 3]);
    }

    #[test]
    fn empty_slices_are_fine() {
        let mut out = vec![7u64; 3];
        xor_words(&[], &[], &mut out);
        assert!(out.is_empty());
        assert!(!masked_parity(&[], &[]));
        assert!(!and_not_any(&[], &[]));
    }
}
