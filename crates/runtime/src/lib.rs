//! # ampc-runtime
//!
//! Sharded, multi-threaded execution subsystem for AMPC rounds.
//!
//! The `ampc-model` crate defines *what* an AMPC round is (machines with
//! `O(S)` read/write budgets communicating through distributed data stores)
//! and ships a sequential reference simulator. This crate makes the model's
//! defining feature — **many machines running in parallel against a
//! distributed store** — real:
//!
//! * [`ShardedStore`] — the DDS hash-partitioned into `N` shards with
//!   lock-free concurrent reads (shared immutably during a round, with
//!   per-shard atomic read counters) and per-shard write buffers merged by
//!   the existing [`ConflictPolicy`] rules.
//! * [`ParallelBackend`] — a round scheduler that fans machine closures out
//!   across a thread pool (contiguous machine ranges per worker), preserving
//!   the per-machine read/write budget enforcement of the sequential
//!   executor.
//! * [`AmpcBackend`] — the executor abstraction all backends implement, so
//!   every algorithm in the workspace runs on any of them through a
//!   [`RuntimeConfig`] switch.
//! * [`ProcessBackend`] — the multi-process round scheduler (stage 1 of
//!   distributed execution): shard merges run in supervised
//!   `ampc-shard-worker` **child OS processes** speaking a length-prefixed
//!   binary protocol over pipes; a killed worker is respawned and the
//!   round replayed from retained input, bit-identically.
//! * [`WorkerPool`] — a **persistent** worker pool: threads are spawned once
//!   per pool (the process-wide [`WorkerPool::global`] pool by default) and
//!   reused across rounds, backends and jobs, instead of scoped-spawning
//!   per round. The serving subsystem (`ampc-service`) shares the same
//!   pool across its job queue. Tasks run on per-worker **work-stealing
//!   deques** (LIFO local pop, FIFO steal), so skewed batches — the
//!   cost-weighted chunks of a hub-heavy graph — keep every worker busy.
//! * [`RoundPrimitives`] — deterministic data-parallel **round primitives**
//!   (`par_node_map`, `par_color_classes`, `par_reduce`) that the LOCAL/MPC
//!   simulators' per-node loops run on: chunked maps with index-ordered
//!   merge, independent-set recoloring sweeps with snapshot semantics, and
//!   reductions over a thread-count-independent chunk grid — bit-identical
//!   for any thread count. The `*_weighted` forms add **cost-weighted
//!   chunking** (per-item cost = CSR degree) whose chunk boundaries derive
//!   only from the prefix sum of the costs, splitting skewed index ranges
//!   into many small stealable tasks without touching the bit-identity
//!   contract.
//! * [`MarkerSet`] / [`ScratchPool`] — the allocation-discipline vocabulary:
//!   epoch-stamped membership sets with O(1) clear and thread-indexed,
//!   generation-checked reusable-buffer leasing
//!   ([`RoundPrimitives::scratch_pool`]), plus `*_into` primitive variants
//!   writing into caller-owned reused buffers — the simulators' hot loops
//!   allocate nothing in steady state, with reuse counters surfaced as
//!   [`ampc_model::RoundRuntimeStats::scratch_reuses`] /
//!   [`ampc_model::RoundRuntimeStats::scratch_allocs`].
//! * Extended metrics — wall-clock per round, per-shard read/write counts,
//!   conflict-merge counts and pool-reuse deltas (tasks per worker, idle
//!   time), surfaced through [`ampc_model::AmpcMetrics::runtime_stats`].
//! * [`TraceContext`] / [`LatencyHistogram`] — the observability layer
//!   (see [`trace`]): a never-blocking, pre-allocated span recorder
//!   carried by [`RoundPrimitives`] and the backends (per-round, per-layer
//!   and per-phase spans, exportable as Chrome trace-event JSON) plus
//!   log-bucketed latency histograms for the serving subsystem.
//!
//! ## Determinism contract
//!
//! For a fixed seed and [`ConflictPolicy`], the parallel backend produces
//! **bit-identical** final stores (and therefore colorings) to the
//! sequential backend, for any thread and shard count:
//!
//! * machine bodies only see the previous round's store, so execution order
//!   within a round cannot leak;
//! * writes are buffered per machine and merged in `(machine id, write
//!   index)` order, exactly the order the sequential executor applies them
//!   in — [`ConflictPolicy::KeepFirst`] and error reporting stay
//!   deterministic;
//! * errors follow the sequential executor's event order (machine `m`'s
//!   body runs, then its writes merge, then machine `m + 1` starts): the
//!   lowest failing machine's body error is returned unless a write
//!   conflict among strictly earlier machines precedes it.
//!
//! ```
//! use ampc_model::{AmpcConfig, ConflictPolicy, DataStore, Key, Value};
//! use ampc_runtime::RuntimeConfig;
//!
//! let mut input = DataStore::new();
//! for i in 0..64u64 {
//!     input.insert(Key::single(i), Value::single(i));
//! }
//! let config = AmpcConfig::for_input_size(64, 0.5);
//!
//! // Same program, both backends.
//! let mut results = Vec::new();
//! for runtime in [RuntimeConfig::Sequential, RuntimeConfig::parallel().with_threads(4)] {
//!     let mut backend = runtime.backend(config, input.clone());
//!     backend
//!         .round(64, ConflictPolicy::Error, |machine, ctx| {
//!             let key = Key::single(machine as u64);
//!             if let Some(value) = ctx.read(key)? {
//!                 ctx.write(key, Value::single(value.words()[0] * 2))?;
//!             }
//!             Ok(())
//!         })
//!         .unwrap();
//!     results.push(backend.snapshot_store());
//! }
//! assert_eq!(results[0], results[1]);
//! assert_eq!(results[0].get(Key::single(21)), Some(Value::single(42)));
//! ```

// `deny` rather than `forbid`: the worker pool's scoped-batch execution
// needs one audited lifetime erasure (see `pool.rs`), the hardware
// counter sampler needs a small FFI shim over `perf_event_open(2)` (see
// `perf.rs`), and the SIMD kernels need `core::arch` intrinsics (see
// `simd.rs`); each opts in with a module-level `allow`.
#![deny(unsafe_code)]
#![warn(missing_docs)]

#[cfg(feature = "alloc-count")]
pub mod alloc_count;
mod backend;
mod config;
pub mod faults;
mod ipc;
mod parallel;
pub mod perf;
mod pool;
mod process_backend;
mod rounds;
mod scratch;
mod shard;
pub mod simd;
pub mod trace;

pub use ampc_model::{ConflictPolicy, RoundRuntimeStats};
pub use backend::{AmpcBackend, RoundBody, SequentialBackend};
pub use config::RuntimeConfig;
pub use ipc::shard_worker_main;
pub use parallel::ParallelBackend;
pub use perf::{PerfCounters, PerfSink};
pub use pool::{parallel_map, parallel_map_weighted, PoolStats, ScopedTask, WorkerPool};
pub use process_backend::ProcessBackend;
pub use rounds::RoundPrimitives;
pub use scratch::{scratch_totals, BitSet, MarkerSet, ScratchCounters, ScratchLease, ScratchPool};
pub use shard::ShardedStore;
pub use trace::{
    chrome_trace_json, span_on, LatencyHistogram, SpanGuard, TraceContext, TraceEvent,
    TraceTimeline,
};
