//! The multi-process round scheduler: shard workers as child OS
//! processes, with crash supervision and bit-identical recovery.
//!
//! [`ProcessBackend`] is stage 1 of the ROADMAP's distributed backend:
//! the same [`AmpcBackend`] contract as [`crate::ParallelBackend`], but
//! with the shard-merge phase executed by `ampc-shard-worker` **child
//! processes** speaking the length-prefixed [`crate::ipc`] protocol over
//! stdin/stdout pipes. Machine closures cannot cross a process boundary
//! (a [`RoundBody`] is an arbitrary `Fn`), so the supervisor runs the
//! machine bodies in-parent, buffers their writes in global
//! `(machine, write index)` order, streams each worker the batches for
//! its contiguous shard range, and commits the merged shards the workers
//! stream back — the identical merge algorithm, so the bit-identity
//! contract extends across processes.
//!
//! ## Supervision and replay
//!
//! Workers are **stateless between rounds**: every round's merge is a
//! pure function of the streamed request. On any sign of worker death —
//! pipe EOF, a failed write, a response deadline miss, or a non-zero
//! exit — the supervisor SIGKILLs the remains, respawns the child and
//! re-streams the *retained* round input; the replayed merge is
//! byte-identical by purity, so a crash is invisible in the results
//! (PR 9's "failed rounds leave no trace", extended across processes).
//! The `kill` fault kind ([`FaultPlan::worker_killed`]) makes that path
//! deterministically testable by genuinely SIGKILLing the selected
//! worker before its round input is streamed.

use std::io::Write as _;
use std::path::PathBuf;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ampc_model::{
    AmpcConfig, AmpcMetrics, ConflictPolicy, DataStore, Key, MachineContext, ModelError,
    RoundReport, RoundRuntimeStats, Value,
};

use crate::backend::{AmpcBackend, RoundBody};
use crate::faults::{self, AttemptFailure, FaultPlan};
use crate::ipc::{self, MergeRequest, Request, Response, ShardMergeResult, ShardWrites};
use crate::pool::chunk_ranges;
use crate::shard::{FlatShard, ShardedStore};
use crate::trace::{span_on, TraceContext};

/// A write buffered by one machine, in the global sequential-application
/// order (see [`crate::ParallelBackend`]).
type BufferedWrite = (usize, usize, Key, Value);

/// Consecutive deaths of one worker within one round before the attempt
/// is abandoned (and handed to the round-level bounded retry).
const MAX_WORKER_REPLAYS: u32 = 3;

/// Hang guard on a worker response when no round deadline is configured:
/// a healthy merge answers in microseconds, so a silent worker is dead
/// or wedged long before this trips.
const RESPONSE_HANG_GUARD: Duration = Duration::from_secs(300);

/// Locates the `ampc-shard-worker` binary: the `AMPC_SHARD_WORKER` env
/// var wins, otherwise the directory of the current executable and its
/// parent are searched (covering installed layouts and
/// `target/<profile>/deps/` test binaries).
fn locate_worker_binary() -> Result<PathBuf, String> {
    if let Some(path) = std::env::var_os("AMPC_SHARD_WORKER") {
        let path = PathBuf::from(path);
        return if path.is_file() {
            Ok(path)
        } else {
            Err(format!(
                "AMPC_SHARD_WORKER={} does not exist",
                path.display()
            ))
        };
    }
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let name = format!("ampc-shard-worker{}", std::env::consts::EXE_SUFFIX);
    let mut searched = Vec::new();
    for dir in [exe.parent(), exe.parent().and_then(std::path::Path::parent)]
        .into_iter()
        .flatten()
    {
        let candidate = dir.join(&name);
        if candidate.is_file() {
            return Ok(candidate);
        }
        searched.push(candidate);
    }
    Err(format!(
        "ampc-shard-worker binary not found (searched {searched:?}); \
         build it with `cargo build` or point AMPC_SHARD_WORKER at it"
    ))
}

/// One supervised child process: the spawned handle, its stdin pipe, and
/// a reader thread draining its stdout into a channel (so responses can
/// be awaited with a timeout — blocking pipe reads cannot).
struct Worker {
    child: Child,
    stdin: Option<ChildStdin>,
    frames: mpsc::Receiver<std::io::Result<Vec<u8>>>,
    reader: Option<std::thread::JoinHandle<()>>,
    /// Set once a death has been observed (keeps the liveness gauge from
    /// double-counting one corpse).
    dead: bool,
}

impl Worker {
    fn spawn(binary: &PathBuf, index: usize) -> std::io::Result<Worker> {
        let mut child = Command::new(binary)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()?;
        let stdin = child.stdin.take().expect("stdin was piped");
        let mut stdout = child.stdout.take().expect("stdout was piped");
        let (sender, frames) = mpsc::channel();
        let reader = std::thread::Builder::new()
            .name(format!("ampc-shard-io-{index}"))
            .spawn(move || loop {
                match ipc::read_frame(&mut stdout) {
                    Ok(frame) => {
                        if sender.send(Ok(frame)).is_err() {
                            return;
                        }
                    }
                    Err(error) => {
                        let _ = sender.send(Err(error));
                        return;
                    }
                }
            })?;
        faults::note_worker_spawned();
        Ok(Worker {
            child,
            stdin: Some(stdin),
            frames,
            reader: Some(reader),
            dead: false,
        })
    }

    /// OS pid of the child (the direct-`kill(2)` test hook).
    fn pid(&self) -> u32 {
        self.child.id()
    }

    /// Streams one request frame. A failed write means the child is gone
    /// (EPIPE once a SIGKILLed child's pipe closes).
    fn send(&mut self, frame: &[u8]) -> std::io::Result<()> {
        let stdin = self
            .stdin
            .as_mut()
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::BrokenPipe, "stdin closed"))?;
        ipc::write_frame(stdin, frame)?;
        stdin.flush()
    }

    /// Marks an observed death exactly once (liveness gauge bookkeeping).
    fn note_dead(&mut self) {
        if !self.dead {
            self.dead = true;
            faults::note_worker_death();
        }
    }

    /// SIGKILLs the child (idempotent) and reaps it: kill + wait + join
    /// the reader thread, which exits on the pipe EOF the kill causes.
    fn kill_and_reap(&mut self) {
        self.note_dead();
        let _ = self.child.kill();
        drop(self.stdin.take());
        let _ = self.child.wait();
        if let Some(reader) = self.reader.take() {
            let _ = reader.join();
        }
    }
}

impl Drop for Worker {
    fn drop(&mut self) {
        self.kill_and_reap();
    }
}

/// The multi-process implementation of [`AmpcBackend`]: machine bodies
/// in-parent, shard merges in supervised `ampc-shard-worker` child
/// processes, results bit-identical to [`crate::SequentialBackend`] for
/// any worker count — including runs where workers are killed mid-round.
pub struct ProcessBackend {
    config: AmpcConfig,
    store: ShardedStore,
    metrics: AmpcMetrics,
    workers: Vec<Worker>,
    binary: PathBuf,
    /// Monotonic dispatch id: stamped into every merge request and echoed
    /// by the worker, so stale frames from superseded dispatches (a late
    /// answer racing a replay) are recognized and discarded.
    dispatch_seq: u64,
    trace: Option<Arc<TraceContext>>,
}

impl std::fmt::Debug for ProcessBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProcessBackend")
            .field("workers", &self.workers.len())
            .field("shards", &self.store.num_shards())
            .field("store_len", &self.store.len())
            .field("rounds", &self.metrics.num_rounds())
            .finish()
    }
}

impl ProcessBackend {
    /// Spawns a process backend over `initial` with `workers` child
    /// processes (clamped to at least 1) and `4 × workers` store shards,
    /// assigned to workers as contiguous ranges.
    ///
    /// # Panics
    ///
    /// Panics when the `ampc-shard-worker` binary cannot be located (see
    /// `AMPC_SHARD_WORKER`) or a child fails to spawn.
    pub fn new(config: AmpcConfig, initial: DataStore, workers: usize) -> Self {
        let workers = workers.max(1);
        let binary = locate_worker_binary().expect("shard-worker binary must be locatable");
        let children = (0..workers)
            .map(|index| Worker::spawn(&binary, index).expect("shard-worker child must spawn"))
            .collect();
        ProcessBackend {
            config,
            store: ShardedStore::from_store(initial, 4 * workers),
            metrics: AmpcMetrics::default(),
            workers: children,
            binary,
            dispatch_seq: 0,
            trace: None,
        }
    }

    /// Number of shard-worker child processes.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// OS pids of the live children, in worker order — the test hook for
    /// killing a worker directly with `kill(2)`.
    pub fn worker_pids(&self) -> Vec<u32> {
        self.workers.iter().map(Worker::pid).collect()
    }

    /// Replaces a dead worker with a fresh child on the same index.
    fn respawn(&mut self, index: usize) {
        self.workers[index].kill_and_reap();
        let fresh = Worker::spawn(&self.binary, index).expect("shard-worker child must respawn");
        self.workers[index] = fresh;
        faults::note_worker_process_restart();
    }

    /// Awaits the response frame for dispatch `id` from worker `index`,
    /// discarding stale frames from superseded dispatches. `None` means
    /// the worker died (EOF, reader gone) or missed the deadline.
    fn await_response(&mut self, index: usize, id: u64, deadline_at: Instant) -> Option<Response> {
        loop {
            let budget = deadline_at
                .checked_duration_since(Instant::now())
                .unwrap_or(Duration::from_millis(1));
            match self.workers[index].frames.recv_timeout(budget) {
                Ok(Ok(frame)) => match Response::decode(&frame) {
                    Ok(Response::Merge { id: got, .. }) if got != id => continue,
                    Ok(response) => return Some(response),
                    Err(_) => return None,
                },
                Ok(Err(_)) | Err(mpsc::RecvTimeoutError::Disconnected) => return None,
                Err(mpsc::RecvTimeoutError::Timeout) => return None,
            }
        }
    }

    /// Runs one round's merge on the worker fleet: streams each worker
    /// its shard range's writes, collects the merged shards, and heals
    /// worker deaths by respawn + replay of the retained round input.
    ///
    /// Returns the per-shard merge results keyed by global shard index.
    ///
    /// # Panics
    ///
    /// Panics (caught by the round-level bounded retry) when one worker
    /// dies more than [`MAX_WORKER_REPLAYS`] times in a single round.
    #[allow(clippy::too_many_arguments)]
    fn merge_on_workers(
        &mut self,
        round: usize,
        attempt: u32,
        plan: Option<&FaultPlan>,
        per_shard: Vec<Vec<BufferedWrite>>,
        policy: ConflictPolicy,
        deadline: Option<Duration>,
        started: Instant,
    ) -> Result<Vec<ShardMergeResult>, AttemptFailure> {
        let num_shards = per_shard.len();
        let num_workers = self.workers.len();
        let ranges = chunk_ranges(num_shards, num_workers);
        self.dispatch_seq += 1;
        let id = self.dispatch_seq;

        // Build and retain one encoded request frame per worker: the
        // retained bytes are what a replay re-streams after a respawn.
        let mut buckets: Vec<Option<Vec<BufferedWrite>>> =
            per_shard.into_iter().map(Some).collect();
        let frames: Vec<Vec<u8>> = ranges
            .iter()
            .map(|range| {
                let shards = range
                    .clone()
                    .map(|shard| ShardWrites {
                        shard: shard as u32,
                        writes: buckets[shard]
                            .take()
                            .expect("each shard is assigned to exactly one worker")
                            .into_iter()
                            .map(|(machine, index, key, value)| {
                                (machine as u64, index as u64, key, value)
                            })
                            .collect(),
                    })
                    .collect();
                Request::Merge(MergeRequest { id, policy, shards }).encode()
            })
            .collect();

        let deadline_at = match deadline {
            Some(limit) => started + limit,
            None => started + RESPONSE_HANG_GUARD,
        };

        // Dispatch phase: stream every worker its request so the fleet
        // merges in parallel. The `kill` fault fires here — a genuine
        // SIGKILL of the selected child *before* its input is streamed,
        // so the death is always observed and healed by replay.
        let mut dispatched = vec![false; num_workers];
        for (index, frame) in frames.iter().enumerate() {
            if let Some(plan) = plan {
                if plan.worker_killed(round as u64, index as u64, attempt) {
                    faults::note_worker_kill();
                    self.workers[index].note_dead();
                    let _ = self.workers[index].child.kill();
                }
            }
            dispatched[index] = self.workers[index].send(frame).is_ok();
        }

        // Collect phase: await each worker's response; a death (failed
        // dispatch, EOF, deadline miss) is healed by respawn + replay of
        // the retained frame, bounded per worker.
        let mut replayed = false;
        let mut results: Vec<Option<ShardMergeResult>> = (0..num_shards).map(|_| None).collect();
        for index in 0..num_workers {
            let mut replays = 0u32;
            let shards = loop {
                let response = if dispatched[index] {
                    self.await_response(index, id, deadline_at)
                } else {
                    None
                };
                match response {
                    Some(Response::Merge { shards, .. }) => break shards,
                    Some(Response::Pong) | None => {
                        // Deadline budget exhausted: the attempt is lost
                        // whole; leave respawning to the next attempt's
                        // own healing (its dispatch detects the corpse).
                        if Instant::now() >= deadline_at {
                            if deadline.is_some() {
                                return Err(AttemptFailure::Deadline(
                                    deadline.unwrap_or_default().as_millis() as u64,
                                ));
                            }
                            panic!(
                                "shard worker {index} silent for {RESPONSE_HANG_GUARD:?} \
                                 in round {round}"
                            );
                        }
                        if replays >= MAX_WORKER_REPLAYS {
                            panic!("shard worker {index} died {replays} times in round {round}");
                        }
                        replays += 1;
                        replayed = true;
                        self.respawn(index);
                        dispatched[index] = self.workers[index].send(&frames[index]).is_ok();
                    }
                }
            };
            for result in shards {
                let slot = result.shard as usize;
                results[slot] = Some(result);
            }
        }
        if replayed {
            faults::note_round_replayed();
        }
        Ok(results
            .into_iter()
            .map(|result| result.expect("every shard was merged by its worker"))
            .collect())
    }

    /// One attempt at one round; commits to `self` only at the very end
    /// (see [`crate::ParallelBackend`] — same "failed rounds leave no
    /// trace" structure, with the merge phase running in the children).
    #[allow(clippy::too_many_arguments)]
    fn attempt_round(
        &mut self,
        machines: usize,
        policy: ConflictPolicy,
        carry_forward: bool,
        body: &RoundBody<'_>,
        plan: Option<&FaultPlan>,
        round: usize,
        attempt: u32,
        deadline: Option<Duration>,
    ) -> Result<RoundReport, AttemptFailure> {
        let started = Instant::now();
        let trace = self.trace.clone();
        let _round_span = span_on(trace.as_deref(), "backend.round", "backend")
            .with_arg("round", self.metrics.num_rounds() as u64)
            .with_arg("machines", machines as u64);
        let read_budget = self.config.read_budget();
        let write_budget = self.config.write_budget();
        let num_shards = self.store.num_shards();
        self.store.reset_read_counts();

        // Execute phase, in-parent: machine closures cannot cross the
        // process boundary, so bodies run here against the immutable
        // previous-round store — ascending machine order, which is
        // exactly the sequential executor's event order.
        let mut per_shard: Vec<Vec<BufferedWrite>> = (0..num_shards).map(|_| Vec::new()).collect();
        let mut max_reads = 0usize;
        let mut total_reads = 0usize;
        let mut max_writes = 0usize;
        let mut total_writes = 0usize;
        let mut body_error: Option<(usize, ModelError)> = None;
        {
            let _span = span_on(trace.as_deref(), "backend.execute", "backend")
                .with_arg("machines", machines as u64);
            let store = &self.store;
            for machine in 0..machines {
                if let Some(plan) = plan {
                    if let Some(fault) = plan.task_fault(round as u64, machine as u64, attempt) {
                        faults::apply(fault);
                    }
                }
                let mut ctx = MachineContext::for_round(machine, store, read_budget, write_budget);
                if let Err(error) = body(machine, &mut ctx) {
                    body_error = Some((machine, error));
                    break;
                }
                let reads = ctx.reads_used();
                let writes = ctx.writes_used();
                max_reads = max_reads.max(reads);
                total_reads += reads;
                max_writes = max_writes.max(writes);
                total_writes += writes;
                for (index, (key, value)) in ctx.into_writes().into_iter().enumerate() {
                    let shard = store.shard_of(&key);
                    per_shard[shard].push((machine, index, key, value));
                }
            }
        }

        // Injected merge failure: the attempt is lost whole before the
        // merge starts; the retry replays from the untouched input store.
        if let Some(plan) = plan {
            if plan.merge_fails(round as u64, attempt) {
                faults::note_merge_failure();
                std::panic::panic_any(faults::InjectedPanic);
            }
        }

        // Error precedence mirrors the in-process backends: merge only
        // the writes of machines below the lowest body failure; a merge
        // conflict found there precedes the body error.
        if let Some((failing_machine, error)) = body_error {
            for bucket in &mut per_shard {
                bucket.retain(|&(machine, ..)| machine < failing_machine);
            }
            let merges =
                self.merge_on_workers(round, attempt, plan, per_shard, policy, deadline, started)?;
            if let Some(conflict_error) = first_conflict(&merges, policy) {
                return Err(AttemptFailure::Fatal(conflict_error));
            }
            return Err(AttemptFailure::Fatal(error));
        }

        let merges = {
            let _span = span_on(trace.as_deref(), "backend.merge", "backend")
                .with_arg("shards", num_shards as u64)
                .with_arg("workers", self.workers.len() as u64);
            self.merge_on_workers(round, attempt, plan, per_shard, policy, deadline, started)?
        };
        if let Some(conflict_error) = first_conflict(&merges, policy) {
            return Err(AttemptFailure::Fatal(conflict_error));
        }

        // Deadline check before anything commits: an overrunning attempt
        // is discarded whole, exactly like a panicked one.
        if let Some(limit) = deadline {
            if started.elapsed() > limit {
                return Err(AttemptFailure::Deadline(limit.as_millis() as u64));
            }
        }

        // Commit phase: overlay each worker's merged entries onto the
        // carry-forward base (or empty shards), in shard order — the
        // identical fold the in-process merge performs.
        let mut next: Vec<FlatShard> = if carry_forward {
            self.store.clone_shards()
        } else {
            vec![FlatShard::default(); num_shards]
        };
        let mut shard_writes = vec![0u64; num_shards];
        let mut conflict_merges = 0usize;
        for merge in merges {
            let shard = merge.shard as usize;
            shard_writes[shard] = merge.writes_routed;
            conflict_merges += merge.conflict_merges as usize;
            let target = &mut next[shard];
            for (key, value) in merge.entries {
                target.insert(key, value);
            }
        }
        let shard_reads = self.store.read_counts();
        self.store.replace_shards(next);

        let mut report = RoundReport::from_measurements(
            self.metrics.num_rounds(),
            machines,
            max_reads,
            max_writes,
            total_reads,
            total_writes,
            0,
        );
        report.store_words = self.store.space_in_words();
        self.metrics.record(report.clone());
        self.metrics.record_runtime(RoundRuntimeStats {
            wall_clock_nanos: started.elapsed().as_nanos() as u64,
            conflict_merges,
            shard_reads,
            shard_writes,
            ..RoundRuntimeStats::default()
        });
        Ok(report)
    }
}

/// The first conflict across all shard merges in global
/// `(machine, write index)` order, reconstructed into the exact error the
/// sequential executor would raise.
fn first_conflict(merges: &[ShardMergeResult], policy: ConflictPolicy) -> Option<ModelError> {
    merges
        .iter()
        .filter_map(|merge| merge.conflict.as_ref())
        .min_by_key(|conflict| (conflict.machine, conflict.index))
        .map(|conflict| {
            policy
                .resolve(&conflict.key, conflict.existing, conflict.incoming)
                .expect_err("workers only report conflicts the policy rejects")
        })
}

impl AmpcBackend for ProcessBackend {
    fn config(&self) -> &AmpcConfig {
        &self.config
    }

    fn metrics(&self) -> &AmpcMetrics {
        &self.metrics
    }

    fn get(&self, key: Key) -> Option<Value> {
        self.store.peek(key)
    }

    fn store_len(&self) -> usize {
        self.store.len()
    }

    fn snapshot_store(&self) -> DataStore {
        self.store.to_data_store()
    }

    fn load_store(&mut self, entries: Vec<(Key, Value)>) {
        for (key, value) in entries {
            self.store.insert(key, value);
        }
    }

    fn run_round(
        &mut self,
        machines: usize,
        policy: ConflictPolicy,
        carry_forward: bool,
        body: &RoundBody<'_>,
    ) -> Result<RoundReport, ModelError> {
        let plan = faults::active();
        let deadline = faults::round_deadline();
        if plan.is_none() && deadline.is_none() && faults::max_round_retries() == 0 {
            // No plan, no deadline, no retries — but worker deaths (an
            // external SIGKILL) are still healed by the merge phase's own
            // respawn + replay supervision.
            return match self.attempt_round(machines, policy, carry_forward, body, None, 0, 0, None)
            {
                Ok(report) => Ok(report),
                Err(AttemptFailure::Fatal(error)) => Err(error),
                Err(AttemptFailure::Deadline(_)) => unreachable!("no deadline configured"),
            };
        }
        // The round index only advances on success: every attempt of one
        // logical round — on every backend — sees the same injection cells.
        let round = self.metrics.num_rounds();
        faults::run_with_retries(round, |attempt| {
            self.attempt_round(
                machines,
                policy,
                carry_forward,
                body,
                plan.as_ref(),
                round,
                attempt,
                deadline,
            )
        })
    }

    fn into_parts(self: Box<Self>) -> (DataStore, AmpcMetrics) {
        (self.store.to_data_store(), self.metrics)
    }

    fn name(&self) -> &'static str {
        "process"
    }

    fn set_trace(&mut self, trace: Option<Arc<TraceContext>>) {
        self.trace = trace;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::SequentialBackend;

    fn config() -> AmpcConfig {
        AmpcConfig::for_input_size(256, 0.5)
    }

    fn seeded_store(n: u64) -> DataStore {
        (0..n)
            .map(|i| (Key::single(i), Value::single(i * 7 % 13)))
            .collect()
    }

    /// The worker binary lives in the workspace root package; when this
    /// crate's unit tests run without it built (e.g. `cargo test -p
    /// ampc-runtime` from a clean tree) the process tests skip instead of
    /// failing the suite.
    fn worker_available() -> bool {
        match locate_worker_binary() {
            Ok(_) => true,
            Err(reason) => {
                eprintln!("skipping process-backend test: {reason}");
                false
            }
        }
    }

    fn run_program(
        backend: &mut dyn AmpcBackend,
        machines: usize,
        policy: ConflictPolicy,
    ) -> Result<DataStore, ModelError> {
        backend.round(machines, policy, |machine, ctx| {
            let own = ctx.read(Key::single(machine as u64))?.unwrap();
            let other = ctx.read(Key::single(own.words()[0]))?;
            let derived = other.map_or(1, |v| v.words()[0] + 1);
            ctx.write(Key::single((machine % 5) as u64), Value::single(derived))?;
            ctx.write(Key::pair(1, machine as u64), Value::single(machine as u64))
        })?;
        backend.round_carrying_forward(machines, policy, |machine, ctx| {
            if let Some(v) = ctx.read(Key::pair(1, machine as u64))? {
                ctx.write(
                    Key::pair(2, machine as u64),
                    Value::single(v.words()[0] * 2),
                )?;
            }
            Ok(())
        })?;
        Ok(backend.snapshot_store())
    }

    #[test]
    fn process_matches_sequential_for_every_policy_and_worker_count() {
        if !worker_available() {
            return;
        }
        for policy in [
            ConflictPolicy::KeepMin,
            ConflictPolicy::KeepMax,
            ConflictPolicy::KeepFirst,
        ] {
            let mut seq: Box<dyn AmpcBackend> =
                Box::new(SequentialBackend::new(config(), seeded_store(64)));
            let sequential = run_program(seq.as_mut(), 64, policy).unwrap();
            for workers in [1usize, 2, 3] {
                let mut proc: Box<dyn AmpcBackend> =
                    Box::new(ProcessBackend::new(config(), seeded_store(64), workers));
                let process = run_program(proc.as_mut(), 64, policy).unwrap();
                assert_eq!(sequential, process, "policy {policy:?}, workers {workers}");
                assert_eq!(proc.metrics().num_rounds(), 2);
                assert_eq!(seq.metrics(), proc.metrics(), "model-level metrics agree");
            }
        }
    }

    #[test]
    fn error_policy_reports_the_first_conflict() {
        if !worker_available() {
            return;
        }
        let run = |backend: &mut dyn AmpcBackend| {
            backend.round(16, ConflictPolicy::Error, |machine, ctx| {
                ctx.write(Key::single(9), Value::single(machine as u64))
            })
        };
        let mut seq: Box<dyn AmpcBackend> =
            Box::new(SequentialBackend::new(config(), DataStore::new()));
        let mut proc: Box<dyn AmpcBackend> =
            Box::new(ProcessBackend::new(config(), DataStore::new(), 2));
        let a = run(seq.as_mut()).unwrap_err();
        let b = run(proc.as_mut()).unwrap_err();
        assert_eq!(a, b);
        assert!(matches!(a, ModelError::WriteConflict { .. }));
        // Failed rounds leave no trace.
        assert_eq!(proc.snapshot_store(), DataStore::new());
        assert_eq!(proc.metrics().num_rounds(), 0);
    }

    #[test]
    fn externally_killed_worker_is_respawned_and_the_round_replayed() {
        if !worker_available() {
            return;
        }
        let counters_before = faults::counters();
        let mut backend = ProcessBackend::new(config(), seeded_store(32), 2);
        let pids_before = backend.worker_pids();
        assert_eq!(pids_before.len(), 2);

        // SIGKILL worker 0 directly (kill(2) via the shell, keeping the
        // crate std-only), then run a round: the dispatch/collect path
        // must observe the corpse, respawn it and replay.
        let status = Command::new("kill")
            .args(["-9", &pids_before[0].to_string()])
            .status()
            .expect("kill(1) is available");
        assert!(status.success(), "kill -9 failed");
        // Give the kernel a moment to tear the pipes down.
        std::thread::sleep(Duration::from_millis(50));

        let backend_dyn: &mut dyn AmpcBackend = &mut backend;
        backend_dyn
            .round(32, ConflictPolicy::KeepMin, |machine, ctx| {
                let own = ctx.read(Key::single(machine as u64))?.unwrap();
                ctx.write(
                    Key::pair(3, machine as u64),
                    Value::single(own.words()[0] + 1),
                )
            })
            .expect("the killed worker is healed, not surfaced");

        let pids_after = backend.worker_pids();
        assert_ne!(pids_before[0], pids_after[0], "worker 0 was respawned");
        assert_eq!(pids_before[1], pids_after[1], "worker 1 was untouched");
        let counters = faults::counters();
        assert!(
            counters.worker_process_restarts > counters_before.worker_process_restarts,
            "the respawn was counted"
        );
        assert!(
            counters.rounds_replayed > counters_before.rounds_replayed,
            "the replay was counted"
        );

        // And the healed run is bit-identical to an undisturbed one.
        let mut reference = ProcessBackend::new(config(), seeded_store(32), 2);
        let reference_dyn: &mut dyn AmpcBackend = &mut reference;
        reference_dyn
            .round(32, ConflictPolicy::KeepMin, |machine, ctx| {
                let own = ctx.read(Key::single(machine as u64))?.unwrap();
                ctx.write(
                    Key::pair(3, machine as u64),
                    Value::single(own.words()[0] + 1),
                )
            })
            .unwrap();
        assert_eq!(backend.snapshot_store(), reference.snapshot_store());
    }

    #[test]
    fn drop_reaps_every_child() {
        if !worker_available() {
            return;
        }
        let alive_before = faults::workers_alive();
        let backend = ProcessBackend::new(config(), seeded_store(8), 3);
        let pids = backend.worker_pids();
        assert_eq!(faults::workers_alive(), alive_before + 3);
        drop(backend);
        assert_eq!(faults::workers_alive(), alive_before);
        for pid in pids {
            // The children were killed and reaped: their pids no longer
            // name live shard workers (rapid pid reuse aside, /proc has
            // no entry or names another process).
            // `comm` is truncated to 15 characters by the kernel.
            let comm = std::fs::read_to_string(format!("/proc/{pid}/comm")).unwrap_or_default();
            assert!(
                !comm.trim().starts_with("ampc-shard-work"),
                "worker {pid} survived drop"
            );
        }
    }
}
