//! The persistent worker pool, deterministic work partitioning and a
//! parallel map helper.
//!
//! Before the pool existed the parallel backend spawned scoped threads for
//! every round, which dominates the wall clock of many-round algorithms
//! (the β-partition runs hundreds of rounds on small remainders). The
//! [`WorkerPool`] keeps its worker threads alive across rounds *and* across
//! jobs: the round scheduler, [`parallel_map`] and the serving subsystem
//! (`ampc-service`) all share the process-wide [`WorkerPool::global`] pool
//! unless handed a dedicated one.
#![allow(unsafe_code)]

use std::any::Any;
use std::collections::VecDeque;
use std::ops::Range;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::thread;
use std::time::Instant;

/// Locks a mutex, ignoring poisoning (tasks run outside any pool lock, so a
/// poisoned lock only means an unrelated thread panicked mid-bookkeeping).
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A unit of work submitted to the pool, allowed to borrow from the
/// submitting scope ([`WorkerPool::execute`] blocks until it has run).
pub type ScopedTask<'env> = Box<dyn FnOnce() + Send + 'env>;

type ErasedTask = Box<dyn FnOnce() + Send + 'static>;

/// One submitted batch of tasks: the not-yet-claimed tasks, the number of
/// tasks that have not *finished*, and the first panic payload observed.
struct Batch {
    queue: Mutex<VecDeque<ErasedTask>>,
    pending: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl Batch {
    fn new(tasks: VecDeque<ErasedTask>) -> Self {
        Batch {
            pending: Mutex::new(tasks.len()),
            queue: Mutex::new(tasks),
            done: Condvar::new(),
            panic: Mutex::new(None),
        }
    }

    /// Runs one claimed task to completion, capturing a panic instead of
    /// unwinding into the worker loop, then counts it as finished.
    fn run(&self, task: ErasedTask) {
        let outcome = panic::catch_unwind(AssertUnwindSafe(task));
        if let Err(payload) = outcome {
            lock(&self.panic).get_or_insert(payload);
        }
        let mut pending = lock(&self.pending);
        *pending -= 1;
        if *pending == 0 {
            self.done.notify_all();
        }
    }
}

/// Per-worker reuse counters (relaxed atomics; measurement data only).
struct WorkerStats {
    tasks: AtomicU64,
    idle_nanos: AtomicU64,
}

struct PoolShared {
    /// Batches with unclaimed tasks, oldest first.
    injector: Mutex<VecDeque<Arc<Batch>>>,
    work_available: Condvar,
    shutdown: AtomicBool,
    workers: Vec<WorkerStats>,
    helper_tasks: AtomicU64,
}

impl PoolShared {
    /// Claims the next task (oldest batch first), or `None` on shutdown.
    fn claim(&self, worker: usize) -> Option<(Arc<Batch>, ErasedTask)> {
        let mut injector = lock(&self.injector);
        loop {
            if self.shutdown.load(Ordering::Acquire) {
                return None;
            }
            while let Some(batch) = injector.front().map(Arc::clone) {
                let task = lock(&batch.queue).pop_front();
                match task {
                    Some(task) => return Some((batch, task)),
                    None => {
                        injector.pop_front();
                    }
                }
            }
            let waited = Instant::now();
            injector = self
                .work_available
                .wait(injector)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            self.workers[worker]
                .idle_nanos
                .fetch_add(waited.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
    }
}

fn worker_loop(shared: Arc<PoolShared>, index: usize) {
    while let Some((batch, task)) = shared.claim(index) {
        batch.run(task);
        shared.workers[index].tasks.fetch_add(1, Ordering::Relaxed);
    }
}

/// Cumulative reuse counters of a [`WorkerPool`], snapshotted by
/// [`WorkerPool::stats`]. Round schedulers record the per-round *delta* of
/// these into [`ampc_model::RoundRuntimeStats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolStats {
    /// Tasks completed by each worker since the pool started.
    pub tasks_per_worker: Vec<u64>,
    /// Nanoseconds each worker spent parked waiting for work.
    pub idle_nanos_per_worker: Vec<u64>,
    /// Tasks run inline by submitting threads while they waited for their
    /// batch (the pool lets submitters help drain their own batch).
    pub helper_tasks: u64,
}

impl PoolStats {
    /// Total tasks completed (workers plus helping submitters).
    pub fn total_tasks(&self) -> u64 {
        self.tasks_per_worker.iter().sum::<u64>() + self.helper_tasks
    }

    /// Total idle nanoseconds across all workers.
    pub fn total_idle_nanos(&self) -> u64 {
        self.idle_nanos_per_worker.iter().sum()
    }
}

/// A persistent pool of worker threads executing scoped task batches.
///
/// Unlike `std::thread::scope`, the workers are spawned **once** — per pool,
/// not per batch — and survive across rounds, jobs and callers; submitting a
/// batch is a queue push, not `N` thread spawns. [`WorkerPool::execute`]
/// blocks until every task of the batch has run, which is what makes
/// borrowing tasks ([`ScopedTask`]) sound, and the submitting thread helps
/// drain its own batch while it waits (so a pool is never a parallelism
/// *loss*, even on a single-core host, and nested submissions cannot
/// deadlock).
///
/// Determinism is unaffected by pooling: tasks write into caller-owned slots
/// keyed by index, so scheduling order never leaks into results.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<thread::JoinHandle<()>>,
    started: Instant,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.handles.len())
            .finish()
    }
}

impl WorkerPool {
    /// Spawns a pool with `workers` persistent worker threads (at least 1).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(PoolShared {
            injector: Mutex::new(VecDeque::new()),
            work_available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            workers: (0..workers)
                .map(|_| WorkerStats {
                    tasks: AtomicU64::new(0),
                    idle_nanos: AtomicU64::new(0),
                })
                .collect(),
            helper_tasks: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|index| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("ampc-pool-{index}"))
                    .spawn(move || worker_loop(shared, index))
                    .expect("spawning a pool worker failed")
            })
            .collect();
        WorkerPool {
            shared,
            handles,
            started: Instant::now(),
        }
    }

    /// The process-wide shared pool (sized to the host's available
    /// parallelism, at least 2), used by [`parallel_map`] and every
    /// [`crate::ParallelBackend`] not constructed with a dedicated pool.
    /// Spawned lazily on first use and never torn down.
    pub fn global() -> &'static Arc<WorkerPool> {
        static GLOBAL: OnceLock<Arc<WorkerPool>> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let workers = thread::available_parallelism()
                .map_or(2, |p| p.get())
                .max(2);
            Arc::new(WorkerPool::new(workers))
        })
    }

    /// Number of persistent worker threads.
    pub fn num_workers(&self) -> usize {
        self.handles.len()
    }

    /// Time the pool has been alive.
    pub fn uptime(&self) -> std::time::Duration {
        self.started.elapsed()
    }

    /// Snapshot of the cumulative reuse counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            tasks_per_worker: self
                .shared
                .workers
                .iter()
                .map(|w| w.tasks.load(Ordering::Relaxed))
                .collect(),
            idle_nanos_per_worker: self
                .shared
                .workers
                .iter()
                .map(|w| w.idle_nanos.load(Ordering::Relaxed))
                .collect(),
            helper_tasks: self.shared.helper_tasks.load(Ordering::Relaxed),
        }
    }

    /// Runs a batch of tasks on the pool, blocking until **all** of them
    /// have finished. The submitting thread helps drain the batch while it
    /// waits. If any task panicked, the first observed panic is re-raised
    /// here (after the whole batch has finished).
    pub fn execute<'env>(&self, tasks: Vec<ScopedTask<'env>>) {
        if tasks.is_empty() {
            return;
        }
        if tasks.len() == 1 {
            // One task gains nothing from a queue round-trip.
            let mut tasks = tasks;
            (tasks.pop().expect("len checked"))();
            return;
        }

        let erased: VecDeque<ErasedTask> = tasks
            .into_iter()
            .map(|task| {
                // SAFETY: the only lifetime-carrying part of the type is the
                // closure's borrow set. `execute` does not return — normally
                // or by unwinding — before `pending == 0`, i.e. before every
                // erased task has been consumed by `Batch::run` (panics are
                // caught and re-raised only after the wait below), so no
                // task can outlive the `'env` borrows it captures.
                unsafe { std::mem::transmute::<ScopedTask<'env>, ErasedTask>(task) }
            })
            .collect();
        let batch = Arc::new(Batch::new(erased));
        lock(&self.shared.injector).push_back(Arc::clone(&batch));
        self.shared.work_available.notify_all();

        // Help with our own batch instead of going idle.
        loop {
            let task = lock(&batch.queue).pop_front();
            match task {
                Some(task) => {
                    batch.run(task);
                    self.shared.helper_tasks.fetch_add(1, Ordering::Relaxed);
                }
                None => break,
            }
        }
        let mut pending = lock(&batch.pending);
        while *pending > 0 {
            pending = batch
                .done
                .wait(pending)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
        drop(pending);
        let payload = lock(&batch.panic).take();
        if let Some(payload) = payload {
            panic::resume_unwind(payload);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // `execute` holds `&self` for its full duration, so no batch can be
        // in flight here; workers are parked or about to park.
        self.shared.shutdown.store(true, Ordering::Release);
        let _unused = lock(&self.shared.injector);
        self.shared.work_available.notify_all();
        drop(_unused);
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Splits `0..items` into at most `workers` contiguous, near-equal ranges
/// (ascending, non-empty).
pub(crate) fn chunk_ranges(items: usize, workers: usize) -> Vec<Range<usize>> {
    let workers = workers.max(1).min(items.max(1));
    let base = items / workers;
    let remainder = items % workers;
    let mut ranges = Vec::with_capacity(workers);
    let mut start = 0usize;
    for worker in 0..workers {
        let len = base + usize::from(worker < remainder);
        if len == 0 {
            continue;
        }
        ranges.push(start..start + len);
        start += len;
    }
    if ranges.is_empty() {
        ranges.push(0..0);
    }
    ranges
}

/// Applies `f` to every item on up to `threads` workers of the global
/// [`WorkerPool`], returning the results **in item order**.
///
/// Used by algorithm drivers for deterministic data-parallel phases outside
/// the round protocol (e.g. coloring the layers of a β-partition
/// independently). Determinism contract: `f` must be a pure function of
/// `(index, item)`; when several items fail, the error of the lowest index
/// is returned — the same error a sequential left-to-right loop would
/// surface.
///
/// # Errors
///
/// The error of the lowest-indexed failing item.
pub fn parallel_map<T, U, E, F>(items: &[T], threads: usize, f: F) -> Result<Vec<U>, E>
where
    T: Sync,
    U: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<U, E> + Sync,
{
    let threads = threads.max(1);
    if threads == 1 || items.len() <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(index, item)| f(index, item))
            .collect();
    }

    /// A chunk's indexed results, or its first failure as `(index, error)`.
    type ChunkResult<U, E> = Result<Vec<(usize, U)>, (usize, E)>;

    let chunks = chunk_ranges(items.len(), threads);
    let mut outcomes: Vec<Option<ChunkResult<U, E>>> = (0..chunks.len()).map(|_| None).collect();
    {
        let f = &f;
        let tasks: Vec<ScopedTask<'_>> = outcomes
            .iter_mut()
            .zip(chunks)
            .map(|(slot, range)| {
                Box::new(move || {
                    let mut produced = Vec::with_capacity(range.len());
                    let mut failure = None;
                    for index in range {
                        match f(index, &items[index]) {
                            Ok(value) => produced.push((index, value)),
                            Err(error) => {
                                failure = Some((index, error));
                                break;
                            }
                        }
                    }
                    *slot = Some(match failure {
                        None => Ok(produced),
                        Some(error) => Err(error),
                    });
                }) as ScopedTask<'_>
            })
            .collect();
        WorkerPool::global().execute(tasks);
    }

    let mut first_error: Option<(usize, E)> = None;
    let mut slots: Vec<Option<U>> = (0..items.len()).map(|_| None).collect();
    for outcome in outcomes {
        match outcome.expect("the pool ran every chunk") {
            Ok(produced) => {
                for (index, value) in produced {
                    slots[index] = Some(value);
                }
            }
            Err((index, error)) => {
                if first_error.as_ref().is_none_or(|(best, _)| index < *best) {
                    first_error = Some((index, error));
                }
            }
        }
    }
    if let Some((_, error)) = first_error {
        return Err(error);
    }
    Ok(slots
        .into_iter()
        .map(|slot| slot.expect("every index produced or an error returned"))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_exactly_once() {
        for items in [0usize, 1, 5, 16, 97] {
            for workers in [1usize, 2, 3, 8, 200] {
                let ranges = chunk_ranges(items, workers);
                let mut covered = Vec::new();
                let mut last_end = 0;
                for range in &ranges {
                    assert_eq!(range.start, last_end, "contiguous ascending");
                    last_end = range.end;
                    covered.extend(range.clone());
                }
                assert_eq!(covered, (0..items).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn map_preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let doubled =
            parallel_map(&items, 4, |i, &x| Ok::<_, ()>(2 * x + i - i)).expect("no errors");
        assert_eq!(doubled, items.iter().map(|&x| 2 * x).collect::<Vec<_>>());
        let sequential = parallel_map(&items, 1, |_, &x| Ok::<_, ()>(2 * x)).expect("no errors");
        assert_eq!(doubled, sequential);
    }

    #[test]
    fn lowest_index_error_wins() {
        let items: Vec<usize> = (0..64).collect();
        let result = parallel_map(&items, 4, |i, _| if i % 10 == 7 { Err(i) } else { Ok(i) });
        assert_eq!(result, Err(7));
    }

    #[test]
    fn pool_runs_batches_and_counts_every_task() {
        let pool = WorkerPool::new(2);
        assert_eq!(pool.num_workers(), 2);
        let mut slots = vec![0usize; 40];
        for round in 0..5 {
            let tasks: Vec<ScopedTask<'_>> = slots
                .iter_mut()
                .enumerate()
                .map(|(i, slot)| {
                    Box::new(move || {
                        *slot = i + round;
                    }) as ScopedTask<'_>
                })
                .collect();
            pool.execute(tasks);
        }
        for (i, slot) in slots.iter().enumerate() {
            assert_eq!(*slot, i + 4);
        }
        // Every submitted task is accounted to exactly one runner.
        let stats = pool.stats();
        assert_eq!(stats.total_tasks(), 5 * 40);
        assert_eq!(stats.tasks_per_worker.len(), 2);
        assert_eq!(stats.idle_nanos_per_worker.len(), 2);
    }

    #[test]
    fn pool_threads_persist_across_batches() {
        let pool = WorkerPool::new(3);
        let before = pool.num_workers();
        for _ in 0..50 {
            let mut sink = [0u64; 8];
            let tasks: Vec<ScopedTask<'_>> = sink
                .iter_mut()
                .map(|slot| Box::new(move || *slot += 1) as ScopedTask<'_>)
                .collect();
            pool.execute(tasks);
            assert!(sink.iter().all(|&v| v == 1));
        }
        // The pool never grows or shrinks: same workers serve every batch.
        assert_eq!(pool.num_workers(), before);
    }

    #[test]
    fn pool_propagates_task_panics_after_the_batch_finishes() {
        let pool = WorkerPool::new(2);
        let mut finished = [false; 6];
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            let tasks: Vec<ScopedTask<'_>> = finished
                .iter_mut()
                .enumerate()
                .map(|(i, slot)| {
                    Box::new(move || {
                        if i == 3 {
                            panic!("task 3 exploded");
                        }
                        *slot = true;
                    }) as ScopedTask<'_>
                })
                .collect();
            pool.execute(tasks);
        }));
        let payload = result.expect_err("the panic must propagate to the submitter");
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("non-str payload");
        assert!(message.contains("exploded"), "{message}");
        // Every non-panicking task still ran to completion.
        for (i, done) in finished.iter().enumerate() {
            assert_eq!(*done, i != 3, "task {i}");
        }
        // The pool survives the panic and keeps serving.
        let mut ok = false;
        pool.execute(vec![Box::new(|| ok = true) as ScopedTask<'_>]);
        assert!(ok);
    }

    #[test]
    fn global_pool_is_shared_and_persistent() {
        let a = Arc::as_ptr(WorkerPool::global());
        let b = Arc::as_ptr(WorkerPool::global());
        assert_eq!(a, b);
        assert!(WorkerPool::global().num_workers() >= 2);
    }
}
