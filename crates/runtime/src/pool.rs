//! Deterministic work partitioning and a parallel map helper.

use std::ops::Range;
use std::thread;

/// Splits `0..items` into at most `workers` contiguous, near-equal ranges
/// (ascending, non-empty).
pub(crate) fn chunk_ranges(items: usize, workers: usize) -> Vec<Range<usize>> {
    let workers = workers.max(1).min(items.max(1));
    let base = items / workers;
    let remainder = items % workers;
    let mut ranges = Vec::with_capacity(workers);
    let mut start = 0usize;
    for worker in 0..workers {
        let len = base + usize::from(worker < remainder);
        if len == 0 {
            continue;
        }
        ranges.push(start..start + len);
        start += len;
    }
    if ranges.is_empty() {
        ranges.push(0..0);
    }
    ranges
}

/// Applies `f` to every item on up to `threads` worker threads, returning
/// the results **in item order**.
///
/// Used by algorithm drivers for deterministic data-parallel phases outside
/// the round protocol (e.g. coloring the layers of a β-partition
/// independently). Determinism contract: `f` must be a pure function of
/// `(index, item)`; when several items fail, the error of the lowest index
/// is returned — the same error a sequential left-to-right loop would
/// surface.
///
/// # Errors
///
/// The error of the lowest-indexed failing item.
pub fn parallel_map<T, U, E, F>(items: &[T], threads: usize, f: F) -> Result<Vec<U>, E>
where
    T: Sync,
    U: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<U, E> + Sync,
{
    let threads = threads.max(1);
    if threads == 1 || items.len() <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(index, item)| f(index, item))
            .collect();
    }

    /// A worker's indexed results, or its first failure as `(index, error)`.
    type ChunkResult<U, E> = Result<Vec<(usize, U)>, (usize, E)>;

    let chunks = chunk_ranges(items.len(), threads);
    let f = &f;
    let outcomes: Vec<ChunkResult<U, E>> = thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|range| {
                scope.spawn(move || {
                    let mut produced = Vec::with_capacity(range.len());
                    for index in range {
                        match f(index, &items[index]) {
                            Ok(value) => produced.push((index, value)),
                            Err(error) => return Err((index, error)),
                        }
                    }
                    Ok(produced)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("parallel_map worker panicked"))
            .collect()
    });

    let mut first_error: Option<(usize, E)> = None;
    let mut slots: Vec<Option<U>> = (0..items.len()).map(|_| None).collect();
    for outcome in outcomes {
        match outcome {
            Ok(produced) => {
                for (index, value) in produced {
                    slots[index] = Some(value);
                }
            }
            Err((index, error)) => {
                if first_error.as_ref().is_none_or(|(best, _)| index < *best) {
                    first_error = Some((index, error));
                }
            }
        }
    }
    if let Some((_, error)) = first_error {
        return Err(error);
    }
    Ok(slots
        .into_iter()
        .map(|slot| slot.expect("every index produced or an error returned"))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_exactly_once() {
        for items in [0usize, 1, 5, 16, 97] {
            for workers in [1usize, 2, 3, 8, 200] {
                let ranges = chunk_ranges(items, workers);
                let mut covered = Vec::new();
                let mut last_end = 0;
                for range in &ranges {
                    assert_eq!(range.start, last_end, "contiguous ascending");
                    last_end = range.end;
                    covered.extend(range.clone());
                }
                assert_eq!(covered, (0..items).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn map_preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let doubled =
            parallel_map(&items, 4, |i, &x| Ok::<_, ()>(2 * x + i - i)).expect("no errors");
        assert_eq!(doubled, items.iter().map(|&x| 2 * x).collect::<Vec<_>>());
        let sequential = parallel_map(&items, 1, |_, &x| Ok::<_, ()>(2 * x)).expect("no errors");
        assert_eq!(doubled, sequential);
    }

    #[test]
    fn lowest_index_error_wins() {
        let items: Vec<usize> = (0..64).collect();
        let result = parallel_map(&items, 4, |i, _| if i % 10 == 7 { Err(i) } else { Ok(i) });
        assert_eq!(result, Err(7));
    }
}
