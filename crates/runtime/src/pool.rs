//! The persistent worker pool, deterministic work partitioning and parallel
//! map helpers.
//!
//! Before the pool existed the parallel backend spawned scoped threads for
//! every round, which dominates the wall clock of many-round algorithms
//! (the β-partition runs hundreds of rounds on small remainders). The
//! [`WorkerPool`] keeps its worker threads alive across rounds *and* across
//! jobs: the round scheduler, [`parallel_map`] and the serving subsystem
//! (`ampc-service`) all share the process-wide [`WorkerPool::global`] pool
//! unless handed a dedicated one.
//!
//! ## Scheduling: per-worker deques with stealing
//!
//! Tasks are distributed round-robin across **per-worker deques** in the
//! Chase–Lev style: the owning worker pops its own deque LIFO (newest
//! first, cache-hot), idle workers steal FIFO from a victim's deque (oldest
//! first, the end the owner is *not* working on). A bounded deque that
//! fills up overflows into a shared injector queue every worker drains
//! last. The submitting thread still helps drain work while it waits for
//! its batch (submitter-helps), so a pool is never a parallelism *loss* —
//! even on a single-core host — and nested submissions cannot deadlock.
//!
//! Stealing exists for **skewed** task sets: when cost-weighted chunking
//! (see [`crate::RoundPrimitives`]) splits a hub-heavy index range into
//! many small tasks, the workers that finish their light deques early
//! steal the remaining hub tasks instead of idling. Which worker executes
//! a task never influences results — tasks write into caller-owned,
//! index-keyed slots — so scheduling stays invisible to the determinism
//! contract. The pool counts steals and overflows ([`PoolStats::steals`],
//! [`PoolStats::overflows`]); round schedulers surface the per-round
//! deltas through `RoundRuntimeStats`.
#![allow(unsafe_code)]

use std::any::Any;
use std::collections::VecDeque;
use std::ops::Range;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::thread;
use std::time::Instant;

/// Locks a mutex, ignoring poisoning (tasks run outside any pool lock, so a
/// poisoned lock only means an unrelated thread panicked mid-bookkeeping).
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A unit of work submitted to the pool, allowed to borrow from the
/// submitting scope ([`WorkerPool::execute`] blocks until it has run).
pub type ScopedTask<'env> = Box<dyn FnOnce() + Send + 'env>;

type ErasedTask = Box<dyn FnOnce() + Send + 'static>;

/// Per-worker deque capacity; tasks beyond it overflow into the shared
/// injector (counted in [`PoolStats::overflows`]). Bounding the deques
/// keeps one enormous batch from concentrating in a single worker's queue.
const DEQUE_CAPACITY: usize = 256;

/// One submitted batch of tasks: the number of tasks that have not
/// *finished*, and the first panic payload observed. The tasks themselves
/// live in the per-worker deques (and the injector), tagged with their
/// batch so completion is tracked per submission.
struct Batch {
    pending: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl Batch {
    fn new(tasks: usize) -> Self {
        Batch {
            pending: Mutex::new(tasks),
            done: Condvar::new(),
            panic: Mutex::new(None),
        }
    }

    /// Runs one claimed task to completion, capturing a panic instead of
    /// unwinding into the worker loop, then counts it as finished.
    fn run(&self, task: ErasedTask) {
        let outcome = panic::catch_unwind(AssertUnwindSafe(task));
        if let Err(payload) = outcome {
            lock(&self.panic).get_or_insert(payload);
        }
        let mut pending = lock(&self.pending);
        *pending -= 1;
        if *pending == 0 {
            self.done.notify_all();
        }
    }
}

/// A task queued in a deque, tagged with the batch it completes.
type QueuedTask = (Arc<Batch>, ErasedTask);

/// Per-worker reuse counters (relaxed atomics; measurement data only).
struct WorkerStats {
    tasks: AtomicU64,
    idle_nanos: AtomicU64,
}

struct PoolShared {
    /// One work-stealing deque per worker: the owner pops LIFO from the
    /// back, thieves steal FIFO from the front.
    deques: Vec<Mutex<VecDeque<QueuedTask>>>,
    /// Overflow queue for tasks whose home deque was full, drained FIFO by
    /// every runner after its deque and its steal attempts come up empty.
    injector: Mutex<VecDeque<QueuedTask>>,
    /// Tasks pushed but not yet claimed, across all deques + the injector.
    unclaimed: AtomicUsize,
    sleep: Mutex<()>,
    work_available: Condvar,
    shutdown: AtomicBool,
    workers: Vec<WorkerStats>,
    helper_tasks: AtomicU64,
    steals: AtomicU64,
    overflows: AtomicU64,
    /// Round-robin cursor so consecutive batches start at different home
    /// deques (keeps single-task-per-batch workloads spread out).
    next_home: AtomicUsize,
    /// Workers respawned by the supervision path after being poisoned
    /// (see [`crate::faults::poison_current_worker`]).
    restarts: AtomicU64,
    /// Join handles of supervised replacement threads, drained by the
    /// pool's `Drop`.
    respawned: Mutex<Vec<thread::JoinHandle<()>>>,
}

impl PoolShared {
    /// Claims one task for a worker: LIFO from its own deque, then
    /// FIFO-steal from the other deques in round-robin order, then the
    /// overflow injector. Returns the task and whether it was stolen from
    /// another worker's deque.
    fn try_claim(&self, runner: usize) -> Option<(QueuedTask, bool)> {
        if let Some(task) = lock(&self.deques[runner]).pop_back() {
            return Some((task, false));
        }
        let workers = self.deques.len();
        for offset in 1..workers {
            let victim = (runner + offset) % workers;
            if let Some(task) = lock(&self.deques[victim]).pop_front() {
                return Some((task, true));
            }
        }
        if let Some(task) = lock(&self.injector).pop_front() {
            // Overflowed tasks have no home deque, so draining them is not
            // counted as a steal.
            return Some((task, false));
        }
        None
    }

    /// Claims one not-yet-started task of **this specific batch**, for the
    /// helping submitter. Restricting the helper to its own batch keeps
    /// `execute`'s latency bounded by the batch's own tasks: claiming a
    /// foreign long-running task here would pin the submitter past its own
    /// batch's completion (priority inversion), and foreign batches never
    /// need the help for progress — their own submitters drain them.
    fn try_claim_owned(&self, batch: &Arc<Batch>) -> Option<ErasedTask> {
        let owned = |queue: &Mutex<VecDeque<QueuedTask>>| -> Option<ErasedTask> {
            let mut queue = lock(queue);
            let position = queue
                .iter()
                .position(|(owner, _)| Arc::ptr_eq(owner, batch))?;
            queue.remove(position).map(|(_, task)| task)
        };
        self.deques.iter().chain([&self.injector]).find_map(owned)
    }

    /// Books a successful claim: decrements the unclaimed count and counts
    /// the steal if the task came out of another worker's deque.
    fn book_claim(&self, stolen: bool) {
        self.unclaimed.fetch_sub(1, Ordering::AcqRel);
        if stolen {
            self.steals.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Claims the next task for worker `index`, parking until work arrives,
    /// or `None` on shutdown.
    fn claim(&self, worker: usize) -> Option<QueuedTask> {
        loop {
            if self.shutdown.load(Ordering::Acquire) {
                return None;
            }
            if let Some((task, stolen)) = self.try_claim(worker) {
                self.book_claim(stolen);
                return Some(task);
            }
            let guard = lock(&self.sleep);
            if self.shutdown.load(Ordering::Acquire) {
                return None;
            }
            if self.unclaimed.load(Ordering::Acquire) > 0 {
                // A push raced our empty scan: rescan instead of sleeping.
                drop(guard);
                thread::yield_now();
                continue;
            }
            let waited = Instant::now();
            let _guard = self
                .work_available
                .wait(guard)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            self.workers[worker]
                .idle_nanos
                .fetch_add(waited.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
    }

    /// Wakes every parked worker (called after pushing tasks; the sleep
    /// lock orders the notify against sleepers' empty-scan checks).
    fn wake_workers(&self) {
        let _guard = lock(&self.sleep);
        self.work_available.notify_all();
    }

    /// Supervision path for a poisoned worker: its unclaimed tasks drain
    /// back into the shared injector (they stay claimable, so no batch
    /// loses a task), a replacement thread is spawned under the same
    /// index, and the pool's `Drop` joins the replacement later. The
    /// poisoned thread returns right after this.
    fn supervise_respawn(self: &Arc<Self>, index: usize) {
        let orphans: Vec<QueuedTask> = {
            let mut deque = lock(&self.deques[index]);
            deque.drain(..).collect()
        };
        if !orphans.is_empty() {
            lock(&self.injector).extend(orphans);
        }
        self.restarts.fetch_add(1, Ordering::Relaxed);
        let shared = Arc::clone(self);
        let handle = thread::Builder::new()
            .name(format!("ampc-pool-{index}"))
            .spawn(move || worker_loop(shared, index))
            .expect("respawning a pool worker failed");
        lock(&self.respawned).push(handle);
        // The orphaned tasks need a runner other than this exiting thread.
        self.wake_workers();
    }
}

fn worker_loop(shared: Arc<PoolShared>, index: usize) {
    // Hardware-counter sampling (`crate::perf`) sums per-thread counter
    // groups; a worker registers its group once, up front, so every task it
    // ever runs is visible to snapshot deltas. No-op when perf sampling is
    // unavailable.
    crate::perf::register_current_thread();
    while let Some((batch, task)) = shared.claim(index) {
        // Counted at claim time: `execute` may return the instant the
        // batch's last `run` finishes, and a post-run increment could be
        // missed by a stats snapshot taken right after.
        shared.workers[index].tasks.fetch_add(1, Ordering::Relaxed);
        batch.run(task);
        // Panic isolation: a task panic is caught by `Batch::run`, so it
        // can never kill a worker — but a task that *poisoned* this worker
        // (the fault plane's AbortWorker injection) makes it exit here and
        // hand its index to a supervised replacement.
        if crate::faults::take_worker_poison() {
            shared.supervise_respawn(index);
            return;
        }
    }
}

/// Cumulative reuse counters of a [`WorkerPool`], snapshotted by
/// [`WorkerPool::stats`]. Round schedulers record the per-round *delta* of
/// these into [`ampc_model::RoundRuntimeStats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolStats {
    /// Tasks completed by each worker since the pool started.
    pub tasks_per_worker: Vec<u64>,
    /// Nanoseconds each worker spent parked waiting for work.
    pub idle_nanos_per_worker: Vec<u64>,
    /// Tasks run inline by submitting threads while they waited for their
    /// batch (the pool lets submitters help drain outstanding work).
    pub helper_tasks: u64,
    /// Tasks a runner took from another worker's deque (FIFO steals) —
    /// the signal that skewed batches are being rebalanced.
    pub steals: u64,
    /// Tasks routed to the shared injector because their home deque was
    /// full ([`DEQUE_CAPACITY`]).
    pub overflows: u64,
    /// Workers the supervision path respawned after poisoning: each one is
    /// a worker thread that exited and was replaced under the same index,
    /// with its unclaimed tasks drained back to the injector.
    pub worker_restarts: u64,
}

impl PoolStats {
    /// Total tasks completed (workers plus helping submitters).
    pub fn total_tasks(&self) -> u64 {
        self.tasks_per_worker.iter().sum::<u64>() + self.helper_tasks
    }

    /// Total idle nanoseconds across all workers.
    pub fn total_idle_nanos(&self) -> u64 {
        self.idle_nanos_per_worker.iter().sum()
    }
}

/// A persistent pool of worker threads executing scoped task batches over
/// per-worker work-stealing deques.
///
/// Unlike `std::thread::scope`, the workers are spawned **once** — per pool,
/// not per batch — and survive across rounds, jobs and callers; submitting a
/// batch distributes its tasks round-robin over the worker deques, not `N`
/// thread spawns. [`WorkerPool::execute`] blocks until every task of the
/// batch has run, which is what makes borrowing tasks ([`ScopedTask`])
/// sound, and the submitting thread helps drain outstanding work while it
/// waits (so a pool is never a parallelism *loss*, even on a single-core
/// host, and nested submissions cannot deadlock). Idle workers steal from
/// the front of busier workers' deques, so a batch of unevenly sized tasks
/// (hub-heavy weighted chunks) keeps every worker busy.
///
/// Determinism is unaffected by pooling or stealing: tasks write into
/// caller-owned slots keyed by index, so scheduling order never leaks into
/// results.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<thread::JoinHandle<()>>,
    started: Instant,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.handles.len())
            .finish()
    }
}

impl WorkerPool {
    /// Spawns a pool with `workers` persistent worker threads (at least 1).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(PoolShared {
            deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            unclaimed: AtomicUsize::new(0),
            sleep: Mutex::new(()),
            work_available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            workers: (0..workers)
                .map(|_| WorkerStats {
                    tasks: AtomicU64::new(0),
                    idle_nanos: AtomicU64::new(0),
                })
                .collect(),
            helper_tasks: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            overflows: AtomicU64::new(0),
            next_home: AtomicUsize::new(0),
            restarts: AtomicU64::new(0),
            respawned: Mutex::new(Vec::new()),
        });
        let handles = (0..workers)
            .map(|index| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("ampc-pool-{index}"))
                    .spawn(move || worker_loop(shared, index))
                    .expect("spawning a pool worker failed")
            })
            .collect();
        WorkerPool {
            shared,
            handles,
            started: Instant::now(),
        }
    }

    /// The process-wide shared pool (sized to the host's available
    /// parallelism, at least 2), used by [`parallel_map`] and every
    /// [`crate::ParallelBackend`] not constructed with a dedicated pool.
    /// Spawned lazily on first use and never torn down.
    pub fn global() -> &'static Arc<WorkerPool> {
        static GLOBAL: OnceLock<Arc<WorkerPool>> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let workers = thread::available_parallelism()
                .map_or(2, |p| p.get())
                .max(2);
            Arc::new(WorkerPool::new(workers))
        })
    }

    /// Number of persistent worker threads.
    pub fn num_workers(&self) -> usize {
        self.handles.len()
    }

    /// Time the pool has been alive.
    pub fn uptime(&self) -> std::time::Duration {
        self.started.elapsed()
    }

    /// Snapshot of the cumulative reuse counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            tasks_per_worker: self
                .shared
                .workers
                .iter()
                .map(|w| w.tasks.load(Ordering::Relaxed))
                .collect(),
            idle_nanos_per_worker: self
                .shared
                .workers
                .iter()
                .map(|w| w.idle_nanos.load(Ordering::Relaxed))
                .collect(),
            helper_tasks: self.shared.helper_tasks.load(Ordering::Relaxed),
            steals: self.shared.steals.load(Ordering::Relaxed),
            overflows: self.shared.overflows.load(Ordering::Relaxed),
            worker_restarts: self.shared.restarts.load(Ordering::Relaxed),
        }
    }

    /// Runs a batch of tasks on the pool, blocking until **all** of them
    /// have finished. Tasks are spread round-robin over the per-worker
    /// deques; the submitting thread helps drain outstanding work while it
    /// waits. If any task panicked, the first observed panic is re-raised
    /// here (after the whole batch has finished).
    pub fn execute<'env>(&self, tasks: Vec<ScopedTask<'env>>) {
        if tasks.is_empty() {
            return;
        }
        if tasks.len() == 1 {
            // One task gains nothing from a queue round-trip.
            let mut tasks = tasks;
            (tasks.pop().expect("len checked"))();
            // A worker-abort fault that ran inline poisoned the *submitter*
            // thread; clear the stray flag (only pool workers restart).
            let _ = crate::faults::take_worker_poison();
            return;
        }

        let shared = &self.shared;
        let batch = Arc::new(Batch::new(tasks.len()));
        // Count before pushing so a sleeper that scans between the pushes
        // and the wakeup sees a non-zero unclaimed count and rescans.
        shared.unclaimed.fetch_add(tasks.len(), Ordering::AcqRel);
        let workers = shared.deques.len();
        let start = shared.next_home.fetch_add(1, Ordering::Relaxed);
        for (offset, task) in tasks.into_iter().enumerate() {
            // SAFETY: the only lifetime-carrying part of the type is the
            // closure's borrow set. `execute` does not return — normally
            // or by unwinding — before `batch.pending == 0`, i.e. before
            // every erased task has been consumed by `Batch::run` (panics
            // are caught and re-raised only after the wait below), so no
            // task can outlive the `'env` borrows it captures.
            let task = unsafe { std::mem::transmute::<ScopedTask<'env>, ErasedTask>(task) };
            let home = (start + offset) % workers;
            let mut deque = lock(&shared.deques[home]);
            if deque.len() < DEQUE_CAPACITY {
                deque.push_back((Arc::clone(&batch), task));
            } else {
                drop(deque);
                lock(&shared.injector).push_back((Arc::clone(&batch), task));
                shared.overflows.fetch_add(1, Ordering::Relaxed);
            }
        }
        shared.wake_workers();

        // Help drain our own batch instead of going idle — only our own:
        // the helper claiming a foreign batch's (possibly long) task would
        // delay this `execute`'s return past our batch's completion, and
        // foreign batches make progress through their own submitters. When
        // no task of ours is left to claim, the stragglers are running on
        // workers and the pending-wait below picks up their completion.
        while let Some(task) = shared.try_claim_owned(&batch) {
            shared.book_claim(false);
            batch.run(task);
            shared.helper_tasks.fetch_add(1, Ordering::Relaxed);
        }
        // As in the single-task path: a poison fault that a helping
        // submitter absorbed must not linger on this non-worker thread.
        let _ = crate::faults::take_worker_poison();
        let mut pending = lock(&batch.pending);
        while *pending > 0 {
            pending = batch
                .done
                .wait(pending)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
        drop(pending);
        let payload = lock(&batch.panic).take();
        if let Some(payload) = payload {
            panic::resume_unwind(payload);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // `execute` holds `&self` for its full duration, so no batch can be
        // in flight here; workers are parked or about to park.
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.wake_workers();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
        // Supervised replacements observe the same shutdown flag; a
        // replacement may itself have respawned, so drain until empty.
        loop {
            let Some(handle) = lock(&self.shared.respawned).pop() else {
                break;
            };
            let _ = handle.join();
        }
    }
}

/// Splits `0..items` into at most `workers` contiguous, near-equal ranges
/// (ascending, non-empty).
pub(crate) fn chunk_ranges(items: usize, workers: usize) -> Vec<Range<usize>> {
    let workers = workers.max(1).min(items.max(1));
    let base = items / workers;
    let remainder = items % workers;
    let mut ranges = Vec::with_capacity(workers);
    let mut start = 0usize;
    for worker in 0..workers {
        let len = base + usize::from(worker < remainder);
        if len == 0 {
            continue;
        }
        ranges.push(start..start + len);
        start += len;
    }
    if ranges.is_empty() {
        ranges.push(0..0);
    }
    ranges
}

/// The number of chunks cost-weighted grids aim for. A **constant** — never
/// the thread count — so the grid (and therefore any order-sensitive
/// combine over it) is identical no matter how many workers execute it;
/// many-more-chunks-than-threads is also what makes the chunks stealable.
pub(crate) const WEIGHTED_CHUNK_TARGET: usize = 64;

/// Minimum total cost per weighted chunk (in `weight + 1` units, i.e.
/// roughly items-plus-edges for degree weights): small inputs produce few
/// chunks instead of 64 micro-tasks whose dispatch overhead would swamp
/// the work. A constant for the same determinism reason as the target.
pub(crate) const MIN_WEIGHTED_CHUNK_COST: u64 = 4096;

/// How many stealable tasks a weighted dispatch creates per configured
/// worker thread. More tasks than threads is what lets the deques
/// rebalance a bad cost estimate or an oversized hub chunk; the factor
/// also **bounds** a call's pool occupancy proportionally to its thread
/// budget, so a `threads=2` request cannot saturate a 32-worker pool.
pub(crate) const STEAL_GRANULARITY: usize = 4;

/// Cuts `0..items` at the prefix-sum positions where the accumulated cost
/// reaches `target` (item `i` costs `weight(i) + 1`; the `+ 1` floors
/// zero-weight items so no range degenerates into an unbounded index run).
/// Every produced range holds at least `target` cost except possibly the
/// last, so at most `ceil(total / target)` ranges come back; a single
/// oversized item (a hub) terminates its range immediately.
fn cut_by_cost<W>(items: usize, weight: W, target: u64) -> (Vec<Range<usize>>, Vec<u64>)
where
    W: Fn(usize) -> usize,
{
    let mut ranges = Vec::new();
    let mut costs = Vec::new();
    if items == 0 {
        ranges.push(0..0);
        costs.push(0);
        return (ranges, costs);
    }
    let mut start = 0usize;
    let mut accumulated = 0u64;
    for item in 0..items {
        accumulated += weight(item) as u64 + 1;
        if accumulated >= target {
            ranges.push(start..item + 1);
            costs.push(accumulated);
            start = item + 1;
            accumulated = 0;
        }
    }
    if start < items {
        ranges.push(start..items);
        costs.push(accumulated);
    }
    (ranges, costs)
}

/// The **fixed** cost-weighted chunk grid for order-sensitive reductions:
/// `0..items` split into up to [`WEIGHTED_CHUNK_TARGET`] contiguous ranges
/// of roughly equal total cost, with a per-chunk cost floor
/// ([`MIN_WEIGHTED_CHUNK_COST`]) so small inputs produce few chunks.
///
/// The boundaries are derived *only* from the prefix sum of the costs —
/// never from the thread count — so a reduction's per-chunk partials (and
/// therefore any non-associative combine over them) are bit-identical no
/// matter how many workers execute the grid. Returns the ranges and their
/// total costs (used to group chunks into dispatch tasks).
pub(crate) fn weighted_chunk_grid<W>(items: usize, weight: W) -> (Vec<Range<usize>>, Vec<u64>)
where
    W: Fn(usize) -> usize,
{
    let total: u64 = (0..items).map(|i| weight(i) as u64 + 1).sum();
    let target = total
        .div_ceil(WEIGHTED_CHUNK_TARGET as u64)
        .max(MIN_WEIGHTED_CHUNK_COST);
    cut_by_cost(items, weight, target)
}

/// The ranges of [`weighted_chunk_grid`] without the costs.
#[cfg(test)]
pub(crate) fn weighted_chunk_ranges<W>(items: usize, weight: W) -> Vec<Range<usize>>
where
    W: Fn(usize) -> usize,
{
    weighted_chunk_grid(items, weight).0
}

/// Splits `0..items` into at most `max_groups` contiguous ranges of
/// roughly equal total cost — the dispatch grid for cost-weighted **maps**,
/// whose results merge in index order and therefore tolerate a
/// thread-dependent grid (exactly like the unweighted [`chunk_ranges`]
/// grid always has). Callers pass
/// `max_groups = STEAL_GRANULARITY × threads`: enough surplus tasks for
/// the deques to steal, while pool occupancy stays proportional to the
/// caller's thread budget. No cost floor is applied — for coarse items
/// (whole layers) even a tiny total cost can hide hours of work, and the
/// dispatch count is already bounded by `max_groups`.
pub(crate) fn cost_grouped_ranges<W>(
    items: usize,
    weight: W,
    max_groups: usize,
) -> Vec<Range<usize>>
where
    W: Fn(usize) -> usize,
{
    let total: u64 = (0..items).map(|i| weight(i) as u64 + 1).sum();
    let target = total.div_ceil(max_groups.max(1) as u64).max(1);
    cut_by_cost(items, weight, target).0
}

/// A chunk's indexed results, or its first failure as `(index, error)`.
type ChunkResult<U, E> = Result<Vec<(usize, U)>, (usize, E)>;

/// Applies `f` to every item on up to `threads` workers of the global
/// [`WorkerPool`], returning the results **in item order**.
///
/// Used by algorithm drivers for deterministic data-parallel phases outside
/// the round protocol (e.g. coloring the layers of a β-partition
/// independently). Determinism contract: `f` must be a pure function of
/// `(index, item)`; when several items fail, the error of the lowest index
/// is returned — the same error a sequential left-to-right loop would
/// surface.
///
/// # Errors
///
/// The error of the lowest-indexed failing item.
pub fn parallel_map<T, U, E, F>(items: &[T], threads: usize, f: F) -> Result<Vec<U>, E>
where
    T: Sync,
    U: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<U, E> + Sync,
{
    let threads = threads.max(1);
    if threads == 1 || items.len() <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(index, item)| f(index, item))
            .collect();
    }
    chunked_map(items, chunk_ranges(items.len(), threads), f)
}

/// [`parallel_map`] with cost-weighted chunking: `weight(index, item)`
/// estimates each item's cost (e.g. a layer's total degree) and the item
/// space is split into up to `STEAL_GRANULARITY × threads` chunks of
/// roughly equal total cost, so one huge item no longer pins a whole
/// contiguous range to one worker — the surplus chunks are stealable and
/// the work-stealing deques rebalance them, while pool occupancy stays
/// proportional to the caller's thread budget.
///
/// Results (and the lowest-index error, see [`parallel_map`]) are
/// bit-identical to the unweighted form for any thread count.
///
/// # Errors
///
/// The error of the lowest-indexed failing item.
pub fn parallel_map_weighted<T, U, E, F, W>(
    items: &[T],
    threads: usize,
    weight: W,
    f: F,
) -> Result<Vec<U>, E>
where
    T: Sync,
    U: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<U, E> + Sync,
    W: Fn(usize, &T) -> usize,
{
    let threads = threads.max(1);
    if threads == 1 || items.len() <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(index, item)| f(index, item))
            .collect();
    }
    let grid = cost_grouped_ranges(
        items.len(),
        |index| weight(index, &items[index]),
        STEAL_GRANULARITY * threads,
    );
    chunked_map(items, grid, f)
}

/// The shared fan-out behind [`parallel_map`] / [`parallel_map_weighted`]:
/// runs every chunk of `grid` as one pool task and merges in index order.
fn chunked_map<T, U, E, F>(items: &[T], grid: Vec<Range<usize>>, f: F) -> Result<Vec<U>, E>
where
    T: Sync,
    U: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<U, E> + Sync,
{
    let mut outcomes: Vec<Option<ChunkResult<U, E>>> = (0..grid.len()).map(|_| None).collect();
    {
        let f = &f;
        let tasks: Vec<ScopedTask<'_>> = outcomes
            .iter_mut()
            .zip(grid)
            .map(|(slot, range)| {
                Box::new(move || {
                    let mut produced = Vec::with_capacity(range.len());
                    let mut failure = None;
                    for index in range {
                        match f(index, &items[index]) {
                            Ok(value) => produced.push((index, value)),
                            Err(error) => {
                                failure = Some((index, error));
                                break;
                            }
                        }
                    }
                    *slot = Some(match failure {
                        None => Ok(produced),
                        Some(error) => Err(error),
                    });
                }) as ScopedTask<'_>
            })
            .collect();
        WorkerPool::global().execute(tasks);
    }

    let mut first_error: Option<(usize, E)> = None;
    let mut slots: Vec<Option<U>> = (0..items.len()).map(|_| None).collect();
    for outcome in outcomes {
        match outcome.expect("the pool ran every chunk") {
            Ok(produced) => {
                for (index, value) in produced {
                    slots[index] = Some(value);
                }
            }
            Err((index, error)) => {
                if first_error.as_ref().is_none_or(|(best, _)| index < *best) {
                    first_error = Some((index, error));
                }
            }
        }
    }
    if let Some((_, error)) = first_error {
        return Err(error);
    }
    Ok(slots
        .into_iter()
        .map(|slot| slot.expect("every index produced or an error returned"))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_exactly_once() {
        for items in [0usize, 1, 5, 16, 97] {
            for workers in [1usize, 2, 3, 8, 200] {
                let ranges = chunk_ranges(items, workers);
                let mut covered = Vec::new();
                let mut last_end = 0;
                for range in &ranges {
                    assert_eq!(range.start, last_end, "contiguous ascending");
                    last_end = range.end;
                    covered.extend(range.clone());
                }
                assert_eq!(covered, (0..items).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn weighted_chunks_cover_exactly_once_and_balance_cost() {
        // A hub-heavy weight profile: item 0 carries half the total cost.
        let weight = |i: usize| if i == 0 { 50_000 } else { 1 };
        for items in [1usize, 2, 100, 5_000] {
            let ranges = weighted_chunk_ranges(items, weight);
            let mut covered = Vec::new();
            let mut last_end = 0;
            for range in &ranges {
                assert_eq!(range.start, last_end, "contiguous ascending");
                last_end = range.end;
                covered.extend(range.clone());
            }
            assert_eq!(covered, (0..items).collect::<Vec<_>>());
        }
        // The hub terminates its chunk immediately: chunk 0 is exactly {0}.
        let ranges = weighted_chunk_ranges(5_000, weight);
        assert_eq!(ranges[0], 0..1, "the hub forms its own chunk");
        assert!(ranges.len() > 2, "the light tail still splits");
        assert!(ranges.len() <= WEIGHTED_CHUNK_TARGET + 1);
    }

    #[test]
    fn weighted_chunk_grid_is_independent_of_thread_count() {
        // The grid is a pure function of the weights — there is no thread
        // parameter to vary, which is the whole determinism argument. Pin
        // the boundary rule on a known profile so regressions are loud:
        // 64 × 64 items of cost 64 split into exactly 64 uniform chunks.
        let ranges = weighted_chunk_ranges(64 * 64, |_| 63);
        assert_eq!(ranges.len(), WEIGHTED_CHUNK_TARGET);
        for range in &ranges {
            assert_eq!(range.len(), 64, "uniform weights give uniform chunks");
        }
        // Small totals collapse to few chunks (the per-chunk cost floor),
        // instead of 64 micro-tasks.
        let small = weighted_chunk_ranges(640, |_| 0);
        assert_eq!(small.len(), 1);
        let empty = weighted_chunk_ranges(0, |_| 7);
        assert_eq!(empty.len(), 1);
        assert_eq!(empty[0], 0..0);
        // The grid also reports per-chunk costs (in weight + 1 units).
        let (ranges, costs) = weighted_chunk_grid(64 * 64, |_| 63);
        assert_eq!(ranges.len(), costs.len());
        assert_eq!(costs.iter().sum::<u64>(), 64 * 64 * 64);
    }

    #[test]
    fn cost_grouped_ranges_bound_dispatch_by_the_group_budget() {
        // The map-dispatch grid: at most `max_groups` cost-balanced
        // ranges, no cost floor — a tiny total must still split so coarse
        // items (whole layers) keep their parallelism.
        let groups = cost_grouped_ranges(8, |_| 0, 4);
        assert_eq!(groups.len(), 4, "{groups:?}");
        let mut covered = Vec::new();
        for range in &groups {
            covered.extend(range.clone());
        }
        assert_eq!(covered, (0..8).collect::<Vec<_>>());
        // A hub-heavy profile never exceeds the budget either, and the
        // hub still terminates its range immediately.
        let weight = |i: usize| if i == 0 { 10_000 } else { 1 };
        for budget in [1usize, 2, 8, 32] {
            let groups = cost_grouped_ranges(5_000, weight, budget);
            assert!(groups.len() <= budget, "budget {budget}: {}", groups.len());
            let mut last_end = 0;
            for range in &groups {
                assert_eq!(range.start, last_end);
                last_end = range.end;
            }
            assert_eq!(last_end, 5_000);
        }
        let groups = cost_grouped_ranges(5_000, weight, 32);
        assert_eq!(groups[0], 0..1, "the hub forms its own dispatch group");
    }

    #[test]
    fn map_preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let doubled =
            parallel_map(&items, 4, |i, &x| Ok::<_, ()>(2 * x + i - i)).expect("no errors");
        assert_eq!(doubled, items.iter().map(|&x| 2 * x).collect::<Vec<_>>());
        let sequential = parallel_map(&items, 1, |_, &x| Ok::<_, ()>(2 * x)).expect("no errors");
        assert_eq!(doubled, sequential);
    }

    #[test]
    fn weighted_map_matches_unweighted() {
        let items: Vec<usize> = (0..500).collect();
        let expected = parallel_map(&items, 4, |i, &x| Ok::<_, ()>(x * 3 + i)).expect("no errors");
        let weighted = parallel_map_weighted(&items, 4, |_, &x| x, |i, &x| Ok::<_, ()>(x * 3 + i))
            .expect("no errors");
        assert_eq!(expected, weighted);
    }

    #[test]
    fn lowest_index_error_wins() {
        let items: Vec<usize> = (0..64).collect();
        let result = parallel_map(&items, 4, |i, _| if i % 10 == 7 { Err(i) } else { Ok(i) });
        assert_eq!(result, Err(7));
        let weighted = parallel_map_weighted(
            &items,
            4,
            |_, &x| x,
            |i, _| if i % 10 == 7 { Err(i) } else { Ok(i) },
        );
        assert_eq!(weighted, Err(7));
    }

    #[test]
    fn pool_runs_batches_and_counts_every_task() {
        let pool = WorkerPool::new(2);
        assert_eq!(pool.num_workers(), 2);
        let mut slots = vec![0usize; 40];
        for round in 0..5 {
            let tasks: Vec<ScopedTask<'_>> = slots
                .iter_mut()
                .enumerate()
                .map(|(i, slot)| {
                    Box::new(move || {
                        *slot = i + round;
                    }) as ScopedTask<'_>
                })
                .collect();
            pool.execute(tasks);
        }
        for (i, slot) in slots.iter().enumerate() {
            assert_eq!(*slot, i + 4);
        }
        // Every submitted task is accounted to exactly one runner.
        let stats = pool.stats();
        assert_eq!(stats.total_tasks(), 5 * 40);
        assert_eq!(stats.tasks_per_worker.len(), 2);
        assert_eq!(stats.idle_nanos_per_worker.len(), 2);
    }

    #[test]
    fn steal_counter_accounts_rebalanced_tasks() {
        // Tasks spread round-robin over the worker deques; an early
        // finisher must cross deques to keep busy. The steal counter
        // records exactly the worker-to-worker cross-deque claims (the
        // helping submitter's claims count as helper_tasks instead), and
        // every claim is booked exactly once: total_tasks stays exact
        // even under stealing.
        let pool = WorkerPool::new(3);
        let before = pool.stats();
        let mut slots = vec![0u64; 300];
        for _ in 0..10 {
            let tasks: Vec<ScopedTask<'_>> = slots
                .iter_mut()
                .map(|slot| {
                    Box::new(move || {
                        // Uneven task costs provoke stealing.
                        let spins = (*slot % 7) * 200;
                        for _ in 0..spins {
                            std::hint::black_box(());
                        }
                        *slot += 1;
                    }) as ScopedTask<'_>
                })
                .collect();
            pool.execute(tasks);
        }
        assert!(slots.iter().all(|&v| v == 10));
        let after = pool.stats();
        assert_eq!(after.total_tasks() - before.total_tasks(), 10 * 300);
        // Steals and overflows never exceed the tasks that existed.
        assert!(after.steals - before.steals <= 10 * 300);
        assert!(after.overflows - before.overflows <= 10 * 300);
    }

    #[test]
    fn oversized_batches_overflow_to_the_injector_and_still_complete() {
        // 2 workers x DEQUE_CAPACITY is the deque budget; a batch far past
        // it must spill into the injector (counted) and still run fully.
        let pool = WorkerPool::new(2);
        let before = pool.stats();
        let count = 2 * DEQUE_CAPACITY + 500;
        let mut slots = vec![false; count];
        let tasks: Vec<ScopedTask<'_>> = slots
            .iter_mut()
            .map(|slot| Box::new(move || *slot = true) as ScopedTask<'_>)
            .collect();
        pool.execute(tasks);
        assert!(slots.iter().all(|&v| v));
        let after = pool.stats();
        assert_eq!(after.total_tasks() - before.total_tasks(), count as u64);
        assert!(
            after.overflows > before.overflows,
            "a batch past the deque budget must overflow"
        );
    }

    #[test]
    fn pool_threads_persist_across_batches() {
        let pool = WorkerPool::new(3);
        let before = pool.num_workers();
        for _ in 0..50 {
            let mut sink = [0u64; 8];
            let tasks: Vec<ScopedTask<'_>> = sink
                .iter_mut()
                .map(|slot| Box::new(move || *slot += 1) as ScopedTask<'_>)
                .collect();
            pool.execute(tasks);
            assert!(sink.iter().all(|&v| v == 1));
        }
        // The pool never grows or shrinks: same workers serve every batch.
        assert_eq!(pool.num_workers(), before);
    }

    #[test]
    fn pool_propagates_task_panics_after_the_batch_finishes() {
        let pool = WorkerPool::new(2);
        let mut finished = [false; 6];
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            let tasks: Vec<ScopedTask<'_>> = finished
                .iter_mut()
                .enumerate()
                .map(|(i, slot)| {
                    Box::new(move || {
                        if i == 3 {
                            panic!("task 3 exploded");
                        }
                        *slot = true;
                    }) as ScopedTask<'_>
                })
                .collect();
            pool.execute(tasks);
        }));
        let payload = result.expect_err("the panic must propagate to the submitter");
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("non-str payload");
        assert!(message.contains("exploded"), "{message}");
        // Every non-panicking task still ran to completion.
        for (i, done) in finished.iter().enumerate() {
            assert_eq!(*done, i != 3, "task {i}");
        }
        // The pool survives the panic and keeps serving.
        let mut ok = false;
        pool.execute(vec![Box::new(|| ok = true) as ScopedTask<'_>]);
        assert!(ok);
    }

    #[test]
    fn nested_submissions_make_progress() {
        // A task running on the pool submits its own batch — the shape the
        // per-layer drivers produce. The nested submitter must be able to
        // drain its batch even when every worker is busy.
        let pool = Arc::new(WorkerPool::new(2));
        let mut totals = vec![0u64; 6];
        {
            let pool_ref = &pool;
            let tasks: Vec<ScopedTask<'_>> = totals
                .iter_mut()
                .map(|total| {
                    Box::new(move || {
                        let mut inner = [0u64; 16];
                        let inner_tasks: Vec<ScopedTask<'_>> = inner
                            .iter_mut()
                            .enumerate()
                            .map(|(i, slot)| {
                                Box::new(move || *slot = i as u64 + 1) as ScopedTask<'_>
                            })
                            .collect();
                        pool_ref.execute(inner_tasks);
                        *total = inner.iter().sum();
                    }) as ScopedTask<'_>
                })
                .collect();
            pool.execute(tasks);
        }
        let expected: u64 = (1..=16).sum();
        assert!(totals.iter().all(|&v| v == expected), "{totals:?}");
    }

    #[test]
    fn poisoned_workers_are_respawned_and_their_tasks_survive() {
        use std::sync::atomic::AtomicU64 as Counter;
        let pool = WorkerPool::new(2);
        let before = pool.stats().worker_restarts;
        let ran = Counter::new(0);
        // Every task poisons whichever runner executes it: a worker that
        // claims even one restarts; the helping submitter just clears its
        // flag. The loop re-submits until a worker provably restarted. On a
        // loaded host the submitter can drain a whole batch before the two
        // worker threads ever get scheduled — and the respawn itself lands
        // only after the batch's last `run` returns — so each round yields
        // the CPU for a moment before re-checking.
        let mut rounds = 0usize;
        let mut total = 0u64;
        while pool.stats().worker_restarts == before && rounds < 200 {
            let tasks: Vec<ScopedTask<'_>> = (0..64)
                .map(|_| {
                    let ran = &ran;
                    Box::new(move || {
                        crate::faults::poison_current_worker();
                        ran.fetch_add(1, Ordering::Relaxed);
                    }) as ScopedTask<'_>
                })
                .collect();
            pool.execute(tasks);
            rounds += 1;
            total += 64;
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        // Every task still completed — poisoning only retires the thread
        // after the batch bookkeeping, never drops work.
        assert_eq!(ran.load(Ordering::Relaxed), total);
        let after = pool.stats();
        assert!(
            after.worker_restarts > before,
            "a poisoned worker must restart (rounds = {rounds})"
        );
        // The pool still serves batches afterwards with the same width.
        assert_eq!(pool.num_workers(), 2);
        let mut ok = [false; 8];
        let tasks: Vec<ScopedTask<'_>> = ok
            .iter_mut()
            .map(|slot| Box::new(move || *slot = true) as ScopedTask<'_>)
            .collect();
        pool.execute(tasks);
        assert!(ok.iter().all(|&v| v));
    }

    #[test]
    fn global_pool_is_shared_and_persistent() {
        let a = Arc::as_ptr(WorkerPool::global());
        let b = Arc::as_ptr(WorkerPool::global());
        assert_eq!(a, b);
        assert!(WorkerPool::global().num_workers() >= 2);
    }
}
