//! The length-prefixed binary wire protocol between the
//! [`crate::ProcessBackend`] supervisor and its `ampc-shard-worker` child
//! processes, plus the worker-side serve loop.
//!
//! ## Framing
//!
//! Every message travels as one frame: a little-endian `u32` payload
//! length followed by the payload bytes. The child reads frames from
//! stdin and answers on stdout; stderr is left alone for diagnostics.
//! Std-only by design — the same no-registry constraint the rest of the
//! workspace holds — so the encoding is hand-rolled little-endian, not a
//! serde format.
//!
//! ## Messages
//!
//! Supervisor → worker ([`Request`]):
//!
//! * `Ping` — liveness probe; the worker answers `Pong`.
//! * `Merge` — one round's merge work: the conflict policy plus, for each
//!   shard assigned to this worker, the round's buffered writes in global
//!   `(machine, write index)` order.
//! * `Shutdown` — orderly exit (the worker also exits cleanly on stdin
//!   EOF, which is what reaps children when the supervisor dies).
//!
//! Worker → supervisor ([`Response`]):
//!
//! * `Pong`.
//! * `Merge` — per shard: the merged entries (in the deterministic
//!   [`FlatShard`] slot order the in-process merge would produce), the
//!   routed-write and conflict-merge counts, and under
//!   [`ConflictPolicy::Error`] the first conflicting write as
//!   `(machine, index, key, existing, incoming)` so the supervisor can
//!   reconstruct the exact [`ampc_model::ModelError`] the sequential
//!   executor would have raised.
//!
//! ## Determinism
//!
//! The worker is **stateless across rounds**: a merge response is a pure
//! function of the request, computed with the same [`FlatShard`] replay
//! the in-process [`crate::ParallelBackend`] uses. That purity is what
//! makes crash recovery bit-identical — a respawned worker re-fed the
//! same round input returns byte-for-byte the same response the dead one
//! would have.

use std::io::{self, Read, Write};

use ampc_model::{ConflictPolicy, Key, Value};

use crate::shard::FlatShard;

/// Sanity cap on a single frame (1 GiB): anything larger is protocol
/// corruption, not a real merge batch.
const MAX_FRAME_BYTES: u32 = 1 << 30;

/// One buffered write in the global sequential-application order:
/// `(machine, index within the machine's write sequence, key, value)`.
pub(crate) type WireWrite = (u64, u64, Key, Value);

/// The writes routed to one shard, in `(machine, index)` order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct ShardWrites {
    /// Global shard index (the supervisor owns the shard→worker map).
    pub shard: u32,
    /// The round's buffered writes destined for this shard.
    pub writes: Vec<WireWrite>,
}

/// One round's merge work for one worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct MergeRequest {
    /// Supervisor-chosen dispatch id, echoed verbatim in the response so
    /// the supervisor can discard stale frames from a superseded dispatch
    /// (e.g. a late answer arriving after a replay).
    pub id: u64,
    /// The conflict policy in force this round.
    pub policy: ConflictPolicy,
    /// Per-shard write batches, one entry per shard assigned to this
    /// worker.
    pub shards: Vec<ShardWrites>,
}

/// A supervisor → worker message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Request {
    /// Liveness probe.
    Ping,
    /// One round's merge work.
    Merge(MergeRequest),
    /// Orderly shutdown.
    Shutdown,
}

/// The first conflicting write of a shard under [`ConflictPolicy::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ShardConflict {
    /// Machine that issued the conflicting write.
    pub machine: u64,
    /// Index of the write within that machine's write sequence.
    pub index: u64,
    /// The contested key.
    pub key: Key,
    /// The value already staged for the key.
    pub existing: Value,
    /// The incoming value that conflicted with it.
    pub incoming: Value,
}

/// The merge result for one shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct ShardMergeResult {
    /// Global shard index, echoed from the request.
    pub shard: u32,
    /// Writes replayed into the staged table (up to and including a
    /// conflicting one).
    pub writes_routed: u64,
    /// Writes that hit an already-staged key and were policy-resolved.
    pub conflict_merges: u64,
    /// First conflicting write in `(machine, index)` order, if any.
    pub conflict: Option<ShardConflict>,
    /// Merged entries in deterministic slot order (empty on conflict —
    /// the round is lost anyway).
    pub entries: Vec<(Key, Value)>,
}

/// A worker → supervisor message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Response {
    /// Liveness answer.
    Pong,
    /// One round's merge results.
    Merge {
        /// Dispatch id echoed from the request.
        id: u64,
        /// Per-shard results, in request order.
        shards: Vec<ShardMergeResult>,
    },
}

// ---------------------------------------------------------------------------
// Framing.

/// Writes one length-prefixed frame.
pub(crate) fn write_frame(writer: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    writer.write_all(&len.to_le_bytes())?;
    writer.write_all(payload)
}

/// Reads one length-prefixed frame. EOF *between* frames surfaces as
/// [`io::ErrorKind::UnexpectedEof`] with an empty-read marker the serve
/// loop maps to a clean exit; EOF mid-frame is a hard protocol error.
pub(crate) fn read_frame(reader: &mut impl Read) -> io::Result<Vec<u8>> {
    let mut len_bytes = [0u8; 4];
    let mut filled = 0usize;
    while filled < len_bytes.len() {
        match reader.read(&mut len_bytes[filled..])? {
            0 if filled == 0 => {
                return Err(io::Error::new(io::ErrorKind::UnexpectedEof, CLEAN_EOF));
            }
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside a frame header",
                ));
            }
            n => filled += n,
        }
    }
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    reader.read_exact(&mut payload)?;
    Ok(payload)
}

/// Marker message of a clean between-frames EOF.
const CLEAN_EOF: &str = "clean EOF at a frame boundary";

/// Whether a [`read_frame`] error is the clean between-frames EOF.
pub(crate) fn is_clean_eof(error: &io::Error) -> bool {
    error.kind() == io::ErrorKind::UnexpectedEof && error.to_string() == CLEAN_EOF
}

// ---------------------------------------------------------------------------
// Encoding primitives.

fn put_u8(buf: &mut Vec<u8>, value: u8) {
    buf.push(value);
}

fn put_u32(buf: &mut Vec<u8>, value: u32) {
    buf.extend_from_slice(&value.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, value: u64) {
    buf.extend_from_slice(&value.to_le_bytes());
}

/// Keys and values share one layout: a word count byte followed by the
/// words, little-endian.
fn put_words(buf: &mut Vec<u8>, words: &[u64]) {
    put_u8(buf, words.len() as u8);
    for &word in words {
        put_u64(buf, word);
    }
}

fn put_key(buf: &mut Vec<u8>, key: &Key) {
    put_words(buf, key.words());
}

fn put_value(buf: &mut Vec<u8>, value: &Value) {
    put_words(buf, value.words());
}

/// A bounds-checked little-endian reader over one frame payload.
struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    fn words(&mut self) -> Result<([u64; ampc_model::MAX_WORDS], usize), String> {
        let len = self.u8()? as usize;
        if len > ampc_model::MAX_WORDS {
            return Err(format!("{len}-word key/value exceeds MAX_WORDS"));
        }
        let mut words = [0u64; ampc_model::MAX_WORDS];
        for word in words.iter_mut().take(len) {
            *word = self.u64()?;
        }
        Ok((words, len))
    }

    fn key(&mut self) -> Result<Key, String> {
        let (words, len) = self.words()?;
        Ok(Key::from_words(&words[..len]))
    }

    fn value(&mut self) -> Result<Value, String> {
        let (words, len) = self.words()?;
        Ok(Value::from_words(&words[..len]))
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or_else(|| format!("frame truncated at byte {}", self.pos))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn finish(&self) -> Result<(), String> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(format!(
                "{} trailing bytes after message",
                self.buf.len() - self.pos
            ))
        }
    }
}

// ---------------------------------------------------------------------------
// Message encoding.

const REQ_PING: u8 = 0;
const REQ_MERGE: u8 = 1;
const REQ_SHUTDOWN: u8 = 2;
const RESP_PONG: u8 = 0;
const RESP_MERGE: u8 = 1;

fn policy_code(policy: ConflictPolicy) -> u8 {
    match policy {
        ConflictPolicy::KeepMin => 0,
        ConflictPolicy::KeepMax => 1,
        ConflictPolicy::KeepFirst => 2,
        ConflictPolicy::Error => 3,
    }
}

fn policy_from_code(code: u8) -> Result<ConflictPolicy, String> {
    Ok(match code {
        0 => ConflictPolicy::KeepMin,
        1 => ConflictPolicy::KeepMax,
        2 => ConflictPolicy::KeepFirst,
        3 => ConflictPolicy::Error,
        other => return Err(format!("unknown conflict policy code {other}")),
    })
}

impl Request {
    /// Serializes the request into one frame payload.
    pub(crate) fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Request::Ping => put_u8(&mut buf, REQ_PING),
            Request::Shutdown => put_u8(&mut buf, REQ_SHUTDOWN),
            Request::Merge(merge) => {
                put_u8(&mut buf, REQ_MERGE);
                put_u64(&mut buf, merge.id);
                put_u8(&mut buf, policy_code(merge.policy));
                put_u32(&mut buf, merge.shards.len() as u32);
                for shard in &merge.shards {
                    put_u32(&mut buf, shard.shard);
                    put_u32(&mut buf, shard.writes.len() as u32);
                    for (machine, index, key, value) in &shard.writes {
                        put_u64(&mut buf, *machine);
                        put_u64(&mut buf, *index);
                        put_key(&mut buf, key);
                        put_value(&mut buf, value);
                    }
                }
            }
        }
        buf
    }

    /// Parses one frame payload.
    ///
    /// # Errors
    ///
    /// A description of the first malformed byte range.
    pub(crate) fn decode(payload: &[u8]) -> Result<Request, String> {
        let mut dec = Decoder::new(payload);
        let request = match dec.u8()? {
            REQ_PING => Request::Ping,
            REQ_SHUTDOWN => Request::Shutdown,
            REQ_MERGE => {
                let id = dec.u64()?;
                let policy = policy_from_code(dec.u8()?)?;
                let num_shards = dec.u32()? as usize;
                let mut shards = Vec::with_capacity(num_shards);
                for _ in 0..num_shards {
                    let shard = dec.u32()?;
                    let num_writes = dec.u32()? as usize;
                    let mut writes = Vec::with_capacity(num_writes.min(1 << 20));
                    for _ in 0..num_writes {
                        let machine = dec.u64()?;
                        let index = dec.u64()?;
                        let key = dec.key()?;
                        let value = dec.value()?;
                        writes.push((machine, index, key, value));
                    }
                    shards.push(ShardWrites { shard, writes });
                }
                Request::Merge(MergeRequest { id, policy, shards })
            }
            other => return Err(format!("unknown request tag {other}")),
        };
        dec.finish()?;
        Ok(request)
    }
}

impl Response {
    /// Serializes the response into one frame payload.
    pub(crate) fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Response::Pong => put_u8(&mut buf, RESP_PONG),
            Response::Merge { id, shards } => {
                put_u8(&mut buf, RESP_MERGE);
                put_u64(&mut buf, *id);
                put_u32(&mut buf, shards.len() as u32);
                for shard in shards {
                    put_u32(&mut buf, shard.shard);
                    put_u64(&mut buf, shard.writes_routed);
                    put_u64(&mut buf, shard.conflict_merges);
                    match &shard.conflict {
                        None => put_u8(&mut buf, 0),
                        Some(conflict) => {
                            put_u8(&mut buf, 1);
                            put_u64(&mut buf, conflict.machine);
                            put_u64(&mut buf, conflict.index);
                            put_key(&mut buf, &conflict.key);
                            put_value(&mut buf, &conflict.existing);
                            put_value(&mut buf, &conflict.incoming);
                        }
                    }
                    put_u32(&mut buf, shard.entries.len() as u32);
                    for (key, value) in &shard.entries {
                        put_key(&mut buf, key);
                        put_value(&mut buf, value);
                    }
                }
            }
        }
        buf
    }

    /// Parses one frame payload.
    ///
    /// # Errors
    ///
    /// A description of the first malformed byte range.
    pub(crate) fn decode(payload: &[u8]) -> Result<Response, String> {
        let mut dec = Decoder::new(payload);
        let response = match dec.u8()? {
            RESP_PONG => Response::Pong,
            RESP_MERGE => {
                let id = dec.u64()?;
                let num_shards = dec.u32()? as usize;
                let mut shards = Vec::with_capacity(num_shards);
                for _ in 0..num_shards {
                    let shard = dec.u32()?;
                    let writes_routed = dec.u64()?;
                    let conflict_merges = dec.u64()?;
                    let conflict = match dec.u8()? {
                        0 => None,
                        1 => Some(ShardConflict {
                            machine: dec.u64()?,
                            index: dec.u64()?,
                            key: dec.key()?,
                            existing: dec.value()?,
                            incoming: dec.value()?,
                        }),
                        other => return Err(format!("bad conflict flag {other}")),
                    };
                    let num_entries = dec.u32()? as usize;
                    let mut entries = Vec::with_capacity(num_entries.min(1 << 20));
                    for _ in 0..num_entries {
                        let key = dec.key()?;
                        let value = dec.value()?;
                        entries.push((key, value));
                    }
                    shards.push(ShardMergeResult {
                        shard,
                        writes_routed,
                        conflict_merges,
                        conflict,
                        entries,
                    });
                }
                Response::Merge { id, shards }
            }
            other => return Err(format!("unknown response tag {other}")),
        };
        dec.finish()?;
        Ok(response)
    }
}

// ---------------------------------------------------------------------------
// The worker-side merge (pure) and serve loop.

/// Merges one shard's writes exactly as the in-process parallel merge
/// does: replay in the given `(machine, index)` order into a staged
/// [`FlatShard`] via the single-probe upsert, resolving collisions with
/// the policy, stopping at the first [`ConflictPolicy::Error`] conflict.
fn merge_shard(policy: ConflictPolicy, shard: &ShardWrites) -> ShardMergeResult {
    let mut staged = FlatShard::default();
    let mut writes_routed = 0u64;
    let mut conflict_merges = 0u64;
    let mut conflict = None;
    for &(machine, index, key, value) in &shard.writes {
        writes_routed += 1;
        if let Some(existing) = staged.get_or_insert(key, value) {
            conflict_merges += 1;
            match policy.resolve(&key, *existing, value) {
                Ok(resolved) => *existing = resolved,
                Err(_) => {
                    conflict = Some(ShardConflict {
                        machine,
                        index,
                        key,
                        existing: *existing,
                        incoming: value,
                    });
                    break;
                }
            }
        }
    }
    let entries = if conflict.is_some() {
        Vec::new()
    } else {
        staged.into_entries().collect()
    };
    ShardMergeResult {
        shard: shard.shard,
        writes_routed,
        conflict_merges,
        conflict,
        entries,
    }
}

/// Serves one merge request.
pub(crate) fn serve_merge(request: &MergeRequest) -> Response {
    Response::Merge {
        id: request.id,
        shards: request
            .shards
            .iter()
            .map(|shard| merge_shard(request.policy, shard))
            .collect(),
    }
}

/// The worker serve loop over arbitrary byte streams (unit-testable
/// in-memory; the binary wires it to stdin/stdout). Returns the process
/// exit code: 0 for an orderly shutdown or a clean EOF, non-zero on
/// protocol corruption.
pub(crate) fn serve(input: &mut impl Read, output: &mut impl Write) -> i32 {
    loop {
        let payload = match read_frame(input) {
            Ok(payload) => payload,
            Err(error) if is_clean_eof(&error) => return 0,
            Err(error) => {
                eprintln!("ampc-shard-worker: transport error: {error}");
                return 1;
            }
        };
        let request = match Request::decode(&payload) {
            Ok(request) => request,
            Err(error) => {
                eprintln!("ampc-shard-worker: malformed request: {error}");
                return 2;
            }
        };
        let response = match request {
            Request::Ping => Response::Pong,
            Request::Shutdown => return 0,
            Request::Merge(merge) => serve_merge(&merge),
        };
        let frame = response.encode();
        if let Err(error) = write_frame(output, &frame).and_then(|()| output.flush()) {
            eprintln!("ampc-shard-worker: write error: {error}");
            return 1;
        }
    }
}

/// Entry point of the `ampc-shard-worker` binary: serve frames on
/// stdin/stdout until shutdown or EOF. Returns the process exit code.
pub fn shard_worker_main() -> i32 {
    let stdin = io::stdin();
    let stdout = io::stdout();
    let mut input = stdin.lock();
    let mut output = stdout.lock();
    serve(&mut input, &mut output)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write(machine: u64, index: u64, key: u64, value: u64) -> WireWrite {
        (machine, index, Key::pair(7, key), Value::single(value))
    }

    #[test]
    fn frames_round_trip_and_reject_junk() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        let mut cursor = io::Cursor::new(wire);
        assert_eq!(read_frame(&mut cursor).unwrap(), b"hello");
        assert_eq!(read_frame(&mut cursor).unwrap(), b"");
        let eof = read_frame(&mut cursor).unwrap_err();
        assert!(is_clean_eof(&eof));

        // EOF mid-header is NOT clean.
        let mut truncated = io::Cursor::new(vec![5u8, 0]);
        let error = read_frame(&mut truncated).unwrap_err();
        assert!(!is_clean_eof(&error));

        // Oversized length prefix is rejected before allocation.
        let mut huge = io::Cursor::new(u32::MAX.to_le_bytes().to_vec());
        assert!(read_frame(&mut huge).is_err());
    }

    #[test]
    fn requests_and_responses_round_trip() {
        let request = Request::Merge(MergeRequest {
            id: 42,
            policy: ConflictPolicy::KeepFirst,
            shards: vec![
                ShardWrites {
                    shard: 3,
                    writes: vec![write(0, 0, 9, 1), write(5, 2, 9, 2)],
                },
                ShardWrites {
                    shard: 7,
                    writes: vec![],
                },
            ],
        });
        assert_eq!(Request::decode(&request.encode()).unwrap(), request);
        for request in [Request::Ping, Request::Shutdown] {
            assert_eq!(Request::decode(&request.encode()).unwrap(), request);
        }

        let response = Response::Merge {
            id: 42,
            shards: vec![ShardMergeResult {
                shard: 3,
                writes_routed: 2,
                conflict_merges: 1,
                conflict: Some(ShardConflict {
                    machine: 5,
                    index: 2,
                    key: Key::pair(7, 9),
                    existing: Value::single(1),
                    incoming: Value::single(2),
                }),
                entries: vec![(Key::single(1), Value::pair(2, 3))],
            }],
        };
        assert_eq!(Response::decode(&response.encode()).unwrap(), response);
        assert_eq!(
            Response::decode(&Response::Pong.encode()).unwrap(),
            Response::Pong
        );

        // Malformed payloads are rejected, not misparsed.
        assert!(Request::decode(&[]).is_err());
        assert!(Request::decode(&[99]).is_err());
        assert!(Response::decode(&[99]).is_err());
        let mut trailing = Request::Ping.encode();
        trailing.push(0);
        assert!(Request::decode(&trailing).is_err());
    }

    #[test]
    fn merge_replays_writes_in_order_and_reports_the_first_conflict() {
        // KeepFirst: the earlier (machine, index) write wins.
        let request = MergeRequest {
            id: 1,
            policy: ConflictPolicy::KeepFirst,
            shards: vec![ShardWrites {
                shard: 0,
                writes: vec![write(1, 0, 5, 10), write(2, 0, 5, 20), write(2, 1, 6, 30)],
            }],
        };
        let Response::Merge { id, shards } = serve_merge(&request) else {
            panic!("merge answers merge");
        };
        assert_eq!(id, 1);
        assert_eq!(shards.len(), 1);
        assert_eq!(shards[0].writes_routed, 3);
        assert_eq!(shards[0].conflict_merges, 1);
        assert!(shards[0].conflict.is_none());
        let mut entries = shards[0].entries.clone();
        entries.sort();
        assert_eq!(
            entries,
            vec![
                (Key::pair(7, 5), Value::single(10)),
                (Key::pair(7, 6), Value::single(30)),
            ]
        );

        // Error policy: the first conflicting write is reported with both
        // values, and the replay stops there.
        let request = MergeRequest {
            id: 2,
            policy: ConflictPolicy::Error,
            shards: vec![ShardWrites {
                shard: 4,
                writes: vec![write(1, 0, 5, 10), write(3, 2, 5, 20), write(9, 0, 8, 1)],
            }],
        };
        let Response::Merge { shards, .. } = serve_merge(&request) else {
            panic!("merge answers merge");
        };
        let conflict = shards[0].conflict.expect("conflict detected");
        assert_eq!((conflict.machine, conflict.index), (3, 2));
        assert_eq!(conflict.existing, Value::single(10));
        assert_eq!(conflict.incoming, Value::single(20));
        assert_eq!(shards[0].writes_routed, 2, "replay stops at the conflict");
        assert!(shards[0].entries.is_empty());
    }

    #[test]
    fn serve_loop_answers_ping_merge_and_exits_cleanly() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &Request::Ping.encode()).unwrap();
        let merge = Request::Merge(MergeRequest {
            id: 0,
            policy: ConflictPolicy::KeepMin,
            shards: vec![ShardWrites {
                shard: 2,
                writes: vec![write(0, 0, 1, 9), write(1, 0, 1, 4)],
            }],
        });
        write_frame(&mut wire, &merge.encode()).unwrap();
        write_frame(&mut wire, &Request::Shutdown.encode()).unwrap();

        let mut input = io::Cursor::new(wire);
        let mut output = Vec::new();
        assert_eq!(serve(&mut input, &mut output), 0);

        let mut replies = io::Cursor::new(output);
        let pong = Response::decode(&read_frame(&mut replies).unwrap()).unwrap();
        assert_eq!(pong, Response::Pong);
        let Response::Merge { id, shards } =
            Response::decode(&read_frame(&mut replies).unwrap()).unwrap()
        else {
            panic!("second reply is the merge result");
        };
        assert_eq!(id, 0);
        assert_eq!(shards[0].entries, vec![(Key::pair(7, 1), Value::single(4))]);
        assert!(is_clean_eof(&read_frame(&mut replies).unwrap_err()));

        // Clean EOF without a shutdown frame is also exit 0.
        assert_eq!(serve(&mut io::Cursor::new(Vec::new()), &mut Vec::new()), 0);
        // Garbage is a non-zero exit.
        let mut garbage = Vec::new();
        write_frame(&mut garbage, &[200]).unwrap();
        assert_ne!(serve(&mut io::Cursor::new(garbage), &mut Vec::new()), 0);
    }
}
