//! End-to-end tracing and latency metrics for the runtime and the serving
//! subsystem.
//!
//! Five PRs of scheduler/allocator work were steered by two coarse signals
//! (bench aggregates and `/metrics` counters); this module is the
//! observability layer that shows *where* time goes inside a job — per
//! layer, per round, per phase, on real wall clocks — in the workspace's
//! offline-shim spirit (std-only, no registry deps):
//!
//! * [`TraceContext`] — a never-blocking span recorder. Events land in
//!   **pre-allocated, thread-slot-sharded buffers** (the same
//!   [`crate::ScratchPool`]-style sharding by worker), recorded through a
//!   `try_lock`: a full buffer or a contended shard **drops the event and
//!   counts it** ([`TraceContext::dropped`]) instead of blocking a worker
//!   or allocating mid-round — the `--alloc-budget` gate stays green with
//!   tracing enabled because every buffer is reserved at construction.
//! * [`SpanGuard`] — an RAII span: created via [`TraceContext::span`] (or
//!   `RoundPrimitives::span` / the free [`span_on`]), it stamps a start
//!   time and records one complete Chrome `"X"` event on drop, carrying
//!   the recording thread's slot id and up to [`MAX_SPAN_ARGS`] named
//!   counters (layer ids, palette sizes, machine counts).
//! * [`TraceTimeline`] / [`chrome_trace_json`] — the drained per-job
//!   timeline, exportable as Chrome trace-event JSON (loadable in
//!   Perfetto / `chrome://tracing`).
//! * [`LatencyHistogram`] — a log-bucketed (HDR-style) concurrent latency
//!   histogram: 4 linear sub-buckets per power of two, so any recorded
//!   value lands in a bucket whose width is at most a quarter of its
//!   magnitude (bounded relative quantile error), with lock-free atomic
//!   recording. The service uses it for request latency, queue wait and
//!   job execution; `loadgen` for its p50/p99.
//!
//! ## Cost when disabled
//!
//! Tracing is opt-in per context: code paths hold an
//! `Option<Arc<TraceContext>>`, and the disabled path is one `None` branch
//! returning an inert [`SpanGuard`] — no clock reads, no locking, no
//! allocation. Recording never perturbs results either way: events are
//! measurement data, excluded from metric equality like the pool and
//! scratch stats (see `tests/backend_equivalence.rs`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::scratch::thread_slot;

/// Named counters attachable to one span.
pub const MAX_SPAN_ARGS: usize = 3;

/// Independently locked event buffers per context. Recording indexes by
/// the thread's slot, so up to this many workers record without contending.
const TRACE_SHARDS: usize = 16;

/// Default total event capacity of a context (split across the shards).
/// A 100k-node served job emits a few thousand spans; the default leaves
/// generous headroom while keeping the up-front reservation small.
pub const DEFAULT_EVENT_CAPACITY: usize = 16_384;

/// One completed span: a named interval with the recording thread's slot
/// and up to [`MAX_SPAN_ARGS`] named counters. Args with an empty name are
/// unused slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span name (static: recording never allocates).
    pub name: &'static str,
    /// Category (e.g. `"simulator"`, `"backend"`, `"driver"`).
    pub cat: &'static str,
    /// Start, in nanoseconds since the context epoch.
    pub start_nanos: u64,
    /// Duration in nanoseconds.
    pub duration_nanos: u64,
    /// Dense slot id of the recording thread (the scratch-pool slot).
    pub thread: u32,
    /// Named counters; empty-name entries are unused.
    pub args: [(&'static str, u64); MAX_SPAN_ARGS],
}

/// A shared, never-blocking span recorder with pre-allocated buffers.
///
/// Create one per traced job (`Arc`-shared into `RoundPrimitives` and the
/// backend), record spans from any thread, then [`TraceContext::finish`]
/// it into a [`TraceTimeline`]. See the module docs for the overflow and
/// cost contracts.
pub struct TraceContext {
    epoch: Instant,
    shards: Vec<Mutex<Vec<TraceEvent>>>,
    dropped: AtomicU64,
}

impl std::fmt::Debug for TraceContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceContext")
            .field("recorded", &self.recorded())
            .field("dropped", &self.dropped())
            .finish()
    }
}

impl Default for TraceContext {
    fn default() -> Self {
        TraceContext::new()
    }
}

impl TraceContext {
    /// A context with the default event capacity.
    pub fn new() -> Self {
        TraceContext::with_capacity(DEFAULT_EVENT_CAPACITY)
    }

    /// A context holding at most `events` events in total, reserved up
    /// front (recording never allocates). Overflow drops and counts.
    pub fn with_capacity(events: usize) -> Self {
        let per_shard = events.div_ceil(TRACE_SHARDS).max(1);
        TraceContext {
            epoch: Instant::now(),
            shards: (0..TRACE_SHARDS)
                .map(|_| Mutex::new(Vec::with_capacity(per_shard)))
                .collect(),
            dropped: AtomicU64::new(0),
        }
    }

    /// Nanoseconds since this context's epoch.
    pub fn now_nanos(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Opens a span; the event is recorded when the guard drops.
    pub fn span(&self, name: &'static str, cat: &'static str) -> SpanGuard<'_> {
        SpanGuard {
            ctx: Some(self),
            name,
            cat,
            start_nanos: self.now_nanos(),
            args: [("", 0); MAX_SPAN_ARGS],
        }
    }

    /// Records a completed event. Never blocks and never allocates: a
    /// contended shard or a full buffer drops the event and bumps the
    /// dropped counter instead.
    pub fn record(&self, event: TraceEvent) {
        let shard = &self.shards[thread_slot() % self.shards.len()];
        if let Ok(mut buffer) = shard.try_lock() {
            if buffer.len() < buffer.capacity() {
                buffer.push(event);
                return;
            }
        }
        self.dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// Events recorded so far.
    pub fn recorded(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| shard.lock().map_or(0, |buffer| buffer.len()))
            .sum()
    }

    /// Events dropped so far (buffer overflow or shard contention).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Drains every recorded event into a timeline, sorted by start time
    /// (ties: longer spans first, so parents precede their children). The
    /// context's buffers are cleared but keep their reserved capacity.
    pub fn finish(&self) -> TraceTimeline {
        let mut events = Vec::with_capacity(self.recorded());
        for shard in &self.shards {
            let mut buffer = shard
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            events.extend(buffer.drain(..));
        }
        events.sort_by(|a, b| {
            a.start_nanos
                .cmp(&b.start_nanos)
                .then(b.duration_nanos.cmp(&a.duration_nanos))
                .then(a.name.cmp(b.name))
        });
        TraceTimeline {
            events,
            dropped: self.dropped(),
        }
    }
}

/// Opens a span on an optional context: the `None` path returns an inert
/// guard that records nothing (one branch, no clock read) — the
/// compile-time-cheap disabled check the hot paths rely on.
pub fn span_on<'a>(
    trace: Option<&'a TraceContext>,
    name: &'static str,
    cat: &'static str,
) -> SpanGuard<'a> {
    match trace {
        Some(ctx) => ctx.span(name, cat),
        None => SpanGuard {
            ctx: None,
            name,
            cat,
            start_nanos: 0,
            args: [("", 0); MAX_SPAN_ARGS],
        },
    }
}

/// An RAII span: records one complete event on drop (inert when opened on
/// a disabled context).
pub struct SpanGuard<'a> {
    ctx: Option<&'a TraceContext>,
    name: &'static str,
    cat: &'static str,
    start_nanos: u64,
    args: [(&'static str, u64); MAX_SPAN_ARGS],
}

impl SpanGuard<'_> {
    /// Attaches a named counter (builder form). At most [`MAX_SPAN_ARGS`]
    /// args are kept; extras are silently ignored.
    pub fn with_arg(mut self, name: &'static str, value: u64) -> Self {
        self.set_arg(name, value);
        self
    }

    /// Attaches (or updates) a named counter — for values only known at
    /// the end of the span, e.g. a post-round palette size.
    pub fn set_arg(&mut self, name: &'static str, value: u64) {
        for slot in &mut self.args {
            if slot.0 == name || slot.0.is_empty() {
                *slot = (name, value);
                return;
            }
        }
    }

    /// Whether this guard records into a live context.
    pub fn is_recording(&self) -> bool {
        self.ctx.is_some()
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(ctx) = self.ctx {
            let end = ctx.now_nanos();
            ctx.record(TraceEvent {
                name: self.name,
                cat: self.cat,
                start_nanos: self.start_nanos,
                duration_nanos: end.saturating_sub(self.start_nanos),
                thread: thread_slot() as u32,
                args: self.args,
            });
        }
    }
}

/// A drained per-job span timeline, ready for export.
#[derive(Debug, Clone, Default)]
pub struct TraceTimeline {
    /// Events sorted by start time (parents before children).
    pub events: Vec<TraceEvent>,
    /// Events dropped by the recorder (overflow/contention).
    pub dropped: u64,
}

impl TraceTimeline {
    /// Renders the timeline as Chrome trace-event JSON.
    pub fn chrome_trace_json(&self) -> String {
        chrome_trace_json(&self.events, self.dropped)
    }
}

/// Minimal JSON string escaping for event names (names are static strings
/// under our control, but a stray quote must not corrupt the document).
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders events as a Chrome trace-event JSON document (the
/// `{"traceEvents": [...]}` object form, loadable in Perfetto and
/// `chrome://tracing`): one complete (`"ph":"X"`) event per span, with
/// microsecond timestamps and the span counters under `args`.
pub fn chrome_trace_json(events: &[TraceEvent], dropped: u64) -> String {
    let mut out = String::with_capacity(128 + events.len() * 128);
    out.push_str("{\"traceEvents\":[");
    for (index, event) in events.iter().enumerate() {
        if index > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":1,\"tid\":{}",
            escape_json(event.name),
            escape_json(event.cat),
            event.start_nanos as f64 / 1_000.0,
            event.duration_nanos as f64 / 1_000.0,
            event.thread,
        ));
        out.push_str(",\"args\":{");
        let mut first = true;
        for &(name, value) in &event.args {
            if name.is_empty() {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\"{}\":{value}", escape_json(name)));
        }
        out.push_str("}}");
    }
    out.push_str(&format!(
        "],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"dropped_events\":{dropped}}}}}"
    ));
    out
}

/// Linear sub-buckets per power of two (4: bucket width ≤ value / 4).
const HIST_SUB: usize = 4;
/// Total bucket count covering the full `u64` range.
pub const HISTOGRAM_BUCKETS: usize = (64 - 2) * HIST_SUB + HIST_SUB;

/// The bucket index a value lands in (log-linear, HDR-style): values below
/// 4 get exact buckets; above, 4 linear sub-buckets per power of two.
fn bucket_index(value: u64) -> usize {
    if value < HIST_SUB as u64 {
        return value as usize;
    }
    let exp = 63 - value.leading_zeros() as usize;
    let sub = ((value >> (exp - 2)) & 0b11) as usize;
    (exp - 2) * HIST_SUB + HIST_SUB + sub
}

/// The smallest value mapping to bucket `index`.
fn bucket_lower(index: usize) -> u64 {
    if index < HIST_SUB {
        return index as u64;
    }
    let exp = (index - HIST_SUB) / HIST_SUB + 2;
    let sub = ((index - HIST_SUB) % HIST_SUB) as u64;
    (1u64 << exp) + sub * (1u64 << (exp - 2))
}

/// The largest value mapping to bucket `index` (the bucket's inclusive
/// upper bound — the `le` boundary in Prometheus terms).
pub fn bucket_upper(index: usize) -> u64 {
    if index + 1 >= HISTOGRAM_BUCKETS {
        return u64::MAX;
    }
    bucket_lower(index + 1) - 1
}

/// A lock-free log-bucketed latency histogram (see the module docs).
///
/// Values are whatever unit the caller records (the workspace records
/// nanoseconds); quantiles come back as the containing bucket's upper
/// bound, so the relative error is bounded by the sub-bucket width (25%).
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: (0..HISTOGRAM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value (lock-free; safe from any thread).
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Values recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean of the recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum() as f64 / count as f64
        }
    }

    /// Folds another histogram's counts into this one.
    pub fn merge(&self, other: &LatencyHistogram) {
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            let delta = theirs.load(Ordering::Relaxed);
            if delta > 0 {
                mine.fetch_add(delta, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// The `q`-quantile (`q` in `[0, 1]`), reported as the upper bound of
    /// the bucket holding that rank. 0 when the histogram is empty; the
    /// true max for `q = 1` is available via [`LatencyHistogram::max`].
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (index, bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket.load(Ordering::Relaxed);
            if cumulative >= rank {
                return bucket_upper(index).min(self.max());
            }
        }
        self.max()
    }

    /// The non-empty buckets as `(inclusive upper bound, count)` pairs, in
    /// ascending bound order — the export shape for JSON documents.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(index, bucket)| {
                let count = bucket.load(Ordering::Relaxed);
                (count > 0).then(|| (bucket_upper(index), count))
            })
            .collect()
    }

    /// The non-empty buckets as cumulative `(le bound, cumulative count)`
    /// pairs — the Prometheus `_bucket{le=...}` shape (the `+Inf` bucket is
    /// the total [`LatencyHistogram::count`], appended by the renderer).
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut cumulative = 0u64;
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(index, bucket)| {
                let count = bucket.load(Ordering::Relaxed);
                cumulative += count;
                (count > 0).then_some((bucket_upper(index), cumulative))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn spans_record_complete_events_with_args() {
        let ctx = TraceContext::new();
        {
            let _outer = ctx.span("outer", "test").with_arg("layer", 3);
            std::thread::sleep(std::time::Duration::from_millis(2));
            let mut inner = ctx.span("inner", "test");
            inner.set_arg("palette", 9);
            inner.set_arg("palette", 7); // updates, not duplicates
            drop(inner);
        }
        let timeline = ctx.finish();
        assert_eq!(timeline.dropped, 0);
        assert_eq!(timeline.events.len(), 2);
        // Sorted parent-first: outer starts earlier.
        assert_eq!(timeline.events[0].name, "outer");
        assert_eq!(timeline.events[0].args[0], ("layer", 3));
        assert_eq!(timeline.events[1].name, "inner");
        assert_eq!(timeline.events[1].args[0], ("palette", 7));
        // The parent interval contains the child interval.
        let outer = &timeline.events[0];
        let inner = &timeline.events[1];
        assert!(inner.start_nanos >= outer.start_nanos);
        assert!(
            inner.start_nanos + inner.duration_nanos <= outer.start_nanos + outer.duration_nanos
        );
        // Finish drained the buffers.
        assert_eq!(ctx.recorded(), 0);
    }

    #[test]
    fn overflow_drops_and_counts_without_blocking() {
        // All records from one thread land in one shard; with a total
        // capacity of 16 that shard holds exactly one event.
        let ctx = TraceContext::with_capacity(16);
        for _ in 0..10 {
            drop(ctx.span("s", "test"));
        }
        assert_eq!(ctx.recorded(), 1, "one slot in this thread's shard");
        assert_eq!(ctx.dropped(), 9, "overflow is counted, never blocks");
        let timeline = ctx.finish();
        assert_eq!(timeline.events.len(), 1);
        assert_eq!(timeline.dropped, 9);
    }

    #[test]
    fn disabled_spans_are_inert() {
        let guard = span_on(None, "nothing", "test").with_arg("x", 1);
        assert!(!guard.is_recording());
        drop(guard); // no context, nothing recorded, nothing to observe
        let ctx = TraceContext::new();
        let guard = span_on(Some(&ctx), "something", "test");
        assert!(guard.is_recording());
        drop(guard);
        assert_eq!(ctx.recorded(), 1);
    }

    #[test]
    fn concurrent_recording_is_safe_and_ordered() {
        let ctx = Arc::new(TraceContext::new());
        std::thread::scope(|scope| {
            for worker in 0..4u64 {
                let ctx = Arc::clone(&ctx);
                scope.spawn(move || {
                    for i in 0..50u64 {
                        drop(ctx.span("work", "test").with_arg("id", worker * 100 + i));
                    }
                });
            }
        });
        let timeline = ctx.finish();
        assert_eq!(timeline.events.len() as u64 + timeline.dropped, 200);
        // Drained events come back sorted by start time.
        for window in timeline.events.windows(2) {
            assert!(window[0].start_nanos <= window[1].start_nanos);
        }
    }

    #[test]
    fn chrome_trace_json_is_well_formed() {
        let ctx = TraceContext::new();
        drop(ctx.span("round", "simulator").with_arg("layer", 2));
        let json = ctx.finish().chrome_trace_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"round\""));
        assert!(json.contains("\"cat\":\"simulator\""));
        assert!(json.contains("\"layer\":2"));
        assert!(json.contains("\"dropped_events\":0"));
        assert!(json.ends_with("}"));
        // Balanced braces/brackets (a cheap well-formedness check that
        // catches truncation and separator bugs without a JSON parser).
        let balance = |open: char, close: char| {
            json.chars().filter(|&c| c == open).count()
                == json.chars().filter(|&c| c == close).count()
        };
        assert!(balance('{', '}'));
        assert!(balance('[', ']'));
        // An empty timeline renders a valid document too.
        let empty = chrome_trace_json(&[], 5);
        assert!(empty.contains("\"traceEvents\":[]"));
        assert!(empty.contains("\"dropped_events\":5"));
    }

    #[test]
    fn histogram_bucket_boundaries_are_exact() {
        // Exact small-value buckets.
        for v in 0..4u64 {
            assert_eq!(bucket_index(v), v as usize, "value {v}");
        }
        // Every bucket contains its own bounds, buckets are contiguous and
        // the index is monotone in the value.
        for index in 0..HISTOGRAM_BUCKETS {
            let lower = bucket_lower(index);
            assert_eq!(bucket_index(lower), index, "lower bound of {index}");
            let upper = bucket_upper(index);
            assert_eq!(bucket_index(upper), index, "upper bound of {index}");
            if index + 1 < HISTOGRAM_BUCKETS {
                assert_eq!(upper + 1, bucket_lower(index + 1), "contiguous at {index}");
            } else {
                assert_eq!(upper, u64::MAX);
            }
        }
        // Power-of-two edges land in fresh buckets (the log part).
        assert_eq!(bucket_index(4), 4);
        assert_eq!(bucket_index(7), 7);
        assert_eq!(bucket_index(8), 8);
        assert_eq!(bucket_index(1023), bucket_index(1023));
        assert!(bucket_index(1024) > bucket_index(1023));
        // Sub-bucket width is a quarter of the octave base: 1024..=1279 is
        // one bucket, 1280 starts the next.
        assert_eq!(bucket_index(1024), bucket_index(1279));
        assert!(bucket_index(1280) > bucket_index(1279));
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn histogram_quantiles_and_merge() {
        let hist = LatencyHistogram::new();
        assert_eq!(hist.quantile(0.5), 0);
        for v in 1..=1000u64 {
            hist.record(v);
        }
        assert_eq!(hist.count(), 1000);
        assert_eq!(hist.sum(), 500_500);
        assert_eq!(hist.max(), 1000);
        // Bucketed quantiles are within one sub-bucket (25%) of the truth.
        let p50 = hist.quantile(0.5);
        assert!((500..=640).contains(&p50), "p50 = {p50}");
        let p99 = hist.quantile(0.99);
        assert!((990..=1280).contains(&p99), "p99 = {p99}");
        // q=1 caps at the recorded max, never a bucket bound beyond it.
        assert_eq!(hist.quantile(1.0), 1000);

        let other = LatencyHistogram::new();
        other.record(1_000_000);
        hist.merge(&other);
        assert_eq!(hist.count(), 1001);
        assert_eq!(hist.max(), 1_000_000);
        assert!(hist.quantile(1.0) >= 1_000_000);

        // Cumulative buckets are monotone and end at the total count.
        let cumulative = hist.cumulative_buckets();
        assert!(!cumulative.is_empty());
        for window in cumulative.windows(2) {
            assert!(window[0].0 < window[1].0, "bounds ascend");
            assert!(window[0].1 <= window[1].1, "counts accumulate");
        }
        assert_eq!(cumulative.last().unwrap().1, 1001);
        let nonzero = hist.nonzero_buckets();
        assert_eq!(nonzero.iter().map(|&(_, c)| c).sum::<u64>(), 1001);
    }

    #[test]
    fn histogram_recording_is_thread_safe() {
        let hist = Arc::new(LatencyHistogram::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let hist = Arc::clone(&hist);
                scope.spawn(move || {
                    for v in 0..1000u64 {
                        hist.record(v * 17 + 3);
                    }
                });
            }
        });
        assert_eq!(hist.count(), 4000);
        assert_eq!(hist.max(), 999 * 17 + 3);
        assert_eq!(
            hist.nonzero_buckets().iter().map(|&(_, c)| c).sum::<u64>(),
            4000
        );
    }
}
