//! The executor abstraction and the sequential reference backend.

use std::sync::Arc;

use ampc_model::{
    AmpcConfig, AmpcExecutor, AmpcMetrics, ConflictPolicy, DataStore, Key, MachineContext,
    ModelError, RoundReport, Value,
};

use crate::faults::{self, AttemptFailure};
use crate::trace::{span_on, TraceContext};

/// A machine closure executed once per machine in a round.
///
/// Backends may run machines on many threads, so bodies must be `Fn + Sync`:
/// all cross-machine communication goes through the data store (reads of the
/// previous round, buffered writes into the next), exactly as the AMPC model
/// prescribes.
pub type RoundBody<'b> =
    dyn Fn(usize, &mut MachineContext<'_>) -> Result<(), ModelError> + Sync + 'b;

/// An AMPC round executor.
///
/// Extracted from the original sequential `AmpcExecutor` so the simulator
/// (kept as the reference/verification backend, see [`SequentialBackend`])
/// and the sharded parallel backend ([`crate::ParallelBackend`]) are
/// interchangeable behind a [`crate::RuntimeConfig`] switch.
///
/// The convenience wrappers [`round`](#method.round) and
/// [`round_carrying_forward`](#method.round_carrying_forward) on
/// `dyn AmpcBackend` accept ordinary closures.
pub trait AmpcBackend: Send {
    /// The resource configuration in force.
    fn config(&self) -> &AmpcConfig;

    /// Metrics accumulated so far (round reports plus runtime stats).
    fn metrics(&self) -> &AmpcMetrics;

    /// Uncounted lookup in the current (most recently produced) store, for
    /// algorithm drivers reading results between rounds.
    fn get(&self, key: Key) -> Option<Value>;

    /// Number of entries in the current store.
    fn store_len(&self) -> usize;

    /// Materializes the current store as a flat [`DataStore`].
    fn snapshot_store(&self) -> DataStore;

    /// Loads additional input entries into the current store (before the
    /// first round).
    fn load_store(&mut self, entries: Vec<(Key, Value)>);

    /// Runs one AMPC round; see [`AmpcExecutor::round`] for the semantics of
    /// `policy` and `carry_forward`.
    ///
    /// # Errors
    ///
    /// Budget violations and [`ConflictPolicy::Error`] conflicts, exactly as
    /// the sequential executor reports them (lowest machine id first).
    fn run_round(
        &mut self,
        machines: usize,
        policy: ConflictPolicy,
        carry_forward: bool,
        body: &RoundBody<'_>,
    ) -> Result<RoundReport, ModelError>;

    /// Consumes the backend and returns the final store and metrics.
    fn into_parts(self: Box<Self>) -> (DataStore, AmpcMetrics);

    /// Short backend name for logs and benches.
    fn name(&self) -> &'static str;

    /// Attaches (or detaches) a span recorder: subsequent rounds emit
    /// execute/merge/retune spans into it. Tracing is measurement-only —
    /// it never changes what a round computes. The default implementation
    /// ignores the recorder (backends opt in).
    fn set_trace(&mut self, _trace: Option<Arc<TraceContext>>) {}
}

impl dyn AmpcBackend + '_ {
    /// Runs one round whose writes fully replace the store (keys not written
    /// this round are dropped).
    ///
    /// # Errors
    ///
    /// See [`AmpcBackend::run_round`].
    pub fn round<F>(
        &mut self,
        machines: usize,
        policy: ConflictPolicy,
        body: F,
    ) -> Result<RoundReport, ModelError>
    where
        F: Fn(usize, &mut MachineContext<'_>) -> Result<(), ModelError> + Sync,
    {
        self.run_round(machines, policy, false, &body)
    }

    /// Runs one round carrying unwritten keys of the previous store forward.
    ///
    /// # Errors
    ///
    /// See [`AmpcBackend::run_round`].
    pub fn round_carrying_forward<F>(
        &mut self,
        machines: usize,
        policy: ConflictPolicy,
        body: F,
    ) -> Result<RoundReport, ModelError>
    where
        F: Fn(usize, &mut MachineContext<'_>) -> Result<(), ModelError> + Sync,
    {
        self.run_round(machines, policy, true, &body)
    }
}

/// The original single-threaded simulator behind the [`AmpcBackend`] trait —
/// the reference implementation the parallel backend is verified against.
#[derive(Debug)]
pub struct SequentialBackend {
    executor: AmpcExecutor,
    trace: Option<Arc<TraceContext>>,
}

impl SequentialBackend {
    /// Creates a sequential backend whose round 0 input store is `initial`.
    pub fn new(config: AmpcConfig, initial: DataStore) -> Self {
        SequentialBackend {
            executor: AmpcExecutor::new(config, initial),
            trace: None,
        }
    }

    /// Access to the wrapped executor.
    pub fn executor(&self) -> &AmpcExecutor {
        &self.executor
    }
}

impl AmpcBackend for SequentialBackend {
    fn config(&self) -> &AmpcConfig {
        self.executor.config()
    }

    fn metrics(&self) -> &AmpcMetrics {
        self.executor.metrics()
    }

    fn get(&self, key: Key) -> Option<Value> {
        self.executor.store().get(key)
    }

    fn store_len(&self) -> usize {
        self.executor.store().len()
    }

    fn snapshot_store(&self) -> DataStore {
        self.executor.store().clone()
    }

    fn load_store(&mut self, entries: Vec<(Key, Value)>) {
        self.executor.store_mut().extend(entries);
    }

    fn run_round(
        &mut self,
        machines: usize,
        policy: ConflictPolicy,
        carry_forward: bool,
        body: &RoundBody<'_>,
    ) -> Result<RoundReport, ModelError> {
        let plan = faults::active();
        let deadline = faults::round_deadline();
        if plan.is_none() && deadline.is_none() && faults::max_round_retries() == 0 {
            // The production fast path: no plan, no deadline, no retries.
            return self.round_once(machines, policy, carry_forward, body);
        }
        // Attempts of one logical round (and both backends) share the same
        // round index — it only advances on success — so they share the
        // same injection cells.
        let round = self.executor.metrics().num_rounds();
        // Panics and model errors already leave the executor untouched
        // ("failed rounds leave no trace"); only a deadline overrun is
        // detected *after* the round committed, so it alone needs an input
        // snapshot to roll back to. Cloned once, and only in deadline mode.
        let snapshot = deadline.map(|_| self.executor.store().clone());
        faults::run_with_retries(round, |attempt| {
            let started = std::time::Instant::now();
            // The sequential merge happens inside the executor where it
            // cannot be intercepted, so an injected merge failure fires
            // before the round runs — behaviorally identical: the attempt
            // is lost whole and the retry replays from the same input.
            if let Some(plan) = &plan {
                if plan.merge_fails(round as u64, attempt) {
                    faults::note_merge_failure();
                    std::panic::panic_any(faults::InjectedPanic);
                }
            }
            let result = if let Some(plan) = &plan {
                let faulty_body = |machine: usize, ctx: &mut MachineContext<'_>| {
                    if let Some(fault) = plan.task_fault(round as u64, machine as u64, attempt) {
                        faults::apply(fault);
                    }
                    body(machine, ctx)
                };
                self.round_once(machines, policy, carry_forward, &faulty_body)
            } else {
                self.round_once(machines, policy, carry_forward, body)
            };
            match result {
                Ok(report) => {
                    if let Some(limit) = deadline {
                        if started.elapsed() > limit {
                            // Committed before the overrun was known: put
                            // the store and metrics back, discard whole.
                            if let Some(snapshot) = &snapshot {
                                *self.executor.store_mut() = snapshot.clone();
                            }
                            self.executor.metrics_mut().discard_last_round();
                            return Err(AttemptFailure::Deadline(limit.as_millis() as u64));
                        }
                    }
                    Ok(report)
                }
                Err(error) => Err(AttemptFailure::Fatal(error)),
            }
        })
    }

    fn into_parts(self: Box<Self>) -> (DataStore, AmpcMetrics) {
        self.executor.into_parts()
    }

    fn name(&self) -> &'static str {
        "sequential"
    }

    fn set_trace(&mut self, trace: Option<Arc<TraceContext>>) {
        self.trace = trace;
    }
}

impl SequentialBackend {
    /// One un-supervised round on the wrapped executor (the pre-fault-plane
    /// `run_round` body).
    fn round_once(
        &mut self,
        machines: usize,
        policy: ConflictPolicy,
        carry_forward: bool,
        body: &RoundBody<'_>,
    ) -> Result<RoundReport, ModelError> {
        let round_index = self.executor.metrics().num_rounds() as u64;
        let _span = span_on(self.trace.as_deref(), "backend.round", "backend")
            .with_arg("round", round_index)
            .with_arg("machines", machines as u64);
        // Hardware counters bracket the same boundary the span does. The
        // executor records the round's wall-clock stats itself; the delta
        // is folded into that record afterwards — but only when this round
        // actually pushed one (a failed round must not clobber the
        // previous round's counters).
        let runtime_before = self.executor.metrics().runtime_stats().len();
        let perf_before = crate::perf::snapshot();
        let result = if carry_forward {
            self.executor
                .round_carrying_forward(machines, policy, |machine, ctx| body(machine, ctx))
        } else {
            self.executor
                .round(machines, policy, |machine, ctx| body(machine, ctx))
        };
        let perf = crate::perf::snapshot().saturating_delta(&perf_before);
        let recorded = self.executor.metrics().runtime_stats().len() > runtime_before;
        if let Some(stats) = self
            .executor
            .metrics_mut()
            .last_runtime_mut()
            .filter(|_| recorded)
        {
            stats.cycles = perf.cycles;
            stats.instructions = perf.instructions;
            stats.cache_references = perf.cache_references;
            stats.cache_misses = perf.cache_misses;
            stats.branch_misses = perf.branch_misses;
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_backend_matches_raw_executor() {
        let config = AmpcConfig::for_input_size(16, 0.5);
        let mut store = DataStore::new();
        store.insert(Key::single(0), Value::single(5));

        let mut backend: Box<dyn AmpcBackend> = Box::new(SequentialBackend::new(config, store));
        backend.load_store(vec![(Key::single(1), Value::single(6))]);
        assert_eq!(backend.store_len(), 2);
        backend
            .round(2, ConflictPolicy::Error, |machine, ctx| {
                let value = ctx.read(Key::single(machine as u64))?.unwrap();
                ctx.write(
                    Key::single(machine as u64),
                    Value::single(value.words()[0] + 1),
                )
            })
            .unwrap();
        assert_eq!(backend.get(Key::single(0)), Some(Value::single(6)));
        assert_eq!(backend.get(Key::single(1)), Some(Value::single(7)));
        assert_eq!(backend.metrics().num_rounds(), 1);
        assert_eq!(backend.metrics().runtime_stats().len(), 1);
        let (store, metrics) = backend.into_parts();
        assert_eq!(store.len(), 2);
        assert_eq!(metrics.num_rounds(), 1);
    }
}
