//! The hash-partitioned distributed data store.

use std::sync::atomic::{AtomicU64, Ordering};

use ampc_model::{DataStore, Key, StoreRead, Value};

/// Deterministic FNV-1a hash over the key's words and length.
fn shard_hash(key: &Key) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &word in key.words() {
        for byte in word.to_le_bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    hash ^= key.len() as u64;
    hash.wrapping_mul(0x0000_0100_0000_01B3)
}

/// Probe start of a key inside a shard's slot array (`mask = capacity - 1`).
///
/// Deliberately *not* the raw [`shard_hash`] low bits: the shard index is
/// `hash % num_shards`, so within one shard the low bits are correlated
/// (every resident key shares the same residue), which would cluster the
/// probe starts of a power-of-two shard count into a fraction of the
/// table. A Fibonacci multiply re-mixes the full hash before masking.
#[inline]
fn probe_start(hash: u64, mask: usize) -> usize {
    (hash.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & mask
}

/// Initial slot-array capacity of a non-empty shard (power of two).
const INITIAL_SLOTS: usize = 8;

/// One shard as a flat open-addressing (linear-probe) table over
/// `(Key, Value)` slots.
///
/// DDS reads are the hot path of every parallel round: with
/// `std::collections::HashMap` each `get` paid the SipHash of a
/// `RandomState` hasher plus hashbrown's control-byte machinery for keys
/// that are at most three words long. The flat layout probes a contiguous
/// `Vec<Option<(Key, Value)>>` from a cheap FNV-1a-derived start instead —
/// one predictable memory stream, no per-map hasher state, and a layout
/// that is a *deterministic* function of the insertion order (the merge
/// replays writes in global `(machine, write index)` order, so even the
/// physical slot assignment is reproducible across runs).
///
/// The model's stores never remove keys mid-generation (merges build fresh
/// shards), so the table needs no tombstones: probing ends at the first
/// empty slot. Capacity is a power of two, grown at 7/8 load.
#[derive(Debug, Clone, Default)]
pub(crate) struct FlatShard {
    /// `None` = empty slot; length is 0 or a power of two.
    slots: Vec<Option<(Key, Value)>>,
    len: usize,
}

/// Where a probe ended: at the key's slot or at the empty slot where the
/// key would be inserted.
enum Probe {
    Found(usize),
    Vacant(usize),
}

impl FlatShard {
    /// Linear probe for `key`. The table must be non-empty and below full
    /// load (guaranteed by [`FlatShard::insert`]'s growth policy), so an
    /// empty slot always terminates the scan.
    fn probe(&self, key: &Key) -> Probe {
        debug_assert!(!self.slots.is_empty());
        let mask = self.slots.len() - 1;
        let mut index = probe_start(shard_hash(key), mask);
        loop {
            match &self.slots[index] {
                Some((resident, _)) if resident == key => return Probe::Found(index),
                Some(_) => index = (index + 1) & mask,
                None => return Probe::Vacant(index),
            }
        }
    }

    /// Number of resident pairs.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Whether the shard holds no pairs.
    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Looks up a key.
    pub(crate) fn get(&self, key: &Key) -> Option<&Value> {
        if self.slots.is_empty() {
            return None;
        }
        match self.probe(key) {
            Probe::Found(index) => self.slots[index].as_ref().map(|(_, value)| value),
            Probe::Vacant(_) => None,
        }
    }

    /// Mutable lookup. The merge path uses the single-probe
    /// [`FlatShard::get_or_insert`] instead; this remains for tests.
    #[cfg(test)]
    pub(crate) fn get_mut(&mut self, key: &Key) -> Option<&mut Value> {
        if self.slots.is_empty() {
            return None;
        }
        match self.probe(key) {
            Probe::Found(index) => self.slots[index].as_mut().map(|(_, value)| value),
            Probe::Vacant(_) => None,
        }
    }

    /// The vacant slot for an absent `key`, growing first when the next
    /// insertion would cross the 7/8 load threshold. Growth happens only
    /// on this (resident-count-changing) path, so overwrites of existing
    /// keys at the threshold never pay a spurious doubling.
    fn vacant_slot(&mut self, key: &Key, probed: usize) -> usize {
        if (self.len + 1) * 8 <= self.slots.len() * 7 {
            return probed;
        }
        self.grow();
        match self.probe(key) {
            Probe::Vacant(index) => index,
            Probe::Found(_) => unreachable!("the key was absent before growth"),
        }
    }

    /// Inserts a pair, returning the previous value for the key if any.
    pub(crate) fn insert(&mut self, key: Key, value: Value) -> Option<Value> {
        if self.slots.is_empty() {
            self.grow();
        }
        match self.probe(&key) {
            Probe::Found(index) => {
                let slot = self.slots[index]
                    .as_mut()
                    .expect("found slots are occupied");
                Some(std::mem::replace(&mut slot.1, value))
            }
            Probe::Vacant(probed) => {
                let index = self.vacant_slot(&key, probed);
                self.slots[index] = Some((key, value));
                self.len += 1;
                None
            }
        }
    }

    /// Single-probe upsert for the merge path: inserts `value` when `key`
    /// is absent (returning `None`), otherwise leaves the resident value
    /// in place and returns a mutable reference to it so the caller can
    /// resolve the conflict — the open-addressing equivalent of
    /// `HashMap`'s entry API, without the second probe a
    /// `get_mut`-then-`insert` pair would pay.
    pub(crate) fn get_or_insert(&mut self, key: Key, value: Value) -> Option<&mut Value> {
        if self.slots.is_empty() {
            self.grow();
        }
        match self.probe(&key) {
            Probe::Found(index) => self.slots[index].as_mut().map(|(_, resident)| resident),
            Probe::Vacant(probed) => {
                let index = self.vacant_slot(&key, probed);
                self.slots[index] = Some((key, value));
                self.len += 1;
                None
            }
        }
    }

    /// Doubles the slot array (or creates the initial one) and re-places
    /// every resident pair. Slot order is rebuilt from the old slot order,
    /// which itself is a deterministic function of the insertion sequence.
    fn grow(&mut self) {
        let capacity = (self.slots.len() * 2).max(INITIAL_SLOTS);
        let old = std::mem::replace(&mut self.slots, vec![None; capacity]);
        let mask = capacity - 1;
        for (key, value) in old.into_iter().flatten() {
            let mut index = probe_start(shard_hash(&key), mask);
            while self.slots[index].is_some() {
                index = (index + 1) & mask;
            }
            self.slots[index] = Some((key, value));
        }
    }

    /// Iterates the resident pairs in slot order.
    pub(crate) fn iter(&self) -> impl Iterator<Item = (&Key, &Value)> {
        self.slots.iter().flatten().map(|(key, value)| (key, value))
    }

    /// Consumes the shard into its resident pairs, in slot order.
    pub(crate) fn into_entries(self) -> impl Iterator<Item = (Key, Value)> {
        self.slots.into_iter().flatten()
    }
}

/// A [`DataStore`] hash-partitioned into `N` shards.
///
/// During a round the store is shared immutably across all worker threads:
/// reads are lock-free probes of a flat open-addressing table per shard
/// ([`FlatShard`] — no `HashMap` bucket chasing, no SipHash); the only
/// shared-mutable state is one relaxed atomic read counter per shard, kept
/// for the per-shard load metrics. Writes never touch the store mid-round —
/// they are buffered per machine and merged shard-by-shard between rounds
/// by [`crate::ParallelBackend`].
///
/// The shard of a key is a deterministic (FNV-1a) hash of its words, so a
/// store's partitioning is reproducible across runs and machine counts.
#[derive(Debug)]
pub struct ShardedStore {
    shards: Vec<FlatShard>,
    read_counts: Vec<AtomicU64>,
}

impl ShardedStore {
    /// Creates an empty store with `num_shards` shards (at least 1).
    pub fn new(num_shards: usize) -> Self {
        let num_shards = num_shards.max(1);
        ShardedStore {
            shards: vec![FlatShard::default(); num_shards],
            read_counts: (0..num_shards).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Partitions an existing flat store.
    pub fn from_store(store: DataStore, num_shards: usize) -> Self {
        let mut sharded = ShardedStore::new(num_shards);
        for (&key, &value) in store.iter() {
            sharded.insert(key, value);
        }
        sharded
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard index a key belongs to.
    pub fn shard_of(&self, key: &Key) -> usize {
        (shard_hash(key) % self.shards.len() as u64) as usize
    }

    /// Total number of key-value pairs across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(FlatShard::len).sum()
    }

    /// Returns `true` if no pairs are stored.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(FlatShard::is_empty)
    }

    /// Total space in words (keys plus values), as in
    /// [`DataStore::space_in_words`].
    pub fn space_in_words(&self) -> usize {
        self.shards
            .iter()
            .flat_map(FlatShard::iter)
            .map(|(k, v)| k.len() + v.len())
            .sum()
    }

    /// Counted lookup: serves a machine's read and bumps the shard's read
    /// counter (relaxed; the counters are statistics, not synchronization).
    pub fn get(&self, key: Key) -> Option<Value> {
        let shard = self.shard_of(&key);
        self.read_counts[shard].fetch_add(1, Ordering::Relaxed);
        self.shards[shard].get(&key).copied()
    }

    /// Uncounted lookup, for algorithm drivers inspecting the store between
    /// rounds (keeps the per-round shard-read metrics meaningful).
    pub fn peek(&self, key: Key) -> Option<Value> {
        self.shards[self.shard_of(&key)].get(&key).copied()
    }

    /// Direct insert (used when loading input before the first round).
    pub fn insert(&mut self, key: Key, value: Value) -> Option<Value> {
        let shard = self.shard_of(&key);
        self.shards[shard].insert(key, value)
    }

    /// Per-shard read counts since the last reset.
    pub fn read_counts(&self) -> Vec<u64> {
        self.read_counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Zeroes the per-shard read counters (called at round start).
    pub fn reset_read_counts(&self) {
        for counter in &self.read_counts {
            counter.store(0, Ordering::Relaxed);
        }
    }

    /// Materializes the store as a flat [`DataStore`].
    pub fn to_data_store(&self) -> DataStore {
        self.shards
            .iter()
            .flat_map(FlatShard::iter)
            .map(|(&k, &v)| (k, v))
            .collect()
    }

    /// Replaces the shard tables with a freshly merged generation.
    ///
    /// # Panics
    ///
    /// Panics if the shard count changes.
    pub(crate) fn replace_shards(&mut self, shards: Vec<FlatShard>) {
        assert_eq!(shards.len(), self.shards.len(), "shard count is fixed");
        self.shards = shards;
    }

    /// Clones the raw shard tables (for carry-forward rounds).
    pub(crate) fn clone_shards(&self) -> Vec<FlatShard> {
        self.shards.clone()
    }
}

impl StoreRead for ShardedStore {
    fn read(&self, key: Key) -> Option<Value> {
        self.get(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitioning_round_trips() {
        let mut flat = DataStore::new();
        for i in 0..100u64 {
            flat.insert(Key::pair(i, i * 3), Value::single(i));
        }
        let sharded = ShardedStore::from_store(flat.clone(), 8);
        assert_eq!(sharded.num_shards(), 8);
        assert_eq!(sharded.len(), 100);
        assert_eq!(sharded.space_in_words(), flat.space_in_words());
        assert_eq!(sharded.to_data_store(), flat);
        // Every key lands in a stable shard and resolves.
        for i in 0..100u64 {
            let key = Key::pair(i, i * 3);
            assert_eq!(sharded.peek(key), Some(Value::single(i)));
            assert_eq!(sharded.shard_of(&key), sharded.shard_of(&key));
        }
    }

    #[test]
    fn reads_are_counted_per_shard() {
        let mut store = ShardedStore::new(4);
        store.insert(Key::single(7), Value::single(1));
        store.reset_read_counts();
        for _ in 0..5 {
            store.get(Key::single(7));
        }
        store.peek(Key::single(7)); // uncounted
        let counts = store.read_counts();
        assert_eq!(counts.iter().sum::<u64>(), 5);
        assert_eq!(counts[store.shard_of(&Key::single(7))], 5);
    }

    #[test]
    fn shards_spread_keys() {
        let mut store = ShardedStore::new(8);
        for i in 0..1000u64 {
            store.insert(Key::single(i), Value::single(i));
        }
        let populated = (0..1000u64)
            .map(|i| store.shard_of(&Key::single(i)))
            .collect::<std::collections::HashSet<_>>();
        assert_eq!(populated.len(), 8, "all shards receive keys");
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let store = ShardedStore::new(0);
        assert_eq!(store.num_shards(), 1);
    }

    #[test]
    fn flat_shard_inserts_overwrites_and_grows() {
        let mut shard = FlatShard::default();
        assert!(shard.is_empty());
        assert_eq!(shard.get(&Key::single(1)), None);
        // Grow through several doublings; every key must stay reachable.
        for i in 0..10_000u64 {
            assert_eq!(shard.insert(Key::pair(i, i ^ 7), Value::single(i)), None);
        }
        assert_eq!(shard.len(), 10_000);
        for i in 0..10_000u64 {
            assert_eq!(
                shard.get(&Key::pair(i, i ^ 7)).copied(),
                Some(Value::single(i)),
                "key {i} lost after growth"
            );
        }
        // Overwrites return the previous value and keep len stable.
        assert_eq!(
            shard.insert(Key::pair(3, 3 ^ 7), Value::single(999)),
            Some(Value::single(3))
        );
        assert_eq!(shard.len(), 10_000);
        assert_eq!(
            shard.get_mut(&Key::pair(3, 3 ^ 7)).copied(),
            Some(Value::single(999))
        );
        // Absent keys miss even under load.
        assert_eq!(shard.get(&Key::single(123_456)), None);
        // Iteration yields every pair exactly once.
        assert_eq!(shard.iter().count(), 10_000);
        assert_eq!(shard.into_entries().count(), 10_000);
    }

    #[test]
    fn flat_shard_layout_is_deterministic() {
        // Identical insertion sequences give byte-identical slot layouts:
        // the table has no per-instance hasher state.
        let build = || {
            let mut shard = FlatShard::default();
            for i in 0..500u64 {
                shard.insert(Key::triple(i, i * 31, 2), Value::pair(i, i + 1));
            }
            shard
        };
        let a = build();
        let b = build();
        let entries = |shard: &FlatShard| -> Vec<(Key, Value)> {
            shard.iter().map(|(&k, &v)| (k, v)).collect()
        };
        assert_eq!(entries(&a), entries(&b), "slot order must be reproducible");
    }

    #[test]
    fn flat_shard_upsert_probes_once_and_overwrites_never_grow() {
        let mut shard = FlatShard::default();
        // Fill to exactly the 7/8 load threshold of the initial 8 slots.
        for i in 0..7u64 {
            shard.insert(Key::single(i), Value::single(i));
        }
        let capacity = shard.slots.len();
        assert_eq!(capacity, 8, "7 entries sit at the 7/8 threshold");
        // Overwriting a resident key at the threshold must not double.
        assert_eq!(
            shard.insert(Key::single(3), Value::single(333)),
            Some(Value::single(3))
        );
        assert_eq!(shard.slots.len(), capacity, "overwrite triggered a grow");
        // The upsert leaves resident values untouched and hands them back.
        let resident = shard
            .get_or_insert(Key::single(3), Value::single(999))
            .expect("key 3 is resident");
        assert_eq!(*resident, Value::single(333));
        *resident = Value::single(1000);
        assert_eq!(shard.slots.len(), capacity, "resident upsert grew");
        assert_eq!(shard.len(), 7);
        // An absent key inserts (growing now that the threshold is hit).
        assert!(shard
            .get_or_insert(Key::single(90), Value::single(9))
            .is_none());
        assert_eq!(shard.len(), 8);
        assert!(
            shard.slots.len() > capacity,
            "vacant insert past load grows"
        );
        assert_eq!(
            shard.get(&Key::single(3)).copied(),
            Some(Value::single(1000))
        );
        assert_eq!(shard.get(&Key::single(90)).copied(), Some(Value::single(9)));
    }

    #[test]
    fn flat_shard_handles_colliding_probe_starts() {
        // Many keys, tiny table pressure: forces long probe runs across
        // wraparound at every growth stage.
        let mut shard = FlatShard::default();
        for i in 0..64u64 {
            shard.insert(Key::single(i), Value::single(i * 2));
        }
        for i in 0..64u64 {
            assert_eq!(
                shard.get(&Key::single(i)).copied(),
                Some(Value::single(i * 2))
            );
        }
    }
}
