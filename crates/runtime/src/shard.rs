//! The hash-partitioned distributed data store.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use ampc_model::{DataStore, Key, StoreRead, Value};

/// A [`DataStore`] hash-partitioned into `N` shards.
///
/// During a round the store is shared immutably across all worker threads:
/// reads are plain hash-map lookups (lock-free; the only shared-mutable
/// state is one relaxed atomic read counter per shard, kept for the
/// per-shard load metrics). Writes never touch the store mid-round — they
/// are buffered per machine and merged shard-by-shard between rounds by
/// [`crate::ParallelBackend`].
///
/// The shard of a key is a deterministic (FNV-1a) hash of its words, so a
/// store's partitioning is reproducible across runs and machine counts.
#[derive(Debug)]
pub struct ShardedStore {
    shards: Vec<HashMap<Key, Value>>,
    read_counts: Vec<AtomicU64>,
}

/// Deterministic FNV-1a hash over the key's words and length.
fn shard_hash(key: &Key) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &word in key.words() {
        for byte in word.to_le_bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    hash ^= key.len() as u64;
    hash.wrapping_mul(0x0000_0100_0000_01B3)
}

impl ShardedStore {
    /// Creates an empty store with `num_shards` shards (at least 1).
    pub fn new(num_shards: usize) -> Self {
        let num_shards = num_shards.max(1);
        ShardedStore {
            shards: vec![HashMap::new(); num_shards],
            read_counts: (0..num_shards).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Partitions an existing flat store.
    pub fn from_store(store: DataStore, num_shards: usize) -> Self {
        let mut sharded = ShardedStore::new(num_shards);
        for (&key, &value) in store.iter() {
            sharded.insert(key, value);
        }
        sharded
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard index a key belongs to.
    pub fn shard_of(&self, key: &Key) -> usize {
        (shard_hash(key) % self.shards.len() as u64) as usize
    }

    /// Total number of key-value pairs across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(HashMap::len).sum()
    }

    /// Returns `true` if no pairs are stored.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(HashMap::is_empty)
    }

    /// Total space in words (keys plus values), as in
    /// [`DataStore::space_in_words`].
    pub fn space_in_words(&self) -> usize {
        self.shards
            .iter()
            .flat_map(|shard| shard.iter())
            .map(|(k, v)| k.len() + v.len())
            .sum()
    }

    /// Counted lookup: serves a machine's read and bumps the shard's read
    /// counter (relaxed; the counters are statistics, not synchronization).
    pub fn get(&self, key: Key) -> Option<Value> {
        let shard = self.shard_of(&key);
        self.read_counts[shard].fetch_add(1, Ordering::Relaxed);
        self.shards[shard].get(&key).copied()
    }

    /// Uncounted lookup, for algorithm drivers inspecting the store between
    /// rounds (keeps the per-round shard-read metrics meaningful).
    pub fn peek(&self, key: Key) -> Option<Value> {
        self.shards[self.shard_of(&key)].get(&key).copied()
    }

    /// Direct insert (used when loading input before the first round).
    pub fn insert(&mut self, key: Key, value: Value) -> Option<Value> {
        let shard = self.shard_of(&key);
        self.shards[shard].insert(key, value)
    }

    /// Per-shard read counts since the last reset.
    pub fn read_counts(&self) -> Vec<u64> {
        self.read_counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Zeroes the per-shard read counters (called at round start).
    pub fn reset_read_counts(&self) {
        for counter in &self.read_counts {
            counter.store(0, Ordering::Relaxed);
        }
    }

    /// Materializes the store as a flat [`DataStore`].
    pub fn to_data_store(&self) -> DataStore {
        self.shards
            .iter()
            .flat_map(|shard| shard.iter())
            .map(|(&k, &v)| (k, v))
            .collect()
    }

    /// Replaces the shard maps with a freshly merged generation.
    ///
    /// # Panics
    ///
    /// Panics if the shard count changes.
    pub(crate) fn replace_shards(&mut self, shards: Vec<HashMap<Key, Value>>) {
        assert_eq!(shards.len(), self.shards.len(), "shard count is fixed");
        self.shards = shards;
    }

    /// Clones the raw shard maps (for carry-forward rounds).
    pub(crate) fn clone_shards(&self) -> Vec<HashMap<Key, Value>> {
        self.shards.clone()
    }
}

impl StoreRead for ShardedStore {
    fn read(&self, key: Key) -> Option<Value> {
        self.get(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitioning_round_trips() {
        let mut flat = DataStore::new();
        for i in 0..100u64 {
            flat.insert(Key::pair(i, i * 3), Value::single(i));
        }
        let sharded = ShardedStore::from_store(flat.clone(), 8);
        assert_eq!(sharded.num_shards(), 8);
        assert_eq!(sharded.len(), 100);
        assert_eq!(sharded.space_in_words(), flat.space_in_words());
        assert_eq!(sharded.to_data_store(), flat);
        // Every key lands in a stable shard and resolves.
        for i in 0..100u64 {
            let key = Key::pair(i, i * 3);
            assert_eq!(sharded.peek(key), Some(Value::single(i)));
            assert_eq!(sharded.shard_of(&key), sharded.shard_of(&key));
        }
    }

    #[test]
    fn reads_are_counted_per_shard() {
        let mut store = ShardedStore::new(4);
        store.insert(Key::single(7), Value::single(1));
        store.reset_read_counts();
        for _ in 0..5 {
            store.get(Key::single(7));
        }
        store.peek(Key::single(7)); // uncounted
        let counts = store.read_counts();
        assert_eq!(counts.iter().sum::<u64>(), 5);
        assert_eq!(counts[store.shard_of(&Key::single(7))], 5);
    }

    #[test]
    fn shards_spread_keys() {
        let mut store = ShardedStore::new(8);
        for i in 0..1000u64 {
            store.insert(Key::single(i), Value::single(i));
        }
        let populated = (0..1000u64)
            .map(|i| store.shard_of(&Key::single(i)))
            .collect::<std::collections::HashSet<_>>();
        assert_eq!(populated.len(), 8, "all shards receive keys");
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let store = ShardedStore::new(0);
        assert_eq!(store.num_shards(), 1);
    }
}
