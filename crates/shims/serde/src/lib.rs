//! Offline stand-in for the `serde` derive macros.
//!
//! The workspace only uses serde for `#[derive(Serialize, Deserialize)]`
//! annotations; nothing serializes through serde at runtime (the experiment
//! tables hand-roll their JSON). Building without registry access, the
//! derives are provided as no-ops that accept the same syntax.

use proc_macro::TokenStream;

/// No-op replacement for `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op replacement for `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
