//! Offline stand-in for the slice of the `rand` 0.8 API this workspace uses:
//! [`RngCore`], [`Rng`] (`gen_range` over half-open integer ranges and
//! `gen_bool`), [`SeedableRng`] (`from_seed` / `seed_from_u64`) and
//! [`seq::SliceRandom::shuffle`].
//!
//! Sampling is deterministic for a fixed generator state, which is all the
//! workspace's seeded tests and experiments rely on; the streams are not
//! bit-compatible with the upstream crate.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Source of raw random words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with SplitMix64 (little-endian), as
    /// the upstream crate does, and builds the generator from it.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
        Self::from_seed(seed)
    }
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // 53 uniform mantissa bits, exactly representable in an f64.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// Element type of the range.
    type Output;

    /// Draws one uniform sample.
    fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> Self::Output;
}

/// Unbiased uniform integer in `[0, span)` by rejection sampling.
fn uniform_below<G: RngCore + ?Sized>(rng: &mut G, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Largest multiple of `span` that fits in a u64; values at or above it
    // are rejected so every residue is equally likely.
    let zone = span.wrapping_mul(u64::MAX / span);
    loop {
        let value = rng.next_u64();
        if value < zone || zone == 0 {
            return value % span;
        }
    }
}

macro_rules! impl_sample_range {
    ($($ty:ty),+) => {$(
        impl SampleRange for Range<$ty> {
            type Output = $ty;

            fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> $ty {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $ty
            }
        }
    )+};
}

impl_sample_range!(usize, u64, u32, u16, u8);

/// Slice shuffling, mirroring `rand::seq::SliceRandom`.
pub mod seq {
    use super::{RngCore, SampleRange};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher-Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` for an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..i + 1).sample_single(rng);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(0..self.len()).sample_single(rng)])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            // A weak but deterministic mixer is enough for the shim tests.
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Counter(11);
        let mut data: Vec<usize> = (0..50).collect();
        data.shuffle(&mut rng);
        let mut sorted = data.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(data.choose(&mut rng).is_some());
    }
}
