//! Offline stand-in for `rand_chacha`: a real ChaCha8 keystream generator
//! implementing the [`rand`] shim's [`RngCore`] / [`SeedableRng`] traits.
//!
//! The stream is deterministic for a fixed seed (which is all the workspace
//! relies on) but not guaranteed to be bit-identical to the upstream crate.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

/// "expand 32-byte k", the ChaCha constant words.
const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// A ChaCha stream cipher based generator with 8 double-rounds worth of
/// mixing (4 column + 4 diagonal rounds), matching ChaCha8.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Input block: constants, 8 key words, 2 counter words, 2 nonce words.
    state: [u32; 16],
    /// Current output block.
    buffer: [u32; 16],
    /// Next unread word of `buffer`; 16 means exhausted.
    index: usize,
}

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, input) in working.iter_mut().zip(self.state.iter()) {
            *out = out.wrapping_add(*input);
        }
        self.buffer = working;
        self.index = 0;
        // 64-bit block counter in words 12/13.
        let (low, carry) = self.state[12].overflowing_add(1);
        self.state[12] = low;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        // Counter and nonce start at zero.
        ChaCha8Rng {
            state,
            buffer: [0u32; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let low = self.next_u32() as u64;
        let high = self.next_u32() as u64;
        low | (high << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn fixed_seed_reproduces_the_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let sa: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn works_through_the_rng_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s), "uniform sampling covers the range");
    }

    #[test]
    fn blocks_chain_via_the_counter() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let first_block: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second_block: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first_block, second_block);
    }
}
