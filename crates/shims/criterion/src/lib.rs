//! Offline stand-in for the slice of the `criterion` API this workspace's
//! benches use: [`Criterion::benchmark_group`], [`BenchmarkGroup`]
//! (`sample_size`, `bench_function`, `bench_with_input`, `finish`),
//! [`BenchmarkId`], [`Bencher::iter`] and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Timing uses `std::time::Instant`: after one warm-up iteration each
//! benchmark runs `sample_size` timed iterations and reports min / mean /
//! max to stdout. Set `AMPC_BENCH_SAMPLES` to override every group's sample
//! count (e.g. `AMPC_BENCH_SAMPLES=3` for a smoke run).

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Entry point handed to `criterion_group!` functions.
#[derive(Debug, Default)]
pub struct Criterion {
    benchmarks_run: usize,
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\nbenchmark group: {name}");
        BenchmarkGroup {
            parent: self,
            name,
            sample_size: 10,
        }
    }

    /// Runs a standalone benchmark (outside any group).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) {
        run_benchmark(&format!("{id}"), effective_samples(10), f);
        self.benchmarks_run += 1;
    }

    /// Prints a closing line; called by `criterion_main!`.
    pub fn final_summary(&self) {
        eprintln!("\n{} benchmark(s) completed", self.benchmarks_run);
    }
}

/// A named collection of benchmarks sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Runs a benchmark identified by `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        run_benchmark(
            &format!("{}/{id}", self.name),
            effective_samples(self.sample_size),
            f,
        );
        self.parent.benchmarks_run += 1;
        self
    }

    /// Runs a benchmark that borrows an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(
            &format!("{}/{id}", self.name),
            effective_samples(self.sample_size),
            |b| f(b, input),
        );
        self.parent.benchmarks_run += 1;
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// A `function_name/parameter` benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Identifier from a function name and a parameter value.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Identifier from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] does the timing.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    requested: usize,
}

impl Bencher {
    /// Times `requested` executions of `routine` (after one warm-up call).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        std::hint::black_box(routine());
        self.samples.clear();
        for _ in 0..self.requested {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn effective_samples(configured: usize) -> usize {
    std::env::var("AMPC_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map(|v| v.max(1))
        .unwrap_or(configured)
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        requested: samples,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        eprintln!("  {label}: no samples recorded");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().expect("non-empty");
    let max = bencher.samples.iter().max().expect("non-empty");
    println!(
        "  {label}: mean {mean:?} (min {min:?}, max {max:?}, {} samples)",
        bencher.samples.len()
    );
}

/// Bundles benchmark functions into one group function, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Generates `main` running the given group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes harness flags like `--bench`; nothing to parse.
            let mut criterion = $crate::Criterion::default();
            $( $group(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_requested_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            });
        });
        group.finish();
        // One warm-up plus three timed samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn benchmark_ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
