//! Sequential baselines the experiment tables compare the AMPC algorithms
//! against.
//!
//! None of these are contributions of the paper; they are the reference
//! points its introduction argues against (`∆ + 1`-type colorings that
//! ignore sparsity) or the natural sequential upper bounds
//! (degeneracy-ordering greedy, which achieves `≤ 2α` colors but is
//! inherently sequential).

use rand::seq::SliceRandom;
use rand::Rng;
use sparse_graph::{
    greedy_by_degeneracy_order, greedy_by_id_order, greedy_by_order, Coloring, CsrGraph, NodeId,
};

/// Summary of a baseline run, aligned with [`crate::ampc::AmpcColoringResult`]
/// for table building.
#[derive(Debug, Clone)]
pub struct BaselineResult {
    /// Name of the baseline.
    pub algorithm: &'static str,
    /// The coloring produced.
    pub coloring: Coloring,
    /// Number of distinct colors used.
    pub colors_used: usize,
}

impl BaselineResult {
    fn new(algorithm: &'static str, coloring: Coloring) -> Self {
        let colors_used = coloring.num_colors();
        BaselineResult {
            algorithm,
            coloring,
            colors_used,
        }
    }
}

/// Greedy coloring in node-id order — the "arbitrary order" baseline; uses
/// at most `∆ + 1` colors but typically far more than `O(α)` on sparse
/// graphs with high-degree nodes.
pub fn id_order_greedy(graph: &CsrGraph) -> BaselineResult {
    BaselineResult::new("greedy (id order)", greedy_by_id_order(graph))
}

/// Greedy coloring in reverse degeneracy order — the strongest sequential
/// baseline, achieving at most `degeneracy + 1 ≤ 2α` colors.
pub fn degeneracy_order_greedy(graph: &CsrGraph) -> BaselineResult {
    BaselineResult::new(
        "greedy (degeneracy order)",
        greedy_by_degeneracy_order(graph),
    )
}

/// Greedy coloring in a uniformly random order (averaged behavior of the
/// `∆ + 1` approaches).
pub fn random_order_greedy<R: Rng + ?Sized>(graph: &CsrGraph, rng: &mut R) -> BaselineResult {
    let mut order: Vec<NodeId> = graph.nodes().collect();
    order.shuffle(rng);
    BaselineResult::new("greedy (random order)", greedy_by_order(graph, &order))
}

/// Greedy coloring in decreasing-degree order (the Welsh–Powell heuristic).
pub fn welsh_powell(graph: &CsrGraph) -> BaselineResult {
    let mut order: Vec<NodeId> = graph.nodes().collect();
    order.sort_by_key(|&v| std::cmp::Reverse(graph.degree(v)));
    BaselineResult::new("greedy (Welsh-Powell)", greedy_by_order(graph, &order))
}

/// Runs every baseline (the random one with the given RNG).
pub fn all_baselines<R: Rng + ?Sized>(graph: &CsrGraph, rng: &mut R) -> Vec<BaselineResult> {
    vec![
        id_order_greedy(graph),
        degeneracy_order_greedy(graph),
        random_order_greedy(graph, rng),
        welsh_powell(graph),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use sparse_graph::generators;

    #[test]
    fn all_baselines_are_proper() {
        let mut rng = ChaCha8Rng::seed_from_u64(301);
        let graph = generators::preferential_attachment(400, 3, &mut rng);
        for baseline in all_baselines(&graph, &mut rng) {
            assert!(
                baseline.coloring.is_proper(&graph),
                "{} produced an improper coloring",
                baseline.algorithm
            );
            assert!(baseline.colors_used <= graph.max_degree() + 1);
        }
    }

    #[test]
    fn degeneracy_greedy_beats_the_degree_bound_on_sparse_graphs() {
        let graph = generators::hub_and_spoke(20, 40);
        let degeneracy_colors = degeneracy_order_greedy(&graph).colors_used;
        assert!(degeneracy_colors <= 3);
        assert!(graph.max_degree() + 1 > 10 * degeneracy_colors);
    }

    #[test]
    fn random_order_is_seed_deterministic() {
        let graph = generators::grid(10, 10);
        let a = random_order_greedy(&graph, &mut ChaCha8Rng::seed_from_u64(7));
        let b = random_order_greedy(&graph, &mut ChaCha8Rng::seed_from_u64(7));
        assert_eq!(a.coloring, b.coloring);
    }

    #[test]
    fn welsh_powell_on_a_star_uses_two_colors() {
        let graph = generators::star(50);
        let result = welsh_powell(&graph);
        assert_eq!(result.colors_used, 2);
        assert_eq!(result.coloring.color(0), 0);
    }
}
