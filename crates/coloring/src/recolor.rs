//! Layered greedy recoloring: merging independent per-layer colorings into a
//! single `(β + 1)`-coloring (Section 6.3 / 6.4 of the paper).
//!
//! The input is a β-partition together with an *initial* coloring that is
//! proper **within** every layer but may conflict across layers (because
//! every layer was colored independently with its own copy of the palette).
//! The recoloring pass processes layers from the topmost down; inside a
//! layer, nodes are processed in decreasing initial color. When a node is
//! processed, only nodes in the same layer with a higher initial color and
//! nodes in higher layers have final colors — at most `β` of them — so a
//! free color in a palette of size `β + 1` always exists.

use std::fmt;

use ampc_runtime::{simd, BitSet, RoundPrimitives};
use beta_partition::{BetaPartition, Layer};
use sparse_graph::{Coloring, CsrGraph, NodeId};

use crate::color_word::ColorWord;

/// Structured failures of the layered recoloring pass (analogous to
/// [`crate::ArbLinialError`]): every precondition violation and internal
/// inconsistency has its own variant instead of a formatted `String`, and
/// the "node left uncolored" case is a returned error rather than a
/// release-mode panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecolorError {
    /// Graph, partition and coloring disagree on the node count.
    SizeMismatch,
    /// The partition is partial (some node on the infinity layer); the
    /// recoloring argument needs every node on a finite layer.
    PartialPartition,
    /// The initial coloring has a monochromatic edge *within* one layer,
    /// violating the per-layer properness precondition.
    WithinLayerConflict {
        /// The layer both endpoints live on.
        layer: Layer,
        /// The offending edge, `(u, v)` with `u < v`.
        edge: (NodeId, NodeId),
    },
    /// A node saw all `palette` colors on processed neighbors — the
    /// partition violates its β bound.
    NoFreeColor {
        /// The node that found no free color.
        node: NodeId,
        /// The palette size (`β + 1`).
        palette: usize,
    },
    /// A node was never assigned a final color (an internal scheduling
    /// inconsistency: the wave schedule must cover every node exactly
    /// once).
    Uncolored {
        /// The node missing from the schedule.
        node: NodeId,
    },
}

impl fmt::Display for RecolorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecolorError::SizeMismatch => {
                write!(f, "partition / coloring / graph sizes do not match")
            }
            RecolorError::PartialPartition => {
                write!(f, "recoloring requires a complete beta-partition")
            }
            RecolorError::WithinLayerConflict {
                layer,
                edge: (u, v),
            } => write!(
                f,
                "initial coloring conflicts within layer {layer:?} on edge ({u}, {v})"
            ),
            RecolorError::NoFreeColor { node, palette } => write!(
                f,
                "node {node} has no free color in a palette of size {palette}: the partition \
                 violates its beta bound"
            ),
            RecolorError::Uncolored { node } => write!(
                f,
                "node {node} was never scheduled into a recoloring wave and is left uncolored"
            ),
        }
    }
}

impl std::error::Error for RecolorError {}

impl From<RecolorError> for String {
    fn from(error: RecolorError) -> Self {
        error.to_string()
    }
}

/// Which color a node picks among the free ones.
///
/// Section 6.3 lets nodes pick the *highest* available color; the variant in
/// Section 6.4 (driven by the sorted-orientation machinery) picks the
/// *smallest*. Both yield a proper `(β + 1)`-coloring; exposing the choice
/// lets the benchmarks compare them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecolorOrder {
    /// Pick the largest free color (Section 6.3).
    #[default]
    HighestAvailable,
    /// Pick the smallest free color (Section 6.4).
    SmallestAvailable,
}

/// Result of the recoloring pass.
#[derive(Debug, Clone)]
pub struct RecolorResult {
    /// The final proper coloring with palette `{0, …, β}`.
    pub coloring: Coloring,
    /// Number of conflicts (monochromatic edges across layers) the pass had
    /// to repair.
    pub repaired_conflicts: usize,
    /// The number of sequential waves the centralized process used
    /// (`layers × palette`), which the AMPC simulation argument of
    /// Section 6.3 turns into `O((β/εδ) log β)` rounds by batching layers.
    pub sequential_waves: usize,
}

/// Runs the layered greedy recoloring.
///
/// * `partition` must be a complete β-partition of `graph`.
/// * `initial` must be proper on the subgraph induced by every single layer
///   (conflicts across layers are allowed — they are what the pass repairs).
///
/// # Errors
///
/// Returns an error if the partition is partial, sizes mismatch, the initial
/// coloring conflicts within a layer, or some node ends up with no free
/// color (which would indicate the partition violates its β bound).
///
/// # Examples
///
/// ```
/// use arbo_coloring::{recolor_layers, RecolorOrder};
/// use beta_partition::{natural_partition};
/// use sparse_graph::{generators, Coloring};
///
/// let graph = generators::grid(12, 12); // arboricity <= 2
/// let beta = 5;
/// let partition = natural_partition(&graph, beta);
/// // Give every node an initial color that is proper within its layer
/// // (here: a greedy coloring restricted per layer would do; the trivial
/// // id-coloring is proper everywhere, so it certainly is within layers).
/// let initial = Coloring::new((0..graph.num_nodes()).collect());
/// let result = recolor_layers(&graph, &partition, &initial, RecolorOrder::HighestAvailable)?;
/// assert!(result.coloring.is_proper(&graph));
/// assert!(result.coloring.palette_size() <= beta + 1);
/// # Ok::<(), String>(())
/// ```
pub fn recolor_layers(
    graph: &CsrGraph,
    partition: &BetaPartition,
    initial: &Coloring,
    order: RecolorOrder,
) -> Result<RecolorResult, RecolorError> {
    recolor_layers_with_runtime(
        graph,
        partition,
        initial,
        order,
        &RoundPrimitives::sequential(),
    )
}

/// [`recolor_layers`] with the hot sweeps running on the supplied
/// [`RoundPrimitives`] context — bit-identical results for any thread
/// count.
///
/// The centralized schedule of Section 6.3 processes nodes by
/// `(layer desc, initial color desc, id)`. All nodes sharing a
/// `(layer, initial color)` pair form an independent set (the initial
/// coloring is proper within each layer), so each such *wave* is one
/// parallel sweep: every member picks its color from the snapshot the
/// previous waves left behind, exactly as the sequential loop would.
///
/// # Errors
///
/// See [`recolor_layers`].
pub fn recolor_layers_with_runtime(
    graph: &CsrGraph,
    partition: &BetaPartition,
    initial: &Coloring,
    order: RecolorOrder,
    primitives: &RoundPrimitives,
) -> Result<RecolorResult, RecolorError> {
    let n = graph.num_nodes();
    if partition.num_nodes() != n || initial.num_nodes() != n {
        return Err(RecolorError::SizeMismatch);
    }
    if partition.is_partial() {
        return Err(RecolorError::PartialPartition);
    }
    let beta = partition.beta();
    let palette = beta + 1;

    // Check the within-layer properness precondition and count cross-layer
    // conflicts for reporting. One parallel reduce over the per-node edge
    // lists, scanned in the same (u, v)-ascending order as `graph.edges()`:
    // the conflict count is an integer sum and the reported violation is
    // the first in canonical edge order, so the outcome is identical for
    // any thread count.
    #[derive(Clone, Default)]
    struct EdgeCheck {
        conflicts: usize,
        violation: Option<(NodeId, NodeId)>,
    }
    // Weighted by degree: the fold scans each node's adjacency list, so
    // the cost-weighted grid splits hub-heavy index ranges into small,
    // stealable chunks. Both accumulator components are insensitive to the
    // grid — the conflict count is an integer sum, and `Option::or` over
    // ascending chunks always yields the first violation in edge order —
    // so the outcome is identical for any thread count and grid.
    let check = primitives.par_reduce_range_weighted(
        n,
        |u| graph.degree(u),
        EdgeCheck::default(),
        |mut acc: EdgeCheck, u| {
            for &v in graph.neighbors(u) {
                if u < v && initial.color(u) == initial.color(v) {
                    if partition.layer(u) == partition.layer(v) {
                        if acc.violation.is_none() {
                            acc.violation = Some((u, v));
                        }
                    } else {
                        acc.conflicts += 1;
                    }
                }
            }
            acc
        },
        |left, right| EdgeCheck {
            conflicts: left.conflicts + right.conflicts,
            violation: left.violation.or(right.violation),
        },
    );
    if let Some((u, v)) = check.violation {
        return Err(RecolorError::WithinLayerConflict {
            layer: partition.layer(u),
            edge: (u, v),
        });
    }
    let repaired_conflicts = check.conflicts;

    // The palette is β + 1, which always fits the u32 fast path in
    // practice; the usize instantiation is the lossless fallback. Both run
    // the same wave code on the same usize arithmetic.
    let colors = if <u32 as ColorWord>::fits_palette(palette) {
        recolor_waves::<u32>(graph, partition, initial, order, palette, primitives)?
    } else {
        recolor_waves::<usize>(graph, partition, initial, order, palette, primitives)?
    };
    let coloring = Coloring::new(colors);
    debug_assert!(coloring.is_proper(graph));

    let sequential_waves = partition.size() * palette;
    Ok(RecolorResult {
        coloring,
        repaired_conflicts,
        sequential_waves,
    })
}

/// The recoloring waves, generic over the color storage width.
///
/// Final colors live in a flat `Vec<C>` with [`ColorWord::NONE`] standing
/// in for "not yet colored" — half the bytes of `Vec<Option<usize>>` even
/// at `usize` width, a quarter at `u32` — and the per-decision used-color
/// set is a word-packed [`BitSet`] whose `first_absent` / `last_absent`
/// word scans replace the per-color probe loops. All decision arithmetic
/// stays `usize`, so both instantiations compute identical colorings.
fn recolor_waves<C: ColorWord>(
    graph: &CsrGraph,
    partition: &BetaPartition,
    initial: &Coloring,
    order: RecolorOrder,
    palette: usize,
    primitives: &RoundPrimitives,
) -> Result<Vec<usize>, RecolorError> {
    let n = graph.num_nodes();
    let layer_of = |v: NodeId| -> usize {
        match partition.layer(v) {
            Layer::Finite(layer) => layer,
            Layer::Infinite => unreachable!("partition verified to be complete"),
        }
    };

    // Process nodes by (layer descending, initial color descending, id) —
    // the centralized order of Section 6.3.
    let mut schedule: Vec<NodeId> = graph.nodes().collect();
    schedule.sort_by(|&a, &b| {
        layer_of(b)
            .cmp(&layer_of(a))
            .then(initial.color(b).cmp(&initial.color(a)))
            .then(a.cmp(&b))
    });

    let mut final_colors: Vec<C> = vec![C::NONE; n];
    // Steady-state allocation-free waves: the per-decision "used colors"
    // set is a BitSet leased per worker (no `vec![false; palette]` per
    // node) and the wave-choice buffer is recycled across waves.
    let used_sets = primitives.scratch_pool::<BitSet>();
    let mut choices: Vec<C> = Vec::new();
    let mut start = 0usize;
    while start < schedule.len() {
        // One wave: the maximal run of schedule entries sharing
        // (layer, initial color) — an independent set, so its members only
        // see colors fixed by previous waves.
        let wave_key = |v: NodeId| (layer_of(v), initial.color(v));
        let key = wave_key(schedule[start]);
        let mut end = start + 1;
        while end < schedule.len() && wave_key(schedule[end]) == key {
            end += 1;
        }
        let wave = &schedule[start..end];
        let _wave_span = primitives
            .span("recolor.wave", "simulator")
            .with_arg("layer", key.0 as u64)
            .with_arg("color", key.1 as u64)
            .with_arg("members", wave.len() as u64);
        {
            let snapshot: &[C] = &final_colors;
            // Weighted by degree: a wave member's decision scans its whole
            // adjacency list, and waves of a skewed layer mix hubs with
            // leaves.
            primitives.par_map_weighted_into(
                wave,
                |_, &v| graph.degree(v),
                |_, &v| {
                    let mut used = used_sets.lease();
                    used.reset(palette);
                    let neighbors = graph.neighbors(v);
                    for (at, &w) in neighbors.iter().enumerate() {
                        // The color gather is scattered even though the
                        // neighbor ids stream sequentially; prefetch a few
                        // iterations ahead to hide the latency.
                        if let Some(&ahead) = neighbors.get(at + simd::PREFETCH_LOOKAHEAD) {
                            simd::prefetch_read(snapshot, ahead);
                        }
                        let cw = snapshot[w];
                        if cw != C::NONE {
                            let c = cw.to_usize();
                            if c < palette {
                                used.insert(c);
                            }
                        }
                    }
                    let choice = match order {
                        RecolorOrder::HighestAvailable => used.last_absent(),
                        RecolorOrder::SmallestAvailable => used.first_absent(),
                    };
                    choice.map_or(C::NONE, C::from_usize)
                },
                &mut choices,
            );
        }
        for (&v, &choice) in wave.iter().zip(choices.iter()) {
            if choice == C::NONE {
                return Err(RecolorError::NoFreeColor { node: v, palette });
            }
            final_colors[v] = choice;
        }
        start = end;
    }

    let mut colors = Vec::with_capacity(n);
    for (node, &color) in final_colors.iter().enumerate() {
        if color == C::NONE {
            // Unreachable when the schedule covers every node (it is built
            // from `graph.nodes()`), but a structured error beats a
            // release-mode unwrap panic if that invariant ever breaks.
            return Err(RecolorError::Uncolored { node });
        }
        colors.push(color.to_usize());
    }
    Ok(colors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use beta_partition::natural_partition;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use sparse_graph::generators;

    /// Builds an initial coloring that is proper within each layer by
    /// greedily coloring every layer's induced subgraph with its own palette
    /// copy (colors are *not* offset, so cross-layer conflicts arise).
    fn per_layer_coloring(graph: &CsrGraph, partition: &BetaPartition) -> Coloring {
        let n = graph.num_nodes();
        let mut colors = vec![0usize; n];
        let max_layer = partition.max_finite_layer().unwrap_or(0);
        for layer in 0..=max_layer {
            let members: Vec<NodeId> = graph
                .nodes()
                .filter(|&v| partition.layer(v) == Layer::Finite(layer))
                .collect();
            if members.is_empty() {
                continue;
            }
            let sub = sparse_graph::InducedSubgraph::new(graph, &members);
            let local = sparse_graph::greedy_by_degeneracy_order(sub.graph());
            for (local_id, &original) in sub.original_nodes().iter().enumerate() {
                colors[original] = local.color(local_id);
            }
        }
        Coloring::new(colors)
    }

    #[test]
    fn repairs_cross_layer_conflicts_into_beta_plus_one_colors() {
        let mut rng = ChaCha8Rng::seed_from_u64(91);
        for (k, beta) in [(1usize, 3usize), (2, 5), (3, 8)] {
            let graph = generators::forest_union(400, k, &mut rng);
            let partition = natural_partition(&graph, beta);
            assert!(!partition.is_partial());
            let initial = per_layer_coloring(&graph, &partition);
            // The per-layer coloring almost surely has cross-layer conflicts.
            let result =
                recolor_layers(&graph, &partition, &initial, RecolorOrder::HighestAvailable)
                    .unwrap();
            assert!(result.coloring.is_proper(&graph), "k = {k}");
            assert!(
                result.coloring.palette_size() <= beta + 1,
                "k = {k}: palette {}",
                result.coloring.palette_size()
            );
        }
    }

    #[test]
    fn both_orders_produce_proper_colorings() {
        let graph = generators::triangulated_grid(12, 12);
        let beta = 7;
        let partition = natural_partition(&graph, beta);
        let initial = per_layer_coloring(&graph, &partition);
        for order in [
            RecolorOrder::HighestAvailable,
            RecolorOrder::SmallestAvailable,
        ] {
            let result = recolor_layers(&graph, &partition, &initial, order).unwrap();
            assert!(result.coloring.is_proper(&graph));
            assert!(result.coloring.palette_size() <= beta + 1);
        }
    }

    #[test]
    fn parallel_waves_are_bit_identical_to_sequential() {
        let mut rng = ChaCha8Rng::seed_from_u64(93);
        let graph = generators::forest_union(1_500, 3, &mut rng);
        let partition = natural_partition(&graph, 8);
        let initial = per_layer_coloring(&graph, &partition);
        for order in [
            RecolorOrder::HighestAvailable,
            RecolorOrder::SmallestAvailable,
        ] {
            let reference = recolor_layers(&graph, &partition, &initial, order).unwrap();
            for threads in [2usize, 4, 7] {
                let primitives = RoundPrimitives::new(threads);
                let parallel =
                    recolor_layers_with_runtime(&graph, &partition, &initial, order, &primitives)
                        .unwrap();
                assert_eq!(
                    reference.coloring, parallel.coloring,
                    "{order:?}, threads {threads}"
                );
                assert_eq!(reference.repaired_conflicts, parallel.repaired_conflicts);
                assert_eq!(reference.sequential_waves, parallel.sequential_waves);
            }
        }
    }

    #[test]
    fn u32_and_usize_storage_widths_agree_bit_for_bit() {
        // Real palettes always take the u32 fast path, so exercise the
        // usize fallback directly against it.
        let mut rng = ChaCha8Rng::seed_from_u64(95);
        let graph = generators::forest_union(600, 2, &mut rng);
        let partition = natural_partition(&graph, 6);
        let initial = per_layer_coloring(&graph, &partition);
        let primitives = RoundPrimitives::sequential();
        for order in [
            RecolorOrder::HighestAvailable,
            RecolorOrder::SmallestAvailable,
        ] {
            let narrow =
                recolor_waves::<u32>(&graph, &partition, &initial, order, 7, &primitives).unwrap();
            let wide = recolor_waves::<usize>(&graph, &partition, &initial, order, 7, &primitives)
                .unwrap();
            assert_eq!(narrow, wide, "{order:?}");
        }
    }

    #[test]
    fn conflict_count_is_reported() {
        let graph = generators::star(10);
        let beta = 2;
        let partition = natural_partition(&graph, beta);
        // All nodes share color 0: proper within layers (leaves form an
        // independent set, the hub is alone on its layer) but every edge
        // conflicts across layers.
        let initial = Coloring::new(vec![0; 10]);
        let result =
            recolor_layers(&graph, &partition, &initial, RecolorOrder::HighestAvailable).unwrap();
        assert_eq!(result.repaired_conflicts, 9);
        assert!(result.coloring.is_proper(&graph));
        assert!(result.sequential_waves >= partition.size());
    }

    #[test]
    fn rejects_within_layer_conflicts_and_partial_partitions() {
        let graph = generators::cycle(6);
        let beta = 2;
        let partition = natural_partition(&graph, beta);
        let conflicting = Coloring::new(vec![0; 6]); // cycle layer contains adjacent equal colors
        assert!(recolor_layers(&graph, &partition, &conflicting, RecolorOrder::default()).is_err());

        let partial = BetaPartition::all_infinite(6, beta);
        let proper = sparse_graph::greedy_by_id_order(&graph);
        assert!(recolor_layers(&graph, &partial, &proper, RecolorOrder::default()).is_err());

        let wrong_size = BetaPartition::all_infinite(4, beta);
        assert!(recolor_layers(&graph, &wrong_size, &proper, RecolorOrder::default()).is_err());
    }
}
