//! The Arb-Linial one-sided color reduction (Sections 6.1–6.2).
//!
//! Linial's classic coloring algorithm reduces an `m`-coloring to an
//! `O(∆² log m)`-coloring in one round using cover-free set families. As
//! observed by Barenboim–Elkin [BE10b], the algorithm only needs the colors
//! of *out*-neighbors of an acyclic orientation, so `∆` can be replaced by
//! the maximum out-degree `β` — this is the version the paper simulates
//! inside AMPC on top of its β-partitions.
//!
//! The cover-free families are the standard polynomial construction over a
//! prime field `GF(q)`: color `c` is identified with the polynomial whose
//! coefficients are the base-`q` digits of `c`, and the set of `c` is
//! `{(a, p_c(a)) : a ∈ GF(q)}`. For `q > d·β` a node can always pick an
//! evaluation point on which its polynomial differs from the polynomials of
//! all (at most `β`) out-neighbors, and the pair `(a, p_c(a))` becomes its
//! new color from a palette of size `q²`.

use sparse_graph::{Coloring, CsrGraph, NodeId, Orientation};

use crate::primes::next_prime;

/// Result of running the Arb-Linial reduction to its fixed point.
#[derive(Debug, Clone)]
pub struct ArbLinialResult {
    /// The final proper coloring.
    pub coloring: Coloring,
    /// Palette size after every round, starting with the input palette.
    pub palette_trajectory: Vec<usize>,
    /// Number of (simulated LOCAL) reduction rounds executed.
    pub rounds: usize,
}

impl ArbLinialResult {
    /// The final palette size (`palette_trajectory.last()`).
    pub fn final_palette(&self) -> usize {
        *self
            .palette_trajectory
            .last()
            .expect("trajectory always contains the initial palette")
    }
}

/// The palette `q²` that one reduction round with polynomial degree `d`
/// would produce from the given palette.
fn palette_after_round(palette: usize, beta: usize, d: usize) -> usize {
    let mut q = next_prime((d as u64 * beta as u64) + 1);
    while (q as u128).pow(d as u32 + 1) < palette as u128 {
        q = next_prime(q + 1);
    }
    (q * q) as usize
}

/// The polynomial degree minimizing the palette after one reduction round.
fn best_degree(palette: usize, beta: usize) -> usize {
    let max_degree = (usize::BITS - palette.max(2).leading_zeros()) as usize + 1;
    (1..=max_degree.max(1))
        .min_by_key(|&d| palette_after_round(palette, beta, d))
        .unwrap_or(1)
}

/// One round of the polynomial reduction: maps a proper `m`-coloring to a
/// proper `q²`-coloring where `q` is the smallest prime satisfying
/// `q ≥ d·β + 1` and `q^{d+1} ≥ m`.
///
/// Returns the new per-node colors and the new palette size `q²`.
fn reduction_round(
    graph: &CsrGraph,
    orientation: &Orientation,
    colors: &[usize],
    palette: usize,
    beta: usize,
    degree_d: usize,
) -> (Vec<usize>, usize) {
    let d = degree_d.max(1);
    // q must exceed d * beta (so that at most d*beta evaluation points are
    // "covered" by out-neighbors) and q^{d+1} must reach the palette so that
    // distinct colors map to distinct polynomials.
    let mut q = next_prime((d as u64 * beta as u64) + 1);
    while (q as u128).pow(d as u32 + 1) < palette as u128 {
        q = next_prime(q + 1);
    }
    let q = q as usize;

    // Coefficients of color c: its base-q digits (d+1 of them).
    let coefficients = |c: usize| -> Vec<u64> {
        let mut digits = Vec::with_capacity(d + 1);
        let mut rest = c as u64;
        for _ in 0..=d {
            digits.push(rest % q as u64);
            rest /= q as u64;
        }
        digits
    };
    let evaluate = |coeffs: &[u64], a: u64| -> u64 {
        // Horner evaluation over GF(q).
        let mut value = 0u64;
        for &coefficient in coeffs.iter().rev() {
            value = (value * a + coefficient) % q as u64;
        }
        value
    };

    let mut new_colors = vec![0usize; graph.num_nodes()];
    for v in graph.nodes() {
        let own = coefficients(colors[v]);
        let neighbor_polys: Vec<Vec<u64>> = orientation
            .out_neighbors(v)
            .iter()
            .map(|&u| coefficients(colors[u]))
            .collect();
        let mut chosen = None;
        for a in 0..q as u64 {
            let own_value = evaluate(&own, a);
            let clashes = neighbor_polys
                .iter()
                .any(|poly| evaluate(poly, a) == own_value);
            if !clashes {
                chosen = Some((a, own_value));
                break;
            }
        }
        let (a, value) = chosen.expect(
            "a conflict-free evaluation point exists because q > d * beta \
             bounds the number of covered points",
        );
        new_colors[v] = (a as usize) * q + value as usize;
    }
    (new_colors, q * q)
}

/// Runs the Arb-Linial algorithm on top of an acyclic orientation until the
/// palette stops shrinking.
///
/// * `graph` — the input graph,
/// * `orientation` — an acyclic orientation covering `graph` (out-degree
///   `β`), typically derived from a β-partition,
/// * `initial` — a proper coloring to start from; `None` uses the trivial
///   `n`-coloring by node id (what the paper's simulation does).
///
/// The final palette is `O(β²)`: at the fixed point the reduction uses
/// degree `d = 1` polynomials over the smallest prime `q ≥ β + 1` capable of
/// encoding the palette, so the palette converges to at most
/// `(2(β + 1))² = O(β²)` by Bertrand's postulate (in practice much closer to
/// `(β + 1)²`).
///
/// # Errors
///
/// Returns an error if `orientation` does not cover `graph` or if `initial`
/// is not a proper coloring (the reduction requires adjacent nodes to carry
/// distinct polynomials).
///
/// # Examples
///
/// ```
/// use arbo_coloring::arb_linial_coloring;
/// use sparse_graph::{generators, Orientation};
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(9);
/// let graph = generators::forest_union(500, 2, &mut rng);
/// // Orient by node id: out-degree can be large, but stays far below n.
/// let orientation = Orientation::from_total_order(&graph, |v| v);
/// let result = arb_linial_coloring(&graph, &orientation, None)?;
/// assert!(result.coloring.is_proper(&graph));
/// let beta = orientation.max_out_degree();
/// assert!(result.final_palette() <= 4 * (beta + 2) * (beta + 2));
/// # Ok::<(), String>(())
/// ```
pub fn arb_linial_coloring(
    graph: &CsrGraph,
    orientation: &Orientation,
    initial: Option<&Coloring>,
) -> Result<ArbLinialResult, String> {
    if !orientation.covers_graph(graph) {
        return Err("orientation does not cover the graph's edge set".to_string());
    }
    let n = graph.num_nodes();
    let beta = orientation.max_out_degree();

    let (mut colors, mut palette): (Vec<usize>, usize) = match initial {
        Some(coloring) => {
            if !coloring.is_proper(graph) {
                return Err("initial coloring is not proper".to_string());
            }
            (coloring.colors().to_vec(), coloring.palette_size().max(1))
        }
        None => ((0..n).collect::<Vec<NodeId>>(), n.max(1)),
    };

    let mut trajectory = vec![palette];
    let mut rounds = 0usize;

    loop {
        // Choose the polynomial degree that gives the strongest single-round
        // reduction (the classic Linial schedule uses a logarithmic degree
        // while the palette is huge and degree ~2 near the fixed point).
        let degree = best_degree(palette, beta);
        let (new_colors, new_palette) =
            reduction_round(graph, orientation, &colors, palette, beta, degree);
        rounds += 1;
        if new_palette >= palette {
            // Fixed point reached; keep the smaller palette.
            trajectory.push(palette);
            break;
        }
        colors = new_colors;
        palette = new_palette;
        trajectory.push(palette);
        if rounds > 64 {
            break; // safety net; log* n convergence makes this unreachable
        }
    }

    Ok(ArbLinialResult {
        coloring: Coloring::new(colors),
        palette_trajectory: trajectory,
        rounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use sparse_graph::generators;

    fn id_orientation(graph: &CsrGraph) -> Orientation {
        Orientation::from_total_order(graph, |v| v)
    }

    #[test]
    fn colors_a_tree_with_constant_palette() {
        let mut rng = ChaCha8Rng::seed_from_u64(61);
        let graph = generators::random_tree(1_000, &mut rng);
        // Orient towards the root-free degeneracy order: out-degree 1.
        let decomposition = sparse_graph::degeneracy_ordering(&graph);
        let mut position = vec![0usize; graph.num_nodes()];
        for (i, &v) in decomposition.ordering.iter().enumerate() {
            position[v] = i;
        }
        let orientation = Orientation::from_total_order(&graph, |v| position[v]);
        assert_eq!(orientation.max_out_degree(), 1);
        let result = arb_linial_coloring(&graph, &orientation, None).unwrap();
        assert!(result.coloring.is_proper(&graph));
        // beta = 1: the fixed point is at most (2 * 2)^2 = 16, in practice <= 9.
        assert!(
            result.final_palette() <= 16,
            "palette {}",
            result.final_palette()
        );
        assert!(result.rounds <= 10);
    }

    #[test]
    fn respects_beta_squared_bound_on_forest_unions() {
        let mut rng = ChaCha8Rng::seed_from_u64(67);
        for k in [2usize, 4] {
            let graph = generators::forest_union(800, k, &mut rng);
            let decomposition = sparse_graph::degeneracy_ordering(&graph);
            let mut position = vec![0usize; graph.num_nodes()];
            for (i, &v) in decomposition.ordering.iter().enumerate() {
                position[v] = i;
            }
            let orientation = Orientation::from_total_order(&graph, |v| position[v]);
            let beta = orientation.max_out_degree();
            let result = arb_linial_coloring(&graph, &orientation, None).unwrap();
            assert!(result.coloring.is_proper(&graph), "k = {k}");
            assert!(
                result.final_palette() <= 4 * (beta + 2) * (beta + 2),
                "k = {k}: palette {} for beta {beta}",
                result.final_palette()
            );
        }
    }

    #[test]
    fn palette_trajectory_is_monotone_decreasing() {
        let mut rng = ChaCha8Rng::seed_from_u64(71);
        let graph = generators::preferential_attachment(600, 3, &mut rng);
        let orientation = id_orientation(&graph);
        let result = arb_linial_coloring(&graph, &orientation, None).unwrap();
        for window in result.palette_trajectory.windows(2) {
            assert!(window[1] <= window[0]);
        }
        assert_eq!(result.palette_trajectory[0], 600);
    }

    #[test]
    fn accepts_an_explicit_initial_coloring() {
        let graph = generators::cycle(50);
        let orientation = id_orientation(&graph);
        let greedy = sparse_graph::greedy_by_id_order(&graph);
        let result = arb_linial_coloring(&graph, &orientation, Some(&greedy)).unwrap();
        assert!(result.coloring.is_proper(&graph));
        assert!(result.final_palette() <= greedy.palette_size().max(16));
    }

    #[test]
    fn rejects_improper_initial_colorings() {
        let graph = generators::cycle(4);
        let orientation = id_orientation(&graph);
        let bad = Coloring::new(vec![0, 0, 1, 1]);
        assert!(arb_linial_coloring(&graph, &orientation, Some(&bad)).is_err());
    }

    #[test]
    fn rejects_orientations_that_do_not_cover() {
        let graph = generators::cycle(4);
        let partial = Orientation::from_out_neighbors(vec![vec![1], vec![2], vec![3], vec![]]);
        assert!(arb_linial_coloring(&graph, &partial, None).is_err());
    }

    #[test]
    fn single_round_reduction_is_proper_and_small() {
        // Directly exercise one reduction round on a star oriented towards
        // the hub (out-degree 1).
        let graph = generators::star(200);
        let orientation = Orientation::from_total_order(&graph, |v| if v == 0 { 1 } else { 0 });
        let colors: Vec<usize> = (0..200).collect();
        let (new_colors, new_palette) = reduction_round(&graph, &orientation, &colors, 200, 1, 2);
        assert!(new_palette < 200);
        let coloring = Coloring::new(new_colors);
        assert!(coloring.is_proper(&graph));
        assert!(coloring.palette_size() <= new_palette);
    }
}
