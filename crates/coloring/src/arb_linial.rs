//! The Arb-Linial one-sided color reduction (Sections 6.1–6.2).
//!
//! Linial's classic coloring algorithm reduces an `m`-coloring to an
//! `O(∆² log m)`-coloring in one round using cover-free set families. As
//! observed by Barenboim–Elkin [BE10b], the algorithm only needs the colors
//! of *out*-neighbors of an acyclic orientation, so `∆` can be replaced by
//! the maximum out-degree `β` — this is the version the paper simulates
//! inside AMPC on top of its β-partitions.
//!
//! The cover-free families are the standard polynomial construction over a
//! prime field `GF(q)`: color `c` is identified with the polynomial whose
//! coefficients are the base-`q` digits of `c`, and the set of `c` is
//! `{(a, p_c(a)) : a ∈ GF(q)}`. For `q > d·β` a node can always pick an
//! evaluation point on which its polynomial differs from the polynomials of
//! all (at most `β`) out-neighbors, and the pair `(a, p_c(a))` becomes its
//! new color from a palette of size `q²`.
//!
//! Every node decides its new color from its own polynomial and its
//! out-neighbors' — a pure per-node function — so each reduction round runs
//! as one [`RoundPrimitives::par_node_map`] over the shared worker pool,
//! bit-identical to the sequential loop for any thread count.

use std::fmt;

use ampc_runtime::{simd, RoundPrimitives};
use sparse_graph::{Coloring, CsrGraph, NodeId, Orientation};

use crate::primes::next_prime;

/// Structured failures of the Arb-Linial reduction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArbLinialError {
    /// The supplied orientation does not cover the graph's edge set.
    UncoveredOrientation,
    /// The supplied initial coloring is not proper.
    ImproperInitialColoring,
    /// The `q²` palette of a reduction round does not fit the machine: the
    /// prime `q` required for this `palette`/`beta`/`degree` combination
    /// squares past `usize::MAX` (or its search range overflows `u64`).
    /// Pathological inputs only — returned instead of a silent wrap or
    /// panic.
    PaletteOverflow {
        /// The palette the round started from.
        palette: usize,
        /// The orientation's maximum out-degree.
        beta: usize,
        /// The polynomial degree of the attempted round.
        degree: usize,
    },
}

impl fmt::Display for ArbLinialError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArbLinialError::UncoveredOrientation => {
                write!(f, "orientation does not cover the graph's edge set")
            }
            ArbLinialError::ImproperInitialColoring => {
                write!(f, "initial coloring is not proper")
            }
            ArbLinialError::PaletteOverflow {
                palette,
                beta,
                degree,
            } => write!(
                f,
                "reduction palette overflows: no representable prime q with q > {degree} * {beta} \
                 and q^{} >= {palette} whose square fits a usize",
                degree + 1
            ),
        }
    }
}

impl std::error::Error for ArbLinialError {}

impl From<ArbLinialError> for String {
    fn from(error: ArbLinialError) -> Self {
        error.to_string()
    }
}

/// Result of running the Arb-Linial reduction to its fixed point.
#[derive(Debug, Clone)]
pub struct ArbLinialResult {
    /// The final proper coloring.
    pub coloring: Coloring,
    /// Palette size after every round, starting with the input palette.
    pub palette_trajectory: Vec<usize>,
    /// Number of (simulated LOCAL) reduction rounds executed.
    pub rounds: usize,
}

impl ArbLinialResult {
    /// The final palette size (`palette_trajectory.last()`).
    pub fn final_palette(&self) -> usize {
        *self
            .palette_trajectory
            .last()
            .expect("trajectory always contains the initial palette")
    }
}

/// The smallest prime `q` with `q > d·β` and `q^{d+1} ≥ palette`, or a
/// [`ArbLinialError::PaletteOverflow`] if no such `q` is representable.
fn reduction_prime(palette: usize, beta: usize, d: usize) -> Result<u64, ArbLinialError> {
    let overflow = || ArbLinialError::PaletteOverflow {
        palette,
        beta,
        degree: d,
    };
    let floor = (d as u128) * (beta as u128) + 1;
    // Bertrand: next_prime(n) < 2n, so the search stays in u64 as long as
    // the floor does; beyond that q² cannot fit a usize anyway.
    if floor > (u64::MAX / 2) as u128 {
        return Err(overflow());
    }
    let mut q = next_prime(floor as u64);
    loop {
        // checked_pow overflowing u128 means q^{d+1} ≥ 2^128 > palette, so
        // the palette constraint is certainly satisfied.
        let big_enough = (q as u128)
            .checked_pow(d as u32 + 1)
            .is_none_or(|power| power >= palette as u128);
        if big_enough {
            break;
        }
        let Some(next) = q.checked_add(1) else {
            return Err(overflow());
        };
        if next > u64::MAX / 2 {
            return Err(overflow());
        }
        q = next_prime(next);
    }
    let squared = (q as u128) * (q as u128);
    if squared > usize::MAX as u128 {
        return Err(overflow());
    }
    Ok(q)
}

/// The palette `q²` that one reduction round with polynomial degree `d`
/// would produce from the given palette.
fn palette_after_round(palette: usize, beta: usize, d: usize) -> Result<usize, ArbLinialError> {
    let q = reduction_prime(palette, beta, d)?;
    Ok((q * q) as usize)
}

/// The polynomial degree minimizing the palette after one reduction round.
/// Degrees whose palette overflows are skipped; if every candidate
/// overflows, the overflow of the smallest degree is reported.
fn best_degree(palette: usize, beta: usize) -> Result<usize, ArbLinialError> {
    let max_degree = (usize::BITS - palette.max(2).leading_zeros()) as usize + 1;
    let mut best: Option<(usize, usize)> = None;
    let mut first_error: Option<ArbLinialError> = None;
    for d in 1..=max_degree.max(1) {
        match palette_after_round(palette, beta, d) {
            Ok(next) => {
                if best.is_none_or(|(best_next, _)| next < best_next) {
                    best = Some((next, d));
                }
            }
            Err(error) => {
                first_error.get_or_insert(error);
            }
        }
    }
    match best {
        Some((_, d)) => Ok(d),
        None => Err(first_error.expect("at least one degree was attempted")),
    }
}

/// Per-worker scratch of one reduction round: the node's own polynomial
/// coefficients plus its out-neighbors' polynomials flattened with stride
/// `d + 1`. Leased from the context's scratch registry, so the per-node /
/// per-neighbor `Vec` allocations of the old decoding are gone in steady
/// state.
#[derive(Debug, Default)]
struct PolyScratch {
    own: Vec<u64>,
    neighbors: Vec<u64>,
}

/// One round of the polynomial reduction: maps a proper `m`-coloring to a
/// proper `q²`-coloring where `q` is the smallest prime satisfying
/// `q ≥ d·β + 1` and `q^{d+1} ≥ m`.
///
/// Every node's new color is a pure function of its own and its
/// out-neighbors' current colors, so the per-node loop fans out over the
/// worker pool; results are written into the caller-owned `out` buffer
/// (recycled across rounds) in node order.
///
/// Returns the new palette size `q²`.
#[allow(clippy::too_many_arguments)]
fn reduction_round_into(
    graph: &CsrGraph,
    orientation: &Orientation,
    colors: &[usize],
    palette: usize,
    beta: usize,
    degree_d: usize,
    primitives: &RoundPrimitives,
    out: &mut Vec<usize>,
) -> Result<usize, ArbLinialError> {
    let d = degree_d.max(1);
    // q must exceed d * beta (so that at most d*beta evaluation points are
    // "covered" by out-neighbors) and q^{d+1} must reach the palette so that
    // distinct colors map to distinct polynomials.
    let q = reduction_prime(palette, beta, d)? as usize;

    // Coefficients of color c: its base-q digits (d+1 of them), appended to
    // a reused buffer.
    let decode_into = |c: usize, digits: &mut Vec<u64>| {
        let mut rest = c as u64;
        for _ in 0..=d {
            digits.push(rest % q as u64);
            rest /= q as u64;
        }
    };
    let evaluate = |coeffs: &[u64], a: u64| -> u64 {
        // Horner evaluation over GF(q).
        let mut value = 0u64;
        for &coefficient in coeffs.iter().rev() {
            value = (value * a + coefficient) % q as u64;
        }
        value
    };

    // Cost-weighted chunking: a node's round cost is dominated by scanning
    // its out-neighbors (polynomial decoding plus up to q evaluations per
    // out-neighbor), so the out-degree is the per-node weight. On skewed
    // orientations — power-law graphs oriented by node id put most edges on
    // a few hubs — this shatters the hub-heavy index ranges into many
    // small, stealable tasks instead of one dominant contiguous chunk.
    let scratch = primitives.scratch_pool::<PolyScratch>();
    primitives.par_node_map_weighted_into(
        graph.num_nodes(),
        |v| orientation.out_degree(v),
        |v| {
            let mut lease = scratch.lease();
            let PolyScratch { own, neighbors } = &mut *lease;
            own.clear();
            decode_into(colors[v], own);
            neighbors.clear();
            let out = orientation.out_neighbors(v);
            for (at, &u) in out.iter().enumerate() {
                // The color gather is scattered even though the out-list
                // streams sequentially; prefetch a few iterations ahead to
                // hide the latency on wide orientations.
                if let Some(&ahead) = out.get(at + simd::PREFETCH_LOOKAHEAD) {
                    simd::prefetch_read(colors, ahead);
                }
                decode_into(colors[u], neighbors);
            }
            let mut chosen = None;
            for a in 0..q as u64 {
                let own_value = evaluate(own, a);
                let clashes = neighbors
                    .chunks_exact(d + 1)
                    .any(|poly| evaluate(poly, a) == own_value);
                if !clashes {
                    chosen = Some((a, own_value));
                    break;
                }
            }
            let (a, value) = chosen.expect(
                "a conflict-free evaluation point exists because q > d * beta \
             bounds the number of covered points",
            );
            (a as usize) * q + value as usize
        },
        out,
    );
    Ok(q * q)
}

/// Runs the Arb-Linial algorithm on top of an acyclic orientation until the
/// palette stops shrinking, executing every per-node reduction round on the
/// supplied [`RoundPrimitives`] context.
///
/// Bit-identical to [`arb_linial_coloring`] (the strictly sequential entry
/// point) for any thread count: each round is a pure per-node map merged in
/// node order.
///
/// # Errors
///
/// See [`arb_linial_coloring`].
pub fn arb_linial_coloring_with_runtime(
    graph: &CsrGraph,
    orientation: &Orientation,
    initial: Option<&Coloring>,
    primitives: &RoundPrimitives,
) -> Result<ArbLinialResult, ArbLinialError> {
    if !orientation.covers_graph(graph) {
        return Err(ArbLinialError::UncoveredOrientation);
    }
    let n = graph.num_nodes();
    let beta = orientation.max_out_degree();

    let (mut colors, mut palette): (Vec<usize>, usize) = match initial {
        Some(coloring) => {
            if !coloring.is_proper(graph) {
                return Err(ArbLinialError::ImproperInitialColoring);
            }
            (coloring.colors().to_vec(), coloring.palette_size().max(1))
        }
        None => ((0..n).collect::<Vec<NodeId>>(), n.max(1)),
    };

    let mut trajectory = vec![palette];
    let mut rounds = 0usize;
    // The round output buffer, swapped with `colors` after every accepted
    // round — one allocation for the whole run instead of one per round.
    let mut next_colors: Vec<usize> = Vec::new();

    loop {
        // Choose the polynomial degree that gives the strongest single-round
        // reduction (the classic Linial schedule uses a logarithmic degree
        // while the palette is huge and degree ~2 near the fixed point).
        let mut span = primitives
            .span("arb_linial.round", "simulator")
            .with_arg("round", rounds as u64)
            .with_arg("palette", palette as u64);
        let degree = best_degree(palette, beta)?;
        let new_palette = reduction_round_into(
            graph,
            orientation,
            &colors,
            palette,
            beta,
            degree,
            primitives,
            &mut next_colors,
        )?;
        span.set_arg("palette_after", new_palette.min(palette) as u64);
        drop(span);
        rounds += 1;
        if new_palette >= palette {
            // Fixed point reached; keep the smaller palette (the round's
            // output stays in the spare buffer, discarded by reuse).
            trajectory.push(palette);
            break;
        }
        std::mem::swap(&mut colors, &mut next_colors);
        palette = new_palette;
        trajectory.push(palette);
        if rounds > 64 {
            break; // safety net; log* n convergence makes this unreachable
        }
    }

    Ok(ArbLinialResult {
        coloring: Coloring::new(colors),
        palette_trajectory: trajectory,
        rounds,
    })
}

/// Runs the Arb-Linial algorithm on top of an acyclic orientation until the
/// palette stops shrinking.
///
/// * `graph` — the input graph,
/// * `orientation` — an acyclic orientation covering `graph` (out-degree
///   `β`), typically derived from a β-partition,
/// * `initial` — a proper coloring to start from; `None` uses the trivial
///   `n`-coloring by node id (what the paper's simulation does).
///
/// The final palette is `O(β²)`: at the fixed point the reduction uses
/// degree `d = 1` polynomials over the smallest prime `q ≥ β + 1` capable of
/// encoding the palette, so the palette converges to at most
/// `(2(β + 1))² = O(β²)` by Bertrand's postulate (in practice much closer to
/// `(β + 1)²`).
///
/// This entry point runs strictly sequentially; use
/// [`arb_linial_coloring_with_runtime`] to fan the per-node rounds out over
/// the persistent worker pool (the results are bit-identical).
///
/// # Errors
///
/// Returns an error if `orientation` does not cover `graph`, if `initial`
/// is not a proper coloring (the reduction requires adjacent nodes to carry
/// distinct polynomials), or — for pathological `palette`/`beta`
/// combinations — if the `q²` palette of a round cannot be represented
/// ([`ArbLinialError::PaletteOverflow`]).
///
/// # Examples
///
/// ```
/// use arbo_coloring::arb_linial_coloring;
/// use sparse_graph::{generators, Orientation};
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(9);
/// let graph = generators::forest_union(500, 2, &mut rng);
/// // Orient by node id: out-degree can be large, but stays far below n.
/// let orientation = Orientation::from_total_order(&graph, |v| v);
/// let result = arb_linial_coloring(&graph, &orientation, None)?;
/// assert!(result.coloring.is_proper(&graph));
/// let beta = orientation.max_out_degree();
/// assert!(result.final_palette() <= 4 * (beta + 2) * (beta + 2));
/// # Ok::<(), arbo_coloring::ArbLinialError>(())
/// ```
pub fn arb_linial_coloring(
    graph: &CsrGraph,
    orientation: &Orientation,
    initial: Option<&Coloring>,
) -> Result<ArbLinialResult, ArbLinialError> {
    arb_linial_coloring_with_runtime(graph, orientation, initial, &RoundPrimitives::sequential())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use sparse_graph::generators;

    fn id_orientation(graph: &CsrGraph) -> Orientation {
        Orientation::from_total_order(graph, |v| v)
    }

    #[test]
    fn colors_a_tree_with_constant_palette() {
        let mut rng = ChaCha8Rng::seed_from_u64(61);
        let graph = generators::random_tree(1_000, &mut rng);
        // Orient towards the root-free degeneracy order: out-degree 1.
        let decomposition = sparse_graph::degeneracy_ordering(&graph);
        let mut position = vec![0usize; graph.num_nodes()];
        for (i, &v) in decomposition.ordering.iter().enumerate() {
            position[v] = i;
        }
        let orientation = Orientation::from_total_order(&graph, |v| position[v]);
        assert_eq!(orientation.max_out_degree(), 1);
        let result = arb_linial_coloring(&graph, &orientation, None).unwrap();
        assert!(result.coloring.is_proper(&graph));
        // beta = 1: the fixed point is at most (2 * 2)^2 = 16, in practice <= 9.
        assert!(
            result.final_palette() <= 16,
            "palette {}",
            result.final_palette()
        );
        assert!(result.rounds <= 10);
    }

    #[test]
    fn respects_beta_squared_bound_on_forest_unions() {
        let mut rng = ChaCha8Rng::seed_from_u64(67);
        for k in [2usize, 4] {
            let graph = generators::forest_union(800, k, &mut rng);
            let decomposition = sparse_graph::degeneracy_ordering(&graph);
            let mut position = vec![0usize; graph.num_nodes()];
            for (i, &v) in decomposition.ordering.iter().enumerate() {
                position[v] = i;
            }
            let orientation = Orientation::from_total_order(&graph, |v| position[v]);
            let beta = orientation.max_out_degree();
            let result = arb_linial_coloring(&graph, &orientation, None).unwrap();
            assert!(result.coloring.is_proper(&graph), "k = {k}");
            assert!(
                result.final_palette() <= 4 * (beta + 2) * (beta + 2),
                "k = {k}: palette {} for beta {beta}",
                result.final_palette()
            );
        }
    }

    #[test]
    fn palette_trajectory_is_monotone_decreasing() {
        let mut rng = ChaCha8Rng::seed_from_u64(71);
        let graph = generators::preferential_attachment(600, 3, &mut rng);
        let orientation = id_orientation(&graph);
        let result = arb_linial_coloring(&graph, &orientation, None).unwrap();
        for window in result.palette_trajectory.windows(2) {
            assert!(window[1] <= window[0]);
        }
        assert_eq!(result.palette_trajectory[0], 600);
    }

    #[test]
    fn accepts_an_explicit_initial_coloring() {
        let graph = generators::cycle(50);
        let orientation = id_orientation(&graph);
        let greedy = sparse_graph::greedy_by_id_order(&graph);
        let result = arb_linial_coloring(&graph, &orientation, Some(&greedy)).unwrap();
        assert!(result.coloring.is_proper(&graph));
        assert!(result.final_palette() <= greedy.palette_size().max(16));
    }

    #[test]
    fn rejects_improper_initial_colorings() {
        let graph = generators::cycle(4);
        let orientation = id_orientation(&graph);
        let bad = Coloring::new(vec![0, 0, 1, 1]);
        assert_eq!(
            arb_linial_coloring(&graph, &orientation, Some(&bad)).unwrap_err(),
            ArbLinialError::ImproperInitialColoring
        );
    }

    #[test]
    fn rejects_orientations_that_do_not_cover() {
        let graph = generators::cycle(4);
        let partial = Orientation::from_out_neighbors(vec![vec![1], vec![2], vec![3], vec![]]);
        assert_eq!(
            arb_linial_coloring(&graph, &partial, None).unwrap_err(),
            ArbLinialError::UncoveredOrientation
        );
    }

    #[test]
    fn single_round_reduction_is_proper_and_small() {
        // Directly exercise one reduction round on a star oriented towards
        // the hub (out-degree 1).
        let graph = generators::star(200);
        let orientation = Orientation::from_total_order(&graph, |v| if v == 0 { 1 } else { 0 });
        let colors: Vec<usize> = (0..200).collect();
        let mut new_colors = Vec::new();
        let new_palette = reduction_round_into(
            &graph,
            &orientation,
            &colors,
            200,
            1,
            2,
            &RoundPrimitives::sequential(),
            &mut new_colors,
        )
        .unwrap();
        assert!(new_palette < 200);
        let coloring = Coloring::new(new_colors);
        assert!(coloring.is_proper(&graph));
        assert!(coloring.palette_size() <= new_palette);
    }

    #[test]
    fn parallel_rounds_are_bit_identical_to_sequential() {
        let mut rng = ChaCha8Rng::seed_from_u64(73);
        let graph = generators::forest_union(1_500, 3, &mut rng);
        let orientation = id_orientation(&graph);
        let reference = arb_linial_coloring(&graph, &orientation, None).unwrap();
        for threads in [2usize, 4, 7] {
            let primitives = RoundPrimitives::new(threads);
            let parallel =
                arb_linial_coloring_with_runtime(&graph, &orientation, None, &primitives).unwrap();
            assert_eq!(reference.coloring, parallel.coloring, "threads {threads}");
            assert_eq!(reference.palette_trajectory, parallel.palette_trajectory);
            assert_eq!(reference.rounds, parallel.rounds);
            assert!(primitives.tasks_executed() > 0);
        }
    }

    #[test]
    fn pathological_palette_beta_combinations_error_instead_of_wrapping() {
        // q² for these combinations cannot fit a usize: the structured
        // overflow error is returned instead of a silent wrap or panic.
        let err = palette_after_round(usize::MAX, usize::MAX / 2, 3).unwrap_err();
        assert!(
            matches!(err, ArbLinialError::PaletteOverflow { .. }),
            "{err}"
        );
        assert!(err.to_string().contains("overflow"), "{err}");

        // d * beta + 1 itself past the u64 search range.
        let err = palette_after_round(16, usize::MAX, usize::MAX).unwrap_err();
        assert!(matches!(err, ArbLinialError::PaletteOverflow { .. }));

        // best_degree surfaces the overflow when *every* degree overflows,
        // and skips overflowing degrees when a representable one exists.
        assert!(best_degree(usize::MAX, usize::MAX / 2).is_err());
        assert!(best_degree(1_000, 7).is_ok());

        // Sane combinations are untouched.
        assert_eq!(palette_after_round(200, 1, 2).unwrap(), 49);
    }
}
