//! The deterministic low-space MPC coloring of Theorem 1.5.
//!
//! One *phase* colors the currently uncolored nodes `U` with a palette of
//! `2x∆` colors (rounded up to a power of two) so that at most a `1/(2x)`
//! fraction of the edges incident to `U` is monochromatic:
//!
//! * The random trial assigns node `v` the color `M·v̂` where `M` is a random
//!   0/1 matrix over GF(2) and `v̂` is the binary encoding of `v` with an
//!   appended 1. For any two distinct nodes (and for a node against a fixed
//!   color) the collision probability is exactly `2^{-bits}`, so the expected
//!   number of monochromatic edges incident to `U` is at most `|U|/(2x)`.
//! * The seed (the matrix `M`, `O(log² n)` bits) is fixed deterministically
//!   with the method of conditional expectations: the exact conditional
//!   expectation of the number of monochromatic edges is computable edge by
//!   edge and aggregated over a broadcast tree, and each batch of seed bits
//!   is fixed to the assignment minimizing it.
//! * Nodes with no incident monochromatic edge keep their color; the rest
//!   stay uncolored and the next phase repeats the process on them.
//!
//! The number of uncolored nodes drops by a factor `x` per phase, so
//! `O(log_x n)` phases suffice — each phase costs `O(1/δ²)` MPC rounds of
//! aggregation, matching the `O(log_x n)` rounds (for constant `δ`) of the
//! theorem.
//!
//! # Bit-packed GF(2) representation
//!
//! Everything GF(2)-valued here — seed rows, node encodings, the per-phase
//! edge-query table — is packed 64 coordinates per `u64` word and operated
//! on with the word/SIMD kernels of [`ampc_runtime::simd`]. A seed row is
//! a pair of masks (`fixed` = which coordinates are decided, `value` ⊆
//! `fixed` = which are decided *to 1*), so the per-edge collision
//! probability is three word-ops per color bit: "any queried coordinate
//! still free?" (`d & !fixed ≠ 0` → probability 1/2), else "does the fixed
//! parity hit the target?" (`popcount(d & value) & 1`). The probabilities
//! this produces are bit-identical to the former one-byte-per-coordinate
//! evaluation: each is exactly `0.5`, `1.0` or `0.0` per row, multiplied
//! in row order — dyadic rationals with no rounding anywhere.

use ampc_model::mpc::{MpcConfig, MpcCostTracker};
use ampc_runtime::{simd, RoundPrimitives};
use sparse_graph::{Coloring, CsrGraph, NodeId, NodePermutation, PartialColoring};

/// Bits per packed GF(2) word.
const WORD_BITS: usize = 64;

/// Parameters of the derandomized coloring.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DerandParams {
    /// The trade-off parameter `x > 1`: the palette has `~2x∆` colors and the
    /// number of phases is `O(log_x n)`.
    pub x: usize,
    /// Local-space exponent `δ` used for MPC round accounting.
    pub delta: f64,
    /// Number of seed bits fixed per conditional-expectation batch
    /// (`⌊δ/3 · log₂ n⌋` in the paper; any positive value preserves
    /// correctness, smaller values only change the round accounting).
    pub batch_bits: usize,
    /// Safety cap on the number of phases.
    pub max_phases: usize,
}

impl Default for DerandParams {
    fn default() -> Self {
        DerandParams {
            x: 2,
            delta: 0.5,
            batch_bits: 4,
            max_phases: 64,
        }
    }
}

impl DerandParams {
    /// Parameters with a given `x` and defaults elsewhere.
    pub fn with_x(x: usize) -> Self {
        DerandParams {
            x: x.max(2),
            ..Default::default()
        }
    }
}

/// Result of the derandomized MPC coloring.
#[derive(Debug, Clone)]
pub struct DerandColoringResult {
    /// The final proper coloring (palette `{0, …, 2x∆ − 1}` rounded to a
    /// power of two).
    pub coloring: Coloring,
    /// The palette size used.
    pub palette: usize,
    /// Number of phases executed.
    pub phases: usize,
    /// Number of uncolored nodes after each phase.
    pub uncolored_history: Vec<usize>,
    /// Simulated MPC rounds charged (aggregations for every batch of every
    /// phase).
    pub mpc_rounds: usize,
}

/// `2^-k` exactly, by exponent construction (`k` far below the subnormal
/// threshold here: it is bounded by the seed's row count).
fn half_pow(k: u32) -> f64 {
    debug_assert!(k < 1023, "2^-{k} is not a normal f64");
    f64::from_bits(u64::from(1023 - k) << 52)
}

/// Bits of `v`'s id field landing in packed word `word` of an encoding
/// with `cols` coordinates: coordinates `64·word ..` clipped to the id
/// field `0..cols-1` (coordinate `cols-1` is the appended constant 1,
/// never an id bit). Shared by [`encode_into`] and the seed's per-node
/// parity so the two can never disagree on clipping.
fn id_field_word(v: NodeId, cols: usize, word: usize) -> u64 {
    let base = word * WORD_BITS;
    let field = cols - 1;
    if base >= field {
        return 0;
    }
    let mut bits = if base >= usize::BITS as usize {
        0
    } else {
        (v >> base) as u64
    };
    let available = field - base;
    if available < WORD_BITS {
        bits &= (1u64 << available) - 1;
    }
    bits
}

/// The seed: a 0/1 matrix over GF(2) with `rows = color bits` and
/// `cols = node-id bits + 1`, stored as two word-packed masks per row.
/// Flat bit index `r * cols + c` addresses entry `(r, c)`, matching the
/// batch loop's bit numbering.
#[derive(Debug, Clone)]
struct Seed {
    rows: usize,
    cols: usize,
    /// Packed words per row: `cols.div_ceil(64)`.
    words: usize,
    /// Bit set ⇔ the coordinate has been fixed (by a candidate write or a
    /// committed batch); clear ⇔ still random.
    fixed: Vec<u64>,
    /// Bit set ⇔ fixed *to 1*. Invariant: `value ⊆ fixed` — [`Seed::set_bit`]
    /// clears the value bit whenever it fixes a coordinate to 0, so parity
    /// masks never see stale candidate bits.
    value: Vec<u64>,
}

impl Seed {
    fn new(rows: usize, cols: usize) -> Self {
        let words = cols.div_ceil(WORD_BITS);
        Seed {
            rows,
            cols,
            words,
            fixed: vec![0; rows * words],
            value: vec![0; rows * words],
        }
    }

    fn row_fixed(&self, row: usize) -> &[u64] {
        &self.fixed[row * self.words..(row + 1) * self.words]
    }

    fn row_value(&self, row: usize) -> &[u64] {
        &self.value[row * self.words..(row + 1) * self.words]
    }

    /// Fixes flat bit `bit_index` (= `row * cols + col`) to `bit`,
    /// overwriting any earlier fixing — the batch loop writes every
    /// candidate assignment over the same positions and commits the winner
    /// last.
    fn set_bit(&mut self, bit_index: usize, bit: bool) {
        let (row, col) = (bit_index / self.cols, bit_index % self.cols);
        let word = row * self.words + col / WORD_BITS;
        let mask = 1u64 << (col % WORD_BITS);
        self.fixed[word] |= mask;
        if bit {
            self.value[word] |= mask;
        } else {
            self.value[word] &= !mask;
        }
    }

    /// The color of node `v` once every bit is fixed: one masked parity
    /// per row, straight off `v`'s bits — no per-node encoding buffer.
    fn color_of(&self, v: NodeId) -> usize {
        let mut color = 0usize;
        let constant = self.cols - 1;
        for row in 0..self.rows {
            let value = self.row_value(row);
            let mut folded = 0u64;
            for (word, &mask) in value.iter().enumerate() {
                folded ^= mask & id_field_word(v, self.cols, word);
            }
            // The appended constant-1 coordinate.
            let constant_hit = value[constant / WORD_BITS] >> (constant % WORD_BITS) & 1;
            if (u64::from(folded.count_ones()) + constant_hit) & 1 == 1 {
                color |= 1 << row;
            }
        }
        color
    }

    /// Probability that `M·d` equals the bit pattern `target` (given the
    /// currently fixed bits), for a non-zero `d`. Per row: any queried
    /// coordinate still random makes the row's parity uniform (probability
    /// 1/2); otherwise the fixed parity either hits the target bit
    /// (probability 1) or misses it (0). Rows are independent; the first
    /// impossible row short-circuits to 0 exactly like the row-by-row
    /// product it replaces, and the surviving product `0.5^free_rows` is
    /// reconstructed exactly by exponent arithmetic.
    fn collision_probability(&self, d: &[u64], target: usize) -> f64 {
        let mut free_rows = 0u32;
        for row in 0..self.rows {
            let target_bit = (target >> row) & 1 == 1;
            if simd::and_not_any(d, self.row_fixed(row)) {
                free_rows += 1;
            } else if simd::masked_parity(d, self.row_value(row)) != target_bit {
                return 0.0;
            }
        }
        half_pow(free_rows)
    }
}

/// Binary encoding of a node id with an appended constant-1 coordinate (so
/// that the encoding is never the zero vector and distinct nodes differ),
/// packed into `cols.div_ceil(64)` words in a reused buffer.
fn encode_into(v: NodeId, cols: usize, out: &mut Vec<u64>) {
    out.clear();
    for word in 0..cols.div_ceil(WORD_BITS) {
        out.push(id_field_word(v, cols, word));
    }
    let constant = cols - 1;
    out[constant / WORD_BITS] |= 1u64 << (constant % WORD_BITS);
}

/// Runs the deterministic `2x∆`-coloring of Theorem 1.5.
///
/// The returned palette is `2x∆` rounded up to the next power of two (and at
/// least 2); the number of phases is `O(log_x n)`.
///
/// # Panics
///
/// Panics if `params.x < 2` was constructed manually (use
/// [`DerandParams::with_x`], which clamps).
///
/// # Examples
///
/// ```
/// use arbo_coloring::{derandomized_coloring, DerandParams};
/// use sparse_graph::generators;
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(13);
/// let graph = generators::gnm(120, 300, &mut rng);
/// let result = derandomized_coloring(&graph, &DerandParams::with_x(2));
/// assert!(result.coloring.is_proper(&graph));
/// assert!(result.palette <= 4 * graph.max_degree().next_power_of_two().max(2));
/// ```
pub fn derandomized_coloring(graph: &CsrGraph, params: &DerandParams) -> DerandColoringResult {
    derandomized_coloring_with_runtime(graph, params, &RoundPrimitives::sequential())
}

/// [`derandomized_coloring`] with the hot per-edge and per-node sweeps
/// running on the supplied [`RoundPrimitives`] context — bit-identical
/// results for any thread count.
///
/// The conditional-expectation evaluation (one collision probability per
/// relevant edge, the inner loop of every seed batch) and the
/// tentative-color / conflict sweeps are pure per-item functions, so they
/// fan out as parallel maps; the floating-point probabilities are summed
/// left-to-right in edge order afterwards, exactly as the sequential code
/// does, so the fixed seeds (and therefore the colorings) never depend on
/// the thread count.
pub fn derandomized_coloring_with_runtime(
    graph: &CsrGraph,
    params: &DerandParams,
    primitives: &RoundPrimitives,
) -> DerandColoringResult {
    derand_run(graph, params, None, primitives)
}

/// [`derandomized_coloring_with_runtime`] on a cache-aware relabeled
/// graph: node `v` is encoded by its *original* id
/// (`permutation.to_old(v)`) instead of `v` itself.
///
/// The derandomized coloring is the one simulator whose decisions *read*
/// node ids — the GF(2) seed queries encode them — so running it naively
/// on a relabeled graph would change every query, every fixed seed, and
/// every color. Encoding the original ids restores the exact original
/// query multiset (the seed search's edge sums are exact dyadic rationals,
/// hence addition-order-independent; see the relabel module docs), so the
/// returned coloring, un-permuted through the same permutation, is
/// bit-identical to the unrelabeled run.
pub fn derandomized_coloring_relabeled(
    graph: &CsrGraph,
    params: &DerandParams,
    permutation: &NodePermutation,
    primitives: &RoundPrimitives,
) -> DerandColoringResult {
    derand_run(graph, params, Some(permutation.old_ids()), primitives)
}

/// Shared body: `encode_ids`, when present, maps a node to the id its
/// GF(2) encoding uses (`None` = encode the node's own id).
fn derand_run(
    graph: &CsrGraph,
    params: &DerandParams,
    encode_ids: Option<&[NodeId]>,
    primitives: &RoundPrimitives,
) -> DerandColoringResult {
    assert!(params.x >= 2, "x must be at least 2");
    if let Some(ids) = encode_ids {
        assert_eq!(ids.len(), graph.num_nodes(), "encoding-id table size");
    }
    let enc_id = |v: NodeId| encode_ids.map_or(v, |ids| ids[v]);
    let n = graph.num_nodes();
    let max_degree = graph.max_degree();

    // Palette 2x∆ rounded up to a power of two (at least 2 colors so the
    // seed has at least one row).
    let palette = (2 * params.x * max_degree.max(1))
        .next_power_of_two()
        .max(2);
    let color_bits = palette.trailing_zeros() as usize;
    let id_bits = (usize::BITS - n.max(2).leading_zeros()) as usize;
    let cols = id_bits + 1;
    let words = cols.div_ceil(WORD_BITS);

    let mpc = MpcConfig::new(n + graph.num_edges(), params.delta);
    let mut tracker = MpcCostTracker::new();

    let mut partial = PartialColoring::uncolored(n);
    let mut uncolored: Vec<NodeId> = graph.nodes().collect();
    let mut uncolored_history = Vec::new();
    let mut phases = 0usize;

    // Per-phase buffers, allocated once per run and recycled across
    // phases: U-membership, the relevant-edge query table (flattened
    // word-packed GF(2) vectors with stride `words` plus per-edge
    // targets), tentative colors and conflict flags. Encoding scratch and
    // the per-candidate probability buffer are leased from the primitives'
    // scratch registry so concurrent layer invocations sharing one context
    // recycle each other's buffers.
    let mut in_u: Vec<bool> = Vec::new();
    let mut edge_dirs: Vec<u64> = Vec::new();
    let mut edge_targets: Vec<usize> = Vec::new();
    let mut tentative: Vec<(NodeId, usize)> = Vec::new();
    let mut tentative_colors: Vec<Option<usize>> = Vec::new();
    let mut conflicts: Vec<bool> = Vec::new();
    let mut still_uncolored: Vec<NodeId> = Vec::new();
    let encodings = primitives.scratch_pool::<Vec<u64>>();
    let probabilities = primitives.scratch_pool::<Vec<f64>>();

    while !uncolored.is_empty() && phases < params.max_phases {
        phases += 1;
        let _phase_span = primitives
            .span("derand.phase", "simulator")
            .with_arg("phase", phases as u64)
            .with_arg("uncolored", uncolored.len() as u64);
        in_u.clear();
        in_u.resize(n, false);
        for &v in &uncolored {
            in_u[v] = true;
        }

        let mut seed = Seed::new(color_bits, cols);

        // Edges whose monochromatic status depends on the seed: both
        // endpoints in U (difference vector against target 0), or one
        // endpoint in U against the neighbor's fixed color. The queries
        // are seed-independent, so they are precomputed once per phase
        // into a flat table — the conditional-expectation evaluations (one
        // per candidate assignment per batch, the innermost loop of the
        // derandomization) then allocate nothing per edge.
        edge_dirs.clear();
        edge_targets.clear();
        {
            let mut encode_a = encodings.lease();
            let mut encode_b = encodings.lease();
            let mut xor_buf = encodings.lease();
            for (u, v) in graph.edges() {
                match (in_u[u], in_u[v]) {
                    (false, false) => continue,
                    (true, true) => {
                        encode_into(enc_id(u), cols, &mut encode_a);
                        encode_into(enc_id(v), cols, &mut encode_b);
                        simd::xor_words(&encode_a, &encode_b, &mut xor_buf);
                        edge_dirs.extend_from_slice(&xor_buf);
                        edge_targets.push(0);
                    }
                    (true, false) => {
                        encode_into(enc_id(u), cols, &mut encode_a);
                        edge_dirs.extend_from_slice(&encode_a);
                        edge_targets.push(partial.color(v).expect("colored node has a color"));
                    }
                    (false, true) => {
                        encode_into(enc_id(v), cols, &mut encode_a);
                        edge_dirs.extend_from_slice(&encode_a);
                        edge_targets.push(partial.color(u).expect("colored node has a color"));
                    }
                }
            }
        }
        let num_edges = edge_targets.len();

        // Conditional expectation of the number of monochromatic relevant
        // edges under the (partially fixed) seed. The per-edge collision
        // probabilities are computed in parallel (each is a pure function
        // of the seed and the precomputed query); the final sum runs
        // left-to-right in edge order, so the floating-point result — and
        // therefore every seed decision — matches the sequential
        // evaluation bit for bit.
        let edge_probability = |seed: &Seed, edge: usize| -> f64 {
            let query = &edge_dirs[edge * words..(edge + 1) * words];
            seed.collision_probability(query, edge_targets[edge])
        };
        let expectation = |seed: &Seed| -> f64 {
            if primitives.map_dispatches(num_edges) {
                let mut probabilities = probabilities.lease();
                primitives.par_node_map_into(
                    num_edges,
                    |edge| edge_probability(seed, edge),
                    &mut probabilities,
                );
                probabilities.iter().sum()
            } else {
                // Streamed whenever the map would run inline anyway (the
                // sequential path, and small late-phase edge sets): same
                // left-to-right sum as the parallel branch, without
                // materializing the per-edge probabilities.
                (0..num_edges)
                    .map(|edge| edge_probability(seed, edge))
                    .sum()
            }
        };

        // Method of conditional expectations, one batch of seed bits at a
        // time. Every batch costs one broadcast-tree aggregation per
        // candidate assignment; candidates are evaluated "in parallel" in
        // the model, so we charge a single aggregation per batch.
        let total_bits = color_bits * cols;
        let batch = params.batch_bits.max(1);
        let mut next_bit = 0usize;
        while next_bit < total_bits {
            let upper = (next_bit + batch).min(total_bits);
            let width = upper - next_bit;
            let mut best_assignment = 0usize;
            let mut best_value = f64::INFINITY;
            for assignment in 0..(1usize << width) {
                // The batch's bits were still free, so each candidate is
                // evaluated by writing its bits directly into the seed —
                // no per-candidate clone; the winning assignment is
                // written back after the scan.
                for (offset, bit_index) in (next_bit..upper).enumerate() {
                    seed.set_bit(bit_index, (assignment >> offset) & 1 == 1);
                }
                let value = expectation(&seed);
                if value < best_value {
                    best_value = value;
                    best_assignment = assignment;
                }
            }
            for (offset, bit_index) in (next_bit..upper).enumerate() {
                seed.set_bit(bit_index, (best_assignment >> offset) & 1 == 1);
            }
            tracker.charge_aggregation(&mpc, num_edges.max(1));
            next_bit = upper;
        }

        // Apply the fully fixed seed to U and freeze conflict-free nodes.
        // Both sweeps are pure per-node functions of the fixed seed (and
        // the previous phases' colors), so they fan out over the pool.
        primitives.par_map_into(
            &uncolored,
            |_, &v| (v, seed.color_of(enc_id(v))),
            &mut tentative,
        );
        tentative_colors.clear();
        tentative_colors.resize(n, None);
        for &(v, c) in &tentative {
            tentative_colors[v] = Some(c);
        }
        // Weighted by degree: the conflict check scans each tentative
        // node's adjacency list, the edge-dominated loop of this sweep.
        {
            let tentative_colors = &tentative_colors;
            let partial = &partial;
            let in_u = &in_u;
            primitives.par_map_weighted_into(
                &tentative,
                |_, &(v, _)| graph.degree(v),
                |_, &(v, color)| {
                    let neighbors = graph.neighbors(v);
                    neighbors.iter().enumerate().any(|(at, &w)| {
                        // The scan is a gather over node-indexed state;
                        // hint the line a few neighbors ahead while the
                        // current one resolves.
                        if let Some(&ahead) = neighbors.get(at + simd::PREFETCH_LOOKAHEAD) {
                            simd::prefetch_read(tentative_colors, ahead);
                        }
                        let other = if in_u[w] {
                            tentative_colors[w]
                        } else {
                            partial.color(w)
                        };
                        other == Some(color)
                    })
                },
                &mut conflicts,
            );
        }
        still_uncolored.clear();
        for (&(v, color), &conflicted) in tentative.iter().zip(&conflicts) {
            if conflicted {
                still_uncolored.push(v);
            } else {
                partial.set_color(v, color);
            }
        }
        tracker.charge_rounds(1); // broadcasting the fixed seed / colors
        uncolored_history.push(still_uncolored.len());
        std::mem::swap(&mut uncolored, &mut still_uncolored);
    }

    // Safety fallback: if the phase cap was hit (it should not be for sane
    // parameters), finish greedily — the palette of size 2x∆ ≥ ∆ + 1 always
    // has a free color.
    if !uncolored.is_empty() {
        for &v in &uncolored {
            let used: Vec<usize> = graph
                .neighbors(v)
                .iter()
                .filter_map(|&w| partial.color(w))
                .collect();
            let free = (0..palette)
                .find(|c| !used.contains(c))
                .expect("palette exceeds the maximum degree");
            partial.set_color(v, free);
        }
    }

    let coloring = partial.into_coloring();
    debug_assert!(coloring.is_proper(graph));
    DerandColoringResult {
        coloring,
        palette,
        phases,
        uncolored_history,
        mpc_rounds: tracker.rounds(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use sparse_graph::generators;

    #[test]
    fn relabeled_runs_unpermute_to_the_reference() {
        use sparse_graph::{relabel, RelabelPolicy};
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let graph = generators::gnm(300, 700, &mut rng);
        let params = DerandParams::with_x(2);
        let reference = derandomized_coloring(&graph, &params);
        for policy in [RelabelPolicy::DegreeSorted, RelabelPolicy::Rcm] {
            let (relabeled, permutation) = relabel(&graph, policy);
            let run = derandomized_coloring_relabeled(
                &relabeled,
                &params,
                &permutation,
                &RoundPrimitives::sequential(),
            );
            assert_eq!(
                permutation.unpermute_coloring(&run.coloring),
                reference.coloring,
                "{policy:?}"
            );
            assert_eq!(run.uncolored_history, reference.uncolored_history);
            assert_eq!(run.mpc_rounds, reference.mpc_rounds);
        }
    }

    #[test]
    fn produces_a_proper_coloring_within_the_palette() {
        let mut rng = ChaCha8Rng::seed_from_u64(101);
        let graph = generators::gnm(150, 350, &mut rng);
        let result = derandomized_coloring(&graph, &DerandParams::with_x(2));
        assert!(result.coloring.is_proper(&graph));
        assert!(result.coloring.palette_size() <= result.palette);
        assert_eq!(result.palette, (4 * graph.max_degree()).next_power_of_two());
    }

    #[test]
    fn uncolored_set_decays_geometrically() {
        let mut rng = ChaCha8Rng::seed_from_u64(103);
        let graph = generators::gnm(256, 640, &mut rng);
        let x = 4;
        let result = derandomized_coloring(&graph, &DerandParams::with_x(x));
        // Theorem 1.5: after phase i at most n / x^i nodes stay uncolored.
        let mut bound = graph.num_nodes() as f64;
        for &remaining in &result.uncolored_history {
            bound /= x as f64;
            assert!(
                remaining as f64 <= bound.max(1.0) + 1e-9,
                "remaining {remaining} exceeds bound {bound}"
            );
        }
        assert!(result.phases <= 10);
    }

    #[test]
    fn larger_x_means_fewer_phases_but_more_colors() {
        let mut rng = ChaCha8Rng::seed_from_u64(107);
        let graph = generators::gnm(180, 450, &mut rng);
        let small_x = derandomized_coloring(&graph, &DerandParams::with_x(2));
        let large_x = derandomized_coloring(&graph, &DerandParams::with_x(8));
        assert!(large_x.phases <= small_x.phases);
        assert!(large_x.palette >= small_x.palette);
        assert!(small_x.coloring.is_proper(&graph));
        assert!(large_x.coloring.is_proper(&graph));
    }

    #[test]
    fn parallel_sweeps_are_bit_identical_to_sequential() {
        let mut rng = ChaCha8Rng::seed_from_u64(111);
        let graph = generators::gnm(1_200, 3_000, &mut rng);
        let params = DerandParams::with_x(4);
        let reference = derandomized_coloring(&graph, &params);
        for threads in [2usize, 4, 7] {
            let primitives = RoundPrimitives::new(threads);
            let parallel = derandomized_coloring_with_runtime(&graph, &params, &primitives);
            assert_eq!(reference.coloring, parallel.coloring, "threads {threads}");
            assert_eq!(reference.palette, parallel.palette);
            assert_eq!(reference.phases, parallel.phases);
            assert_eq!(reference.uncolored_history, parallel.uncolored_history);
            assert_eq!(reference.mpc_rounds, parallel.mpc_rounds);
        }
    }

    #[test]
    fn works_on_high_degree_stars_and_cliques() {
        let star = generators::star(150);
        let result = derandomized_coloring(&star, &DerandParams::with_x(2));
        assert!(result.coloring.is_proper(&star));

        let clique = generators::complete(12);
        let result = derandomized_coloring(&clique, &DerandParams::with_x(2));
        assert!(result.coloring.is_proper(&clique));
        assert!(result.coloring.num_colors() >= 12);
    }

    #[test]
    fn mpc_round_accounting_scales_with_phases() {
        let mut rng = ChaCha8Rng::seed_from_u64(109);
        let graph = generators::gnm(150, 300, &mut rng);
        let result = derandomized_coloring(&graph, &DerandParams::with_x(2));
        assert!(result.mpc_rounds > 0);
        assert!(result.phases >= 1);
        // At least one aggregation per batch per phase.
        assert!(result.mpc_rounds >= result.phases);
    }

    #[test]
    fn empty_and_edgeless_graphs() {
        let empty = sparse_graph::CsrGraph::empty(0);
        let result = derandomized_coloring(&empty, &DerandParams::default());
        assert_eq!(result.coloring.num_nodes(), 0);

        let isolated = sparse_graph::CsrGraph::empty(5);
        let result = derandomized_coloring(&isolated, &DerandParams::default());
        assert!(result.coloring.is_proper(&isolated));
        assert_eq!(result.phases, 1);
    }

    /// Reads coordinate `i` of a packed encoding.
    fn packed_bit(words: &[u64], i: usize) -> bool {
        words[i / WORD_BITS] >> (i % WORD_BITS) & 1 == 1
    }

    #[test]
    fn packed_encode_and_xor_match_the_bool_reference() {
        // The pre-bitset reference implementations: one `bool` per
        // coordinate. The packed forms must produce the same coordinates
        // no matter what stale contents the reused buffers hold.
        let encode_reference = |v: NodeId, cols: usize| -> Vec<bool> {
            let mut bits = Vec::with_capacity(cols);
            for i in 0..cols - 1 {
                bits.push(i < usize::BITS as usize && (v >> i) & 1 == 1);
            }
            bits.push(true);
            bits
        };
        let xor_reference = |a: &[bool], b: &[bool]| -> Vec<bool> {
            a.iter().zip(b).map(|(&x, &y)| x ^ y).collect()
        };

        let mut encode_a = vec![u64::MAX; 3]; // stale garbage to discard
        let mut encode_b = Vec::new();
        let mut xor_buf = vec![0u64; 7];
        for cols in [2usize, 5, 11, 40, 64, 65, 130] {
            for (u, v) in [(0usize, 1usize), (3, 3), (12_345, 678), (65_535, 2)] {
                encode_into(u, cols, &mut encode_a);
                encode_into(v, cols, &mut encode_b);
                let reference_u = encode_reference(u, cols);
                let reference_v = encode_reference(v, cols);
                assert_eq!(encode_a.len(), cols.div_ceil(WORD_BITS));
                for i in 0..cols {
                    assert_eq!(
                        packed_bit(&encode_a, i),
                        reference_u[i],
                        "encode({u}, {cols}) bit {i}"
                    );
                    assert_eq!(
                        packed_bit(&encode_b, i),
                        reference_v[i],
                        "encode({v}, {cols}) bit {i}"
                    );
                }
                simd::xor_words(&encode_a, &encode_b, &mut xor_buf);
                let reference_xor = xor_reference(&reference_u, &reference_v);
                for (i, &expected) in reference_xor.iter().enumerate() {
                    assert_eq!(
                        packed_bit(&xor_buf, i),
                        expected,
                        "xor of {u} and {v} at {cols} cols, bit {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn seed_collision_probabilities_are_consistent() {
        let mut seed = Seed::new(3, 5);
        // Query over coordinates 0, 2, 4; fully random seed gives
        // probability 1/8 for any target.
        let d = vec![0b10101u64];
        assert!((seed.collision_probability(&d, 0) - 0.125).abs() < 1e-12);
        assert!((seed.collision_probability(&d, 5) - 0.125).abs() < 1e-12);
        // Fix row 0 so that its parity over d is 1: targets with bit0 = 0
        // become impossible at row 0.
        seed.set_bit(0, true); // (row 0, col 0)
        seed.set_bit(2, false); // (row 0, col 2)
        seed.set_bit(4, false); // (row 0, col 4)
        assert_eq!(seed.collision_probability(&d, 0), 0.0);
        assert!((seed.collision_probability(&d, 1) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn seed_probabilities_match_the_option_bool_reference_bit_for_bit() {
        // The pre-bitset seed: one Option<bool> per entry, row-by-row
        // probability product with an early break at zero. The packed seed
        // must reproduce its f64s exactly (they are all dyadic), for every
        // mix of free/fixed bits — including seeds wider than one word.
        struct Reference {
            rows: usize,
            cols: usize,
            bits: Vec<Option<bool>>,
        }
        impl Reference {
            fn collision_probability(&self, d: &[bool], target: usize) -> f64 {
                let mut probability = 1.0;
                for row in 0..self.rows {
                    let target_bit = (target >> row) & 1 == 1;
                    let mut fixed_parity = false;
                    let mut has_free_bit = false;
                    for (col, &d_set) in d.iter().enumerate() {
                        if !d_set {
                            continue;
                        }
                        match self.bits[row * self.cols + col] {
                            Some(true) => fixed_parity ^= true,
                            Some(false) => {}
                            None => has_free_bit = true,
                        }
                    }
                    probability *= if has_free_bit {
                        0.5
                    } else if fixed_parity == target_bit {
                        1.0
                    } else {
                        0.0
                    };
                    if probability == 0.0 {
                        break;
                    }
                }
                probability
            }
        }

        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for (rows, cols) in [(1usize, 2usize), (3, 5), (6, 19), (4, 70), (2, 130)] {
            let mut seed = Seed::new(rows, cols);
            let mut reference = Reference {
                rows,
                cols,
                bits: vec![None; rows * cols],
            };
            // Progressively fix a pseudo-random third of the bits, checking
            // probabilities for several queries at each step.
            for step in 0..4 {
                for bit_index in 0..rows * cols {
                    if next() % 3 == 0 {
                        let bit = next() & 1 == 1;
                        seed.set_bit(bit_index, bit);
                        reference.bits[bit_index] = Some(bit);
                    }
                }
                for query in 0..8 {
                    let d_bool: Vec<bool> = (0..cols).map(|_| next() % 4 != 0).collect();
                    let mut d_packed = vec![0u64; cols.div_ceil(WORD_BITS)];
                    for (i, &set) in d_bool.iter().enumerate() {
                        if set {
                            d_packed[i / WORD_BITS] |= 1 << (i % WORD_BITS);
                        }
                    }
                    for target in [0usize, 1, 5, (1 << rows) - 1] {
                        let expected = reference.collision_probability(&d_bool, target);
                        let actual = seed.collision_probability(&d_packed, target);
                        assert_eq!(
                            expected.to_bits(),
                            actual.to_bits(),
                            "({rows}x{cols}) step {step} query {query} target {target}: \
                             {expected} vs {actual}"
                        );
                    }
                }
            }
            // Fully fix the seed and check color_of against the reference
            // parity computed from bool encodings.
            for bit_index in 0..rows * cols {
                if reference.bits[bit_index].is_none() {
                    let bit = next() & 1 == 1;
                    seed.set_bit(bit_index, bit);
                    reference.bits[bit_index] = Some(bit);
                }
            }
            for v in [0usize, 1, 2, 7, 100, 54_321] {
                let mut expected = 0usize;
                for row in 0..rows {
                    let mut parity = false;
                    for col in 0..cols - 1 {
                        if col < usize::BITS as usize
                            && (v >> col) & 1 == 1
                            && reference.bits[row * cols + col].unwrap()
                        {
                            parity ^= true;
                        }
                    }
                    if reference.bits[row * cols + (cols - 1)].unwrap() {
                        parity ^= true;
                    }
                    if parity {
                        expected |= 1 << row;
                    }
                }
                assert_eq!(seed.color_of(v), expected, "({rows}x{cols}) color_of({v})");
            }
        }
    }

    #[test]
    fn half_pow_is_exact() {
        let mut product = 1.0f64;
        for k in 0..64u32 {
            assert_eq!(half_pow(k).to_bits(), product.to_bits(), "2^-{k}");
            product *= 0.5;
        }
    }
}
