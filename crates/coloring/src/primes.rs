//! Small prime utilities used by the polynomial cover-free families of the
//! Arb-Linial coloring.

/// Deterministic primality test by trial division (sufficient for the
/// palette-sized primes used here, which are at most a few million).
///
/// ```
/// assert!(arbo_coloring::is_prime(2));
/// assert!(arbo_coloring::is_prime(97));
/// assert!(!arbo_coloring::is_prime(1));
/// assert!(!arbo_coloring::is_prime(91));
/// ```
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    if n < 4 {
        return true;
    }
    if n.is_multiple_of(2) || n.is_multiple_of(3) {
        return false;
    }
    let mut candidate = 5u64;
    while candidate * candidate <= n {
        if n.is_multiple_of(candidate) || n.is_multiple_of(candidate + 2) {
            return false;
        }
        candidate += 6;
    }
    true
}

/// The smallest prime `≥ n` (Bertrand's postulate guarantees it is below
/// `2n` for `n ≥ 1`).
///
/// ```
/// assert_eq!(arbo_coloring::next_prime(10), 11);
/// assert_eq!(arbo_coloring::next_prime(11), 11);
/// assert_eq!(arbo_coloring::next_prime(0), 2);
/// ```
pub fn next_prime(n: u64) -> u64 {
    let mut candidate = n.max(2);
    while !is_prime(candidate) {
        candidate += 1;
    }
    candidate
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_primes() {
        let primes: Vec<u64> = (0..60).filter(|&n| is_prime(n)).collect();
        assert_eq!(
            primes,
            vec![2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59]
        );
    }

    #[test]
    fn next_prime_monotone_and_within_bertrand() {
        for n in 1u64..2_000 {
            let p = next_prime(n);
            assert!(p >= n);
            assert!(is_prime(p));
            assert!(p < 2 * n.max(2), "Bertrand violated at {n} -> {p}");
        }
    }

    #[test]
    fn handles_larger_inputs() {
        assert!(is_prime(104_729)); // the 10000th prime
        assert!(!is_prime(104_730));
        assert_eq!(next_prime(104_730), 104_743);
    }
}
