//! End-to-end AMPC coloring drivers (Theorem 1.3 and Section 6.4).
//!
//! Every driver follows the paper's two-step recipe: first compute a
//! β-partition with Theorem 1.2 (crate `beta-partition`), then simulate a
//! LOCAL/MPC coloring routine on top of the orientation or the layers the
//! partition provides. The drivers return both the coloring and the round
//! accounting of the two phases.

use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use ampc_runtime::trace::{span_on, TraceContext};
use ampc_runtime::{parallel_map_weighted, RoundPrimitives, RuntimeConfig};
use beta_partition::{
    ampc_beta_partition_traced, AmpcPartitionResult, BetaPartition, Layer, PartitionError,
    PartitionParams,
};
use sparse_graph::{Coloring, CsrGraph, InducedSubgraph, NodeId, Orientation};

use crate::arb_linial::{arb_linial_coloring_with_runtime, ArbLinialError};
use crate::derand::{derandomized_coloring_with_runtime, DerandParams};
use crate::kuhn_wattenhofer::kw_color_reduction_with_runtime;
use crate::recolor::{recolor_layers_with_runtime, RecolorOrder};

/// Errors reported by the coloring drivers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColoringError {
    /// The β-partition phase failed (e.g. `β < 2α`).
    Partition(PartitionError),
    /// A coloring subroutine reported an inconsistency.
    Internal(String),
    /// An AMPC round kept failing — panicking or overrunning its deadline —
    /// after the runtime's bounded retries were exhausted. Unlike
    /// [`ColoringError::Partition`] / [`ColoringError::Internal`] this is
    /// an *availability* failure, not a logic error: the job may succeed
    /// if resubmitted (the service's job-level retry does exactly that).
    RoundFailure {
        /// Round index (0-based within the failing phase).
        round: usize,
        /// What kept happening: the panic payload or the blown deadline.
        reason: String,
    },
}

impl fmt::Display for ColoringError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColoringError::Partition(err) => write!(f, "beta-partition phase failed: {err}"),
            ColoringError::Internal(message) => write!(f, "coloring phase failed: {message}"),
            ColoringError::RoundFailure { round, reason } => {
                write!(f, "round {round} failed permanently: {reason}")
            }
        }
    }
}

impl std::error::Error for ColoringError {}

impl From<PartitionError> for ColoringError {
    fn from(err: PartitionError) -> Self {
        // Retry-exhaustion failures are surfaced structurally so callers
        // (the service's job supervisor) can tell a transient round
        // failure from a deterministic partition error.
        if let PartitionError::Model(model) = &err {
            if let Some(failure) = ColoringError::from_round_failure(model) {
                return failure;
            }
        }
        ColoringError::Partition(err)
    }
}

impl ColoringError {
    /// The structured form of the runtime's retry-exhaustion errors, or
    /// `None` for ordinary (deterministic) model errors.
    fn from_round_failure(error: &ampc_model::ModelError) -> Option<ColoringError> {
        match error {
            ampc_model::ModelError::RoundPanicked { round, detail } => {
                Some(ColoringError::RoundFailure {
                    round: *round,
                    reason: format!("panicked: {detail}"),
                })
            }
            ampc_model::ModelError::RoundDeadlineExceeded {
                round,
                deadline_ms,
                attempts,
            } => Some(ColoringError::RoundFailure {
                round: *round,
                reason: format!(
                    "exceeded its {deadline_ms} ms deadline on all {attempts} attempts"
                ),
            }),
            _ => None,
        }
    }

    /// Whether this failure is transient (a whole-job retry may succeed).
    pub fn is_transient(&self) -> bool {
        matches!(self, ColoringError::RoundFailure { .. })
    }
}

impl From<String> for ColoringError {
    fn from(message: String) -> Self {
        ColoringError::Internal(message)
    }
}

impl From<ArbLinialError> for ColoringError {
    fn from(error: ArbLinialError) -> Self {
        ColoringError::Internal(error.to_string())
    }
}

impl From<crate::RecolorError> for ColoringError {
    fn from(error: crate::RecolorError) -> Self {
        ColoringError::Internal(error.to_string())
    }
}

/// Parameters shared by all Theorem 1.3 drivers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AmpcColoringParams {
    /// The constant `ε > 0` appearing in the color/round trade-offs.
    pub epsilon: f64,
    /// Local-space exponent `δ`.
    pub delta: f64,
    /// Coin budget for the partition phase's LCA (`None` derives it from the
    /// graph size as in Theorem 1.2).
    pub x: Option<usize>,
    /// Optional cap on the coin game's super-iterations (simulation-speed
    /// knob; does not affect correctness).
    pub partition_super_iterations: Option<usize>,
    /// Round limit for the partition phase.
    pub max_partition_rounds: usize,
    /// Which executor backend runs the AMPC rounds (and how many worker
    /// threads the per-layer coloring phase may use). Does not affect the
    /// result: backends are bit-identical for a fixed input.
    pub runtime: RuntimeConfig,
}

impl Default for AmpcColoringParams {
    fn default() -> Self {
        AmpcColoringParams {
            epsilon: 0.5,
            delta: 0.5,
            x: Some(4),
            partition_super_iterations: None,
            max_partition_rounds: 256,
            runtime: RuntimeConfig::default(),
        }
    }
}

impl AmpcColoringParams {
    /// Overrides `ε`.
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Overrides the partition coin budget `x`.
    pub fn with_x(mut self, x: usize) -> Self {
        self.x = Some(x);
        self
    }

    /// Selects the executor backend for the AMPC rounds.
    pub fn with_runtime(mut self, runtime: RuntimeConfig) -> Self {
        self.runtime = runtime;
        self
    }

    fn partition_params(&self, beta: usize) -> PartitionParams {
        let mut params = PartitionParams::new(beta)
            .with_delta(self.delta)
            .with_max_rounds(self.max_partition_rounds)
            .with_runtime(self.runtime);
        if let Some(x) = self.x {
            params = params.with_x(x);
        }
        if let Some(iterations) = self.partition_super_iterations {
            params = params.with_super_iterations(iterations);
        }
        params
    }
}

/// Result of an AMPC coloring driver.
#[derive(Debug, Clone)]
pub struct AmpcColoringResult {
    /// Short name of the algorithm variant (for the experiment tables).
    pub algorithm: &'static str,
    /// The proper coloring produced.
    pub coloring: Coloring,
    /// Number of distinct colors used.
    pub colors_used: usize,
    /// The β used for the partition phase.
    pub beta: usize,
    /// AMPC rounds spent computing the β-partition.
    pub partition_rounds: usize,
    /// Number of layers of the β-partition.
    pub partition_size: usize,
    /// AMPC rounds charged for the coloring phase (per the simulation
    /// arguments of Section 6).
    pub coloring_rounds: usize,
    /// `partition_rounds + coloring_rounds`.
    pub total_rounds: usize,
    /// Resource accounting of the partition phase's AMPC rounds (round
    /// reports plus runtime measurements), for callers that surface
    /// metrics — e.g. the `ampc-service` job API.
    pub metrics: ampc_model::AmpcMetrics,
}

impl AmpcColoringResult {
    fn new(
        algorithm: &'static str,
        coloring: Coloring,
        beta: usize,
        partition: &AmpcPartitionResult,
        coloring_rounds: usize,
        primitives: &RoundPrimitives,
        coloring_wall_nanos: u64,
    ) -> Self {
        let colors_used = coloring.num_colors();
        let mut metrics = partition.metrics.clone();
        // The coloring phase's intra-layer parallelism, folded in as one
        // runtime record. Like the pool stats it is measurement data only:
        // excluded from metric equality, so sequential and parallel runs
        // still report equal metrics. `wall_clock_nanos` is the driver's
        // honest phase wall clock — measured once around the whole coloring
        // phase, so it is the max over concurrently running layers —
        // whereas `intra_wall_nanos` sums per-primitive elapsed time across
        // those layers and may exceed it by up to the thread count
        // (occupancy, not wall time).
        if primitives.tasks_executed() > 0 {
            let mut stats = primitives.runtime_stats();
            stats.wall_clock_nanos = coloring_wall_nanos;
            metrics.record_runtime(stats);
        }
        AmpcColoringResult {
            algorithm,
            coloring,
            colors_used,
            beta,
            partition_rounds: partition.rounds,
            partition_size: partition.partition_size(),
            coloring_rounds,
            total_rounds: partition.rounds + coloring_rounds,
            metrics,
        }
    }
}

/// Iterated logarithm (base 2), used by the simulation-round accounting.
#[cfg_attr(not(test), allow(dead_code))]
fn log_star(n: usize) -> usize {
    let mut value = n as f64;
    let mut count = 0usize;
    while value > 2.0 {
        value = value.log2();
        count += 1;
    }
    count.max(1)
}

/// AMPC rounds charged for simulating `local_rounds` rounds of a one-sided
/// LOCAL algorithm over an orientation of out-degree `beta`: if the
/// `beta^{local_rounds}`-sized out-ball fits into `n^δ` local space the whole
/// simulation costs one adaptive round, otherwise one AMPC round per LOCAL
/// round (Sections 6.1–6.2).
fn simulation_rounds(n: usize, beta: usize, local_rounds: usize, delta: f64) -> usize {
    if n <= 1 || local_rounds == 0 {
        return 1;
    }
    let ball = (beta.max(2) as f64).powi(local_rounds as i32);
    let space = (n as f64).powf(delta);
    if ball <= space {
        1
    } else {
        local_rounds
    }
}

fn beta_for(alpha: usize, factor: f64) -> usize {
    ((alpha.max(1) as f64) * factor).ceil() as usize
}

/// Theorem 1.3 (1): an `O(α^{2+ε})`-coloring in `O(1/ε)` AMPC rounds.
///
/// Uses `β = α^{1+ε}` so the partition phase takes `O(1/ε)` rounds, then one
/// adaptive round of Arb-Linial simulation gives `O(β²) = O(α^{2+2ε})`
/// colors.
///
/// # Errors
///
/// See [`ColoringError`]; in particular the partition phase fails if `alpha`
/// underestimates the arboricity so much that `β < 2α(G)`.
pub fn color_alpha_power(
    graph: &CsrGraph,
    alpha: usize,
    params: &AmpcColoringParams,
) -> Result<AmpcColoringResult, ColoringError> {
    color_alpha_power_traced(graph, alpha, params, None)
}

/// [`color_alpha_power`] with an optional span recorder attached (see
/// [`color_two_alpha_plus_one_traced`] for the tracing contract).
///
/// # Errors
///
/// See [`color_alpha_power`].
pub fn color_alpha_power_traced(
    graph: &CsrGraph,
    alpha: usize,
    params: &AmpcColoringParams,
    trace: Option<Arc<TraceContext>>,
) -> Result<AmpcColoringResult, ColoringError> {
    let beta = ((alpha.max(2) as f64).powf(1.0 + params.epsilon).ceil() as usize).max(2);
    arb_linial_driver(graph, beta, params, "alpha^(2+eps)", trace)
}

/// Theorem 1.3 (2): an `O(α²)`-coloring in `O(log α)` AMPC rounds.
///
/// Uses `β = (2 + ε)α` (so the partition phase takes `O(log α)` rounds) and
/// the same Arb-Linial simulation, giving `O(β²) = O(α²)` colors.
///
/// # Errors
///
/// See [`ColoringError`].
pub fn color_alpha_squared(
    graph: &CsrGraph,
    alpha: usize,
    params: &AmpcColoringParams,
) -> Result<AmpcColoringResult, ColoringError> {
    color_alpha_squared_traced(graph, alpha, params, None)
}

/// [`color_alpha_squared`] with an optional span recorder attached (see
/// [`color_two_alpha_plus_one_traced`] for the tracing contract).
///
/// # Errors
///
/// See [`color_alpha_squared`].
pub fn color_alpha_squared_traced(
    graph: &CsrGraph,
    alpha: usize,
    params: &AmpcColoringParams,
    trace: Option<Arc<TraceContext>>,
) -> Result<AmpcColoringResult, ColoringError> {
    let beta = beta_for(alpha, 2.0 + params.epsilon);
    arb_linial_driver(graph, beta, params, "alpha^2", trace)
}

fn arb_linial_driver(
    graph: &CsrGraph,
    beta: usize,
    params: &AmpcColoringParams,
    algorithm: &'static str,
    trace: Option<Arc<TraceContext>>,
) -> Result<AmpcColoringResult, ColoringError> {
    let partition = {
        let _span =
            span_on(trace.as_deref(), "phase.partition", "driver").with_arg("beta", beta as u64);
        ampc_beta_partition_traced(graph, &params.partition_params(beta), trace.clone())?
    };
    let coloring_started = Instant::now();
    let phase_span =
        span_on(trace.as_deref(), "phase.coloring", "driver").with_arg("beta", beta as u64);
    let orientation = partition.partition.orientation(graph)?;
    let primitives = RoundPrimitives::from_config(&params.runtime).with_trace(trace.clone());
    // Hardware counters bracket the phase exactly like the span above;
    // the delta lands in the primitives' sink and surfaces through the
    // runtime stats folded into the result's metrics.
    let perf_scope = primitives.perf_span();
    let result = arb_linial_coloring_with_runtime(graph, &orientation, None, &primitives)?;
    let coloring_rounds = simulation_rounds(
        graph.num_nodes(),
        orientation.max_out_degree(),
        result.rounds,
        params.delta,
    );
    drop(perf_scope);
    drop(phase_span);
    Ok(AmpcColoringResult::new(
        algorithm,
        result.coloring,
        beta,
        &partition,
        coloring_rounds,
        &primitives,
        coloring_started.elapsed().as_nanos() as u64,
    ))
}

/// Theorem 1.3 (3) / Corollary 1.4: a `((2 + ε)α + 1)`-coloring in
/// `Õ(α/ε)` AMPC rounds (constant rounds for constant `α`).
///
/// Computes a β-partition with `β = (2 + ε)α`, colors every layer's induced
/// subgraph independently with `β + 1` colors (Arb-Linial to `O(β²)`, then
/// Kuhn–Wattenhofer down to `β + 1`), and repairs the cross-layer conflicts
/// with the greedy layered recoloring.
///
/// # Errors
///
/// See [`ColoringError`].
pub fn color_two_alpha_plus_one(
    graph: &CsrGraph,
    alpha: usize,
    params: &AmpcColoringParams,
) -> Result<AmpcColoringResult, ColoringError> {
    color_two_alpha_plus_one_traced(graph, alpha, params, None)
}

/// [`color_two_alpha_plus_one`] with an optional span recorder attached:
/// the partition backend, the per-layer simulators (Arb-Linial rounds, KW
/// sweeps) and the recoloring waves all emit spans into `trace`, tagged
/// with layer ids and counters. Tracing is measurement-only — the coloring
/// (and the model-level metrics) are bit-identical with and without it.
///
/// # Errors
///
/// See [`color_two_alpha_plus_one`].
pub fn color_two_alpha_plus_one_traced(
    graph: &CsrGraph,
    alpha: usize,
    params: &AmpcColoringParams,
    trace: Option<Arc<TraceContext>>,
) -> Result<AmpcColoringResult, ColoringError> {
    let beta = beta_for(alpha, 2.0 + params.epsilon);
    let partition = {
        let _span =
            span_on(trace.as_deref(), "phase.partition", "driver").with_arg("beta", beta as u64);
        ampc_beta_partition_traced(graph, &params.partition_params(beta), trace.clone())?
    };
    let n = graph.num_nodes();
    let coloring_started = Instant::now();
    let phase_span =
        span_on(trace.as_deref(), "phase.coloring", "driver").with_arg("beta", beta as u64);
    let primitives = RoundPrimitives::from_config(&params.runtime).with_trace(trace.clone());
    // Counter sampling brackets phases 2 + 3 like the span above.
    let perf_scope = primitives.perf_span();

    // Phase 2: color every layer independently with beta + 1 colors. The
    // layers are disjoint induced subgraphs, so they are colored in
    // parallel (the model runs them on separate machine groups anyway) and
    // the per-layer results are folded back in layer order — deterministic
    // for any thread count. Inside each layer the simulators' per-node
    // rounds run on the same pool through the shared primitives context
    // (nested submission is supported), so one huge layer no longer
    // serializes the phase.
    struct LayerColors {
        colors: Vec<(NodeId, usize)>,
        linial_rounds: usize,
        kw_rounds: usize,
    }
    let layers = layer_members(graph, &partition.partition);
    // Layer costs are skewed too (the bottom layer of a power-law graph
    // holds most nodes and edges): weighting each layer by its total
    // degree plus size splits the layer list into cost-balanced, stealable
    // chunks instead of equal-count ranges.
    let outcomes = parallel_map_weighted(
        &layers,
        params.runtime.effective_threads(),
        |_, members| layer_cost(graph, members),
        |layer, members| -> Result<LayerColors, ColoringError> {
            let _layer_span = primitives
                .span("layer.color", "driver")
                .with_arg("layer", layer as u64)
                .with_arg("nodes", members.len() as u64);
            let sub = InducedSubgraph::new(graph, members);
            let local_graph = sub.graph();
            // Any orientation of a subgraph with max degree <= beta has
            // out-degree <= beta; node order works fine.
            let orientation = Orientation::from_total_order(local_graph, |v| v);
            let linial =
                arb_linial_coloring_with_runtime(local_graph, &orientation, None, &primitives)?;
            let reduced =
                kw_color_reduction_with_runtime(local_graph, &linial.coloring, beta, &primitives)?;
            let colors = sub
                .original_nodes()
                .iter()
                .enumerate()
                .map(|(local, &original)| (original, reduced.coloring.color(local)))
                .collect();
            Ok(LayerColors {
                colors,
                linial_rounds: linial.rounds,
                kw_rounds: reduced.rounds,
            })
        },
    )?;
    let mut initial = vec![0usize; n];
    let mut kw_rounds_max = 0usize;
    let mut linial_rounds_max = 0usize;
    for outcome in &outcomes {
        linial_rounds_max = linial_rounds_max.max(outcome.linial_rounds);
        kw_rounds_max = kw_rounds_max.max(outcome.kw_rounds);
        for &(original, color) in &outcome.colors {
            initial[original] = color;
        }
    }

    // Phase 3: fix cross-layer conflicts.
    let initial = Coloring::new(initial);
    let recolored = {
        let _span = primitives
            .span("phase.recolor", "driver")
            .with_arg("layers", partition.partition_size() as u64);
        recolor_layers_with_runtime(
            graph,
            &partition.partition,
            &initial,
            RecolorOrder::HighestAvailable,
            &primitives,
        )?
    };

    // Round accounting (Section 6.3): the per-layer coloring costs the
    // simulated Linial rounds plus the KW reduction rounds (layers run in
    // parallel); the recoloring processes layers in batches, each batch one
    // AMPC round.
    let linial_sim = simulation_rounds(n, beta, linial_rounds_max, params.delta);
    let batch_size = recolor_batch_size(n, beta, params.delta);
    let recolor_rounds = partition.partition_size().div_ceil(batch_size).max(1);
    let coloring_rounds = linial_sim + kw_rounds_max + recolor_rounds;

    drop(perf_scope);
    drop(phase_span);
    Ok(AmpcColoringResult::new(
        "(2+eps)alpha+1",
        recolored.coloring,
        beta,
        &partition,
        coloring_rounds,
        &primitives,
        coloring_started.elapsed().as_nanos() as u64,
    ))
}

/// Section 6.4: an `O(α^{1+ε})`-coloring in `O(1/ε)` rounds for graphs whose
/// arboricity is too large for the LOCAL simulations (`α > n^{δ/(1+ε)}`),
/// built on the deterministic MPC coloring of Theorem 1.5 applied to every
/// layer with a fresh palette.
///
/// # Errors
///
/// See [`ColoringError`].
pub fn color_large_arboricity(
    graph: &CsrGraph,
    alpha: usize,
    params: &AmpcColoringParams,
) -> Result<AmpcColoringResult, ColoringError> {
    color_large_arboricity_traced(graph, alpha, params, None)
}

/// [`color_large_arboricity`] with an optional span recorder attached (see
/// [`color_two_alpha_plus_one_traced`] for the tracing contract).
///
/// # Errors
///
/// See [`color_large_arboricity`].
pub fn color_large_arboricity_traced(
    graph: &CsrGraph,
    alpha: usize,
    params: &AmpcColoringParams,
    trace: Option<Arc<TraceContext>>,
) -> Result<AmpcColoringResult, ColoringError> {
    let beta = ((alpha.max(2) as f64).powf(1.0 + params.epsilon).ceil() as usize).max(2);
    let partition = {
        let _span =
            span_on(trace.as_deref(), "phase.partition", "driver").with_arg("beta", beta as u64);
        ampc_beta_partition_traced(graph, &params.partition_params(beta), trace.clone())?
    };
    let n = graph.num_nodes();
    let coloring_started = Instant::now();
    let phase_span =
        span_on(trace.as_deref(), "phase.coloring", "driver").with_arg("beta", beta as u64);

    let x = ((alpha.max(2) as f64).powf(params.epsilon).round() as usize).max(2);
    let derand_params = DerandParams {
        x,
        delta: params.delta,
        ..Default::default()
    };

    // Every layer is colored independently (in parallel, see
    // `color_two_alpha_plus_one`); the disjoint palette offsets are applied
    // in layer order afterwards, so the result is identical for any thread
    // count. The derandomization's per-edge expectation sweeps also run on
    // the shared primitives context inside each layer.
    let primitives = RoundPrimitives::from_config(&params.runtime).with_trace(trace.clone());
    // Counter sampling brackets the per-layer coloring like the span above.
    let perf_scope = primitives.perf_span();
    struct LayerPalette {
        colors: Vec<(NodeId, usize)>,
        palette: usize,
        mpc_rounds: usize,
    }
    let layers = layer_members(graph, &partition.partition);
    let outcomes = parallel_map_weighted(
        &layers,
        params.runtime.effective_threads(),
        |_, members| layer_cost(graph, members),
        |layer, members| -> Result<LayerPalette, ColoringError> {
            let _layer_span = primitives
                .span("layer.color", "driver")
                .with_arg("layer", layer as u64)
                .with_arg("nodes", members.len() as u64);
            let sub = InducedSubgraph::new(graph, members);
            let result =
                derandomized_coloring_with_runtime(sub.graph(), &derand_params, &primitives);
            let colors = sub
                .original_nodes()
                .iter()
                .enumerate()
                .map(|(local, &original)| (original, result.coloring.color(local)))
                .collect();
            Ok(LayerPalette {
                colors,
                palette: result.palette,
                mpc_rounds: result.mpc_rounds,
            })
        },
    )?;
    let mut colors = vec![0usize; n];
    let mut palette_offset = 0usize;
    let mut mpc_rounds_max = 0usize;
    for outcome in &outcomes {
        mpc_rounds_max = mpc_rounds_max.max(outcome.mpc_rounds);
        for &(original, color) in &outcome.colors {
            colors[original] = palette_offset + color;
        }
        palette_offset += outcome.palette;
    }

    let coloring = Coloring::new(colors);
    if !coloring.is_proper(graph) {
        return Err(ColoringError::Internal(
            "per-layer palettes are disjoint, so the combined coloring must be proper".to_string(),
        ));
    }

    drop(perf_scope);
    drop(phase_span);
    Ok(AmpcColoringResult::new(
        "alpha^(1+eps) (Thm 1.5 per layer)",
        coloring,
        beta,
        &partition,
        mpc_rounds_max.max(1),
        &primitives,
        coloring_started.elapsed().as_nanos() as u64,
    ))
}

/// Batch size used by the recoloring round accounting: `(δ/β)·log_β n`
/// layers per batch (at least one).
fn recolor_batch_size(n: usize, beta: usize, delta: f64) -> usize {
    if n <= 2 {
        return 1;
    }
    let log_beta_n = (n as f64).ln() / (beta.max(2) as f64).ln();
    ((delta / beta.max(1) as f64) * log_beta_n).floor().max(1.0) as usize
}

/// The scheduling cost estimate of coloring one layer: its size plus its
/// members' total degree (the induced-subgraph construction and every
/// simulator round scan the members' adjacency lists).
fn layer_cost(graph: &CsrGraph, members: &[NodeId]) -> usize {
    members.len() + members.iter().map(|&v| graph.degree(v)).sum::<usize>()
}

/// The member lists of all non-empty layers, in increasing layer order.
fn layer_members(graph: &CsrGraph, partition: &BetaPartition) -> Vec<Vec<NodeId>> {
    let Some(max_layer) = partition.max_finite_layer() else {
        return Vec::new();
    };
    let mut layers: Vec<Vec<NodeId>> = vec![Vec::new(); max_layer + 1];
    for v in graph.nodes() {
        if let Layer::Finite(layer) = partition.layer(v) {
            layers[layer].push(v);
        }
    }
    layers.retain(|members| !members.is_empty());
    layers
}

/// Runs all applicable Theorem 1.3 variants and the baselines on one graph —
/// the row generator behind the trade-off experiment (E8).
///
/// Returns the successful variants (a variant may fail if `alpha` is a
/// too-aggressive underestimate for it).
pub fn all_variants(
    graph: &CsrGraph,
    alpha: usize,
    params: &AmpcColoringParams,
) -> Vec<AmpcColoringResult> {
    [
        color_alpha_power(graph, alpha, params),
        color_alpha_squared(graph, alpha, params),
        color_two_alpha_plus_one(graph, alpha, params),
        color_large_arboricity(graph, alpha, params),
    ]
    .into_iter()
    .filter_map(Result::ok)
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use sparse_graph::generators;

    fn params() -> AmpcColoringParams {
        AmpcColoringParams::default().with_x(4)
    }

    #[test]
    fn alpha_squared_variant_on_forest_unions() {
        let mut rng = ChaCha8Rng::seed_from_u64(201);
        for alpha in [1usize, 2, 3] {
            let graph = generators::forest_union(300, alpha, &mut rng);
            let result = color_alpha_squared(&graph, alpha, &params()).unwrap();
            assert!(result.coloring.is_proper(&graph), "alpha = {alpha}");
            let beta = result.beta;
            assert!(
                result.colors_used <= 4 * (beta + 2) * (beta + 2),
                "alpha = {alpha}: {} colors",
                result.colors_used
            );
            assert_eq!(
                result.total_rounds,
                result.partition_rounds + result.coloring_rounds
            );
        }
    }

    #[test]
    fn two_alpha_variant_achieves_linear_in_alpha_colors() {
        let mut rng = ChaCha8Rng::seed_from_u64(203);
        for alpha in [1usize, 2, 4] {
            let graph = generators::forest_union(300, alpha, &mut rng);
            let result = color_two_alpha_plus_one(&graph, alpha, &params()).unwrap();
            assert!(result.coloring.is_proper(&graph), "alpha = {alpha}");
            assert!(
                result.colors_used <= result.beta + 1,
                "alpha = {alpha}: {} colors > beta + 1 = {}",
                result.colors_used,
                result.beta + 1
            );
        }
    }

    #[test]
    fn corollary_1_4_constant_alpha_gives_few_colors_and_rounds() {
        // Planar-like instance: arboricity <= 3, so (2 + 0.5) * 3 + 1 = 9
        // colors should comfortably suffice (we assert <= 9).
        let graph = generators::triangulated_grid(18, 18);
        let result = color_two_alpha_plus_one(&graph, 3, &params()).unwrap();
        assert!(result.coloring.is_proper(&graph));
        assert!(result.colors_used <= 9, "{} colors", result.colors_used);
    }

    #[test]
    fn alpha_power_variant_uses_fewer_partition_rounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(207);
        let graph = generators::forest_union(400, 4, &mut rng);
        let loose = color_alpha_power(&graph, 4, &params().with_epsilon(1.0)).unwrap();
        let tight = color_alpha_squared(&graph, 4, &params().with_epsilon(0.25)).unwrap();
        assert!(loose.coloring.is_proper(&graph));
        assert!(tight.coloring.is_proper(&graph));
        // The looser beta gives at most as many partition rounds.
        assert!(loose.partition_rounds <= tight.partition_rounds);
        // ... but may use more colors.
        assert!(loose.beta >= tight.beta);
    }

    #[test]
    fn large_arboricity_variant_colors_dense_graphs() {
        let graph = generators::complete_bipartite(20, 20);
        // alpha(K_{20,20}) = ceil(400 / 39) = 11.
        let result = color_large_arboricity(&graph, 11, &params()).unwrap();
        assert!(result.coloring.is_proper(&graph));
        assert!(result.colors_used >= 2);
        assert!(result.coloring_rounds >= 1);
    }

    #[test]
    fn underestimating_alpha_fails_cleanly() {
        let graph = generators::complete(10); // arboricity 5
        let err = color_alpha_squared(&graph, 1, &params().with_epsilon(0.1)).unwrap_err();
        assert!(matches!(err, ColoringError::Partition(_)));
        assert!(err.to_string().contains("beta-partition"));
    }

    #[test]
    fn all_variants_reports_only_successes() {
        let mut rng = ChaCha8Rng::seed_from_u64(211);
        let graph = generators::forest_union(200, 2, &mut rng);
        let results = all_variants(&graph, 2, &params());
        assert!(results.len() >= 3);
        for result in &results {
            assert!(result.coloring.is_proper(&graph), "{}", result.algorithm);
            assert!(result.colors_used >= 2);
        }
    }

    #[test]
    fn log_star_and_simulation_round_helpers() {
        assert_eq!(log_star(2), 1);
        assert_eq!(log_star(16), 2);
        assert!(log_star(1_000_000) <= 5);
        // Small out-ball: a single adaptive round suffices.
        assert_eq!(simulation_rounds(1_000_000, 3, 4, 0.5), 1);
        // Huge out-ball: one AMPC round per LOCAL round.
        assert_eq!(simulation_rounds(100, 50, 6, 0.5), 6);
        let _ = log_star(0);
    }
}
