//! # arbo-coloring
//!
//! Arboricity-dependent graph coloring algorithms, reproducing Section 6 of
//! *Adaptive Massively Parallel Coloring in Sparse Graphs* (PODC 2024) plus
//! the building blocks it simulates.
//!
//! The crate is organised as the paper is:
//!
//! * [`arb_linial_coloring`] — the one-sided Arb-Linial algorithm: starting
//!   from any proper coloring it repeatedly applies a polynomial-based
//!   cover-free color reduction that only inspects *out*-neighbors of an
//!   acyclic low out-degree orientation, converging to an `O(β²)` palette in
//!   `O(log* n)` LOCAL rounds (Sections 6.1 and 6.2).
//! * [`kw_color_reduction`] — the Kuhn–Wattenhofer iterative color reduction
//!   turning an `m`-coloring into a `(∆ + 1)`-coloring in `O(∆ log(m / ∆))`
//!   rounds (Section 6.3).
//! * [`recolor_layers`] — the layered greedy conflict-fixing pass that
//!   merges independent per-layer colorings into a global `(β + 1)`-coloring
//!   (Section 6.3).
//! * [`derandomized_coloring`] — the deterministic low-space MPC
//!   `2x∆`-coloring of Theorem 1.5: a pairwise-independent random trial
//!   derandomized with the method of conditional expectations (Section 6.4).
//! * [`ampc`] — the end-to-end AMPC drivers of Theorem 1.3: the
//!   `O(α^{2+ε})`, `O(α²)`, `((2+ε)α+1)` and large-arboricity `O(α^{1+ε})`
//!   colorings, all built on the β-partitions of the `beta-partition` crate.
//! * [`baselines`] — sequential baselines the experiment tables compare
//!   against.
//!
//! ```
//! use arbo_coloring::ampc::{color_alpha_squared, AmpcColoringParams};
//! use sparse_graph::generators;
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
//! let graph = generators::forest_union(400, 2, &mut rng); // alpha <= 2
//! let result = color_alpha_squared(&graph, 2, &AmpcColoringParams::default()).unwrap();
//! assert!(result.coloring.is_proper(&graph));
//! assert!(result.colors_used <= 4 * (2 + 1) * (2 + 1) * 4); // O(alpha^2)
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arb_linial;
mod color_word;
mod derand;
mod kuhn_wattenhofer;
mod primes;
mod recolor;

pub mod ampc;
pub mod baselines;

pub use arb_linial::{
    arb_linial_coloring, arb_linial_coloring_with_runtime, ArbLinialError, ArbLinialResult,
};
pub use derand::{
    derandomized_coloring, derandomized_coloring_relabeled, derandomized_coloring_with_runtime,
    DerandColoringResult, DerandParams,
};
pub use kuhn_wattenhofer::{
    kw_color_reduction, kw_color_reduction_with_runtime, KwReductionResult,
};
pub use primes::{is_prime, next_prime};
pub use recolor::{
    recolor_layers, recolor_layers_with_runtime, RecolorError, RecolorOrder, RecolorResult,
};
