//! Compact color storage shared by the intra-layer simulators.
//!
//! The Kuhn–Wattenhofer sweeps and the layered recoloring waves stream the
//! whole color array through every elimination round, so the width of a
//! stored color is the dominant memory-bandwidth knob: `u32` colors halve
//! the bytes per node versus `usize` on 64-bit targets, doubling the number
//! of colors per cache line the conflict scans pull in.
//!
//! [`ColorWord`] abstracts that width so each simulator keeps a single
//! generic sweep body and picks the storage at run time: `u32` whenever the
//! initial palette fits (always, in practice — palettes are bounded by the
//! initial coloring, itself at most `n`), `usize` as a lossless fallback so
//! absurd palettes keep working instead of silently truncating. Both
//! instantiations run the *same* decision code on the *same* `usize`
//! arithmetic — colors are widened on load and narrowed on store — so the
//! choice of storage width cannot change any decision, only its speed.

/// A fixed-width color storage word.
///
/// Implementors must represent every color in `0..=MAX_COLOR` losslessly;
/// [`ColorWord::NONE`] is a sentinel strictly above `MAX_COLOR`, used by
/// the recoloring waves for "not yet finally colored" without paying for an
/// `Option` discriminant.
pub(crate) trait ColorWord: Copy + Default + Eq + Send + Sync + 'static {
    /// Largest color value representable (exclusive of [`ColorWord::NONE`]).
    const MAX_COLOR: usize;
    /// Sentinel for "no color"; never returned by [`ColorWord::from_usize`].
    const NONE: Self;

    /// Narrows a `usize` color. Debug-asserts `color <= MAX_COLOR`.
    fn from_usize(color: usize) -> Self;

    /// Widens back to `usize` for arithmetic.
    fn to_usize(self) -> usize;

    /// Whether every color of a palette `{0, …, palette - 1}` fits, with
    /// [`ColorWord::NONE`] left over as a sentinel.
    fn fits_palette(palette: usize) -> bool {
        palette <= Self::MAX_COLOR
    }
}

impl ColorWord for u32 {
    const MAX_COLOR: usize = u32::MAX as usize - 1;
    const NONE: Self = u32::MAX;

    #[inline(always)]
    fn from_usize(color: usize) -> Self {
        debug_assert!(color <= Self::MAX_COLOR, "color {color} overflows u32");
        color as u32
    }

    #[inline(always)]
    fn to_usize(self) -> usize {
        self as usize
    }
}

impl ColorWord for usize {
    const MAX_COLOR: usize = usize::MAX - 1;
    const NONE: Self = usize::MAX;

    #[inline(always)]
    fn from_usize(color: usize) -> Self {
        color
    }

    #[inline(always)]
    fn to_usize(self) -> usize {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_and_palette_fit() {
        assert_eq!(<u32 as ColorWord>::from_usize(7).to_usize(), 7);
        assert_eq!(<usize as ColorWord>::from_usize(7).to_usize(), 7);
        assert!(<u32 as ColorWord>::fits_palette(0));
        assert!(<u32 as ColorWord>::fits_palette(u32::MAX as usize - 1));
        assert!(!<u32 as ColorWord>::fits_palette(u32::MAX as usize));
        assert!(<usize as ColorWord>::fits_palette(usize::MAX - 1));
    }

    #[test]
    fn none_sentinels_are_outside_the_color_range() {
        assert!(<u32 as ColorWord>::NONE.to_usize() > <u32 as ColorWord>::MAX_COLOR);
        assert!(<usize as ColorWord>::NONE.to_usize() > <usize as ColorWord>::MAX_COLOR);
        assert_ne!(<u32 as ColorWord>::from_usize(0), <u32 as ColorWord>::NONE);
    }
}
