//! The Kuhn–Wattenhofer iterative color reduction (Section 6.3).
//!
//! Given a proper `m`-coloring of a graph with maximum degree `∆`, the color
//! space is split into blocks of `2(∆ + 1)` consecutive colors. Within every
//! block (in parallel across blocks), the colors above the block's first
//! `∆ + 1` are eliminated one at a time: each such color class is an
//! independent set, so all its nodes can simultaneously pick a free color
//! among the block's first `∆ + 1` colors. One such sweep halves the number
//! of colors in `∆ + 1` rounds; repeating until only `∆ + 1` colors remain
//! costs `O(∆ log(m / ∆))` rounds — the complexity quoted by the paper.

use ampc_runtime::{simd, BitSet, RoundPrimitives};
use sparse_graph::{Coloring, CsrGraph};

use crate::color_word::ColorWord;

/// Result of the Kuhn–Wattenhofer reduction.
#[derive(Debug, Clone)]
pub struct KwReductionResult {
    /// The final proper coloring with palette `{0, …, degree_bound}`.
    pub coloring: Coloring,
    /// Number of simulated LOCAL rounds (one per eliminated color class per
    /// halving sweep).
    pub rounds: usize,
    /// Palette size after every halving sweep.
    pub palette_trajectory: Vec<usize>,
}

/// Reduces a proper coloring to a `(degree_bound + 1)`-coloring.
///
/// `degree_bound` must be at least the maximum degree of `graph` (the
/// algorithm is typically applied to the subgraph induced by one layer of a
/// β-partition, whose maximum degree is at most `β`).
///
/// # Errors
///
/// Returns an error if `initial` is not proper, does not cover the graph, or
/// if `degree_bound` is below the maximum degree.
///
/// # Examples
///
/// ```
/// use arbo_coloring::kw_color_reduction;
/// use sparse_graph::{generators, greedy_by_id_order, Coloring};
///
/// let graph = generators::cycle(30);
/// // Start from the trivial coloring by node id.
/// let initial = Coloring::new((0..30).collect());
/// let result = kw_color_reduction(&graph, &initial, 2)?;
/// assert!(result.coloring.is_proper(&graph));
/// assert!(result.coloring.palette_size() <= 3);
/// # Ok::<(), String>(())
/// ```
pub fn kw_color_reduction(
    graph: &CsrGraph,
    initial: &Coloring,
    degree_bound: usize,
) -> Result<KwReductionResult, String> {
    kw_color_reduction_with_runtime(graph, initial, degree_bound, &RoundPrimitives::sequential())
}

/// [`kw_color_reduction`] with every intra-round sweep running on the
/// supplied [`RoundPrimitives`] context — bit-identical results for any
/// thread count.
///
/// Each elimination round touches one color class per block (the nodes with
/// `color % block == offset`). Within a block those nodes share a color, so
/// the class is an independent set; across blocks, a member's decision only
/// inspects neighbor colors inside its *own* block window, which no
/// co-member (whose old and new colors live in a different block) can
/// touch. That is exactly the contract of
/// [`RoundPrimitives::par_color_classes`], so the parallel sweep matches
/// the sequential in-place loop bit for bit.
///
/// # Errors
///
/// See [`kw_color_reduction`].
pub fn kw_color_reduction_with_runtime(
    graph: &CsrGraph,
    initial: &Coloring,
    degree_bound: usize,
    primitives: &RoundPrimitives,
) -> Result<KwReductionResult, String> {
    if initial.num_nodes() != graph.num_nodes() {
        return Err("coloring does not cover the graph".to_string());
    }
    if !initial.is_proper(graph) {
        return Err("initial coloring is not proper".to_string());
    }
    if degree_bound < graph.max_degree() {
        return Err(format!(
            "degree bound {degree_bound} is below the maximum degree {}",
            graph.max_degree()
        ));
    }

    let target = degree_bound + 1;
    let initial_palette = initial.palette_size().max(1);
    // Colors only ever shrink (a member's replacement stays strictly below
    // its old color's block ceiling, compaction renumbers downward), so the
    // initial palette bounds every intermediate color and the storage width
    // can be chosen once up front: `u32` halves the bytes every sweep
    // streams, `usize` is the lossless fallback for absurd palettes.
    let (colors, rounds, trajectory) = if <u32 as ColorWord>::fits_palette(initial_palette) {
        kw_sweeps::<u32>(graph, initial.colors(), initial_palette, target, primitives)
    } else {
        kw_sweeps::<usize>(graph, initial.colors(), initial_palette, target, primitives)
    };

    let coloring = Coloring::new(colors);
    debug_assert!(coloring.is_proper(graph));
    Ok(KwReductionResult {
        coloring,
        rounds,
        palette_trajectory: trajectory,
    })
}

/// The halving sweeps, generic over the color storage width. All decision
/// arithmetic is `usize` — colors are widened on load and narrowed on store
/// — so both instantiations compute bit-identical colorings.
fn kw_sweeps<C: ColorWord>(
    graph: &CsrGraph,
    initial_colors: &[usize],
    initial_palette: usize,
    target: usize,
    primitives: &RoundPrimitives,
) -> (Vec<usize>, usize, Vec<usize>) {
    let mut colors: Vec<C> = initial_colors.iter().map(|&c| C::from_usize(c)).collect();
    let mut palette = initial_palette;
    let mut rounds = 0usize;
    let mut trajectory = vec![palette];

    // Steady-state allocation-free sweeps: the per-decision "used colors"
    // set is a word-packed BitSet leased per worker from the context's
    // scratch registry (a palette-sized clear is a few cache lines; the
    // free-color probe is a word scan instead of a per-color loop), and the
    // recolor-index / compaction buffers are reused across every
    // elimination round.
    let used_sets = primitives.scratch_pool::<BitSet>();
    let mut recolor: Vec<usize> = Vec::new();
    let mut compacted: Vec<C> = Vec::new();

    while palette > target {
        let _sweep_span = primitives
            .span("kw.sweep", "simulator")
            .with_arg("palette", palette as u64)
            .with_arg("target", target as u64);
        let block = 2 * target;
        // Number of blocks covering the palette {0, ..., palette - 1}.
        let num_blocks = palette.div_ceil(block);
        // Eliminate, in parallel over blocks, the colors block_start + target
        // .. block_start + block - 1, one offset at a time (each offset is
        // one LOCAL round since the affected nodes form an independent set).
        for offset in target..block {
            rounds += 1;
            let mut elimination_span = primitives
                .span("kw.elimination", "simulator")
                .with_arg("round", rounds as u64)
                .with_arg("offset", offset as u64);
            primitives.par_collect_indices_into(
                graph.num_nodes(),
                |v| {
                    let c = colors[v].to_usize();
                    c % block == offset && c < palette
                },
                &mut recolor,
            );
            elimination_span.set_arg("members", recolor.len() as u64);
            // Weighted by degree: a member's decision scans its whole
            // adjacency list, so hub members cost Δ while leaves cost 1 —
            // weighted chunking keeps the sweep balanced on skewed graphs.
            primitives.par_color_classes_weighted(
                &recolor,
                &mut colors,
                |v| graph.degree(v),
                |v, snapshot| {
                    let mut used = used_sets.lease();
                    used.reset(target);
                    let block_start = (snapshot[v].to_usize() / block) * block;
                    let neighbors = graph.neighbors(v);
                    for (at, &w) in neighbors.iter().enumerate() {
                        // The neighbor ids are sequential in CSR but the
                        // color gather is scattered; prefetch a few
                        // iterations ahead to hide the latency.
                        if let Some(&ahead) = neighbors.get(at + simd::PREFETCH_LOOKAHEAD) {
                            simd::prefetch_read(snapshot, ahead);
                        }
                        let cw = snapshot[w].to_usize();
                        if cw >= block_start && cw < block_start + target {
                            used.insert(cw - block_start);
                        }
                    }
                    let free = used
                        .first_absent()
                        .expect("a free color exists because the degree is at most degree_bound");
                    C::from_usize(block_start + free)
                },
            );
        }
        // Compact the palette: block b now only uses colors
        // [b * block, b * block + target); renumber to b * target + offset.
        let _compaction_span = primitives
            .span("kw.compaction", "simulator")
            .with_arg("blocks", num_blocks as u64);
        primitives.par_node_map_into(
            colors.len(),
            |v| {
                let c = colors[v].to_usize();
                let b = c / block;
                let within = c % block;
                debug_assert!(within < target);
                C::from_usize(b * target + within)
            },
            &mut compacted,
        );
        std::mem::swap(&mut colors, &mut compacted);
        palette = num_blocks * target;
        trajectory.push(palette);
        if num_blocks == 1 {
            break;
        }
    }

    let colors: Vec<usize> = colors.iter().map(|c| c.to_usize()).collect();
    (colors, rounds, trajectory)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use sparse_graph::generators;

    #[test]
    fn reduces_trivial_coloring_to_delta_plus_one() {
        let mut rng = ChaCha8Rng::seed_from_u64(81);
        let graph = generators::gnm(300, 600, &mut rng);
        let delta = graph.max_degree();
        let initial = Coloring::new((0..300).collect());
        let result = kw_color_reduction(&graph, &initial, delta).unwrap();
        assert!(result.coloring.is_proper(&graph));
        assert!(result.coloring.palette_size() <= delta + 1);
        assert!(result.coloring.num_colors() <= delta + 1);
    }

    #[test]
    fn round_count_matches_the_kw_bound() {
        let mut rng = ChaCha8Rng::seed_from_u64(83);
        let graph = generators::forest_union(400, 2, &mut rng);
        let delta = graph.max_degree();
        let initial = Coloring::new((0..400).collect());
        let result = kw_color_reduction(&graph, &initial, delta).unwrap();
        // O(delta * log(m / delta)): each halving sweep costs delta + 1
        // rounds and the number of sweeps is log2(m / (delta + 1)) + 1.
        let sweeps = ((400f64 / (delta + 1) as f64).log2().ceil() as usize).max(1) + 1;
        assert!(
            result.rounds <= (delta + 1) * sweeps,
            "{} rounds exceeds bound {}",
            result.rounds,
            (delta + 1) * sweeps
        );
        // The palette halves (up to rounding) every sweep.
        for window in result.palette_trajectory.windows(2) {
            assert!(window[1] <= window[0] / 2 + (delta + 1));
        }
    }

    #[test]
    fn already_small_palettes_are_untouched() {
        let graph = generators::cycle(10);
        let greedy = sparse_graph::greedy_by_id_order(&graph);
        let result = kw_color_reduction(&graph, &greedy, 2).unwrap();
        assert_eq!(result.rounds, 0);
        assert_eq!(result.coloring, greedy);
        assert_eq!(result.palette_trajectory, vec![greedy.palette_size()]);
    }

    #[test]
    fn rejects_bad_inputs() {
        let graph = generators::cycle(6);
        let improper = Coloring::new(vec![0; 6]);
        assert!(kw_color_reduction(&graph, &improper, 2).is_err());

        let wrong_size = Coloring::new(vec![0, 1]);
        assert!(kw_color_reduction(&graph, &wrong_size, 2).is_err());

        let proper = Coloring::new((0..6).collect());
        assert!(kw_color_reduction(&graph, &proper, 1).is_err());
    }

    #[test]
    fn parallel_sweeps_are_bit_identical_to_sequential() {
        let mut rng = ChaCha8Rng::seed_from_u64(85);
        let graph = generators::gnm(1_500, 3_000, &mut rng);
        let delta = graph.max_degree();
        let initial = Coloring::new((0..1_500).collect());
        let reference = kw_color_reduction(&graph, &initial, delta).unwrap();
        for threads in [2usize, 4, 7] {
            let primitives = RoundPrimitives::new(threads);
            let parallel =
                kw_color_reduction_with_runtime(&graph, &initial, delta, &primitives).unwrap();
            assert_eq!(reference.coloring, parallel.coloring, "threads {threads}");
            assert_eq!(reference.rounds, parallel.rounds);
            assert_eq!(reference.palette_trajectory, parallel.palette_trajectory);
            assert!(primitives.tasks_executed() > 0);
        }
    }

    #[test]
    fn u32_and_usize_storage_widths_agree_bit_for_bit() {
        // Real palettes always take the u32 fast path, so exercise the
        // usize fallback directly against it: same sweeps, same results.
        let mut rng = ChaCha8Rng::seed_from_u64(87);
        let graph = generators::preferential_attachment(800, 2, &mut rng);
        let initial: Vec<usize> = (0..800).collect();
        let target = graph.max_degree() + 1;
        let primitives = RoundPrimitives::sequential();
        let narrow = kw_sweeps::<u32>(&graph, &initial, 800, target, &primitives);
        let wide = kw_sweeps::<usize>(&graph, &initial, 800, target, &primitives);
        assert_eq!(narrow, wide);
    }

    #[test]
    fn works_on_per_layer_subgraphs() {
        // The paper applies KW to the subgraph induced by a single layer of a
        // beta-partition, whose max degree is at most beta.
        let mut rng = ChaCha8Rng::seed_from_u64(89);
        let graph = generators::preferential_attachment(500, 3, &mut rng);
        let beta = 7;
        let partition = beta_partition_for_test(&graph, beta);
        let layer0: Vec<usize> = graph.nodes().filter(|&v| partition[v] == 0).collect();
        let sub = sparse_graph::InducedSubgraph::new(&graph, &layer0);
        assert!(sub.graph().max_degree() <= beta);
        let initial = Coloring::new((0..sub.num_nodes()).collect());
        let result = kw_color_reduction(sub.graph(), &initial, beta).unwrap();
        assert!(result.coloring.is_proper(sub.graph()));
        assert!(result.coloring.palette_size() <= beta + 1);
    }

    /// Tiny helper computing natural-partition layers without depending on
    /// the beta-partition crate (avoids a dev-dependency cycle).
    fn beta_partition_for_test(graph: &CsrGraph, beta: usize) -> Vec<usize> {
        let n = graph.num_nodes();
        let mut layer = vec![usize::MAX; n];
        let mut remaining_degree: Vec<usize> = (0..n).map(|v| graph.degree(v)).collect();
        let mut peeled = vec![false; n];
        let mut current_layer = 0;
        loop {
            let batch: Vec<usize> = (0..n)
                .filter(|&v| !peeled[v] && remaining_degree[v] <= beta)
                .collect();
            if batch.is_empty() {
                break;
            }
            for &v in &batch {
                layer[v] = current_layer;
                peeled[v] = true;
            }
            for &v in &batch {
                for &w in graph.neighbors(v) {
                    if !peeled[w] {
                        remaining_degree[w] -= 1;
                    }
                }
            }
            current_layer += 1;
        }
        layer
    }
}
