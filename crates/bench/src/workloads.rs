//! Synthetic workloads used by the experiment harness and the Criterion
//! benches (mirrors the workload helpers of the repository root crate, kept
//! local so the bench crate has no dependency on it).

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sparse_graph::{generators, CsrGraph};

/// A named synthetic workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Union of `k` random forests on `n` nodes (arboricity ≤ `k`).
    ForestUnion {
        /// Number of nodes.
        n: usize,
        /// Number of forests.
        k: usize,
    },
    /// Preferential-attachment graph (`∆ ≫ α`).
    PowerLaw {
        /// Number of nodes.
        n: usize,
        /// Edges per new node (arboricity bound).
        edges_per_node: usize,
    },
    /// Triangulated grid (planar, arboricity ≤ 3).
    PlanarGrid {
        /// Side length.
        side: usize,
    },
    /// Complete `arity`-ary tree of the given depth (deep natural partition).
    DeepTree {
        /// Arity.
        arity: usize,
        /// Depth.
        depth: usize,
    },
    /// Erdős–Rényi graph with the given average degree.
    Gnm {
        /// Number of nodes.
        n: usize,
        /// Average degree (so `m = n · avg / 2`).
        average_degree: usize,
    },
    /// Hub-and-spoke communities: `communities` disjoint stars of
    /// `n / communities` nodes whose hubs form a cycle — arboricity 2 with
    /// maximum degree `n / communities + 1`, the extreme `∆ ≫ α` shape the
    /// skew-aware scheduler targets.
    HubAndSpoke {
        /// Number of nodes (split evenly over the communities).
        n: usize,
        /// Number of communities (each a star around one hub).
        communities: usize,
    },
}

impl Workload {
    /// Builds the workload deterministically.
    pub fn build(self, seed: u64) -> CsrGraph {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        match self {
            Workload::ForestUnion { n, k } => generators::forest_union(n, k, &mut rng),
            Workload::PowerLaw { n, edges_per_node } => {
                generators::preferential_attachment(n, edges_per_node, &mut rng)
            }
            Workload::PlanarGrid { side } => generators::triangulated_grid(side, side),
            Workload::DeepTree { arity, depth } => generators::complete_kary_tree(arity, depth),
            Workload::Gnm { n, average_degree } => {
                generators::gnm(n, n * average_degree / 2, &mut rng)
            }
            Workload::HubAndSpoke { n, communities } => {
                let communities = communities.clamp(1, n.max(1));
                generators::hub_and_spoke(communities, (n / communities).max(1))
            }
        }
    }

    /// A short label for table rows.
    pub fn label(self) -> String {
        match self {
            Workload::ForestUnion { n, k } => format!("forest-union(n={n},k={k})"),
            Workload::PowerLaw { n, edges_per_node } => {
                format!("power-law(n={n},m0={edges_per_node})")
            }
            Workload::PlanarGrid { side } => format!("grid({side}x{side})"),
            Workload::DeepTree { arity, depth } => format!("tree(arity={arity},depth={depth})"),
            Workload::Gnm { n, average_degree } => format!("gnm(n={n},avg={average_degree})"),
            Workload::HubAndSpoke { n, communities } => {
                format!("hub-and-spoke(n={n},c={communities})")
            }
        }
    }

    /// The a-priori arboricity bound fed to the algorithms.
    pub fn alpha_bound(self) -> usize {
        match self {
            Workload::ForestUnion { k, .. } => k.max(1),
            Workload::PowerLaw { edges_per_node, .. } => edges_per_node.max(1),
            Workload::PlanarGrid { .. } => 3,
            Workload::DeepTree { .. } => 1,
            Workload::Gnm { average_degree, .. } => average_degree.max(1),
            Workload::HubAndSpoke { .. } => 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_are_deterministic_and_labelled() {
        let w = Workload::ForestUnion { n: 100, k: 2 };
        assert_eq!(w.build(3), w.build(3));
        assert!(w.label().contains("forest-union"));
        assert_eq!(
            Workload::Gnm {
                n: 50,
                average_degree: 4
            }
            .build(1)
            .num_edges(),
            100
        );
        assert_eq!(Workload::PlanarGrid { side: 5 }.alpha_bound(), 3);
    }
}
