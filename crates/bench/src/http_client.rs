//! Minimal blocking HTTP/1.1 client used by the load generator and the
//! service tests (the build has no registry access, so no reqwest/ureq).
//! One request per connection (`Connection: close`).

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Sends one request and returns `(status, body)`.
///
/// # Errors
///
/// A human-readable description of the first connect/write/read/parse
/// failure.
pub fn request(
    addr: impl ToSocketAddrs,
    method: &str,
    target: &str,
    body: &str,
    read_timeout: Option<Duration>,
) -> Result<(u16, String), String> {
    let (status, _, body) = request_with_headers(addr, method, target, body, read_timeout)?;
    Ok((status, body))
}

/// Sends one request and returns `(status, raw response headers, body)` —
/// the variant for callers that must see headers (e.g. `Retry-After` on a
/// `503` from a draining server).
///
/// # Errors
///
/// Same as [`request`].
pub fn request_with_headers(
    addr: impl ToSocketAddrs,
    method: &str,
    target: &str,
    body: &str,
    read_timeout: Option<Duration>,
) -> Result<(u16, String, String), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    stream.set_read_timeout(read_timeout).ok();
    let head = format!(
        "{method} {target} HTTP/1.1\r\nHost: client\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body.as_bytes()))
        .map_err(|e| format!("write: {e}"))?;
    let mut raw = String::new();
    stream
        .read_to_string(&mut raw)
        .map_err(|e| format!("read: {e}"))?;
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .ok_or("missing status line")?
        .parse()
        .map_err(|_| "bad status line")?;
    let (headers, body) = raw
        .split_once("\r\n\r\n")
        .map(|(headers, body)| (headers.to_string(), body.to_string()))
        .unwrap_or_default();
    Ok((status, headers, body))
}

/// Extracts a `Retry-After: N` (delay-seconds form) value from a raw
/// response-header block, case-insensitively.
pub fn retry_after_seconds(headers: &str) -> Option<u64> {
    headers.lines().find_map(|line| {
        let (name, value) = line.split_once(':')?;
        name.trim()
            .eq_ignore_ascii_case("retry-after")
            .then(|| value.trim().parse().ok())?
    })
}

/// Polls `GET /v1/jobs/{job}` until the job reaches a terminal state
/// (`done`/`failed`), the server answers non-200, or `timeout` passes —
/// the shared client side of the service's 202-then-poll protocol.
///
/// # Errors
///
/// Transport failures from [`request`] (after one retry of transient
/// ones), or a timeout description if no terminal state is reached in
/// time.
pub fn poll_terminal<A: ToSocketAddrs + Clone>(
    addr: A,
    job: u64,
    timeout: Duration,
) -> Result<(u16, String), String> {
    let deadline = Instant::now() + timeout;
    loop {
        let target = format!("/v1/jobs/{job}");
        let (status, body) = match request(addr.clone(), "GET", &target, "", Some(timeout)) {
            Ok(response) => response,
            // One poll landing on a reset or starved connection (e.g. the
            // server recycling an acceptor mid-poll) must not abort a
            // whole wait that still has deadline budget — retry exactly
            // once before giving up for real.
            Err(error) if is_transient_transport_error(&error) && Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(5));
                request(addr.clone(), "GET", &target, "", Some(timeout))?
            }
            Err(error) => return Err(error),
        };
        if status != 200
            || body.contains("\"status\":\"done\"")
            || body.contains("\"status\":\"failed\"")
        {
            return Ok((status, body));
        }
        if Instant::now() >= deadline {
            return Err(format!(
                "job {job} did not reach a terminal state within {timeout:?}"
            ));
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Classifies a [`request`] error as a retriable transport hiccup: a
/// connection reset/abort or a would-block/timed-out read. Refused
/// connections and HTTP-level failures are NOT transient — the server is
/// down or answering; retrying would only mask that.
fn is_transient_transport_error(error: &str) -> bool {
    let transient = [
        "Connection reset",
        "connection reset",
        "Connection aborted",
        "connection aborted",
        "Resource temporarily unavailable",
        "operation would block",
        "timed out",
        "Broken pipe",
        "broken pipe",
    ];
    (error.starts_with("connect:") || error.starts_with("read:") || error.starts_with("write:"))
        && transient.iter().any(|needle| error.contains(needle))
}

/// Extracts a `"field":123` number from a flat JSON rendering — the one
/// scraper shared by the load generator and the service tests, so the
/// service's response format is parsed in exactly one place.
pub fn json_u64(body: &str, field: &str) -> Option<u64> {
    let needle = format!("\"{field}\":");
    let rest = &body[body.find(&needle)? + needle.len()..];
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

/// Extracts the `"coloring":[...]` array from a job response.
pub fn json_coloring(body: &str) -> Option<Vec<usize>> {
    let rest = &body[body.find("\"coloring\":[")? + "\"coloring\":[".len()..];
    let inner = &rest[..rest.find(']')?];
    if inner.trim().is_empty() {
        return Some(Vec::new());
    }
    inner
        .split(',')
        .map(|cell| cell.trim().parse::<usize>().ok())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_scrapers_extract_fields() {
        let body = r#"{"job":42,"status":"done","result":{"coloring":[0,1, 2]}}"#;
        assert_eq!(json_u64(body, "job"), Some(42));
        assert_eq!(json_u64(body, "missing"), None);
        assert_eq!(json_coloring(body), Some(vec![0, 1, 2]));
        assert_eq!(json_coloring(r#"{"coloring":[]}"#), Some(Vec::new()));
        assert_eq!(json_coloring(r#"{"job":1}"#), None);
    }

    #[test]
    fn retry_after_is_scraped_case_insensitively() {
        let headers = "HTTP/1.1 503 Service Unavailable\r\ncontent-type: application/json\r\nRetry-After: 7\r\ncontent-length: 2";
        assert_eq!(retry_after_seconds(headers), Some(7));
        let lower = "HTTP/1.1 503 X\r\nretry-after:  1 ";
        assert_eq!(retry_after_seconds(lower), Some(1));
        assert_eq!(retry_after_seconds("HTTP/1.1 200 OK\r\nx: y"), None);
        assert_eq!(
            retry_after_seconds("HTTP/1.1 503 X\r\nRetry-After: soon"),
            None
        );
    }

    #[test]
    fn transient_transport_errors_are_classified() {
        assert!(is_transient_transport_error(
            "read: Connection reset by peer (os error 104)"
        ));
        assert!(is_transient_transport_error(
            "read: Resource temporarily unavailable (os error 11)"
        ));
        assert!(is_transient_transport_error(
            "write: Broken pipe (os error 32)"
        ));
        assert!(is_transient_transport_error(
            "connect: Connection timed out (os error 110)"
        ));
        // A refused connection means nothing is listening: not transient.
        assert!(!is_transient_transport_error(
            "connect: Connection refused (os error 111)"
        ));
        // HTTP-level problems are never transport hiccups.
        assert!(!is_transient_transport_error("missing status line"));
        assert!(!is_transient_transport_error("bad status line"));
    }
}
