//! Minimal blocking HTTP/1.1 client used by the load generator and the
//! service tests (the build has no registry access, so no reqwest/ureq).
//! One request per connection (`Connection: close`).

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Sends one request and returns `(status, body)`.
///
/// # Errors
///
/// A human-readable description of the first connect/write/read/parse
/// failure.
pub fn request(
    addr: impl ToSocketAddrs,
    method: &str,
    target: &str,
    body: &str,
    read_timeout: Option<Duration>,
) -> Result<(u16, String), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    stream.set_read_timeout(read_timeout).ok();
    let head = format!(
        "{method} {target} HTTP/1.1\r\nHost: client\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body.as_bytes()))
        .map_err(|e| format!("write: {e}"))?;
    let mut raw = String::new();
    stream
        .read_to_string(&mut raw)
        .map_err(|e| format!("read: {e}"))?;
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .ok_or("missing status line")?
        .parse()
        .map_err(|_| "bad status line")?;
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, body)| body.to_string())
        .unwrap_or_default();
    Ok((status, body))
}
