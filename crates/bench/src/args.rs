//! Tiny `--flag=value` argument parsing shared by the workspace's binaries
//! (`experiments`, `loadgen`, `ampc-serve`); the build has no registry
//! access, so there is no clap.

/// Last value of `--{name}=value` parsed as `T`, if present and parseable.
pub fn parse_flag<T: std::str::FromStr>(args: &[String], name: &str) -> Option<T> {
    let prefix = format!("--{name}=");
    args.iter()
        .filter_map(|arg| arg.strip_prefix(&prefix))
        .next_back()
        .and_then(|raw| raw.parse().ok())
}

/// Whether the bare flag `--{name}` is present.
pub fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|arg| arg == &format!("--{name}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_last_value_and_bare_flags() {
        let args: Vec<String> = ["--jobs=3", "--smoke", "--jobs=7", "--bad=x"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(parse_flag::<usize>(&args, "jobs"), Some(7));
        assert_eq!(parse_flag::<usize>(&args, "bad"), None);
        assert_eq!(parse_flag::<usize>(&args, "missing"), None);
        assert!(has_flag(&args, "smoke"));
        assert!(!has_flag(&args, "jobs"));
    }
}
