//! The experiment suite: every table regenerates one theorem-level claim of
//! the paper (see `DESIGN.md` for the experiment index and `EXPERIMENTS.md`
//! for recorded outputs).

use std::collections::BTreeSet;

use ampc_model::LcaOracle;
use arbo_coloring::ampc::{
    color_alpha_power, color_alpha_squared, color_large_arboricity, color_two_alpha_plus_one,
    AmpcColoringParams,
};
use arbo_coloring::baselines;
use arbo_coloring::{derandomized_coloring, DerandParams};
use beta_partition::{
    ampc_beta_partition, ampc_beta_partition_unknown_arboricity, induced_partition,
    natural_partition, partial_partition_lca, CoinGameConfig, Layer, PartitionParams,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sparse_graph::{CsrGraph, GraphBuilder, NodeId};

use crate::table::Table;
use crate::workloads::Workload;
use ampc_runtime::RuntimeConfig;

/// An experiment: an id, a description and a generator producing its table.
pub struct Experiment {
    /// Identifier (`"E1"` … `"E10"`).
    pub id: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// Runs the experiment on the given backend and produces its table.
    /// Tables are bit-identical across backends; only wall clock differs.
    pub run: fn(RuntimeConfig) -> Table,
}

/// All experiments in index order.
pub fn all_experiments() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "E1",
            description: "LCA layering fraction and query cost (Lemma 4.7 / Remark 4.8)",
            run: e1_lca_fraction,
        },
        Experiment {
            id: "E2",
            description: "Theorem 1.2 with beta = O(alpha): partition size O(log n), few rounds",
            run: e2_partition_rounds,
        },
        Experiment {
            id: "E3",
            description: "Theorem 1.2 with beta = alpha^(1+eps): constant rounds",
            run: e3_partition_constant_rounds,
        },
        Experiment {
            id: "E4",
            description: "Theorem 1.3(1): O(alpha^(2+eps)) colors in O(1/eps) rounds",
            run: e4_coloring_alpha_power,
        },
        Experiment {
            id: "E5",
            description: "Theorem 1.3(2): O(alpha^2) colors in O(log alpha) rounds",
            run: e5_coloring_alpha_squared,
        },
        Experiment {
            id: "E6",
            description: "Theorem 1.3(3) / Corollary 1.4: ((2+eps)alpha+1) colors",
            run: e6_coloring_two_alpha,
        },
        Experiment {
            id: "E7",
            description: "Theorem 1.5: deterministic 2x∆ MPC coloring, n/x^i decay",
            run: e7_derand_mpc,
        },
        Experiment {
            id: "E8",
            description: "Color/round trade-off across all variants and baselines",
            run: e8_tradeoff_table,
        },
        Experiment {
            id: "E9",
            description: "Lemma 5.1: arboricity guessing overhead",
            run: e9_guessing_overhead,
        },
        Experiment {
            id: "E10",
            description: "Adaptive coin-game exploration vs BFS/DFS on deep instances",
            run: e10_skewed_exploration,
        },
    ]
}

/// Looks up an experiment by its id (case-insensitive).
pub fn experiment_by_id(id: &str) -> Option<Experiment> {
    all_experiments()
        .into_iter()
        .find(|e| e.id.eq_ignore_ascii_case(id))
}

/// Partition parameters shared by the experiments.
fn partition_params(beta: usize, runtime: RuntimeConfig) -> PartitionParams {
    PartitionParams::new(beta).with_x(4).with_runtime(runtime)
}

fn ceil_log2(n: usize) -> usize {
    (usize::BITS - n.max(2).leading_zeros()) as usize
}

/// E1 — fraction of nodes the sublinear LCA layers, and its query cost, as a
/// function of the coin budget `x`.
fn e1_lca_fraction(_runtime: RuntimeConfig) -> Table {
    let mut table = Table::new(
        "E1",
        "Sublinear LCA for partial beta-partitions",
        "A 1 - 1/n^{O(delta)} fraction of nodes is layered with sublinear queries per node; \
         both the fraction and the per-node query cost grow with the budget x (Lemma 4.7).",
        &[
            "workload",
            "beta",
            "x",
            "layer cap",
            "sampled",
            "layered frac",
            "avg queries",
            "max queries",
            "n",
        ],
    );

    let workloads = [
        Workload::ForestUnion { n: 2_000, k: 2 },
        Workload::PowerLaw {
            n: 2_000,
            edges_per_node: 3,
        },
    ];
    for workload in workloads {
        let graph = workload.build(42);
        let beta = 2 * workload.alpha_bound() + 2;
        for x in [4usize, 8, 12] {
            let config = CoinGameConfig::new(x, beta);
            let oracle = LcaOracle::new(&graph);
            let sample: Vec<NodeId> = graph.nodes().step_by(7).collect();
            let mut layered = 0usize;
            let mut total_queries = 0usize;
            let mut max_queries = 0usize;
            for &v in &sample {
                let output = partial_partition_lca(&oracle, v, &config).expect("no budget set");
                if output.root_layer.is_finite() {
                    layered += 1;
                }
                total_queries += output.queries;
                max_queries = max_queries.max(output.queries);
            }
            table.push_row(vec![
                workload.label(),
                beta.to_string(),
                x.to_string(),
                config.effective_layer_cap().to_string(),
                sample.len().to_string(),
                format!("{:.3}", layered as f64 / sample.len() as f64),
                format!("{:.1}", total_queries as f64 / sample.len() as f64),
                max_queries.to_string(),
                graph.num_nodes().to_string(),
            ]);
        }
    }
    table
}

/// E2 — Theorem 1.2 with `beta = O(alpha)`.
fn e2_partition_rounds(runtime: RuntimeConfig) -> Table {
    let mut table = Table::new(
        "E2",
        "AMPC beta-partition, beta = ceil(2.5 * alpha)",
        "The partition is complete and valid, its size is O(log n), the number of AMPC rounds \
         grows with alpha but not with n, and per-machine queries stay sublinear (Theorem 1.2).",
        &[
            "workload",
            "alpha<=",
            "beta",
            "rounds",
            "layers",
            "log2 n",
            "max queries",
            "peel rounds",
        ],
    );
    let mut configurations: Vec<(Workload, usize)> = Vec::new();
    for k in [1usize, 2, 4, 8] {
        for n in [500usize, 2_000] {
            configurations.push((Workload::ForestUnion { n, k }, k));
        }
    }
    // Deep trees: the natural partition has depth+1 = Θ(log n) layers, so the
    // LCA-based algorithm needs several rounds (cap layers per round) while
    // the size stays logarithmic.
    configurations.push((Workload::DeepTree { arity: 4, depth: 5 }, 1));
    configurations.push((Workload::DeepTree { arity: 4, depth: 6 }, 1));

    for (workload, k) in configurations {
        let graph = workload.build(7 + k as u64);
        let n = graph.num_nodes();
        let beta = ((2.5 * k as f64).ceil() as usize).max(3);
        let result = ampc_beta_partition(&graph, &partition_params(beta, runtime))
            .expect("beta >= 2.5 alpha always succeeds");
        assert!(result.partition.validate(&graph).is_ok());
        table.push_row(vec![
            workload.label(),
            k.to_string(),
            beta.to_string(),
            result.rounds.to_string(),
            result.partition.size().to_string(),
            ceil_log2(n).to_string(),
            result.max_queries_per_node.to_string(),
            result.peeling_rounds.to_string(),
        ]);
    }
    table
}

/// E3 — Theorem 1.2 with `beta = alpha^(1+eps)`.
fn e3_partition_constant_rounds(runtime: RuntimeConfig) -> Table {
    let mut table = Table::new(
        "E3",
        "AMPC beta-partition, beta = alpha^(1+eps)",
        "With the looser beta the number of rounds becomes (nearly) independent of alpha and n \
         — the O(1/eps)-round regime of Theorem 1.2.",
        &[
            "n",
            "alpha<=",
            "eps",
            "beta",
            "rounds",
            "layers",
            "max queries",
        ],
    );
    for k in [2usize, 4, 8] {
        for eps in [0.5f64, 1.0] {
            let n = 2_000usize;
            let workload = Workload::ForestUnion { n, k };
            let graph = workload.build(11 + k as u64);
            let beta = ((k as f64).powf(1.0 + eps).ceil() as usize).max(2 * k + 1);
            let result = ampc_beta_partition(&graph, &partition_params(beta, runtime))
                .expect("loose beta always succeeds");
            table.push_row(vec![
                n.to_string(),
                k.to_string(),
                format!("{eps:.2}"),
                beta.to_string(),
                result.rounds.to_string(),
                result.partition.size().to_string(),
                result.max_queries_per_node.to_string(),
            ]);
        }
    }
    table
}

fn coloring_params(runtime: RuntimeConfig) -> AmpcColoringParams {
    AmpcColoringParams::default()
        .with_x(4)
        .with_runtime(runtime)
}

/// E4 — Theorem 1.3 (1).
fn e4_coloring_alpha_power(runtime: RuntimeConfig) -> Table {
    let mut table = Table::new(
        "E4",
        "O(alpha^(2+eps))-coloring in O(1/eps) rounds",
        "Colors grow roughly like alpha^2 (up to the eps slack) while the total number of AMPC \
         rounds stays small and flat in n (Theorem 1.3(1)).",
        &[
            "workload", "alpha<=", "beta", "colors", "alpha^2", "rounds", "Delta+1",
        ],
    );
    for workload in [
        Workload::ForestUnion { n: 1_500, k: 2 },
        Workload::ForestUnion { n: 1_500, k: 4 },
        Workload::PowerLaw {
            n: 1_500,
            edges_per_node: 3,
        },
    ] {
        let graph = workload.build(21);
        let alpha = workload.alpha_bound();
        let result = color_alpha_power(&graph, alpha, &coloring_params(runtime).with_epsilon(0.5))
            .expect("coloring succeeds");
        assert!(result.coloring.is_proper(&graph));
        table.push_row(vec![
            workload.label(),
            alpha.to_string(),
            result.beta.to_string(),
            result.colors_used.to_string(),
            (alpha * alpha).to_string(),
            result.total_rounds.to_string(),
            (graph.max_degree() + 1).to_string(),
        ]);
    }
    table
}

/// E5 — Theorem 1.3 (2).
fn e5_coloring_alpha_squared(runtime: RuntimeConfig) -> Table {
    let mut table = Table::new(
        "E5",
        "O(alpha^2)-coloring in O(log alpha) rounds",
        "Colors stay within a constant factor of alpha^2 and the rounds scale with log(alpha), \
         not with n (Theorem 1.3(2)).",
        &[
            "workload",
            "alpha<=",
            "beta",
            "colors",
            "alpha^2",
            "rounds",
            "log2 alpha + 1",
        ],
    );
    for (n, k) in [(1_000usize, 1usize), (1_000, 2), (1_000, 4), (2_000, 4)] {
        let workload = Workload::ForestUnion { n, k };
        let graph = workload.build(23);
        let result = color_alpha_squared(&graph, k, &coloring_params(runtime)).expect("succeeds");
        assert!(result.coloring.is_proper(&graph));
        table.push_row(vec![
            workload.label(),
            k.to_string(),
            result.beta.to_string(),
            result.colors_used.to_string(),
            (k * k).to_string(),
            result.total_rounds.to_string(),
            (ceil_log2(k.max(2)) + 1).to_string(),
        ]);
    }
    table
}

/// E6 — Theorem 1.3 (3) / Corollary 1.4.
fn e6_coloring_two_alpha(runtime: RuntimeConfig) -> Table {
    let mut table = Table::new(
        "E6",
        "((2+eps)alpha + 1)-coloring",
        "The number of colors is linear in alpha (and independent of n and Delta); for constant \
         alpha both colors and rounds stay constant as the graph grows (Corollary 1.4).",
        &[
            "workload",
            "alpha<=",
            "beta",
            "colors",
            "(2+eps)a+1",
            "rounds",
            "Delta+1",
        ],
    );
    for workload in [
        Workload::DeepTree { arity: 4, depth: 5 },
        Workload::ForestUnion { n: 1_000, k: 2 },
        Workload::ForestUnion { n: 2_000, k: 2 },
        Workload::PlanarGrid { side: 30 },
        Workload::PlanarGrid { side: 45 },
        Workload::PowerLaw {
            n: 2_000,
            edges_per_node: 4,
        },
    ] {
        let graph = workload.build(29);
        let alpha = workload.alpha_bound();
        let result =
            color_two_alpha_plus_one(&graph, alpha, &coloring_params(runtime).with_epsilon(0.5))
                .expect("succeeds");
        assert!(result.coloring.is_proper(&graph));
        table.push_row(vec![
            workload.label(),
            alpha.to_string(),
            result.beta.to_string(),
            result.colors_used.to_string(),
            (result.beta + 1).to_string(),
            result.total_rounds.to_string(),
            (graph.max_degree() + 1).to_string(),
        ]);
    }
    table
}

/// E7 — Theorem 1.5.
fn e7_derand_mpc(_runtime: RuntimeConfig) -> Table {
    let mut table = Table::new(
        "E7",
        "Deterministic 2x∆-coloring in MPC",
        "The uncolored set shrinks at least by a factor x per phase, so the number of phases is \
         at most log_x(n) + 1; the palette is 2x∆ rounded to a power of two (Theorem 1.5).",
        &[
            "n",
            "m",
            "Delta",
            "x",
            "palette",
            "phases",
            "log_x n",
            "uncolored history",
            "mpc rounds",
        ],
    );
    for n in [300usize, 800] {
        for x in [2usize, 4, 8] {
            let workload = Workload::Gnm {
                n,
                average_degree: 6,
            };
            let graph = workload.build(31);
            let result = derandomized_coloring(&graph, &DerandParams::with_x(x));
            assert!(result.coloring.is_proper(&graph));
            let log_x_n = ((n as f64).ln() / (x as f64).ln()).ceil() as usize;
            let history = result
                .uncolored_history
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join(">");
            table.push_row(vec![
                n.to_string(),
                graph.num_edges().to_string(),
                graph.max_degree().to_string(),
                x.to_string(),
                result.palette.to_string(),
                result.phases.to_string(),
                log_x_n.to_string(),
                history,
                result.mpc_rounds.to_string(),
            ]);
        }
    }
    table
}

/// E8 — the full trade-off table.
fn e8_tradeoff_table(runtime: RuntimeConfig) -> Table {
    let mut table = Table::new(
        "E8",
        "Color / round trade-off on a heavy-tailed sparse graph",
        "The three Theorem 1.3 variants trade colors for rounds; all of them beat the Delta+1 \
         budget by a wide margin on graphs with Delta >> alpha; sequential baselines shown for \
         reference (no meaningful round count).",
        &[
            "algorithm",
            "colors",
            "beta",
            "AMPC rounds",
            "partition layers",
        ],
    );
    let workload = Workload::PowerLaw {
        n: 2_000,
        edges_per_node: 3,
    };
    let graph = workload.build(37);
    let alpha = workload.alpha_bound();
    let params = coloring_params(runtime);

    let variants: Vec<(&str, Result<arbo_coloring::ampc::AmpcColoringResult, _>)> = vec![
        (
            "Thm 1.3(1) alpha^(2+eps)",
            color_alpha_power(&graph, alpha, &params),
        ),
        (
            "Thm 1.3(2) alpha^2",
            color_alpha_squared(&graph, alpha, &params),
        ),
        (
            "Thm 1.3(3) (2+eps)alpha+1",
            color_two_alpha_plus_one(&graph, alpha, &params),
        ),
        (
            "Sec 6.4 alpha^(1+eps) via Thm 1.5",
            color_large_arboricity(&graph, alpha, &params),
        ),
    ];
    for (name, outcome) in variants {
        match outcome {
            Ok(result) => {
                assert!(result.coloring.is_proper(&graph));
                table.push_row(vec![
                    name.to_string(),
                    result.colors_used.to_string(),
                    result.beta.to_string(),
                    result.total_rounds.to_string(),
                    result.partition_size.to_string(),
                ]);
            }
            Err(err) => {
                table.push_row(vec![
                    name.to_string(),
                    format!("failed: {err}"),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ]);
            }
        }
    }

    let mut rng = ChaCha8Rng::seed_from_u64(41);
    for baseline in baselines::all_baselines(&graph, &mut rng) {
        table.push_row(vec![
            baseline.algorithm.to_string(),
            baseline.colors_used.to_string(),
            "-".to_string(),
            "(sequential)".to_string(),
            "-".to_string(),
        ]);
    }
    table.push_row(vec![
        "Delta + 1 budget (degree-based)".to_string(),
        (graph.max_degree() + 1).to_string(),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
    ]);
    table
}

/// E9 — arboricity guessing (Lemma 5.1).
fn e9_guessing_overhead(runtime: RuntimeConfig) -> Table {
    let mut table = Table::new(
        "E9",
        "Beta-partitioning without knowing alpha",
        "The guessing scheme settles on a guess within a constant factor of the true arboricity \
         and its total round cost stays within a constant factor of the known-alpha run \
         (Lemma 5.1).",
        &[
            "workload",
            "true k",
            "chosen alpha",
            "chosen beta",
            "guess rounds (seq+par)",
            "known-alpha rounds",
            "attempts",
        ],
    );
    for k in [1usize, 3, 6] {
        let workload = Workload::ForestUnion { n: 800, k };
        let graph = workload.build(43 + k as u64);
        let template = partition_params(0, runtime);
        let guess = ampc_beta_partition_unknown_arboricity(&graph, 0.5, &template)
            .expect("guessing succeeds");
        let known = ampc_beta_partition(
            &graph,
            &partition_params(((2.5 * k as f64).ceil()) as usize, runtime),
        )
        .expect("known-alpha run succeeds");
        table.push_row(vec![
            workload.label(),
            k.to_string(),
            guess.chosen_alpha.to_string(),
            guess.chosen_beta.to_string(),
            format!("{}+{}", guess.sequential_rounds, guess.parallel_rounds),
            known.rounds.to_string(),
            guess.attempts.len().to_string(),
        ]);
    }
    table
}

/// Builds the "cluttered deep tree" of Section 2.1's counter-examples: a
/// complete `(beta+1)`-ary tree whose internal nodes each carry `cliques`
/// attached copies of `K_{beta+2}`. The clique nodes keep degree `> beta`
/// forever, so they stay on the `∞` layer and never enter any dependency
/// graph — they are pure clutter that volume-oblivious exploration pays for.
fn cluttered_tree(beta: usize, depth: usize, cliques: usize) -> CsrGraph {
    let tree = sparse_graph::generators::complete_kary_tree(beta + 1, depth);
    let internal: Vec<NodeId> = tree.nodes().filter(|&v| tree.degree(v) > 1).collect();
    let clique_size = beta + 2;
    let n = tree.num_nodes() + internal.len() * cliques * clique_size;
    let mut builder = GraphBuilder::new(n);
    builder.extend_edges(tree.edges());
    let mut next = tree.num_nodes();
    for &v in &internal {
        for _ in 0..cliques {
            let members: Vec<NodeId> = (next..next + clique_size).collect();
            next += clique_size;
            for (i, &a) in members.iter().enumerate() {
                for &b in &members[i + 1..] {
                    builder.add_edge(a, b);
                }
            }
            builder.add_edge(v, members[0]);
        }
    }
    builder.build()
}

/// Naive budgeted BFS exploration: collect nodes in BFS order until the
/// query budget is spent, then compute the induced partition of the
/// collected set and read off the root's layer.
fn bfs_layer_estimate(graph: &CsrGraph, root: NodeId, beta: usize, budget: usize) -> Layer {
    let mut visited: BTreeSet<NodeId> = BTreeSet::new();
    let mut queue = std::collections::VecDeque::new();
    let mut queries = 0usize;
    visited.insert(root);
    queue.push_back(root);
    while let Some(v) = queue.pop_front() {
        if queries + graph.degree(v) + 1 > budget {
            break;
        }
        queries += graph.degree(v) + 1;
        for &w in graph.neighbors(v) {
            if visited.insert(w) {
                queue.push_back(w);
            }
        }
    }
    induced_layer(graph, &visited, root, beta)
}

/// Naive budgeted DFS exploration (same budget accounting as BFS).
fn dfs_layer_estimate(graph: &CsrGraph, root: NodeId, beta: usize, budget: usize) -> Layer {
    let mut visited: BTreeSet<NodeId> = BTreeSet::new();
    let mut stack = vec![root];
    let mut queries = 0usize;
    visited.insert(root);
    while let Some(v) = stack.pop() {
        if queries + graph.degree(v) + 1 > budget {
            break;
        }
        queries += graph.degree(v) + 1;
        for &w in graph.neighbors(v) {
            if visited.insert(w) {
                stack.push(w);
            }
        }
    }
    induced_layer(graph, &visited, root, beta)
}

fn induced_layer(
    graph: &CsrGraph,
    explored: &BTreeSet<NodeId>,
    root: NodeId,
    beta: usize,
) -> Layer {
    let in_s: Vec<bool> = (0..graph.num_nodes())
        .map(|v| explored.contains(&v))
        .collect();
    induced_partition(graph, &in_s, beta).layer(root)
}

/// E10 — adaptive exploration vs naive BFS/DFS under equal query budgets.
fn e10_skewed_exploration(_runtime: RuntimeConfig) -> Table {
    let mut table = Table::new(
        "E10",
        "Exploration cost on clutter-padded deep instances (Section 2.1)",
        "For every node whose natural layer is >= 2, the table reports the size of its \
         dependency graph |D(v)|, the queries the coin-dropping LCA actually spent, and the \
         smallest (hindsight-tuned, per-node) query budget under which budgeted BFS / DFS \
         certify the same layer. The LCA's cost scales with |D(v)| and stays far below n \
         without any tuning; DFS degrades sharply with the layer depth, and BFS only competes \
         because its budget is chosen per node with hindsight — no a-priori rule provides it.",
        &[
            "instance",
            "n",
            "layer",
            "count",
            "avg |D(v)|",
            "coin-game avg q",
            "BFS min budget",
            "DFS min budget",
        ],
    );
    let beta = 3usize;
    for (depth, cliques) in [(3usize, 2usize), (4, 2)] {
        let graph = cluttered_tree(beta, depth, cliques);
        let natural = natural_partition(&graph, beta);
        let x = (beta + 1).pow(3); // enough coins for layers up to 3
        let config = CoinGameConfig::new(x, beta).with_super_iterations(96);
        let oracle = LcaOracle::new(&graph);

        // Group the "deep" nodes (layer >= 2, below the reporting cap) by layer.
        let cap = config.effective_layer_cap();
        let mut by_layer: std::collections::BTreeMap<usize, Vec<NodeId>> =
            std::collections::BTreeMap::new();
        for v in graph.nodes() {
            if let Layer::Finite(layer) = natural.layer(v) {
                if (2..=cap).contains(&layer) {
                    by_layer.entry(layer).or_default().push(v);
                }
            }
        }

        for (layer, nodes) in by_layer {
            let mut dependency_total = 0usize;
            let mut game_total = 0usize;
            let mut bfs_total = 0usize;
            let mut dfs_total = 0usize;
            for &v in &nodes {
                dependency_total += beta_partition::dependency_size(&graph, &natural, v);
                let output = partial_partition_lca(&oracle, v, &config).expect("no budget");
                game_total += output.queries;
                bfs_total += minimal_budget(&graph, v, beta, Layer::Finite(layer), |g, r, b, q| {
                    bfs_layer_estimate(g, r, b, q)
                });
                dfs_total += minimal_budget(&graph, v, beta, Layer::Finite(layer), |g, r, b, q| {
                    dfs_layer_estimate(g, r, b, q)
                });
            }
            let avg = |total: usize| format!("{:.0}", total as f64 / nodes.len() as f64);
            table.push_row(vec![
                format!("cluttered-tree(depth={depth},cliques={cliques})"),
                graph.num_nodes().to_string(),
                layer.to_string(),
                nodes.len().to_string(),
                avg(dependency_total),
                avg(game_total),
                avg(bfs_total),
                avg(dfs_total),
            ]);
        }
    }
    table
}

/// The smallest budget (searched by doubling, then refined by bisection) at
/// which the given budgeted exploration certifies the target layer.
fn minimal_budget<F>(
    graph: &CsrGraph,
    root: NodeId,
    beta: usize,
    target: Layer,
    explore: F,
) -> usize
where
    F: Fn(&CsrGraph, NodeId, usize, usize) -> Layer,
{
    let max_budget = 4 * (graph.num_nodes() + 2 * graph.num_edges());
    let mut high = 8usize;
    while explore(graph, root, beta, high) != target {
        high *= 2;
        if high >= max_budget {
            return max_budget;
        }
    }
    let mut low = high / 2;
    while low + 1 < high {
        let mid = (low + high) / 2;
        if explore(graph, root, beta, mid) == target {
            high = mid;
        } else {
            low = mid;
        }
    }
    high
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_registry_is_complete_and_unique() {
        let experiments = all_experiments();
        assert_eq!(experiments.len(), 10);
        let ids: BTreeSet<&str> = experiments.iter().map(|e| e.id).collect();
        assert_eq!(ids.len(), 10);
        assert!(experiment_by_id("e3").is_some());
        assert!(experiment_by_id("E10").is_some());
        assert!(experiment_by_id("E99").is_none());
    }

    #[test]
    fn cluttered_tree_shape() {
        let g = cluttered_tree(3, 2, 1);
        // Complete 4-ary tree of depth 2 has 21 nodes, 5 internal ones, each
        // carrying one K5 decoy (5 extra nodes).
        assert_eq!(g.num_nodes(), 21 + 5 * 5);
        // The clique nodes stay on the ∞ layer of the natural 3-partition.
        let natural = natural_partition(&g, 3);
        assert_eq!(natural.infinite_nodes().len(), 25);
        assert_eq!(natural.layer(0), Layer::Finite(2));
    }

    #[test]
    fn naive_explorations_return_layers() {
        let g = cluttered_tree(3, 2, 1);
        let budget = 4 * (g.num_nodes() + 2 * g.num_edges());
        // With an unlimited budget BFS/DFS see everything and get the root's
        // layer right (depth 2).
        assert_eq!(bfs_layer_estimate(&g, 0, 3, budget), Layer::Finite(2));
        assert_eq!(dfs_layer_estimate(&g, 0, 3, budget), Layer::Finite(2));
        assert!(
            minimal_budget(&g, 0, 3, Layer::Finite(2), |g, r, b, q| {
                bfs_layer_estimate(g, r, b, q)
            }) <= budget
        );
    }

    #[test]
    fn exploration_baselines_respect_their_budget() {
        let g = cluttered_tree(3, 2, 1);
        // A tiny budget can only reach the root's immediate surroundings, so
        // the root's layer is overestimated (possibly ∞) but never below the
        // natural layer (Lemma 3.13).
        let natural = natural_partition(&g, 3);
        let estimate = bfs_layer_estimate(&g, 0, 3, 8);
        assert!(estimate >= natural.layer(0));
        let estimate = dfs_layer_estimate(&g, 0, 3, 8);
        assert!(estimate >= natural.layer(0));
    }
}
