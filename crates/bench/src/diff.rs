//! Bench-regression comparison between two `BENCH_*.json` snapshots.
//!
//! The `bench_diff` bin feeds two table documents (the files `intra_bench
//! --json` and `loadgen --json` emit) through [`diff_tables`]: rows are
//! keyed by their identity columns, every metric column is compared under
//! a per-metric noise policy, and the result renders as a markdown delta
//! table suitable for a CI job summary. Policies distinguish three
//! severities:
//!
//! * **hard** — correctness-adjacent metrics where any meaningful
//!   movement is a bug, not noise: the `identical` bit-identity flag,
//!   `allocs_per_round` (the allocation-discipline contract), and
//!   request failure counts. A hard regression always fails the diff.
//! * **soft** — wall-clock-shaped metrics (`wall_ms`, `p99_ms`,
//!   `throughput_jobs_per_s`, …) gated by a relative threshold AND an
//!   absolute floor, so microsecond jitter on fast cells cannot trip the
//!   relative gate. Soft regressions fail the diff unless
//!   [`DiffConfig::allow_soft`] is set (shared CI runners make
//!   wall-clock advisory there).
//! * **info** — hardware counters and task counts: reported in the
//!   delta table when they move, never a failure. Perf counters vary
//!   with multiplexing and are all-zero when `perf_available` is false,
//!   so they are context, not a gate.
//!
//! Baseline rows missing from the current run are hard regressions
//! (coverage loss); new rows are informational.

use std::collections::BTreeMap;

/// A parsed benchmark table: the subset of [`crate::Table`]'s JSON schema
/// the diff needs, plus the optional `meta` facts.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchTable {
    /// Table identifier (`"intra"`, `"service-load"`, …).
    pub id: String,
    /// Table-level facts such as `perf_available`.
    pub meta: Vec<(String, String)>,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row cells, all strings.
    pub rows: Vec<Vec<String>>,
}

/// Minimal JSON value for the table documents (no floats beyond what the
/// cells themselves encode — every leaf is kept as its source text).
#[derive(Debug, Clone, PartialEq)]
enum Json {
    /// String literal (unescaped).
    Str(String),
    /// Number / `true` / `false` / `null`, kept verbatim.
    Raw(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, insertion order preserved.
    Obj(Vec<(String, Json)>),
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            at: 0,
        }
    }

    fn error(&self, message: &str) -> String {
        format!("json parse error at byte {}: {message}", self.at)
    }

    fn skip_whitespace(&mut self) {
        while self
            .bytes
            .get(self.at)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.at += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        self.skip_whitespace();
        if self.bytes.get(self.at) == Some(&byte) {
            self.at += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", byte as char)))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_whitespace();
        self.bytes.get(self.at).copied()
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(_) => self.raw(),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            entries.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Obj(entries));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.at) {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    let escape = *self
                        .bytes
                        .get(self.at)
                        .ok_or_else(|| self.error("unterminated escape"))?;
                    self.at += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.at..self.at + 4)
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.error("invalid \\u escape"))?;
                            self.at += 4;
                            // Surrogate pairs never appear in our own
                            // serializer's output; map them to the
                            // replacement character rather than erroring.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(self.error(&format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(&byte) => {
                    // Copy one UTF-8 scalar (multi-byte sequences arrive
                    // as valid UTF-8 because the input is a &str).
                    let len = match byte {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let chunk = self
                        .bytes
                        .get(self.at..self.at + len)
                        .ok_or_else(|| self.error("truncated UTF-8 sequence"))?;
                    out.push_str(
                        std::str::from_utf8(chunk)
                            .map_err(|_| self.error("invalid UTF-8 in string"))?,
                    );
                    self.at += len;
                }
            }
        }
    }

    fn raw(&mut self) -> Result<Json, String> {
        self.skip_whitespace();
        let start = self.at;
        while self
            .bytes
            .get(self.at)
            .is_some_and(|b| !b.is_ascii_whitespace() && !matches!(b, b',' | b']' | b'}' | b':'))
        {
            self.at += 1;
        }
        if self.at == start {
            return Err(self.error("expected a value"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at])
            .map_err(|_| self.error("invalid UTF-8 in literal"))?;
        Ok(Json::Raw(text.to_string()))
    }
}

impl Json {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(entries) => entries
                .iter()
                .find(|(name, _)| name == key)
                .map(|(_, value)| value),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            Json::Raw(s) => Some(s.as_str()),
            _ => None,
        }
    }

    fn string_array(&self) -> Option<Vec<String>> {
        match self {
            Json::Arr(items) => items
                .iter()
                .map(|item| item.as_str().map(str::to_string))
                .collect(),
            _ => None,
        }
    }
}

/// Finds the table object — the first object carrying both `headers` and
/// `rows` — in `value`, searching nested objects depth-first (the loadgen
/// document wraps its table under a `"load"` key).
fn find_table(value: &Json) -> Option<&Json> {
    if value.get("headers").is_some() && value.get("rows").is_some() {
        return Some(value);
    }
    if let Json::Obj(entries) = value {
        entries.iter().find_map(|(_, child)| find_table(child))
    } else {
        None
    }
}

/// Parses a `BENCH_*.json` document into a [`BenchTable`].
pub fn parse_table(text: &str) -> Result<BenchTable, String> {
    let mut parser = Parser::new(text);
    let document = parser.value()?;
    let table =
        find_table(&document).ok_or("no object with `headers` and `rows` found in the document")?;
    let headers = table
        .get("headers")
        .and_then(Json::string_array)
        .ok_or("`headers` is not an array of strings")?;
    let rows = match table.get("rows") {
        Some(Json::Arr(items)) => items
            .iter()
            .map(|row| {
                row.string_array()
                    .filter(|cells| cells.len() == headers.len())
                    .ok_or("a row is not a string array matching the header width")
            })
            .collect::<Result<Vec<_>, _>>()?,
        _ => return Err("`rows` is not an array".to_string()),
    };
    let meta = match table.get("meta") {
        Some(Json::Obj(entries)) => entries
            .iter()
            .filter_map(|(key, value)| value.as_str().map(|v| (key.clone(), v.to_string())))
            .collect(),
        _ => Vec::new(),
    };
    Ok(BenchTable {
        id: table
            .get("id")
            .and_then(Json::as_str)
            .unwrap_or("unknown")
            .to_string(),
        meta,
        headers,
        rows,
    })
}

/// How a metric column is judged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Any meaningful movement fails the diff unconditionally.
    Hard,
    /// Fails unless [`DiffConfig::allow_soft`] downgrades it to a warning.
    Soft,
    /// Reported, never a failure.
    Info,
}

/// Which direction of movement is a regression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    /// Bigger is worse (latency, allocations, failures).
    UpIsBad,
    /// Smaller is worse (throughput, successes).
    DownIsBad,
}

/// Per-metric policy: severity, direction and noise thresholds. A change
/// only counts as a regression when it moves in the bad direction by more
/// than `rel_threshold` RELATIVE AND more than `abs_floor` ABSOLUTE (in
/// the metric's own unit) — the floor keeps sub-noise absolute movements
/// on tiny baselines from tripping the relative gate.
#[derive(Debug, Clone, Copy)]
struct Policy {
    severity: Severity,
    direction: Direction,
    rel_threshold: f64,
    abs_floor: f64,
}

/// Classifies a column by header name. Returns `None` for identity
/// columns (they form the row key).
fn policy_for(header: &str, config: &DiffConfig) -> Option<Policy> {
    let wall = Policy {
        severity: Severity::Soft,
        direction: Direction::UpIsBad,
        rel_threshold: config.rel_threshold,
        abs_floor: config.abs_floor,
    };
    match header {
        // Bit-identity and allocation discipline are deterministic
        // contracts: any movement is a real defect, never noise.
        "identical" => Some(Policy {
            severity: Severity::Hard,
            direction: Direction::DownIsBad, // true(1) -> false(0)
            rel_threshold: 0.0,
            abs_floor: 0.0,
        }),
        "allocs_per_round" => Some(Policy {
            severity: Severity::Hard,
            direction: Direction::UpIsBad,
            // Work-stealing interleaving shifts the amortized count by
            // ~tens per round between runs; the regression this gate
            // exists for — a per-node allocation pattern — is thousands
            // per round, so a generous floor loses nothing.
            rel_threshold: 0.25,
            abs_floor: 64.0,
        }),
        "failed" => Some(Policy {
            severity: Severity::Hard,
            direction: Direction::UpIsBad,
            rel_threshold: 0.0,
            abs_floor: 0.0,
        }),
        "ok" => Some(Policy {
            severity: Severity::Hard,
            direction: Direction::DownIsBad,
            rel_threshold: 0.0,
            abs_floor: 0.0,
        }),
        // Wall-clock-shaped metrics: noisy on shared runners, gated by
        // the configured thresholds.
        "wall_ms" | "wall_s" | "p50_ms" | "p99_ms" => Some(wall),
        "speedup" | "throughput_jobs_per_s" => Some(Policy {
            direction: Direction::DownIsBad,
            ..wall
        }),
        // The SIMD dispatch tier is a per-runner fact, not a metric: an
        // avx2 baseline diffed on an sse2 (or AMPC_SIMD=0) runner must
        // neither key rows apart nor fail the gate. The cells are
        // non-numeric, so the numeric guard skips them — the policy
        // exists to keep the column out of the row key.
        "simd_path" => Some(Policy {
            severity: Severity::Info,
            direction: Direction::UpIsBad,
            rel_threshold: config.rel_threshold,
            abs_floor: config.abs_floor,
        }),
        // Hardware counters and scheduler task counts: context only.
        // Perf counters vary with multiplexing (and are all-zero when
        // unavailable); task counts vary with work-stealing interleaving.
        "cycles" | "instructions" | "ipc" | "cache_miss_pct" | "branch_misses" | "intra_tasks"
        | "jobs" => Some(Policy {
            severity: Severity::Info,
            direction: Direction::UpIsBad,
            rel_threshold: config.rel_threshold,
            abs_floor: config.abs_floor,
        }),
        _ => None,
    }
}

/// Thresholds and downgrade switches for one diff run.
#[derive(Debug, Clone)]
pub struct DiffConfig {
    /// Relative movement (fraction of baseline) below which a soft/info
    /// metric is considered noise.
    pub rel_threshold: f64,
    /// Absolute movement (metric units) below which it is noise.
    pub abs_floor: f64,
    /// Downgrades soft (wall-clock) regressions to warnings — for shared
    /// CI runners whose wall clock is not trustworthy. Hard regressions
    /// still fail.
    pub allow_soft: bool,
}

impl Default for DiffConfig {
    fn default() -> Self {
        DiffConfig {
            rel_threshold: 0.15,
            abs_floor: 2.0,
            allow_soft: false,
        }
    }
}

/// One compared metric that moved beyond its policy's noise thresholds
/// (or a structural difference such as a missing row).
#[derive(Debug, Clone)]
pub struct Delta {
    /// Row key (identity columns joined with ` / `).
    pub key: String,
    /// Metric column name, or a structural marker such as `row`.
    pub metric: String,
    /// Baseline cell text.
    pub baseline: String,
    /// Current cell text.
    pub current: String,
    /// Relative movement (signed; positive = increased), when numeric.
    pub relative: Option<f64>,
    /// Policy severity of the movement.
    pub severity: Severity,
    /// Whether the movement is in the bad direction beyond thresholds.
    pub regression: bool,
}

/// The outcome of comparing two tables.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// Every beyond-noise movement, regressions first.
    pub deltas: Vec<Delta>,
    /// Hard regressions (always fatal).
    pub hard_regressions: usize,
    /// Soft regressions (fatal unless downgraded).
    pub soft_regressions: usize,
    /// Whether the diff should fail under `config`.
    pub failed: bool,
}

/// Numeric value of a cell: booleans map to 1/0 so the `identical`
/// column diffs like any other metric; `-` (perf unavailable) is `None`.
fn numeric(cell: &str) -> Option<f64> {
    match cell {
        "true" => Some(1.0),
        "false" => Some(0.0),
        "-" => None,
        other => other.parse().ok(),
    }
}

/// Compares `current` against `baseline` under `config`.
pub fn diff_tables(baseline: &BenchTable, current: &BenchTable, config: &DiffConfig) -> DiffReport {
    // Key = identity columns (no policy). Metric columns are compared by
    // NAME, not position, so adding a column does not invalidate a
    // committed baseline.
    let key_of = |table: &BenchTable, row: &[String]| -> String {
        table
            .headers
            .iter()
            .zip(row)
            .filter(|(header, _)| policy_for(header, config).is_none())
            .map(|(_, cell)| cell.clone())
            .collect::<Vec<_>>()
            .join(" / ")
    };
    let index = |table: &BenchTable| -> BTreeMap<String, Vec<String>> {
        table
            .rows
            .iter()
            .map(|row| (key_of(table, row), row.clone()))
            .collect()
    };
    let baseline_rows = index(baseline);
    let current_rows = index(current);

    let mut deltas = Vec::new();
    for (key, baseline_row) in &baseline_rows {
        let Some(current_row) = current_rows.get(key) else {
            // A cell the baseline covers has disappeared: that is
            // coverage loss, not noise.
            deltas.push(Delta {
                key: key.clone(),
                metric: "row".to_string(),
                baseline: "present".to_string(),
                current: "missing".to_string(),
                relative: None,
                severity: Severity::Hard,
                regression: true,
            });
            continue;
        };
        for (column, header) in baseline.headers.iter().enumerate() {
            let Some(policy) = policy_for(header, config) else {
                continue;
            };
            let baseline_cell = &baseline_row[column];
            let current_cell = match current.headers.iter().position(|h| h == header) {
                Some(at) => &current_row[at],
                None => continue, // column dropped in current: key mismatch already caught it
            };
            let (Some(before), Some(after)) = (numeric(baseline_cell), numeric(current_cell))
            else {
                // One side unsampled (`-`): perf availability differs
                // between the two machines; not comparable, not a
                // regression.
                continue;
            };
            let moved = after - before;
            let relative = if before.abs() > f64::EPSILON {
                moved / before
            } else if moved.abs() > f64::EPSILON {
                1.0
            } else {
                0.0
            };
            let bad = match policy.direction {
                Direction::UpIsBad => moved > 0.0,
                Direction::DownIsBad => moved < 0.0,
            };
            let beyond_noise =
                relative.abs() > policy.rel_threshold && moved.abs() > policy.abs_floor;
            // Zero-threshold policies (identical, failed) trip on any
            // bad movement at all.
            let strict = policy.rel_threshold == 0.0 && policy.abs_floor == 0.0;
            let regression = bad && (beyond_noise || (strict && moved.abs() > 0.0));
            if regression || beyond_noise {
                deltas.push(Delta {
                    key: key.clone(),
                    metric: header.clone(),
                    baseline: baseline_cell.clone(),
                    current: current_cell.clone(),
                    relative: Some(relative),
                    severity: policy.severity,
                    regression,
                });
            }
        }
    }
    for key in current_rows.keys() {
        if !baseline_rows.contains_key(key) {
            deltas.push(Delta {
                key: key.clone(),
                metric: "row".to_string(),
                baseline: "missing".to_string(),
                current: "present".to_string(),
                relative: None,
                severity: Severity::Info,
                regression: false,
            });
        }
    }

    deltas.sort_by_key(|delta| {
        (
            !delta.regression,
            match delta.severity {
                Severity::Hard => 0u8,
                Severity::Soft => 1,
                Severity::Info => 2,
            },
        )
    });
    let hard_regressions = deltas
        .iter()
        .filter(|d| d.regression && d.severity == Severity::Hard)
        .count();
    let soft_regressions = deltas
        .iter()
        .filter(|d| d.regression && d.severity == Severity::Soft)
        .count();
    DiffReport {
        failed: hard_regressions > 0 || (soft_regressions > 0 && !config.allow_soft),
        deltas,
        hard_regressions,
        soft_regressions,
    }
}

/// Renders the report as a markdown document (for `$GITHUB_STEP_SUMMARY`).
pub fn render_markdown(
    table_id: &str,
    baseline: &BenchTable,
    current: &BenchTable,
    report: &DiffReport,
    config: &DiffConfig,
) -> String {
    let mut out = String::new();
    out.push_str(&format!("### bench-diff: `{table_id}`\n\n"));
    let meta_of = |table: &BenchTable, key: &str| -> String {
        table
            .meta
            .iter()
            .find(|(name, _)| name == key)
            .map_or_else(|| "unset".to_string(), |(_, value)| value.clone())
    };
    out.push_str(&format!(
        "perf_available: baseline={}, current={}\n\n",
        meta_of(baseline, "perf_available"),
        meta_of(current, "perf_available"),
    ));
    if report.deltas.is_empty() {
        out.push_str("No movements beyond noise thresholds.\n");
        return out;
    }
    out.push_str("| status | row | metric | baseline | current | delta |\n");
    out.push_str("|---|---|---|---|---|---|\n");
    for delta in &report.deltas {
        let status = match (delta.regression, delta.severity, config.allow_soft) {
            (true, Severity::Hard, _) => "❌ hard",
            (true, Severity::Soft, true) => "⚠️ soft (allowed)",
            (true, Severity::Soft, false) => "❌ soft",
            (true, Severity::Info, _) | (false, _, _) => "ℹ️",
        };
        let relative = delta
            .relative
            .map_or_else(String::new, |r| format!("{:+.1}%", r * 100.0));
        out.push_str(&format!(
            "| {status} | {} | {} | {} | {} | {relative} |\n",
            delta.key, delta.metric, delta.baseline, delta.current
        ));
    }
    out.push_str(&format!(
        "\n{} hard, {} soft regression(s); verdict: **{}**\n",
        report.hard_regressions,
        report.soft_regressions,
        if report.failed { "FAIL" } else { "PASS" }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(headers: &[&str], rows: &[&[&str]]) -> BenchTable {
        BenchTable {
            id: "intra".to_string(),
            meta: vec![("perf_available".to_string(), "false".to_string())],
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: rows
                .iter()
                .map(|row| row.iter().map(|c| c.to_string()).collect())
                .collect(),
        }
    }

    const HEADERS: &[&str] = &[
        "workload",
        "threads",
        "wall_ms",
        "allocs_per_round",
        "identical",
    ];

    #[test]
    fn parses_intra_style_document() {
        let text = r#"{
  "id": "intra",
  "title": "demo",
  "claim": "c",
  "meta": {"perf_available": "false"},
  "headers": ["workload", "wall_ms"],
  "rows": [
    ["forest", "12.5"],
    ["power-law", "30.1"]
  ]
}"#;
        let parsed = parse_table(text).unwrap();
        assert_eq!(parsed.id, "intra");
        assert_eq!(parsed.headers, ["workload", "wall_ms"]);
        assert_eq!(parsed.rows.len(), 2);
        assert_eq!(
            parsed.meta,
            [("perf_available".to_string(), "false".to_string())]
        );
    }

    #[test]
    fn finds_table_nested_under_load_key() {
        let text = r#"{"load": {"id": "service-load", "headers": ["workload", "p99_ms"],
            "rows": [["ring", "5.0"]]}, "latency_histogram": {"count": 9}}"#;
        let parsed = parse_table(text).unwrap();
        assert_eq!(parsed.id, "service-load");
        assert_eq!(parsed.rows, [["ring".to_string(), "5.0".to_string()]]);
    }

    #[test]
    fn twenty_percent_wall_clock_regression_fails() {
        let baseline = table(HEADERS, &[&["forest", "4", "100.000", "0", "true"]]);
        let current = table(HEADERS, &[&["forest", "4", "120.000", "0", "true"]]);
        let report = diff_tables(&baseline, &current, &DiffConfig::default());
        assert!(report.failed, "{report:?}");
        assert_eq!(report.soft_regressions, 1);
        assert_eq!(report.hard_regressions, 0);
        // The same movement is tolerated when wall clock is advisory.
        let relaxed = DiffConfig {
            allow_soft: true,
            ..DiffConfig::default()
        };
        assert!(!diff_tables(&baseline, &current, &relaxed).failed);
    }

    #[test]
    fn small_absolute_movement_on_fast_cell_is_noise() {
        // +50% relative but only +1ms absolute: under the 2ms floor.
        let baseline = table(HEADERS, &[&["forest", "4", "2.000", "0", "true"]]);
        let current = table(HEADERS, &[&["forest", "4", "3.000", "0", "true"]]);
        let report = diff_tables(&baseline, &current, &DiffConfig::default());
        assert!(!report.failed, "{report:?}");
    }

    #[test]
    fn bit_identity_divergence_is_always_hard() {
        let baseline = table(HEADERS, &[&["forest", "4", "10.000", "0", "true"]]);
        let current = table(HEADERS, &[&["forest", "4", "10.000", "0", "false"]]);
        let config = DiffConfig {
            allow_soft: true,
            ..DiffConfig::default()
        };
        let report = diff_tables(&baseline, &current, &config);
        assert!(report.failed);
        assert_eq!(report.hard_regressions, 1);
    }

    #[test]
    fn alloc_budget_divergence_is_hard_and_improvement_is_not() {
        let baseline = table(HEADERS, &[&["forest", "4", "10.000", "10", "true"]]);
        let worse = table(HEADERS, &[&["forest", "4", "10.000", "400", "true"]]);
        let report = diff_tables(&baseline, &worse, &DiffConfig::default());
        assert!(report.failed);
        assert_eq!(report.hard_regressions, 1);
        // Fewer allocations and faster wall clock: reportable, not fatal.
        let better = table(HEADERS, &[&["forest", "4", "5.000", "0", "true"]]);
        let report = diff_tables(&baseline, &better, &DiffConfig::default());
        assert!(!report.failed, "{report:?}");
    }

    #[test]
    fn missing_baseline_row_is_hard_and_new_row_is_info() {
        let baseline = table(
            HEADERS,
            &[
                &["forest", "1", "10.000", "0", "true"],
                &["forest", "4", "4.000", "0", "true"],
            ],
        );
        let shrunk = table(HEADERS, &[&["forest", "1", "10.000", "0", "true"]]);
        let report = diff_tables(&baseline, &shrunk, &DiffConfig::default());
        assert!(report.failed);
        assert_eq!(report.hard_regressions, 1);
        let report = diff_tables(&shrunk, &baseline, &DiffConfig::default());
        assert!(!report.failed, "{report:?}");
    }

    #[test]
    fn unsampled_perf_cells_do_not_compare() {
        let headers: &[&str] = &["workload", "ipc", "wall_ms"];
        let baseline = table(headers, &[&["forest", "-", "10.000"]]);
        let current = table(headers, &[&["forest", "1.42", "10.000"]]);
        let report = diff_tables(&baseline, &current, &DiffConfig::default());
        assert!(!report.failed);
        assert!(report.deltas.is_empty(), "{report:?}");
    }

    #[test]
    fn simd_path_variance_across_runners_is_not_a_regression() {
        // Same cells, different dispatch tier: rows must still pair up
        // (simd_path is not part of the row key) and nothing may fail.
        let headers: &[&str] = &["workload", "threads", "wall_ms", "simd_path", "identical"];
        let baseline = table(headers, &[&["forest", "4", "10.000", "avx2", "true"]]);
        let current = table(headers, &[&["forest", "4", "10.000", "scalar", "true"]]);
        let report = diff_tables(&baseline, &current, &DiffConfig::default());
        assert!(!report.failed, "{report:?}");
        assert!(report.deltas.is_empty(), "{report:?}");
    }

    #[test]
    fn markdown_report_lists_regressions_first() {
        let baseline = table(HEADERS, &[&["forest", "4", "100.000", "0", "true"]]);
        let current = table(HEADERS, &[&["forest", "4", "150.000", "640", "true"]]);
        let config = DiffConfig::default();
        let report = diff_tables(&baseline, &current, &config);
        let markdown = render_markdown("intra", &baseline, &current, &report, &config);
        assert!(
            markdown.contains("❌ hard | forest / 4 | allocs_per_round"),
            "{markdown}"
        );
        assert!(markdown.contains("verdict: **FAIL**"), "{markdown}");
        let allocs_line = markdown.find("allocs_per_round").unwrap();
        let wall_line = markdown.find("wall_ms").unwrap();
        assert!(allocs_line < wall_line, "{markdown}");
    }
}
