//! Compares two benchmark snapshots (`BENCH_intra.json` / the loadgen
//! document) and fails on regressions beyond per-metric noise thresholds.
//!
//! ```text
//! cargo run -p ampc-coloring-bench --bin bench_diff -- \
//!     bench/baselines/intra.json BENCH_intra.json
//! ```
//!
//! Positional arguments: `<baseline.json> <current.json>`. Flags:
//!
//! * `--rel-threshold=F` — relative noise threshold for soft/info metrics
//!   (default 0.15 = 15%).
//! * `--abs-floor=F` — absolute noise floor in the metric's own unit
//!   (default 2.0; e.g. 2ms for `wall_ms`).
//! * `--allow-wall-regression` — downgrade soft (wall-clock-shaped)
//!   regressions to warnings, for shared CI runners. Hard regressions
//!   (bit-identity, allocation budget, request failures, lost rows)
//!   still exit non-zero.
//! * `--out=PATH` — also write the markdown delta table to `PATH`
//!   (e.g. to append to `$GITHUB_STEP_SUMMARY`); it always goes to
//!   stdout regardless.
//!
//! Exit status: 0 when no regression (informational movements are fine),
//! 1 on any regression that is not downgraded, 2 on usage/parse errors.

use ampc_coloring_bench::args::{has_flag, parse_flag};
use ampc_coloring_bench::diff::{diff_tables, parse_table, render_markdown, DiffConfig};

fn load(path: &str) -> ampc_coloring_bench::diff::BenchTable {
    let text = std::fs::read_to_string(path).unwrap_or_else(|error| {
        eprintln!("bench_diff: cannot read {path}: {error}");
        std::process::exit(2);
    });
    parse_table(&text).unwrap_or_else(|error| {
        eprintln!("bench_diff: cannot parse {path}: {error}");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let positional: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let [baseline_path, current_path] = positional.as_slice() else {
        eprintln!(
            "usage: bench_diff <baseline.json> <current.json> \
             [--rel-threshold=F] [--abs-floor=F] [--allow-wall-regression] [--out=PATH]"
        );
        std::process::exit(2);
    };

    let config = DiffConfig {
        rel_threshold: parse_flag(&args, "rel-threshold").unwrap_or(0.15),
        abs_floor: parse_flag(&args, "abs-floor").unwrap_or(2.0),
        allow_soft: has_flag(&args, "allow-wall-regression"),
    };
    let baseline = load(baseline_path);
    let current = load(current_path);
    if baseline.headers != current.headers {
        // Comparable subsets still diff (metrics match by name), but a
        // schema drift is worth a loud note: the baseline likely needs
        // regenerating.
        eprintln!(
            "bench_diff: note — header sets differ (baseline {:?} vs current {:?}); \
             metrics are matched by name",
            baseline.headers, current.headers
        );
    }
    let report = diff_tables(&baseline, &current, &config);
    let markdown = render_markdown(&current.id, &baseline, &current, &report, &config);
    print!("{markdown}");
    if let Some(path) = parse_flag::<String>(&args, "out") {
        if let Err(error) = std::fs::write(&path, &markdown) {
            eprintln!("bench_diff: cannot write {path}: {error}");
            std::process::exit(2);
        }
    }
    if report.failed {
        eprintln!(
            "bench_diff: FAILED — {} hard, {} soft regression(s) vs {baseline_path}",
            report.hard_regressions, report.soft_regressions
        );
        std::process::exit(1);
    }
}
