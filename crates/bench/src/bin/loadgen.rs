//! HTTP load generator for the `ampc-service` coloring server.
//!
//! Talks plain HTTP/1.1 over `std::net::TcpStream` (no client library
//! needed), hammers `POST /v1/color?wait=1` with synthetic workloads and
//! reports p50/p99 latency and throughput.
//!
//! ```text
//! # smoke: one request, assert HTTP 200 + a valid coloring (CI gate)
//! cargo run -p ampc-coloring-bench --bin loadgen --release -- --addr=127.0.0.1:8077 --smoke
//!
//! # load: 40 jobs over 4 connections, emit BENCH_service.json
//! cargo run -p ampc-coloring-bench --bin loadgen --release -- \
//!     --addr=127.0.0.1:8077 --jobs=40 --concurrency=4 --json=BENCH_service.json
//! ```
//!
//! Flags: `--addr=HOST:PORT` (required), `--jobs=N` (default 32),
//! `--concurrency=C` (default 4), `--workload=forest|grid|powerlaw|tree`
//! (default forest), `--n=NODES` (default 2000), `--unique` /
//! `--cached` (vary the seed per job — default — or repeat one graph to
//! measure the cache path), `--runtime=parallel|sequential|process`
//! (default parallel), `--threads=N` and `--workers=N` — forwarded as
//! the service's `runtime`/`threads`/`workers` query params, which drive
//! the round scheduler, the intra-layer round primitives and the
//! multi-process backend — `--json=PATH`, `--smoke`.
//!
//! A `503` answer (the server shedding load or draining for shutdown) is
//! retried after its advertised `Retry-After` delay, a bounded number of
//! times; the `shed_retries` column reports how often that happened.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use ampc_coloring_bench::args::{has_flag, parse_flag};
use ampc_coloring_bench::{http_client, Table, Workload};
use ampc_runtime::trace::LatencyHistogram;
use sparse_graph::{write_edge_list, Coloring, CsrGraph};

fn workload_for(kind: &str, n: usize) -> Workload {
    match kind {
        "grid" => Workload::PlanarGrid {
            side: (n as f64).sqrt().ceil() as usize,
        },
        "powerlaw" => Workload::PowerLaw {
            n,
            edges_per_node: 2,
        },
        "tree" => Workload::DeepTree { arity: 3, depth: 7 },
        _ => Workload::ForestUnion { n, k: 2 },
    }
}

/// The `/v1/color` target for a prepared workload instance. `runtime` and
/// `threads` map straight onto the service's query params (and from there
/// onto both the round scheduler and the intra-layer round primitives).
fn color_target(
    workload: Workload,
    graph: &CsrGraph,
    runtime: &str,
    threads: Option<usize>,
    workers: Option<usize>,
) -> String {
    let mut target = format!(
        "/v1/color?algorithm=two-alpha-plus-one&alpha={}&runtime={runtime}&wait=1&min_nodes={}",
        workload.alpha_bound(),
        graph.num_nodes()
    );
    if let Some(threads) = threads {
        target.push_str(&format!("&threads={threads}"));
    }
    if let Some(workers) = workers {
        target.push_str(&format!("&workers={workers}"));
    }
    target
}

/// How many times a shed (`503`) submission is retried before the
/// failure is surfaced — a draining or overloaded server gets a bounded
/// benefit of the doubt, not an infinite hammer.
const MAX_SHED_RETRIES: u32 = 5;

/// One synchronous `POST /v1/color?wait=1` with a pre-serialized body;
/// returns `(status, body)`. Serialization stays outside so measured
/// latency is service time, not local CPU.
///
/// The server answers `202` instead of waiting when all its synchronous
/// wait slots are parked (it reserves an acceptor for health endpoints);
/// in that case poll the job like any well-behaved client until it
/// reaches a terminal state, so the measured latency still covers the
/// whole computation.
///
/// A `503` (load shed or drain mode) is honored politely: sleep for the
/// advertised `Retry-After` seconds (default 1 when absent) and resubmit,
/// at most [`MAX_SHED_RETRIES`] times; each resubmission bumps
/// `shed_retries`, which lands in the report so back-pressure under load
/// is visible instead of silently inflating latency.
fn post_color(
    addr: &str,
    target: &str,
    body: &str,
    shed_retries: &AtomicU64,
) -> Result<(u16, String), String> {
    let mut sheds = 0u32;
    loop {
        let (status, headers, response) = http_client::request_with_headers(
            addr,
            "POST",
            target,
            body,
            Some(Duration::from_secs(300)),
        )?;
        if status == 503 && sheds < MAX_SHED_RETRIES {
            sheds += 1;
            shed_retries.fetch_add(1, Ordering::Relaxed);
            let delay = http_client::retry_after_seconds(&headers).unwrap_or(1);
            thread::sleep(Duration::from_secs(delay));
            continue;
        }
        if status != 202 {
            return Ok((status, response));
        }
        let job = http_client::json_u64(&response, "job")
            .ok_or_else(|| format!("202 without a job id: {response}"))?;
        return http_client::poll_terminal(addr, job, Duration::from_secs(300));
    }
}

/// Validates a served coloring against the locally rebuilt graph.
fn check_coloring(graph: &CsrGraph, body: &str) -> Result<usize, String> {
    let colors = http_client::json_coloring(body).ok_or("no coloring array in response")?;
    if colors.len() != graph.num_nodes() {
        return Err(format!(
            "coloring covers {} of {} nodes",
            colors.len(),
            graph.num_nodes()
        ));
    }
    let coloring = Coloring::new(colors);
    if !coloring.is_proper(graph) {
        return Err("served coloring is not proper".to_string());
    }
    Ok(coloring.num_colors())
}

/// Renders the histogram's non-empty buckets as a JSON object — the
/// `latency_histogram` section of `BENCH_service.json`, in the same
/// `(inclusive upper bound, count)` shape the service's `/metrics`
/// document uses.
fn histogram_section(histogram: &LatencyHistogram) -> String {
    let buckets = histogram.nonzero_buckets();
    let join = |values: Vec<String>| values.join(",");
    format!(
        "{{\"unit\":\"microseconds\",\"count\":{},\"sum\":{},\"mean\":{:.3},\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{},\"bucket_le\":[{}],\"bucket_count\":[{}]}}",
        histogram.count(),
        histogram.sum(),
        histogram.mean(),
        histogram.quantile(0.5),
        histogram.quantile(0.9),
        histogram.quantile(0.99),
        histogram.max(),
        join(buckets.iter().map(|&(le, _)| le.to_string()).collect()),
        join(buckets.iter().map(|&(_, count)| count.to_string()).collect()),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(addr) = parse_flag::<String>(&args, "addr") else {
        eprintln!("loadgen: --addr=HOST:PORT is required");
        std::process::exit(2);
    };
    let kind: String = parse_flag(&args, "workload").unwrap_or_else(|| "forest".to_string());
    let n: usize = parse_flag(&args, "n").unwrap_or(2000);
    let workload = workload_for(&kind, n);
    let runtime: String = parse_flag(&args, "runtime").unwrap_or_else(|| "parallel".to_string());
    let threads: Option<usize> = parse_flag(&args, "threads");
    let workers: Option<usize> = parse_flag(&args, "workers");

    if has_flag(&args, "smoke") {
        // One request; exit non-zero unless it is HTTP 200 with a proper
        // coloring (the CI gate).
        let graph = workload.build(0);
        let body = write_edge_list(&graph);
        let shed_retries = AtomicU64::new(0);
        match post_color(
            &addr,
            &color_target(workload, &graph, &runtime, threads, workers),
            &body,
            &shed_retries,
        ) {
            Ok((200, body)) => match check_coloring(&graph, &body) {
                Ok(colors) => {
                    println!(
                        "smoke ok: {} nodes, {} edges, {colors} colors",
                        graph.num_nodes(),
                        graph.num_edges()
                    );
                }
                Err(error) => {
                    eprintln!("smoke FAILED: {error}");
                    std::process::exit(1);
                }
            },
            Ok((status, body)) => {
                eprintln!("smoke FAILED: HTTP {status}: {body}");
                std::process::exit(1);
            }
            Err(error) => {
                eprintln!("smoke FAILED: {error}");
                std::process::exit(1);
            }
        }
        return;
    }

    let jobs: usize = parse_flag(&args, "jobs").unwrap_or(32);
    let concurrency: usize = parse_flag(&args, "concurrency").unwrap_or(4).max(1);
    let cached_mode = has_flag(&args, "cached");

    let next_job = Arc::new(AtomicUsize::new(0));
    // Log-bucketed and lock-free: clients record concurrently without a
    // shared Vec + sort, and the buckets land in BENCH_service.json.
    let latencies = Arc::new(LatencyHistogram::new());
    let failures: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    // Total 503-shed resubmissions across all clients (Retry-After path).
    let shed_retries = Arc::new(AtomicU64::new(0));

    let started = Instant::now();
    let clients: Vec<_> = (0..concurrency)
        .map(|_| {
            let addr = addr.clone();
            let runtime = runtime.clone();
            let next_job = Arc::clone(&next_job);
            let latencies = Arc::clone(&latencies);
            let failures = Arc::clone(&failures);
            let shed_retries = Arc::clone(&shed_retries);
            thread::spawn(move || loop {
                let job = next_job.fetch_add(1, Ordering::Relaxed);
                if job >= jobs {
                    return;
                }
                // Unique seeds exercise the full pipeline; `--cached`
                // repeats one graph to measure the cache path.
                let seed = if cached_mode { 0 } else { job as u64 };
                let graph = workload.build(seed);
                let body = write_edge_list(&graph);
                let target = color_target(workload, &graph, &runtime, threads, workers);
                let request_started = Instant::now();
                match post_color(&addr, &target, &body, &shed_retries) {
                    Ok((200, body)) => {
                        let elapsed = request_started.elapsed();
                        match check_coloring(&graph, &body) {
                            Ok(_) => latencies.record(elapsed.as_micros() as u64),
                            Err(error) => {
                                failures.lock().unwrap().push(format!("job {job}: {error}"))
                            }
                        }
                    }
                    Ok((status, body)) => failures
                        .lock()
                        .unwrap()
                        .push(format!("job {job}: HTTP {status}: {body}")),
                    Err(error) => failures.lock().unwrap().push(format!("job {job}: {error}")),
                }
            })
        })
        .collect();
    for client in clients {
        let _ = client.join();
    }
    let wall = started.elapsed();

    let failures = failures.lock().unwrap();
    for failure in failures.iter() {
        eprintln!("loadgen: {failure}");
    }
    let ok = latencies.count() as usize;
    let throughput = ok as f64 / wall.as_secs_f64();
    // Histogram quantiles report the upper bound of the holding bucket
    // (sub-1.6% bucket width), so no per-sample Vec + sort is needed.
    let p50_micros = latencies.quantile(0.50);
    let p99_micros = latencies.quantile(0.99);

    let mut table = Table::new(
        "service-load",
        "ampc-service loadgen",
        "synchronous /v1/color latency and throughput under concurrent load",
        &[
            "workload",
            "jobs",
            "ok",
            "failed",
            "concurrency",
            "wall_s",
            "throughput_jobs_per_s",
            "p50_ms",
            "p99_ms",
            "shed_retries",
        ],
    );
    table.push_row(vec![
        workload.label(),
        jobs.to_string(),
        ok.to_string(),
        failures.len().to_string(),
        concurrency.to_string(),
        format!("{:.3}", wall.as_secs_f64()),
        format!("{throughput:.2}"),
        format!("{:.3}", p50_micros as f64 / 1e3),
        format!("{:.3}", p99_micros as f64 / 1e3),
        shed_retries.load(Ordering::Relaxed).to_string(),
    ]);
    print!("{}", table.render());
    if let Some(path) = parse_flag::<String>(&args, "json") {
        // The emitted document pairs the summary table with the raw
        // log-bucketed latency distribution.
        let document = format!(
            "{{\"load\":{},\"latency_histogram\":{}}}",
            table.to_json(),
            histogram_section(&latencies)
        );
        if let Err(error) = std::fs::write(&path, document) {
            eprintln!("loadgen: cannot write {path}: {error}");
            std::process::exit(1);
        }
        println!("wrote {path}");
    }
    if !failures.is_empty() {
        std::process::exit(1);
    }
}
