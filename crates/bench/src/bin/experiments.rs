//! Experiment harness: regenerates every table of `EXPERIMENTS.md`.
//!
//! Usage:
//!
//! ```text
//! cargo run -p ampc-coloring-bench --bin experiments --release            # all experiments
//! cargo run -p ampc-coloring-bench --bin experiments --release -- E2 E6  # a subset
//! cargo run -p ampc-coloring-bench --bin experiments --release -- --json # JSON output
//! cargo run -p ampc-coloring-bench --bin experiments --release -- --runtime=parallel
//! ```
//!
//! `--runtime=parallel` runs every experiment on the sharded parallel
//! backend (`--runtime=sequential` is the default); the tables are
//! bit-identical either way, only the wall clock changes.

use std::time::Instant;

use ampc_coloring_bench::{all_experiments, experiment_by_id, Experiment};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let runtime_kind: Option<String> = args
        .iter()
        .filter_map(|a| a.strip_prefix("--runtime=").map(str::to_string))
        .next_back();
    let runtime = ampc_coloring_bench::resolve_runtime(runtime_kind.as_deref());
    let selected: Vec<String> = args.into_iter().filter(|a| !a.starts_with("--")).collect();

    let experiments: Vec<Experiment> = if selected.is_empty() {
        all_experiments()
    } else {
        selected
            .iter()
            .filter_map(|id| {
                let found = experiment_by_id(id);
                if found.is_none() {
                    eprintln!("unknown experiment id `{id}` (known: E1..E10)");
                }
                found
            })
            .collect()
    };

    println!("# Experiment harness — Adaptive Massively Parallel Coloring in Sparse Graphs\n");
    for experiment in experiments {
        eprintln!("running {} — {} ...", experiment.id, experiment.description);
        let start = Instant::now();
        let table = (experiment.run)(runtime);
        let elapsed = start.elapsed();
        if json {
            println!("{}", table.to_json());
        } else {
            print!("{}", table.render());
        }
        eprintln!("  done in {:.1?}\n", elapsed);
    }
}
