//! Intra-layer seq-vs-parallel wall-clock matrix for the LOCAL simulators.
//!
//! The round primitives (`ampc_runtime::RoundPrimitives`) parallelize the
//! per-node loops *inside* the simulators — this bin measures what that
//! buys on single-layer-dominated 100k-node workloads, where the whole
//! graph is effectively one layer and PR 1's across-layer parallelism
//! cannot help. Every parallel run is checked bit-identical to the
//! sequential reference before its timing is reported.
//!
//! Three sections:
//!
//! * **balanced** — degeneracy-oriented forest-union / power-law graphs
//!   (near-uniform per-node cost), the PR 3 matrix, plus the derand
//!   simulator's bit-packed GF(2) kernels on the same graphs.
//! * **skewed** — power-law and hub-and-spoke graphs oriented **by node
//!   id**, which piles most of the Arb-Linial work onto a few hub nodes
//!   clustered in index space. Here every thread count runs twice: once
//!   with the PR 3 `contiguous` equal-width chunk grid and once with the
//!   cost-`weighted` grid + work-stealing deques, so the scheduler A/B is
//!   recorded directly in `BENCH_intra.json`.
//! * **relabel** — the cache-aware CSR relabeling A/B at threads = 1:
//!   each policy (`off` / `degree-sorted` / `rcm`) permutes the graph,
//!   colors it on the permuted layout, and un-permutes the result, which
//!   is verified byte-identical to the `off` reference before its timing
//!   is reported. The speedup column of a relabeled row is therefore the
//!   pure memory-layout win.
//!
//! ```text
//! # smoke: small graphs, assert bit-identity, exit non-zero on mismatch
//! cargo run -p ampc-coloring-bench --bin intra_bench --release -- --smoke
//!
//! # matrix: 100k-node workloads, emit BENCH_intra.json
//! cargo run -p ampc-coloring-bench --bin intra_bench --release -- --json=BENCH_intra.json
//! ```
//!
//! Flags: `--n=NODES` (default 100000), `--reps=R` (default 3; best-of-R
//! wall clock per cell), `--threads=a,b,c` (default `1,2,4,8`),
//! `--relabel=a,b,c` (relabel policies for the A/B section, default
//! `off,degree-sorted,rcm`; unknown labels are rejected),
//! `--json=PATH`, `--smoke` (n=5000, reps=1), `--alloc-budget=N` (fail if
//! any cell's steady-state `allocs_per_round` exceeds `N`; also read from
//! the `AMPC_ALLOC_BUDGET` env var; requires the `alloc-count` feature),
//! `--trace` (attach one pre-allocated `TraceContext` to every cell's
//! primitives so each simulator round records a span — the buffers are
//! created before any cell runs, so the alloc gate holds with tracing on).
//!
//! Built with `--features alloc-count`, the bin installs a counting global
//! allocator and the `allocs_per_round` column carries real heap-allocation
//! counts per simulated LOCAL round — the allocation-discipline gate CI
//! enforces. Without the feature the column reads 0 and the gate refuses
//! to run (so a mis-built CI step fails loudly instead of passing vacuously).

use std::sync::Arc;
use std::time::{Duration, Instant};

/// Whether the counting allocator is compiled in (the `alloc-count`
/// feature): the `allocs_per_round` column is real iff this is true.
#[cfg(feature = "alloc-count")]
const ALLOC_COUNT_ENABLED: bool = true;
#[cfg(not(feature = "alloc-count"))]
const ALLOC_COUNT_ENABLED: bool = false;

#[cfg(feature = "alloc-count")]
#[global_allocator]
static COUNTING_ALLOCATOR: ampc_runtime::alloc_count::CountingAllocator =
    ampc_runtime::alloc_count::CountingAllocator;

/// Heap allocations so far (0 when counting is not compiled in).
fn allocations_now() -> u64 {
    #[cfg(feature = "alloc-count")]
    {
        ampc_runtime::alloc_count::allocations()
    }
    #[cfg(not(feature = "alloc-count"))]
    {
        0
    }
}

use ampc_coloring_bench::args::{has_flag, parse_flag};
use ampc_coloring_bench::{Table, Workload};
use ampc_runtime::trace::TraceContext;
use ampc_runtime::{perf, simd, PerfCounters, RoundPrimitives};
use arbo_coloring::{
    arb_linial_coloring_with_runtime, derandomized_coloring_relabeled,
    derandomized_coloring_with_runtime, kw_color_reduction_with_runtime, ArbLinialResult,
    DerandColoringResult, DerandParams, KwReductionResult,
};
use sparse_graph::{relabel, Coloring, CsrGraph, Orientation, RelabelPolicy};

/// Orients every edge along the degeneracy order — the low out-degree
/// orientation a β-partition provides (out-degree ≈ degeneracy ≤ 2α − 1).
fn degeneracy_orientation(graph: &CsrGraph) -> Orientation {
    let decomposition = sparse_graph::degeneracy_ordering(graph);
    let mut position = vec![0usize; graph.num_nodes()];
    for (i, &v) in decomposition.ordering.iter().enumerate() {
        position[v] = i;
    }
    Orientation::from_total_order(graph, |v| position[v])
}

/// Best-of-`reps` wall clock of `run`, with the best rep's heap-allocation
/// delta (each rep builds a fresh primitives context, so every rep pays
/// the same cold-scratch warm-up and the deltas are comparable) and its
/// hardware-counter delta (process-wide snapshot over the main thread and
/// every registered pool worker; all-zero when perf is unavailable).
fn best_of<R>(reps: usize, mut run: impl FnMut() -> R) -> (Duration, u64, PerfCounters, R) {
    let mut best: Option<(Duration, u64, PerfCounters, R)> = None;
    for _ in 0..reps.max(1) {
        let allocs_before = allocations_now();
        let perf_before = perf::snapshot();
        let started = Instant::now();
        let result = run();
        let elapsed = started.elapsed();
        let perf_delta = perf::snapshot().saturating_delta(&perf_before);
        let allocs = allocations_now().saturating_sub(allocs_before);
        if best.as_ref().is_none_or(|(b, ..)| elapsed < *b) {
            best = Some((elapsed, allocs, perf_delta, result));
        }
    }
    best.expect("at least one rep ran")
}

struct Cell {
    workload: String,
    simulator: &'static str,
    scheduler: &'static str,
    /// Relabel policy label ("off" outside the relabel A/B section).
    relabel: &'static str,
    threads: usize,
    wall: Duration,
    identical: bool,
    intra_tasks: u64,
    /// Heap allocations per simulated LOCAL round (whole-run delta over
    /// the simulator's round count — the cold-start scratch warm-up is
    /// amortized into it). 0 when counting is not compiled in.
    allocs_per_round: u64,
    /// Hardware counters over the cell's best rep (all zero when perf
    /// sampling is unavailable — see the table's `perf_available` meta).
    perf: PerfCounters,
}

/// A primitives context for one cell: threads plus the scheduler under
/// test (`weighted` cost-aware chunking vs the PR 3 `contiguous` grid),
/// optionally recording spans into the shared trace context.
fn primitives_for(
    threads: usize,
    scheduler: &str,
    trace: &Option<Arc<TraceContext>>,
) -> RoundPrimitives {
    let primitives = RoundPrimitives::new(threads).with_trace(trace.clone());
    if scheduler == "contiguous" {
        primitives.contiguous()
    } else {
        primitives
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = has_flag(&args, "smoke");
    let n: usize = parse_flag(&args, "n").unwrap_or(if smoke { 5_000 } else { 100_000 });
    let reps: usize = parse_flag(&args, "reps").unwrap_or(if smoke { 1 } else { 3 });
    let mut threads: Vec<usize> = parse_flag::<String>(&args, "threads")
        .map(|raw| raw.split(',').filter_map(|t| t.parse().ok()).collect())
        .unwrap_or_else(|| vec![1, 2, 4, 8]);
    // The sequential reference (threads = 1) anchors both the speedup
    // column and the bit-identity check, so it always runs first.
    threads.retain(|&t| t != 1);
    threads.insert(0, 1);

    // Relabel policies for the A/B section. The first listed policy is the
    // section's reference (with the default list that is `off`), so a
    // filtered list still self-checks. Unknown labels fail loudly.
    let relabel_policies: Vec<RelabelPolicy> = match parse_flag::<String>(&args, "relabel") {
        None => RelabelPolicy::ALL.to_vec(),
        Some(raw) => raw
            .split(',')
            .map(|text| match RelabelPolicy::parse(text) {
                Some(policy) => policy,
                None => {
                    eprintln!(
                        "intra_bench: FAILED — unknown relabel policy `{text}` \
                         (expected off, degree-sorted or rcm)"
                    );
                    std::process::exit(1);
                }
            })
            .collect(),
    };

    // A malformed budget must fail loudly, not silently disable the gate
    // (the same fail-loudly contract as the missing-feature refusal below):
    // fetch the raw string and reject anything that is not an integer.
    let alloc_budget: u64 = match parse_flag::<String>(&args, "alloc-budget")
        .or_else(|| std::env::var("AMPC_ALLOC_BUDGET").ok())
    {
        None => 0,
        Some(raw) => match raw.trim().parse() {
            Ok(value) => value,
            Err(_) => {
                eprintln!(
                    "intra_bench: FAILED — invalid allocation budget `{raw}` \
                     (expected a non-negative integer of allocations per round)"
                );
                std::process::exit(1);
            }
        },
    };

    // One shared, pre-allocated trace context for every cell: recording a
    // span is a clock read plus a push into a fixed-capacity buffer, so
    // the per-round allocation deltas the gate measures are unaffected.
    let trace = has_flag(&args, "trace").then(|| Arc::new(TraceContext::new()));

    let mut table = Table::new(
        "intra",
        "intra-layer seq vs parallel matrix",
        "wall clock of the LOCAL simulators (whole graph = one layer) on the round \
         primitives, per thread count, scheduler and relabel policy; `weighted` = \
         cost-weighted chunking + work-stealing deques, `contiguous` = the PR 3 \
         equal-width grid; relabel != off rows run on a cache-aware permuted graph and \
         are verified to un-permute to the relabel=off reference; parallel runs \
         verified bit-identical to threads=1; allocs_per_round = heap allocations per \
         simulated LOCAL round (0 = built without the alloc-count feature); \
         cycles/instructions/ipc/cache_miss_pct/branch_misses come from perf_event_open \
         sampling of the best rep and read 0/'-' when the `perf_available` meta is false; \
         simd_path is the per-process GF(2) kernel dispatch tier (avx2/sse2/scalar), a \
         runner fact bench_diff treats as context, never a row key",
        &[
            "workload",
            "simulator",
            "scheduler",
            "relabel",
            "threads",
            "wall_ms",
            "speedup",
            "intra_tasks",
            "allocs_per_round",
            "cycles",
            "instructions",
            "ipc",
            "cache_miss_pct",
            "branch_misses",
            "simd_path",
            "identical",
        ],
    );
    table.push_meta("perf_available", perf::available().to_string());
    table.push_meta("simd_available", simd::available().to_string());
    table.push_meta("simd_path", simd::dispatch_path().to_string());

    let mut cells: Vec<Cell> = Vec::new();
    let mut all_identical = true;

    // Section 1 — balanced: degeneracy orientations, near-uniform per-node
    // cost; the weighted scheduler's grid is near-uniform too, so a single
    // scheduler column suffices (it is the simulators' default).
    for workload in [
        Workload::ForestUnion { n, k: 2 },
        Workload::PowerLaw {
            n,
            edges_per_node: 3,
        },
    ] {
        let graph = workload.build(7);
        let orientation = degeneracy_orientation(&graph);
        let trivial = Coloring::new((0..graph.num_nodes()).collect());
        let kw_bound = graph.max_degree();
        // The KW sweep count scales with the degree bound: benching it on
        // the heavy-tailed power-law graph would time Δ ≈ hundreds of
        // rounds of pure scanning, which is not the per-layer regime the
        // paper uses it in (layers have max degree ≤ β). Forest unions
        // keep Δ small, so KW runs there only.
        let run_kw = matches!(workload, Workload::ForestUnion { .. });

        // Derand's cost is dominated by the per-edge GF(2) parity sweeps —
        // the loops the bit-packed word kernels accelerate — so it rides
        // in the balanced section on the same graphs.
        let derand_params = DerandParams::with_x(2);

        let mut linial_reference: Option<ArbLinialResult> = None;
        let mut kw_reference: Option<KwReductionResult> = None;
        let mut derand_reference: Option<DerandColoringResult> = None;
        for &t in &threads {
            // A fresh primitives context per rep keeps intra_tasks a
            // per-run count, consistent with the best-of-one-rep wall
            // clock (the counts are deterministic, so every rep agrees).
            let (wall, allocs, perf_delta, (linial, linial_tasks)) = best_of(reps, || {
                let primitives = RoundPrimitives::new(t).with_trace(trace.clone());
                let result =
                    arb_linial_coloring_with_runtime(&graph, &orientation, None, &primitives)
                        .expect("Arb-Linial succeeds");
                (result, primitives.tasks_executed())
            });
            let rounds = linial.rounds;
            let identical = match &linial_reference {
                None => {
                    linial_reference = Some(linial);
                    true
                }
                Some(reference) => {
                    reference.coloring == linial.coloring
                        && reference.palette_trajectory == linial.palette_trajectory
                }
            };
            all_identical &= identical;
            cells.push(Cell {
                workload: workload.label(),
                simulator: "arb-linial",
                scheduler: "weighted",
                relabel: "off",
                threads: t,
                wall,
                identical,
                intra_tasks: linial_tasks,
                allocs_per_round: allocs / rounds.max(1) as u64,
                perf: perf_delta,
            });

            if run_kw {
                let (wall, allocs, perf_delta, (reduced, kw_tasks)) = best_of(reps, || {
                    let primitives = RoundPrimitives::new(t).with_trace(trace.clone());
                    let result =
                        kw_color_reduction_with_runtime(&graph, &trivial, kw_bound, &primitives)
                            .expect("KW succeeds");
                    (result, primitives.tasks_executed())
                });
                let rounds = reduced.rounds;
                let identical = match &kw_reference {
                    None => {
                        kw_reference = Some(reduced);
                        true
                    }
                    Some(reference) => {
                        reference.coloring == reduced.coloring
                            && reference.palette_trajectory == reduced.palette_trajectory
                    }
                };
                all_identical &= identical;
                cells.push(Cell {
                    workload: workload.label(),
                    simulator: "kuhn-wattenhofer",
                    scheduler: "weighted",
                    relabel: "off",
                    threads: t,
                    wall,
                    identical,
                    intra_tasks: kw_tasks,
                    allocs_per_round: allocs / rounds.max(1) as u64,
                    perf: perf_delta,
                });
            }

            let (wall, allocs, perf_delta, (derand, derand_tasks)) = best_of(reps, || {
                let primitives = RoundPrimitives::new(t).with_trace(trace.clone());
                let result =
                    derandomized_coloring_with_runtime(&graph, &derand_params, &primitives);
                (result, primitives.tasks_executed())
            });
            let rounds = derand.mpc_rounds;
            let identical = match &derand_reference {
                None => {
                    derand_reference = Some(derand);
                    true
                }
                Some(reference) => {
                    reference.coloring == derand.coloring
                        && reference.uncolored_history == derand.uncolored_history
                        && reference.mpc_rounds == derand.mpc_rounds
                }
            };
            all_identical &= identical;
            cells.push(Cell {
                workload: workload.label(),
                simulator: "derand",
                scheduler: "weighted",
                relabel: "off",
                threads: t,
                wall,
                identical,
                intra_tasks: derand_tasks,
                allocs_per_round: allocs / rounds.max(1) as u64,
                perf: perf_delta,
            });
        }
    }

    // Section 2 — skewed: the graphs oriented **by node id**, so hubs keep
    // their full degree as out-degree. On the preferential-attachment graph
    // the hubs are the low ids — clustered at the front of the index space,
    // exactly the shape that starves contiguous equal-width chunks. Every
    // parallel thread count runs under both schedulers.
    for workload in [
        Workload::PowerLaw {
            n,
            edges_per_node: 3,
        },
        Workload::HubAndSpoke {
            n,
            communities: (n / 500).max(2),
        },
    ] {
        let graph = workload.build(11);
        let orientation = Orientation::from_total_order(&graph, |v| v);
        let label = format!("{}+by-id", workload.label());

        let mut reference: Option<ArbLinialResult> = None;
        for &t in &threads {
            let schedulers: &[&'static str] = if t == 1 {
                // Inline execution: the scheduler never engages.
                &["weighted"]
            } else {
                &["contiguous", "weighted"]
            };
            for &scheduler in schedulers {
                let (wall, allocs, perf_delta, (linial, tasks)) = best_of(reps, || {
                    let primitives = primitives_for(t, scheduler, &trace);
                    let result =
                        arb_linial_coloring_with_runtime(&graph, &orientation, None, &primitives)
                            .expect("Arb-Linial succeeds");
                    (result, primitives.tasks_executed())
                });
                let rounds = linial.rounds;
                let identical = match &reference {
                    None => {
                        reference = Some(linial);
                        true
                    }
                    Some(reference) => {
                        reference.coloring == linial.coloring
                            && reference.palette_trajectory == linial.palette_trajectory
                    }
                };
                all_identical &= identical;
                cells.push(Cell {
                    workload: label.clone(),
                    simulator: "arb-linial",
                    scheduler,
                    relabel: "off",
                    threads: t,
                    wall,
                    identical,
                    intra_tasks: tasks,
                    allocs_per_round: allocs / rounds.max(1) as u64,
                    perf: perf_delta,
                });
            }
        }
    }

    // Section 3 — relabel A/B at threads = 1: each policy permutes the
    // graph, the simulator runs on the permuted layout, and the result is
    // un-permuted and compared byte-for-byte against the section's
    // reference (the first listed policy — `off` by default). Arb-Linial
    // takes the ORIGINAL by-id orientation and initial coloring pushed
    // through the permutation (recomputing either on the relabeled graph
    // would change tie-breaks); derand's GF(2) queries encode node ids, so
    // its relabeled entry point encodes the original ids back. Relabel
    // time itself is excluded — the rows measure coloring on the layout.
    for workload in [
        Workload::PowerLaw {
            n,
            edges_per_node: 3,
        },
        Workload::HubAndSpoke {
            n,
            communities: (n / 500).max(2),
        },
    ] {
        let graph = workload.build(11);
        let orientation = Orientation::from_total_order(&graph, |v| v);
        let initial = Coloring::new((0..graph.num_nodes()).collect());
        let derand_params = DerandParams::with_x(2);
        let label = format!("{}+relabel", workload.label());

        let mut linial_reference: Option<(Coloring, Vec<usize>)> = None;
        let mut derand_reference: Option<(Coloring, Vec<usize>, usize)> = None;
        for &policy in &relabel_policies {
            let (relabeled, permutation) = relabel(&graph, policy);
            let pushed_orientation = permutation.permute_orientation(&orientation);
            let pushed_initial = Coloring::new(permutation.permute_colors(initial.colors()));

            let (wall, allocs, perf_delta, (linial, linial_tasks)) = best_of(reps, || {
                let primitives = RoundPrimitives::new(1).with_trace(trace.clone());
                let result = arb_linial_coloring_with_runtime(
                    &relabeled,
                    &pushed_orientation,
                    Some(&pushed_initial),
                    &primitives,
                )
                .expect("Arb-Linial succeeds");
                (result, primitives.tasks_executed())
            });
            let rounds = linial.rounds;
            let unpermuted = permutation.unpermute_coloring(&linial.coloring);
            let identical = match &linial_reference {
                None => {
                    linial_reference = Some((unpermuted, linial.palette_trajectory));
                    true
                }
                Some((coloring, trajectory)) => {
                    *coloring == unpermuted && *trajectory == linial.palette_trajectory
                }
            };
            all_identical &= identical;
            cells.push(Cell {
                workload: label.clone(),
                simulator: "arb-linial",
                scheduler: "weighted",
                relabel: policy.label(),
                threads: 1,
                wall,
                identical,
                intra_tasks: linial_tasks,
                allocs_per_round: allocs / rounds.max(1) as u64,
                perf: perf_delta,
            });

            let (wall, allocs, perf_delta, (derand, derand_tasks)) = best_of(reps, || {
                let primitives = RoundPrimitives::new(1).with_trace(trace.clone());
                let result = derandomized_coloring_relabeled(
                    &relabeled,
                    &derand_params,
                    &permutation,
                    &primitives,
                );
                (result, primitives.tasks_executed())
            });
            let rounds = derand.mpc_rounds;
            let unpermuted = permutation.unpermute_coloring(&derand.coloring);
            let identical = match &derand_reference {
                None => {
                    derand_reference =
                        Some((unpermuted, derand.uncolored_history, derand.mpc_rounds));
                    true
                }
                Some((coloring, history, mpc_rounds)) => {
                    *coloring == unpermuted
                        && *history == derand.uncolored_history
                        && *mpc_rounds == derand.mpc_rounds
                }
            };
            all_identical &= identical;
            cells.push(Cell {
                workload: label.clone(),
                simulator: "derand",
                scheduler: "weighted",
                relabel: policy.label(),
                threads: 1,
                wall,
                identical,
                intra_tasks: derand_tasks,
                allocs_per_round: allocs / rounds.max(1) as u64,
                perf: perf_delta,
            });
        }
    }

    // Speedups are relative to the threads=1 relabel=off run of the same
    // (workload, simulator) — the same baseline for both schedulers and
    // every relabel policy, so each A/B is a straight wall_ms (or speedup)
    // comparison between rows.
    let baseline = |workload: &str, simulator: &str| -> Duration {
        cells
            .iter()
            .find(|cell| {
                cell.workload == workload
                    && cell.simulator == simulator
                    && cell.relabel == "off"
                    && cell.threads == 1
            })
            .map_or(Duration::ZERO, |cell| cell.wall)
    };
    for cell in &cells {
        let sequential = baseline(&cell.workload, cell.simulator);
        let speedup = if cell.wall.as_nanos() > 0 {
            sequential.as_secs_f64() / cell.wall.as_secs_f64()
        } else {
            0.0
        };
        table.push_row(vec![
            cell.workload.clone(),
            cell.simulator.to_string(),
            cell.scheduler.to_string(),
            cell.relabel.to_string(),
            cell.threads.to_string(),
            format!("{:.3}", cell.wall.as_secs_f64() * 1e3),
            format!("{speedup:.2}"),
            cell.intra_tasks.to_string(),
            cell.allocs_per_round.to_string(),
            cell.perf.cycles.to_string(),
            cell.perf.instructions.to_string(),
            cell.perf
                .ipc()
                .map_or_else(|| "-".to_string(), |v| format!("{v:.2}")),
            cell.perf
                .cache_miss_rate()
                .map_or_else(|| "-".to_string(), |v| format!("{:.1}", v * 100.0)),
            cell.perf.branch_misses.to_string(),
            simd::dispatch_path().to_string(),
            cell.identical.to_string(),
        ]);
    }

    print!("{}", table.render());
    if let Some(path) = parse_flag::<String>(&args, "json") {
        if let Err(error) = std::fs::write(&path, table.to_json()) {
            eprintln!("intra_bench: cannot write {path}: {error}");
            std::process::exit(1);
        }
        println!("wrote {path}");
    }
    if !all_identical {
        eprintln!("intra_bench: FAILED — a parallel or relabeled run diverged from its reference");
        std::process::exit(1);
    }
    if alloc_budget > 0 {
        // The allocation-discipline gate: steady-state rounds must stay
        // under the budget. Refuses to run on a build without real
        // counters, so a mis-built CI step cannot pass vacuously.
        if !ALLOC_COUNT_ENABLED {
            eprintln!(
                "intra_bench: FAILED — --alloc-budget={alloc_budget} requires a build with \
                 `--features alloc-count` (the allocation counters are stubbed to 0)"
            );
            std::process::exit(1);
        }
        let mut over_budget = false;
        for cell in &cells {
            if cell.allocs_per_round > alloc_budget {
                over_budget = true;
                eprintln!(
                    "intra_bench: allocation budget exceeded — {} / {} / {} threads={} \
                     allocated {} per round (budget {alloc_budget})",
                    cell.workload,
                    cell.simulator,
                    cell.scheduler,
                    cell.threads,
                    cell.allocs_per_round
                );
            }
        }
        if over_budget {
            std::process::exit(1);
        }
        println!("alloc gate ok: every cell within {alloc_budget} heap allocations per round");
    }
    if let Some(trace) = &trace {
        println!(
            "trace: {} spans recorded, {} dropped at capacity",
            trace.recorded(),
            trace.dropped()
        );
    }
    if smoke {
        // When hardware counters are live, sanity-check them instead of
        // trusting the plumbing: a simulator run must retire instructions,
        // and IPC below 1/8 on any real CPU means the deltas are garbage
        // (wrong scaling, crossed fds). Skipped — not failed — when perf
        // is unavailable, which the `perf_available` meta reports honestly.
        if perf::available() {
            let mut consistent = true;
            for cell in &cells {
                if cell.perf.instructions == 0 || cell.perf.cycles < cell.perf.instructions / 8 {
                    consistent = false;
                    eprintln!(
                        "intra_bench: implausible perf counters — {} / {} / {} threads={} \
                         cycles={} instructions={}",
                        cell.workload,
                        cell.simulator,
                        cell.scheduler,
                        cell.threads,
                        cell.perf.cycles,
                        cell.perf.instructions
                    );
                }
            }
            if !consistent {
                eprintln!("intra_bench: FAILED — perf counter self-consistency check");
                std::process::exit(1);
            }
            println!("smoke ok: perf counters self-consistent on every cell");
        } else {
            println!("smoke note: perf counters unavailable (perf_available=false), check skipped");
        }
        println!("smoke ok: parallel runs bit-identical to sequential, relabeled runs to off");
    }
}
