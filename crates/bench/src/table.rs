//! Minimal text/JSON table rendering for the experiment harness.

use serde::Serialize;

/// A rendered experiment table.
#[derive(Debug, Clone, Serialize)]
pub struct Table {
    /// Experiment identifier (e.g. `"E2"`).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// What the paper claims and what to look for in the rows.
    pub claim: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row data (already formatted as strings).
    pub rows: Vec<Vec<String>>,
    /// Optional table-level facts (e.g. `perf_available`), emitted as a
    /// `"meta"` object in the JSON. Empty for most tables; `to_json`
    /// omits the key when empty so existing snapshots stay byte-stable.
    pub meta: Vec<(String, String)>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        claim: impl Into<String>,
        headers: &[&str],
    ) -> Self {
        Table {
            id: id.into(),
            title: title.into(),
            claim: claim.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
            meta: Vec::new(),
        }
    }

    /// Attaches one table-level fact, shown under the claim in the text
    /// rendering and as a `"meta"` object entry in the JSON.
    pub fn push_meta(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.meta.push((key.into(), value.into()));
    }

    /// Appends a row (converting every cell to a string).
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match the header"
        );
        self.rows.push(cells);
    }

    /// Renders the table as aligned monospace text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {} — {}\n", self.id, self.title));
        out.push_str(&format!("   claim: {}\n", self.claim));
        for (key, value) in &self.meta {
            out.push_str(&format!("   {key}: {value}\n"));
        }
        out.push('\n');
        let format_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, cell)| format!("{:>width$}", cell, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&format_row(&self.headers));
        out.push('\n');
        out.push_str(
            &widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  "),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&format_row(row));
            out.push('\n');
        }
        out.push('\n');
        out
    }

    /// Renders the table as a JSON object (for machine consumption).
    ///
    /// Hand-rolled (rather than via serde) so the workspace builds without
    /// registry access; the schema is a flat object of strings and string
    /// arrays, so escaping strings is all that is needed.
    pub fn to_json(&self) -> String {
        fn escape(s: &str) -> String {
            let mut out = String::with_capacity(s.len() + 2);
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out.push('"');
            out
        }

        fn string_array(items: &[String], indent: &str) -> String {
            let cells: Vec<String> = items.iter().map(|s| escape(s)).collect();
            format!("{indent}[{}]", cells.join(", "))
        }

        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|row| string_array(row, "    "))
            .collect();
        let meta = if self.meta.is_empty() {
            String::new()
        } else {
            let entries: Vec<String> = self
                .meta
                .iter()
                .map(|(key, value)| format!("{}: {}", escape(key), escape(value)))
                .collect();
            format!("\n  \"meta\": {{{}}},", entries.join(", "))
        };
        format!(
            "{{\n  \"id\": {},\n  \"title\": {},\n  \"claim\": {},{}\n  \"headers\": {},\n  \"rows\": [\n{}\n  ]\n}}",
            escape(&self.id),
            escape(&self.title),
            escape(&self.claim),
            meta,
            string_array(&self.headers, "").trim_start(),
            rows.join(",\n")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_text() {
        let mut table = Table::new("E0", "demo", "demo claim", &["n", "value"]);
        table.push_row(vec!["10".to_string(), "3".to_string()]);
        table.push_row(vec!["1000".to_string(), "42".to_string()]);
        let text = table.render();
        assert!(text.contains("E0"));
        assert!(text.contains("demo claim"));
        assert!(text.contains("1000"));
        let json = table.to_json();
        assert!(json.contains("\"rows\""));
        // No meta attached — the key is absent so old snapshots compare
        // byte-for-byte.
        assert!(!json.contains("\"meta\""));
    }

    #[test]
    fn meta_renders_in_text_and_json() {
        let mut table = Table::new("E0", "demo", "claim", &["a"]);
        table.push_meta("perf_available", "false");
        table.push_row(vec!["1".to_string()]);
        assert!(table.render().contains("perf_available: false"));
        let json = table.to_json();
        assert!(
            json.contains("\"meta\": {\"perf_available\": \"false\"}"),
            "{json}"
        );
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut table = Table::new("E0", "demo", "claim", &["a", "b"]);
        table.push_row(vec!["1".to_string()]);
    }
}
