//! Minimal text/JSON table rendering for the experiment harness.

use serde::Serialize;

/// A rendered experiment table.
#[derive(Debug, Clone, Serialize)]
pub struct Table {
    /// Experiment identifier (e.g. `"E2"`).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// What the paper claims and what to look for in the rows.
    pub claim: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row data (already formatted as strings).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        claim: impl Into<String>,
        headers: &[&str],
    ) -> Self {
        Table {
            id: id.into(),
            title: title.into(),
            claim: claim.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (converting every cell to a string).
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match the header"
        );
        self.rows.push(cells);
    }

    /// Renders the table as aligned monospace text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {} — {}\n", self.id, self.title));
        out.push_str(&format!("   claim: {}\n\n", self.claim));
        let format_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, cell)| format!("{:>width$}", cell, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&format_row(&self.headers));
        out.push('\n');
        out.push_str(
            &widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  "),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&format_row(row));
            out.push('\n');
        }
        out.push('\n');
        out
    }

    /// Renders the table as a JSON object (for machine consumption).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("table serialization cannot fail")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_text() {
        let mut table = Table::new("E0", "demo", "demo claim", &["n", "value"]);
        table.push_row(vec!["10".to_string(), "3".to_string()]);
        table.push_row(vec!["1000".to_string(), "42".to_string()]);
        let text = table.render();
        assert!(text.contains("E0"));
        assert!(text.contains("demo claim"));
        assert!(text.contains("1000"));
        let json = table.to_json();
        assert!(json.contains("\"rows\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut table = Table::new("E0", "demo", "claim", &["a", "b"]);
        table.push_row(vec!["1".to_string()]);
    }
}
