//! # ampc-coloring-bench
//!
//! Benchmark and experiment harness regenerating every experiment listed in
//! `DESIGN.md` / `EXPERIMENTS.md` (the paper is theoretical, so the
//! "experiments" are its theorem-level claims evaluated on synthetic
//! workloads).
//!
//! The [`experiments`] module produces text tables; the `experiments` binary
//! prints them, and the Criterion benches in `benches/` time the hot loops.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod diff;
pub mod experiments;
pub mod http_client;
pub mod table;
pub mod workloads;

pub use experiments::{all_experiments, experiment_by_id, Experiment};
pub use table::Table;
pub use workloads::Workload;

use ampc_runtime::RuntimeConfig;

/// Resolves a backend selection for the experiment harness: `kind` is an
/// explicit choice (`"parallel"` / `"sequential"` / `"process"`, e.g.
/// from a CLI flag), falling back to the `AMPC_RUNTIME` environment
/// variable. In parallel mode, `AMPC_THREADS` / `AMPC_SHARDS` pin the
/// worker and shard counts; in process mode `AMPC_WORKERS` pins the
/// shard-worker child count. Results are bit-identical either way —
/// only the wall clock changes.
pub fn resolve_runtime(kind: Option<&str>) -> RuntimeConfig {
    let parse = |name: &str| {
        std::env::var(name)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
    };
    let env = std::env::var("AMPC_RUNTIME").ok();
    match kind.or(env.as_deref()) {
        Some("parallel") => {
            let mut runtime = RuntimeConfig::parallel();
            if let Some(threads) = parse("AMPC_THREADS") {
                runtime = runtime.with_threads(threads);
            }
            if let Some(shards) = parse("AMPC_SHARDS") {
                runtime = runtime.with_shards(shards);
            }
            runtime
        }
        Some("process") => {
            let mut runtime = RuntimeConfig::process();
            if let Some(workers) = parse("AMPC_WORKERS") {
                runtime = runtime.with_workers(workers);
            }
            runtime
        }
        Some("sequential") | None => RuntimeConfig::Sequential,
        Some(other) => {
            // Tables are bit-identical across backends, so a typo here
            // would otherwise go unnoticed while skewing wall-clock
            // comparisons.
            eprintln!(
                "warning: unknown runtime `{other}` (expected `sequential`, `parallel` or \
                 `process`); using the sequential backend"
            );
            RuntimeConfig::Sequential
        }
    }
}
