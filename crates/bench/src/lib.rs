//! # ampc-coloring-bench
//!
//! Benchmark and experiment harness regenerating every experiment listed in
//! `DESIGN.md` / `EXPERIMENTS.md` (the paper is theoretical, so the
//! "experiments" are its theorem-level claims evaluated on synthetic
//! workloads).
//!
//! The [`experiments`] module produces text tables; the `experiments` binary
//! prints them, and the Criterion benches in `benches/` time the hot loops.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod table;
pub mod workloads;

pub use experiments::{all_experiments, experiment_by_id, Experiment};
pub use table::Table;
pub use workloads::Workload;
