//! Criterion benches for the derandomized MPC coloring of Theorem 1.5
//! (experiment E7).

use ampc_coloring_bench::Workload;
use arbo_coloring::{derandomized_coloring, DerandParams};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_derand_by_x(c: &mut Criterion) {
    let mut group = c.benchmark_group("derandomized_coloring");
    group.sample_size(10);
    let graph = Workload::Gnm {
        n: 400,
        average_degree: 6,
    }
    .build(31);
    for x in [2usize, 4, 8] {
        let params = DerandParams::with_x(x);
        group.bench_with_input(BenchmarkId::new("x", x), &graph, |b, graph| {
            b.iter(|| black_box(derandomized_coloring(graph, &params)));
        });
    }
    group.finish();
}

fn bench_derand_by_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("derandomized_coloring_scaling");
    group.sample_size(10);
    for n in [200usize, 400, 800] {
        let graph = Workload::Gnm {
            n,
            average_degree: 6,
        }
        .build(32);
        let params = DerandParams::with_x(4);
        group.bench_with_input(BenchmarkId::new("n", n), &graph, |b, graph| {
            b.iter(|| black_box(derandomized_coloring(graph, &params)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_derand_by_x, bench_derand_by_size);
criterion_main!(benches);
