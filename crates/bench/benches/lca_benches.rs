//! Criterion benches for the coin-dropping LCA (experiment E1): per-node
//! query cost as a function of the coin budget `x` and the instance shape.

use ampc_coloring_bench::Workload;
use ampc_model::LcaOracle;
use beta_partition::{partial_partition_lca, CoinGameConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_lca_by_budget(c: &mut Criterion) {
    let mut group = c.benchmark_group("lca_coin_game_budget");
    group.sample_size(20);
    let graph = Workload::ForestUnion { n: 5_000, k: 2 }.build(21);
    for x in [4usize, 8, 16] {
        let config = CoinGameConfig::new(x, 6);
        group.bench_with_input(BenchmarkId::new("x", x), &graph, |b, graph| {
            let oracle = LcaOracle::new(graph);
            let mut node = 0usize;
            b.iter(|| {
                node = (node + 97) % graph.num_nodes();
                black_box(partial_partition_lca(&oracle, node, &config).unwrap())
            });
        });
    }
    group.finish();
}

fn bench_lca_deep_instance(c: &mut Criterion) {
    let mut group = c.benchmark_group("lca_coin_game_deep_tree");
    group.sample_size(10);
    let graph = Workload::DeepTree { arity: 4, depth: 5 }.build(0);
    let config = CoinGameConfig::new(16, 3);
    group.bench_function("root_of_4ary_depth5", |b| {
        let oracle = LcaOracle::new(&graph);
        b.iter(|| black_box(partial_partition_lca(&oracle, 0, &config).unwrap()));
    });
    group.finish();
}

criterion_group!(benches, bench_lca_by_budget, bench_lca_deep_instance);
criterion_main!(benches);
