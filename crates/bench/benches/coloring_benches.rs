//! Criterion benches for the coloring pipelines (experiments E4–E6, E8):
//! the three Theorem 1.3 variants and the sequential baselines.

use ampc_coloring_bench::Workload;
use arbo_coloring::ampc::{color_alpha_squared, color_two_alpha_plus_one, AmpcColoringParams};
use arbo_coloring::{arb_linial_coloring, kw_color_reduction};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sparse_graph::{greedy_by_degeneracy_order, Coloring, Orientation};
use std::hint::black_box;

fn bench_arb_linial(c: &mut Criterion) {
    let mut group = c.benchmark_group("arb_linial");
    group.sample_size(20);
    for k in [2usize, 4] {
        let graph = Workload::ForestUnion { n: 5_000, k }.build(11);
        let decomposition = sparse_graph::degeneracy_ordering(&graph);
        let mut position = vec![0usize; graph.num_nodes()];
        for (i, &v) in decomposition.ordering.iter().enumerate() {
            position[v] = i;
        }
        let orientation = Orientation::from_total_order(&graph, |v| position[v]);
        group.bench_with_input(
            BenchmarkId::new("forest_union", k),
            &(&graph, &orientation),
            |b, (graph, orientation)| {
                b.iter(|| black_box(arb_linial_coloring(graph, orientation, None).unwrap()));
            },
        );
    }
    group.finish();
}

fn bench_kw_reduction(c: &mut Criterion) {
    let mut group = c.benchmark_group("kuhn_wattenhofer");
    group.sample_size(20);
    let graph = Workload::ForestUnion { n: 4_000, k: 2 }.build(12);
    let initial = Coloring::new((0..graph.num_nodes()).collect());
    let delta = graph.max_degree();
    group.bench_function("n=4000", |b| {
        b.iter(|| black_box(kw_color_reduction(&graph, &initial, delta).unwrap()));
    });
    group.finish();
}

fn bench_theorem_13_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("theorem_1_3");
    group.sample_size(10);
    let params = AmpcColoringParams::default().with_x(4);
    let graph = Workload::PowerLaw {
        n: 800,
        edges_per_node: 3,
    }
    .build(13);
    group.bench_function("alpha_squared", |b| {
        b.iter(|| black_box(color_alpha_squared(&graph, 3, &params).unwrap()));
    });
    group.bench_function("two_alpha_plus_one", |b| {
        b.iter(|| black_box(color_two_alpha_plus_one(&graph, 3, &params).unwrap()));
    });
    group.finish();
}

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("baselines");
    group.sample_size(30);
    for n in [2_000usize, 8_000] {
        let graph = Workload::PowerLaw {
            n,
            edges_per_node: 3,
        }
        .build(14);
        group.bench_with_input(
            BenchmarkId::new("degeneracy_greedy", n),
            &graph,
            |b, graph| {
                b.iter(|| black_box(greedy_by_degeneracy_order(graph)));
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_arb_linial,
    bench_kw_reduction,
    bench_theorem_13_variants,
    bench_baselines
);
criterion_main!(benches);
