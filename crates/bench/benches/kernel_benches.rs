//! Criterion benches for the word-level GF(2)/bitset kernels behind the
//! intra-layer simulators: XOR, masked parity and and-not intersection
//! over packed `&[u64]`, dispatched (AVX2/SSE2 where the probe finds
//! them) against the always-compiled scalar reference.
//!
//! The A/B is in-process: `dispatched` goes through `ampc_runtime::simd`'s
//! probe-once dispatcher, `scalar` calls the reference module directly.
//! Both produce identical bits (pinned by the simd unit tests), so only
//! throughput differs. Run with
//! `cargo bench -p ampc-coloring-bench --bench kernel_benches`; under
//! `AMPC_SIMD=0` the two arms should coincide — a cheap sanity check that
//! the override really pins the scalar path.
//!
//! Lengths cover the regimes the simulators hit: 1–2 words is a derand
//! seed row (`id_bits + 1` packed bits), 16–64 words is a per-layer color
//! bitset, 4096 words is the streaming regime where memory bandwidth,
//! not instruction choice, should dominate and the arms converge.

use ampc_runtime::simd;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// Deterministic xorshift64* word stream, mirroring the simd unit tests:
/// benches must not depend on ambient entropy.
fn words(seed: u64, len: usize) -> Vec<u64> {
    let mut state = seed.max(1);
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        })
        .collect()
}

const LENS: [usize; 5] = [2, 16, 64, 512, 4096];

fn bench_xor_words(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_xor_words");
    for len in LENS {
        let a = words(0xA11CE ^ len as u64, len);
        let b = words(0xB0B ^ (len as u64) << 8, len);
        group.bench_with_input(BenchmarkId::new("dispatched", len), &len, |bench, _| {
            let mut out = Vec::with_capacity(len);
            bench.iter(|| {
                simd::xor_words(black_box(&a), black_box(&b), &mut out);
                black_box(out.last().copied())
            });
        });
        group.bench_with_input(BenchmarkId::new("scalar", len), &len, |bench, _| {
            let mut out = vec![0u64; len];
            bench.iter(|| {
                simd::scalar::xor_words_into(black_box(&a), black_box(&b), &mut out);
                black_box(out.last().copied())
            });
        });
    }
    group.finish();
}

fn bench_masked_parity(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_masked_parity");
    for len in LENS {
        let a = words(0xFEED ^ len as u64, len);
        let mask = words(0xD00D ^ (len as u64) << 8, len);
        group.bench_with_input(BenchmarkId::new("dispatched", len), &len, |bench, _| {
            bench.iter(|| black_box(simd::masked_parity(black_box(&a), black_box(&mask))));
        });
        group.bench_with_input(BenchmarkId::new("scalar", len), &len, |bench, _| {
            bench.iter(|| black_box(simd::scalar::masked_parity(black_box(&a), black_box(&mask))));
        });
    }
    group.finish();
}

fn bench_and_not_any(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_and_not_any");
    for len in LENS {
        // a ⊆ cover, so the scan never short-circuits: this benches the
        // worst case (full traversal), the one the seed-fixing loop pays
        // when an edge query stays inside the already-fixed prefix.
        let a = words(0xCAFE ^ len as u64, len);
        let cover: Vec<u64> = a.iter().map(|&x| x | 0x8000_0000_0000_0001).collect();
        group.bench_with_input(BenchmarkId::new("dispatched", len), &len, |bench, _| {
            bench.iter(|| black_box(simd::and_not_any(black_box(&a), black_box(&cover))));
        });
        group.bench_with_input(BenchmarkId::new("scalar", len), &len, |bench, _| {
            bench.iter(|| black_box(simd::scalar::and_not_any(black_box(&a), black_box(&cover))));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_xor_words,
    bench_masked_parity,
    bench_and_not_any
);
criterion_main!(benches);
