//! Benches for the sharded parallel runtime: sequential vs parallel round
//! execution on large workloads, across a shards × threads matrix.
//!
//! Run with `cargo bench -p ampc-coloring-bench --bench runtime_benches`
//! (set `AMPC_BENCH_SAMPLES=3` for a smoke run). Speedups require a
//! multi-core host; on a single core the parallel backend degrades
//! gracefully to near-sequential cost plus scheduling overhead.

use ampc_coloring_bench::Workload;
use ampc_model::{AmpcConfig, ConflictPolicy, DataStore, Key, Value};
use ampc_runtime::{AmpcBackend, RoundPrimitives, RuntimeConfig};
use arbo_coloring::{arb_linial_coloring_with_runtime, kw_color_reduction_with_runtime};
use beta_partition::{ampc_beta_partition, PartitionParams};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sparse_graph::{Coloring, CsrGraph, Orientation};
use std::hint::black_box;

/// A store with one entry per node plus one per directed edge — the DDS
/// image of a graph, the workload the round scheduler exists for.
fn graph_store(graph: &CsrGraph) -> DataStore {
    let mut store = DataStore::new();
    for v in graph.nodes() {
        store.insert(
            Key::pair(0, v as u64),
            Value::single(graph.degree(v) as u64),
        );
    }
    store
}

/// Three adaptive rounds over the store: every machine reads its own entry,
/// chases one level of indirection and writes back derived values with
/// colliding keys (exercising the conflict merge).
fn run_rounds(backend: &mut dyn AmpcBackend, machines: usize) {
    for _ in 0..3 {
        backend
            .round_carrying_forward(machines, ConflictPolicy::KeepMin, |machine, ctx| {
                let own = ctx
                    .read(Key::pair(0, machine as u64))?
                    .map_or(0, |v| v.words()[0]);
                let neighbor = ctx
                    .read(Key::pair(0, (machine as u64 + own) % machines as u64))?
                    .map_or(0, |v| v.words()[0]);
                ctx.write(
                    Key::pair(0, machine as u64),
                    Value::single(own.wrapping_add(neighbor) % 1024),
                )?;
                ctx.write(Key::pair(1, (machine % 97) as u64), Value::single(own))
            })
            .expect("budgets are generous");
    }
}

fn bench_round_execution(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime_rounds");
    group.sample_size(10);
    let workload = Workload::ForestUnion { n: 100_000, k: 2 };
    let graph = workload.build(51);
    let machines = graph.num_nodes();
    let config = AmpcConfig::for_input_size(graph.num_nodes() + graph.num_edges(), 0.5);
    let store = graph_store(&graph);

    group.bench_with_input(
        BenchmarkId::new("sequential", machines),
        &store,
        |b, store| {
            b.iter(|| {
                let mut backend = RuntimeConfig::Sequential.backend(config, store.clone());
                run_rounds(backend.as_mut(), machines);
                black_box(backend.store_len())
            });
        },
    );
    for threads in [2usize, 4, 8] {
        for shards in [8usize, 32] {
            let runtime = RuntimeConfig::parallel()
                .with_threads(threads)
                .with_shards(shards);
            group.bench_with_input(
                BenchmarkId::new("parallel", format!("t{threads}_s{shards}")),
                &store,
                |b, store| {
                    b.iter(|| {
                        let mut backend = runtime.backend(config, store.clone());
                        run_rounds(backend.as_mut(), machines);
                        black_box(backend.store_len())
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_partition_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("ampc_beta_partition_runtime");
    group.sample_size(10);
    for (label, workload) in [
        (
            "forest_union_100k",
            Workload::ForestUnion { n: 100_000, k: 2 },
        ),
        (
            "power_law_100k",
            Workload::PowerLaw {
                n: 100_000,
                edges_per_node: 3,
            },
        ),
    ] {
        let graph = workload.build(52);
        let beta = 2 * workload.alpha_bound() + 2;
        let sequential = PartitionParams::new(beta).with_x(4);
        group.bench_with_input(BenchmarkId::new(label, "sequential"), &graph, |b, graph| {
            b.iter(|| black_box(ampc_beta_partition(graph, &sequential).unwrap()));
        });
        for threads in [4usize, 8] {
            let params = PartitionParams::new(beta)
                .with_x(4)
                .with_runtime(RuntimeConfig::parallel().with_threads(threads));
            group.bench_with_input(
                BenchmarkId::new(label, format!("parallel_t{threads}")),
                &graph,
                |b, graph| {
                    b.iter(|| black_box(ampc_beta_partition(graph, &params).unwrap()));
                },
            );
        }
    }
    group.finish();
}

/// The intra-layer matrix: the LOCAL simulators themselves (whole graph =
/// one layer) across thread counts, on 100k-node workloads. Sequential is
/// `threads = 1` through the same round primitives; results are
/// bit-identical across the matrix (`tests/backend_equivalence.rs` pins
/// that), so only the wall clock varies.
fn bench_intra_layer_simulators(c: &mut Criterion) {
    let mut group = c.benchmark_group("intra_layer_simulators");
    group.sample_size(10);
    let workload = Workload::ForestUnion { n: 100_000, k: 2 };
    let graph = workload.build(53);
    let decomposition = sparse_graph::degeneracy_ordering(&graph);
    let mut position = vec![0usize; graph.num_nodes()];
    for (i, &v) in decomposition.ordering.iter().enumerate() {
        position[v] = i;
    }
    let orientation = Orientation::from_total_order(&graph, |v| position[v]);
    let trivial = Coloring::new((0..graph.num_nodes()).collect());
    let degree_bound = graph.max_degree();

    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("arb_linial", format!("t{threads}")),
            &graph,
            |b, graph| {
                b.iter(|| {
                    let primitives = RoundPrimitives::new(threads);
                    black_box(
                        arb_linial_coloring_with_runtime(graph, &orientation, None, &primitives)
                            .expect("Arb-Linial succeeds"),
                    )
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("kuhn_wattenhofer", format!("t{threads}")),
            &graph,
            |b, graph| {
                b.iter(|| {
                    let primitives = RoundPrimitives::new(threads);
                    black_box(
                        kw_color_reduction_with_runtime(graph, &trivial, degree_bound, &primitives)
                            .expect("KW succeeds"),
                    )
                });
            },
        );
    }
    group.finish();
}

/// The skewed-scheduler A/B: Arb-Linial on graphs oriented by node id, so
/// hubs keep their full degree as out-degree and dominate the per-node
/// cost. `contiguous` is the PR 3 equal-width chunk grid; `weighted` is the
/// cost-weighted grid + work-stealing deques the skew-aware scheduler
/// ships. Outputs are bit-identical (pinned in
/// `tests/backend_equivalence.rs`); only the wall clock differs.
fn bench_skewed_scheduler(c: &mut Criterion) {
    let mut group = c.benchmark_group("skewed_intra_scheduler");
    group.sample_size(10);
    for (label, workload) in [
        (
            "hub_and_spoke_100k",
            Workload::HubAndSpoke {
                n: 100_000,
                communities: 200,
            },
        ),
        (
            "power_law_100k",
            Workload::PowerLaw {
                n: 100_000,
                edges_per_node: 3,
            },
        ),
    ] {
        let graph = workload.build(54);
        let orientation = Orientation::from_total_order(&graph, |v| v);
        for threads in [1usize, 4, 8] {
            let schedulers: &[&str] = if threads == 1 {
                &["weighted"] // inline: the scheduler never engages
            } else {
                &["contiguous", "weighted"]
            };
            for &scheduler in schedulers {
                group.bench_with_input(
                    BenchmarkId::new(label, format!("{scheduler}_t{threads}")),
                    &graph,
                    |b, graph| {
                        b.iter(|| {
                            let primitives = if scheduler == "contiguous" {
                                RoundPrimitives::new(threads).contiguous()
                            } else {
                                RoundPrimitives::new(threads)
                            };
                            black_box(
                                arb_linial_coloring_with_runtime(
                                    graph,
                                    &orientation,
                                    None,
                                    &primitives,
                                )
                                .expect("Arb-Linial succeeds"),
                            )
                        });
                    },
                );
            }
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_round_execution,
    bench_partition_backends,
    bench_intra_layer_simulators,
    bench_skewed_scheduler
);
criterion_main!(benches);
