//! Criterion benches for the β-partition algorithms (experiments E2/E3):
//! Barenboim–Elkin peeling vs the AMPC partitioner at different `β`.

use ampc_coloring_bench::Workload;
use beta_partition::{ampc_beta_partition, h_partition, natural_partition, PartitionParams};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_natural_partition(c: &mut Criterion) {
    let mut group = c.benchmark_group("natural_partition");
    group.sample_size(20);
    for k in [2usize, 4] {
        let graph = Workload::ForestUnion { n: 5_000, k }.build(1);
        let beta = 2 * k + 2;
        group.bench_with_input(BenchmarkId::new("forest_union", k), &graph, |b, graph| {
            b.iter(|| black_box(natural_partition(graph, beta)));
        });
    }
    group.finish();
}

fn bench_h_partition(c: &mut Criterion) {
    let mut group = c.benchmark_group("h_partition_peeling");
    group.sample_size(20);
    for n in [2_000usize, 8_000] {
        let graph = Workload::ForestUnion { n, k: 2 }.build(2);
        group.bench_with_input(BenchmarkId::new("n", n), &graph, |b, graph| {
            b.iter(|| black_box(h_partition(graph, 6)));
        });
    }
    group.finish();
}

fn bench_ampc_partition(c: &mut Criterion) {
    let mut group = c.benchmark_group("ampc_beta_partition");
    group.sample_size(10);
    for (label, beta) in [("beta=2.5a", 5usize), ("beta=a^2", 4usize)] {
        let graph = Workload::ForestUnion { n: 800, k: 2 }.build(3);
        let params = PartitionParams::new(beta).with_x(4);
        group.bench_with_input(BenchmarkId::new(label, beta), &graph, |b, graph| {
            b.iter(|| black_box(ampc_beta_partition(graph, &params).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_natural_partition,
    bench_h_partition,
    bench_ampc_partition
);
criterion_main!(benches);
