//! # ampc-coloring
//!
//! High-level public API for the reproduction of *Adaptive Massively
//! Parallel Coloring in Sparse Graphs* (Latypov, Maus, Pai, Uitto —
//! PODC 2024).
//!
//! The paper gives deterministic low-space **AMPC** algorithms that color a
//! graph of arboricity `α` with a number of colors that depends on `α`
//! (rather than on the potentially much larger maximum degree `∆`), in very
//! few adaptive rounds. This crate exposes those algorithms behind a single
//! builder-style entry point, [`SparseColoring`], and re-exports the
//! underlying layers for users who need finer control:
//!
//! * [`graph`] — graph substrate (CSR graphs, generators, arboricity).
//! * [`model`] — AMPC / MPC / LCA / LOCAL simulation runtime.
//! * [`partition`] — β-partitions, the coin-dropping LCA and Theorem 1.2.
//! * [`coloring`] — Arb-Linial, Kuhn–Wattenhofer, recoloring, Theorem 1.5
//!   and the Theorem 1.3 drivers.
//!
//! # Quickstart
//!
//! ```
//! use ampc_coloring::{Algorithm, SparseColoring};
//! use ampc_coloring::graph::generators;
//! use rand::SeedableRng;
//!
//! // A sparse graph: union of two random spanning trees (arboricity <= 2).
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(42);
//! let graph = generators::forest_union(1_000, 2, &mut rng);
//!
//! // Color it with (2 + eps) * alpha + 1 colors in the AMPC model.
//! let outcome = SparseColoring::new()
//!     .algorithm(Algorithm::TwoAlphaPlusOne)
//!     .alpha(2)     // arboricity bound; omit it to estimate from the graph
//!     .epsilon(0.5)
//!     .color(&graph)?;
//!
//! assert!(outcome.coloring.is_proper(&graph));
//! assert!(outcome.colors_used <= 6); // (2 + 0.5) * 2 + 1
//! println!(
//!     "{} colors in {} AMPC rounds ({})",
//!     outcome.colors_used, outcome.total_rounds, outcome.algorithm
//! );
//! # Ok::<(), ampc_coloring::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::sync::Arc;

/// Graph substrate re-export (crate `sparse-graph`).
pub use sparse_graph as graph;

/// Model-simulation re-export (crate `ampc-model`).
pub use ampc_model as model;

/// β-partition re-export (crate `beta-partition`).
pub use beta_partition as partition;

/// Coloring-algorithm re-export (crate `arbo-coloring`).
pub use arbo_coloring as coloring;

/// Parallel-runtime re-export (crate `ampc-runtime`).
pub use ampc_runtime as runtime;

pub use ampc_runtime::RuntimeConfig;

use ampc_runtime::trace::TraceContext;
use arbo_coloring::ampc::{
    color_alpha_power_traced, color_alpha_squared_traced, color_large_arboricity_traced,
    color_two_alpha_plus_one_traced, AmpcColoringParams, AmpcColoringResult, ColoringError,
};
use beta_partition::{
    ampc_beta_partition, ampc_beta_partition_unknown_arboricity, AmpcPartitionResult,
    PartitionParams,
};
use sparse_graph::{arboricity_upper_bound, Coloring, CsrGraph};

/// Errors returned by the high-level API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The underlying coloring driver failed (partition stall, resource
    /// violation, …).
    Coloring(ColoringError),
    /// The underlying partition driver failed.
    Partition(beta_partition::PartitionError),
    /// The request itself was invalid (e.g. `epsilon <= 0`).
    InvalidRequest(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Coloring(err) => write!(f, "{err}"),
            Error::Partition(err) => write!(f, "{err}"),
            Error::InvalidRequest(message) => write!(f, "invalid request: {message}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<ColoringError> for Error {
    fn from(err: ColoringError) -> Self {
        Error::Coloring(err)
    }
}

impl From<beta_partition::PartitionError> for Error {
    fn from(err: beta_partition::PartitionError) -> Self {
        Error::Partition(err)
    }
}

/// The algorithm variants of Theorem 1.3 (plus automatic selection).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Algorithm {
    /// Pick a variant automatically from the (estimated) arboricity:
    /// `TwoAlphaPlusOne` for small `α`, `LargeArboricity` when `α` is so
    /// large that the LOCAL simulations would not fit into local space.
    #[default]
    Auto,
    /// Theorem 1.3 (1): `O(α^{2+ε})` colors in `O(1/ε)` rounds.
    AlphaPower,
    /// Theorem 1.3 (2): `O(α²)` colors in `O(log α)` rounds.
    AlphaSquared,
    /// Theorem 1.3 (3) / Corollary 1.4: `((2+ε)α + 1)` colors in `Õ(α/ε)`
    /// rounds.
    TwoAlphaPlusOne,
    /// Section 6.4: `O(α^{1+ε})` colors via the derandomized MPC coloring of
    /// Theorem 1.5 applied per layer (the large-arboricity regime).
    LargeArboricity,
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Algorithm::Auto => "auto",
            Algorithm::AlphaPower => "O(alpha^(2+eps)) / O(1/eps) rounds",
            Algorithm::AlphaSquared => "O(alpha^2) / O(log alpha) rounds",
            Algorithm::TwoAlphaPlusOne => "((2+eps)alpha+1) / ~O(alpha/eps) rounds",
            Algorithm::LargeArboricity => "O(alpha^(1+eps)) via Theorem 1.5",
        };
        write!(f, "{name}")
    }
}

/// Outcome of a high-level coloring run.
#[derive(Debug, Clone)]
pub struct ColoringOutcome {
    /// Human-readable name of the variant that ran.
    pub algorithm: String,
    /// The proper coloring.
    pub coloring: Coloring,
    /// Number of distinct colors used.
    pub colors_used: usize,
    /// The arboricity bound the algorithm worked with (given or estimated).
    pub alpha: usize,
    /// The β parameter of the underlying partition.
    pub beta: usize,
    /// AMPC rounds of the partition phase.
    pub partition_rounds: usize,
    /// Layers of the β-partition.
    pub partition_size: usize,
    /// AMPC rounds charged to the coloring phase.
    pub coloring_rounds: usize,
    /// Total AMPC rounds.
    pub total_rounds: usize,
    /// Resource accounting of the partition phase (round reports plus
    /// runtime measurements such as per-round wall clock, shard loads and
    /// pool-reuse deltas).
    pub metrics: ampc_model::AmpcMetrics,
}

impl ColoringOutcome {
    fn from_result(result: AmpcColoringResult, alpha: usize) -> Self {
        ColoringOutcome {
            algorithm: result.algorithm.to_string(),
            colors_used: result.colors_used,
            alpha,
            beta: result.beta,
            partition_rounds: result.partition_rounds,
            partition_size: result.partition_size,
            coloring_rounds: result.coloring_rounds,
            total_rounds: result.total_rounds,
            metrics: result.metrics,
            coloring: result.coloring,
        }
    }
}

/// A fully explicit, validatable coloring request — the wire-facing
/// counterpart of the [`SparseColoring`] builder, used by the serving
/// subsystem (`ampc-service`) and anyone constructing runs from untrusted
/// input. [`SparseColoring::color_request`] validates every field and
/// returns [`Error::InvalidRequest`] instead of panicking or silently
/// clamping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ColorRequest {
    /// Algorithm variant to run.
    pub algorithm: Algorithm,
    /// Optional a-priori arboricity bound (must be ≥ 1 when given).
    pub alpha: Option<usize>,
    /// Trade-off constant `ε` (must be finite and positive).
    pub epsilon: f64,
    /// Local-space exponent `δ` (must be finite, in `(0, 1]`).
    pub delta: f64,
    /// Round limit for the partition phase (must be ≥ 1).
    pub max_partition_rounds: usize,
    /// Executor backend selection.
    pub runtime: RuntimeConfig,
}

impl Default for ColorRequest {
    fn default() -> Self {
        let defaults = SparseColoring::default();
        ColorRequest {
            algorithm: defaults.algorithm,
            alpha: defaults.alpha,
            epsilon: defaults.epsilon,
            delta: defaults.delta,
            max_partition_rounds: defaults.max_partition_rounds,
            runtime: defaults.runtime,
        }
    }
}

/// Builder-style entry point for the paper's coloring algorithms.
///
/// See the [crate-level documentation](crate) for a complete example.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparseColoring {
    algorithm: Algorithm,
    alpha: Option<usize>,
    epsilon: f64,
    delta: f64,
    x: Option<usize>,
    max_partition_rounds: usize,
    runtime: RuntimeConfig,
}

impl Default for SparseColoring {
    fn default() -> Self {
        SparseColoring {
            algorithm: Algorithm::Auto,
            alpha: None,
            epsilon: 0.5,
            delta: 0.5,
            x: Some(4),
            max_partition_rounds: 256,
            runtime: RuntimeConfig::default(),
        }
    }
}

impl SparseColoring {
    /// Creates a builder with default parameters (`Auto` algorithm,
    /// `ε = 0.5`, `δ = 0.5`, arboricity estimated from the graph).
    pub fn new() -> Self {
        SparseColoring::default()
    }

    /// Selects the algorithm variant.
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Supplies a known upper bound on the arboricity. Without it the
    /// builder uses the degeneracy (a 2-approximation, computable from the
    /// graph) as the bound.
    pub fn alpha(mut self, alpha: usize) -> Self {
        self.alpha = Some(alpha);
        self
    }

    /// Sets the trade-off constant `ε > 0`.
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Sets the local-space exponent `δ ∈ (0, 1]` used for resource
    /// accounting.
    pub fn delta(mut self, delta: f64) -> Self {
        self.delta = delta;
        self
    }

    /// Overrides the coin budget `x` of the partition phase's LCA.
    pub fn exploration_budget(mut self, x: usize) -> Self {
        self.x = Some(x);
        self
    }

    /// Overrides the round limit of the partition phase.
    pub fn max_partition_rounds(mut self, rounds: usize) -> Self {
        self.max_partition_rounds = rounds;
        self
    }

    /// Selects the executor backend for the AMPC rounds — the sequential
    /// reference simulator (default) or the sharded parallel runtime
    /// ([`RuntimeConfig::parallel`]). Backends are bit-identical for a
    /// fixed input, so this only affects wall-clock time.
    pub fn runtime(mut self, runtime: RuntimeConfig) -> Self {
        self.runtime = runtime;
        self
    }

    fn validate(&self) -> Result<(), Error> {
        if !self.epsilon.is_finite() || self.epsilon <= 0.0 {
            return Err(Error::InvalidRequest(
                "epsilon must be finite and positive".to_string(),
            ));
        }
        if !self.delta.is_finite() || !(0.0..=1.0).contains(&self.delta) || self.delta == 0.0 {
            return Err(Error::InvalidRequest(
                "delta must lie in (0, 1]".to_string(),
            ));
        }
        if self.max_partition_rounds == 0 {
            return Err(Error::InvalidRequest(
                "max_partition_rounds must be at least 1".to_string(),
            ));
        }
        Ok(())
    }

    fn coloring_params(&self) -> AmpcColoringParams {
        AmpcColoringParams {
            epsilon: self.epsilon,
            delta: self.delta,
            x: self.x,
            partition_super_iterations: None,
            max_partition_rounds: self.max_partition_rounds,
            runtime: self.runtime,
        }
    }

    /// Builds a validated builder from a wire-level [`ColorRequest`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidRequest`] for any out-of-domain field
    /// (non-finite or non-positive `epsilon`, `delta` outside `(0, 1]`,
    /// `alpha == 0`, `max_partition_rounds == 0`) — the checks that keep
    /// the downstream drivers panic-free on untrusted input.
    pub fn from_request(request: &ColorRequest) -> Result<Self, Error> {
        if request.alpha == Some(0) {
            return Err(Error::InvalidRequest(
                "alpha must be at least 1 when given".to_string(),
            ));
        }
        let builder = SparseColoring {
            algorithm: request.algorithm,
            alpha: request.alpha,
            epsilon: request.epsilon,
            delta: request.delta,
            x: SparseColoring::default().x,
            max_partition_rounds: request.max_partition_rounds,
            runtime: request.runtime,
        };
        builder.validate()?;
        Ok(builder)
    }

    /// Validates `request` and colors `graph` with it: the panic-free,
    /// structured-error entry point the serving subsystem calls for every
    /// job.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidRequest`] for out-of-domain parameters (see
    /// [`SparseColoring::from_request`]), otherwise the same errors as
    /// [`SparseColoring::color`].
    pub fn color_request(
        graph: &CsrGraph,
        request: &ColorRequest,
    ) -> Result<ColoringOutcome, Error> {
        SparseColoring::from_request(request)?.color(graph)
    }

    /// [`SparseColoring::color_request`] with an optional [`TraceContext`]
    /// attached: every AMPC round, LOCAL-simulation phase and backend
    /// merge records a span into `trace` while the run executes. Passing
    /// `None` is exactly `color_request` — no clock reads, no buffers.
    ///
    /// # Errors
    ///
    /// Same as [`SparseColoring::color_request`].
    pub fn color_request_traced(
        graph: &CsrGraph,
        request: &ColorRequest,
        trace: Option<Arc<TraceContext>>,
    ) -> Result<ColoringOutcome, Error> {
        SparseColoring::from_request(request)?.color_traced(graph, trace)
    }

    /// The arboricity bound used for `graph`: the explicit one if given,
    /// otherwise the degeneracy (which satisfies `α ≤ degeneracy ≤ 2α − 1`).
    pub fn resolve_alpha(&self, graph: &CsrGraph) -> usize {
        self.alpha
            .unwrap_or_else(|| arboricity_upper_bound(graph))
            .max(1)
    }

    /// Runs the selected coloring algorithm on `graph`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidRequest`] for invalid parameters and
    /// propagates failures of the underlying drivers (e.g. when an explicit
    /// `alpha` underestimates the true arboricity so much that no
    /// β-partition exists).
    pub fn color(&self, graph: &CsrGraph) -> Result<ColoringOutcome, Error> {
        self.color_traced(graph, None)
    }

    /// [`SparseColoring::color`] with an optional [`TraceContext`] threaded
    /// through the partition and coloring phases. Tracing never changes the
    /// coloring or the model-level metrics — only runtime observability.
    ///
    /// # Errors
    ///
    /// Same as [`SparseColoring::color`].
    pub fn color_traced(
        &self,
        graph: &CsrGraph,
        trace: Option<Arc<TraceContext>>,
    ) -> Result<ColoringOutcome, Error> {
        self.validate()?;
        let alpha = self.resolve_alpha(graph);
        let params = self.coloring_params();

        let algorithm = match self.algorithm {
            Algorithm::Auto => {
                // The LOCAL simulations need beta <= n^{delta/(1+eps)}; fall
                // back to the Theorem 1.5 route above that threshold.
                let threshold =
                    (graph.num_nodes().max(2) as f64).powf(self.delta / (1.0 + self.epsilon));
                if (alpha as f64) <= threshold {
                    Algorithm::TwoAlphaPlusOne
                } else {
                    Algorithm::LargeArboricity
                }
            }
            other => other,
        };

        let result = match algorithm {
            Algorithm::AlphaPower => color_alpha_power_traced(graph, alpha, &params, trace)?,
            Algorithm::AlphaSquared => color_alpha_squared_traced(graph, alpha, &params, trace)?,
            Algorithm::TwoAlphaPlusOne => {
                color_two_alpha_plus_one_traced(graph, alpha, &params, trace)?
            }
            Algorithm::LargeArboricity => {
                color_large_arboricity_traced(graph, alpha, &params, trace)?
            }
            Algorithm::Auto => unreachable!("Auto resolved above"),
        };
        Ok(ColoringOutcome::from_result(result, alpha))
    }

    /// Computes only the β-partition (Theorem 1.2) with `β = (2 + ε)·α`.
    ///
    /// # Errors
    ///
    /// Same as [`SparseColoring::color`].
    pub fn beta_partition(&self, graph: &CsrGraph) -> Result<AmpcPartitionResult, Error> {
        self.validate()?;
        let alpha = self.resolve_alpha(graph);
        let beta = (((2.0 + self.epsilon) * alpha as f64).ceil() as usize).max(1);
        let mut params = PartitionParams::new(beta)
            .with_delta(self.delta)
            .with_max_rounds(self.max_partition_rounds)
            .with_runtime(self.runtime);
        if let Some(x) = self.x {
            params = params.with_x(x);
        }
        Ok(ampc_beta_partition(graph, &params)?)
    }

    /// Computes a β-partition without any arboricity knowledge, using the
    /// guessing scheme of Lemma 5.1.
    ///
    /// # Errors
    ///
    /// Same as [`SparseColoring::color`].
    pub fn beta_partition_unknown_alpha(
        &self,
        graph: &CsrGraph,
    ) -> Result<beta_partition::GuessingResult, Error> {
        self.validate()?;
        let mut template = PartitionParams::new(0)
            .with_delta(self.delta)
            .with_max_rounds(self.max_partition_rounds)
            .with_runtime(self.runtime);
        if let Some(x) = self.x {
            template = template.with_x(x);
        }
        Ok(ampc_beta_partition_unknown_arboricity(
            graph,
            self.epsilon,
            &template,
        )?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use sparse_graph::generators;

    fn two_forest(n: usize, seed: u64) -> CsrGraph {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        generators::forest_union(n, 2, &mut rng)
    }

    #[test]
    fn default_auto_colors_sparse_graphs_with_few_colors() {
        let graph = two_forest(500, 1);
        let outcome = SparseColoring::new().color(&graph).unwrap();
        assert!(outcome.coloring.is_proper(&graph));
        // Auto resolves alpha from the degeneracy (<= 2 * 2 - 1 = 3), so the
        // ((2 + eps) alpha + 1) variant uses at most 2.5 * 3 + 1 = 9 colors.
        assert!(outcome.colors_used <= 9, "{} colors", outcome.colors_used);
        assert!(outcome.total_rounds >= 1);
        assert!(outcome.algorithm.contains("alpha"));
    }

    #[test]
    fn explicit_alpha_tightens_the_palette() {
        let graph = two_forest(400, 2);
        let outcome = SparseColoring::new()
            .algorithm(Algorithm::TwoAlphaPlusOne)
            .alpha(2)
            .epsilon(0.5)
            .color(&graph)
            .unwrap();
        assert!(outcome.coloring.is_proper(&graph));
        assert!(outcome.colors_used <= 6);
        assert_eq!(outcome.alpha, 2);
        assert_eq!(outcome.beta, 5);
    }

    #[test]
    fn every_explicit_variant_runs() {
        let graph = two_forest(300, 3);
        for algorithm in [
            Algorithm::AlphaPower,
            Algorithm::AlphaSquared,
            Algorithm::TwoAlphaPlusOne,
            Algorithm::LargeArboricity,
        ] {
            let outcome = SparseColoring::new()
                .algorithm(algorithm)
                .alpha(2)
                .color(&graph)
                .unwrap();
            assert!(outcome.coloring.is_proper(&graph), "{algorithm}");
            assert!(outcome.partition_rounds >= 1, "{algorithm}");
        }
    }

    #[test]
    fn beta_partition_entry_point() {
        let graph = two_forest(400, 4);
        let result = SparseColoring::new()
            .alpha(2)
            .beta_partition(&graph)
            .unwrap();
        assert!(!result.partition.is_partial());
        assert!(result.partition.validate(&graph).is_ok());
    }

    #[test]
    fn unknown_alpha_entry_point() {
        let graph = two_forest(300, 5);
        let result = SparseColoring::new()
            .beta_partition_unknown_alpha(&graph)
            .unwrap();
        assert!(result.result.partition.validate(&graph).is_ok());
        assert!(result.chosen_alpha >= 1);
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let graph = two_forest(50, 6);
        let err = SparseColoring::new()
            .epsilon(0.0)
            .color(&graph)
            .unwrap_err();
        assert!(matches!(err, Error::InvalidRequest(_)));
        let err = SparseColoring::new().delta(0.0).color(&graph).unwrap_err();
        assert!(matches!(err, Error::InvalidRequest(_)));
        assert!(err.to_string().contains("delta"));
    }

    #[test]
    fn underestimated_alpha_surfaces_partition_errors() {
        let graph = generators::complete(12);
        let err = SparseColoring::new()
            .algorithm(Algorithm::AlphaSquared)
            .alpha(1)
            .epsilon(0.1)
            .color(&graph)
            .unwrap_err();
        assert!(matches!(err, Error::Coloring(_)));
    }

    #[test]
    fn color_request_validates_and_colors() {
        let graph = two_forest(300, 7);
        let request = ColorRequest {
            algorithm: Algorithm::TwoAlphaPlusOne,
            alpha: Some(2),
            ..ColorRequest::default()
        };
        let outcome = SparseColoring::color_request(&graph, &request).unwrap();
        assert!(outcome.coloring.is_proper(&graph));
        assert!(outcome.colors_used <= 6);
        assert!(outcome.metrics.num_rounds() >= 1, "metrics ride along");

        // Every invalid field is a structured error, not a panic.
        let bad: Vec<ColorRequest> = vec![
            ColorRequest {
                epsilon: f64::NAN,
                ..ColorRequest::default()
            },
            ColorRequest {
                epsilon: -1.0,
                ..ColorRequest::default()
            },
            ColorRequest {
                delta: f64::INFINITY,
                ..ColorRequest::default()
            },
            ColorRequest {
                delta: 0.0,
                ..ColorRequest::default()
            },
            ColorRequest {
                alpha: Some(0),
                ..ColorRequest::default()
            },
            ColorRequest {
                max_partition_rounds: 0,
                ..ColorRequest::default()
            },
        ];
        for request in bad {
            let err = SparseColoring::color_request(&graph, &request).unwrap_err();
            assert!(matches!(err, Error::InvalidRequest(_)), "{request:?}");
        }
    }

    #[test]
    fn algorithm_display_names() {
        assert_eq!(Algorithm::Auto.to_string(), "auto");
        assert!(Algorithm::TwoAlphaPlusOne.to_string().contains("alpha"));
        assert_eq!(Algorithm::default(), Algorithm::Auto);
    }
}
