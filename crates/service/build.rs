//! Embeds build metadata for `GET /v1/version` and the `/metrics`
//! `build_info` block: the short git hash and the rustc version string.
//! Both are best-effort — a tarball build without `.git` or an exotic
//! toolchain simply reports "unknown" — and both can be overridden by
//! setting `AMPC_GIT_HASH` / `AMPC_RUSTC_VERSION` in the environment
//! (the code reads them with `option_env!`, so the override wins at
//! compile time).

use std::process::Command;

fn capture(cmd: &mut Command) -> Option<String> {
    let output = cmd.output().ok()?;
    if !output.status.success() {
        return None;
    }
    let text = String::from_utf8(output.stdout).ok()?;
    let text = text.trim();
    (!text.is_empty()).then(|| text.to_string())
}

fn main() {
    // Re-run when HEAD moves so the embedded hash stays honest.
    println!("cargo:rerun-if-changed=../../.git/HEAD");
    println!("cargo:rerun-if-env-changed=AMPC_GIT_HASH");
    println!("cargo:rerun-if-env-changed=AMPC_RUSTC_VERSION");

    if std::env::var("AMPC_GIT_HASH").is_err() {
        let hash = capture(Command::new("git").args(["rev-parse", "--short=12", "HEAD"]))
            .unwrap_or_else(|| "unknown".to_string());
        println!("cargo:rustc-env=AMPC_GIT_HASH={hash}");
    }
    if std::env::var("AMPC_RUSTC_VERSION").is_err() {
        let rustc = std::env::var("RUSTC").unwrap_or_else(|_| "rustc".to_string());
        let version =
            capture(Command::new(rustc).arg("--version")).unwrap_or_else(|| "unknown".to_string());
        println!("cargo:rustc-env=AMPC_RUSTC_VERSION={version}");
    }
}
